#!/usr/bin/env python
"""Standalone conformance-plane runner for CI and local checks.

Thin wrapper over ``python -m repro conformance`` that works without
installing the package: it puts ``src/`` on ``sys.path`` itself, so CI
jobs and developers can run it from the repository root with no
environment setup:

    python tools/run_conformance.py --seed 2003 --report report.txt

The report is byte-stable per seed (sorted iteration, no wall-clock
content), so the CI job runs it twice and ``cmp``s the outputs — any
hidden nondeterminism in the crypto/protocol stack fails the build.
Exit status 0 when every plane (official vectors, oracles, state
machine, fuzzing, regression replay) is green, 1 otherwise.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.__main__ import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["conformance", *sys.argv[1:]]))
