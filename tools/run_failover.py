#!/usr/bin/env python
"""Standalone failover-scenario runner for CI and local checks.

Thin wrapper over ``python -m repro failover`` that works without
installing the package: it puts ``src/`` on ``sys.path`` itself, so CI
jobs and developers can run it from the repository root with no
environment setup:

    python tools/run_failover.py --seed 2003 --report report.json

The JSON report is byte-stable per parameter set (sorted keys, rounded
floats, virtual-clock timestamps only), so the CI job runs it twice
and ``cmp``s the outputs — any hidden nondeterminism in the sharded
fleet (crash injection, checkpoint restore, migration ordering) fails
the build.  Exit status 0 when the end-to-end energy reconciliation
holds against the handset battery ledgers, 1 otherwise.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.__main__ import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["failover", *sys.argv[1:]]))
