#!/usr/bin/env python
"""Regenerate the lightweight-stream-cipher KAT corpus files.

The A5/1 corpus file is anchored to the published Briceno/Goldberg/
Wagner pedagogical test vector (key 0x1223456789ABCDEF, frame 0x134).
Grain v1 and Trivium have no universally citable byte-level vector we
can transcribe without network access, so their corpus files are
**frozen dual-implementation pins** (the same policy as the corpus's
frozen RSA/DH pairs): every pinned keystream is computed here by a
from-scratch *independent* implementation — spec-indexed bit lists,
structurally unrelated to the packed-integer production code in
``repro.crypto`` — and asserted equal against both dispatch paths of
the production ciphers before anything is written.  A silent bug would
have to appear identically in two implementations of different shape
to survive into the corpus.

Conventions frozen by the corpus (documented in the cipher modules):
A5/1 outputs bits MSB-first per byte; Grain/Trivium load key/IV bits
and emit keystream bits LSB-first per byte.

Run from the repository root:

    python tools/gen_stream_vectors.py

Rewrites ``tests/vectors/{a51_bgw_pedagogical,grain_v1_frozen_pins,
trivium_frozen_pins}.json`` in place; exits non-zero if the
independent and production implementations disagree.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import List, Tuple

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.crypto import fastpath  # noqa: E402
from repro.crypto.a51 import A51  # noqa: E402
from repro.crypto.grain import Grain  # noqa: E402
from repro.crypto.trivium import Trivium  # noqa: E402

VECTOR_DIR = ROOT / "tests" / "vectors"


# ---------------------------------------------------------------------------
# Independent implementations: spec-indexed bit lists, nothing shared
# with repro.crypto.  Deliberately slow and literal.
# ---------------------------------------------------------------------------


def independent_a51_bits(key: bytes, frame: int, count: int) -> List[int]:
    """A5/1 keystream bits from bit-list registers (index = bit pos)."""
    r1, r2, r3 = [0] * 19, [0] * 22, [0] * 23
    taps = {1: [13, 16, 17, 18], 2: [20, 21], 3: [7, 20, 21, 22]}

    def shift(reg, which, feed=0):
        fb = feed
        for t in taps[which]:
            fb ^= reg[t]
        reg.pop()
        reg.insert(0, fb)

    for i in range(64):
        bit = (key[i // 8] >> (i % 8)) & 1
        shift(r1, 1, 0), shift(r2, 2, 0), shift(r3, 3, 0)
        r1[0] ^= bit
        r2[0] ^= bit
        r3[0] ^= bit
    for i in range(22):
        bit = (frame >> i) & 1
        shift(r1, 1, 0), shift(r2, 2, 0), shift(r3, 3, 0)
        r1[0] ^= bit
        r2[0] ^= bit
        r3[0] ^= bit

    def majority_clock():
        votes = [r1[8], r2[10], r3[10]]
        maj = 1 if sum(votes) >= 2 else 0
        if r1[8] == maj:
            shift(r1, 1)
        if r2[10] == maj:
            shift(r2, 2)
        if r3[10] == maj:
            shift(r3, 3)

    for _ in range(100):
        majority_clock()
    bits = []
    for _ in range(count):
        majority_clock()
        bits.append(r1[18] ^ r2[21] ^ r3[22])
    return bits


def independent_a51_keystream(key: bytes, frame: int, nbytes: int) -> bytes:
    bits = independent_a51_bits(key, frame, 8 * nbytes)
    out = bytearray(nbytes)
    for i, bit in enumerate(bits):
        out[i // 8] |= bit << (7 - i % 8)  # MSB-first per byte
    return bytes(out)


def independent_a51_burst(key: bytes, frame: int) -> Tuple[bytes, bytes]:
    bits = independent_a51_bits(key, frame, 228)

    def pack(chunk):
        out = bytearray(15)
        for i, bit in enumerate(chunk):
            out[i // 8] |= bit << (7 - i % 8)
        return bytes(out)

    return pack(bits[:114]), pack(bits[114:])


def _lsb_bits(data: bytes) -> List[int]:
    return [(data[i // 8] >> (i % 8)) & 1 for i in range(8 * len(data))]


def _lsb_bytes(bits: List[int]) -> bytes:
    out = bytearray(len(bits) // 8)
    for i, bit in enumerate(bits):
        out[i // 8] |= bit << (i % 8)  # LSB-first per byte
    return bytes(out)


def independent_trivium(key: bytes, iv: bytes, nbytes: int) -> bytes:
    """Trivium from the spec's 1-indexed 288-bit state list."""
    s = [0] * 289
    for x, bit in enumerate(_lsb_bits(key)):
        s[1 + x] = bit
    for x, bit in enumerate(_lsb_bits(iv)):
        s[94 + x] = bit
    s[286] = s[287] = s[288] = 1
    bits: List[int] = []
    for step in range(4 * 288 + 8 * nbytes):
        t1 = s[66] ^ s[93]
        t2 = s[162] ^ s[177]
        t3 = s[243] ^ s[288]
        if step >= 4 * 288:
            bits.append(t1 ^ t2 ^ t3)
        t1 ^= (s[91] & s[92]) ^ s[171]
        t2 ^= (s[175] & s[176]) ^ s[264]
        t3 ^= (s[286] & s[287]) ^ s[69]
        s = [0, t3] + s[1:93] + [t1] + s[94:177] + [t2] + s[178:288]
    return _lsb_bytes(bits)


def independent_grain(key: bytes, iv: bytes, nbytes: int) -> bytes:
    """Grain v1 from spec-indexed NFSR/LFSR bit lists."""
    b = _lsb_bits(key)
    s = _lsb_bits(iv) + [1] * 16

    def h(x0, x1, x2, x3, x4):
        return (x1 ^ x4 ^ (x0 & x3) ^ (x2 & x3) ^ (x3 & x4)
                ^ (x0 & x1 & x2) ^ (x0 & x2 & x3) ^ (x0 & x2 & x4)
                ^ (x1 & x2 & x4) ^ (x2 & x3 & x4))

    def clock(feed_z: bool) -> int:
        z = (b[1] ^ b[2] ^ b[4] ^ b[10] ^ b[31] ^ b[43] ^ b[56]
             ^ h(s[3], s[25], s[46], s[64], b[63]))
        ns = s[62] ^ s[51] ^ s[38] ^ s[23] ^ s[13] ^ s[0]
        nb = (s[0] ^ b[62] ^ b[60] ^ b[52] ^ b[45] ^ b[37] ^ b[33]
              ^ b[28] ^ b[21] ^ b[14] ^ b[9] ^ b[0]
              ^ (b[63] & b[60]) ^ (b[37] & b[33]) ^ (b[15] & b[9])
              ^ (b[60] & b[52] & b[45]) ^ (b[33] & b[28] & b[21])
              ^ (b[63] & b[45] & b[28] & b[9])
              ^ (b[60] & b[52] & b[37] & b[33])
              ^ (b[63] & b[60] & b[21] & b[15])
              ^ (b[63] & b[60] & b[52] & b[45] & b[37])
              ^ (b[33] & b[28] & b[21] & b[15] & b[9])
              ^ (b[52] & b[45] & b[37] & b[33] & b[28] & b[21]))
        if feed_z:
            ns ^= z
            nb ^= z
        s.pop(0)
        s.append(ns)
        b.pop(0)
        b.append(nb)
        return z

    for _ in range(160):
        clock(feed_z=True)
    return _lsb_bytes([clock(feed_z=False) for _ in range(8 * nbytes)])


# ---------------------------------------------------------------------------
# Cross-checks and corpus assembly
# ---------------------------------------------------------------------------


def _production_keystream(factory, blob: bytes, nbytes: int) -> bytes:
    """Keystream from the production cipher, asserted path-identical."""
    with fastpath.force(True):
        fast = factory(blob).keystream(nbytes)
    with fastpath.force(False):
        reference = factory(blob).keystream(nbytes)
    if fast != reference:
        raise SystemExit(f"{factory.name}: dispatch paths disagree")
    return fast


def _pin(factory, independent, key: bytes, iv: bytes, nbytes: int) -> str:
    blob = key + iv
    want = independent(key, iv, nbytes)
    got = _production_keystream(factory, blob, nbytes)
    if got != want:
        raise SystemExit(
            f"{factory.name}: independent implementation disagrees "
            f"(independent {want.hex()}, production {got.hex()})")
    return got.hex()


def build_a51_file() -> dict:
    key = bytes.fromhex("1223456789abcdef")
    frame = 0x134
    # The published burst pair is transcribed, not computed: the
    # generator refuses to write the file unless both implementations
    # reproduce it.
    published_ab = "534eaa582fe8151ab6e1855a728c00"
    published_ba = "24fd35a35d5fb6526d32f906df1ac0"
    for impl in (A51.burst, independent_a51_burst):
        ab, ba = impl(key, frame)
        if ab.hex() != published_ab or ba.hex() != published_ba:
            raise SystemExit(f"A5/1 {impl.__qualname__} misses the "
                             f"published vector")
    blob = key + frame.to_bytes(3, "big")
    first14 = _production_keystream(A51, blob, 14)
    if first14 != independent_a51_keystream(key, frame, 14):
        raise SystemExit("A5/1 continuous keystream disagrees")
    zero_blob = key + b"\x00\x00\x00"
    pin = _production_keystream(A51, zero_blob, 48)
    if pin != independent_a51_keystream(key, 0, 48):
        raise SystemExit("A5/1 frame-0 keystream disagrees")
    plaintext = b"mobile appliance"
    with fastpath.force(True):
        ciphertext = A51(blob).process(plaintext)
    return {
        "source": ("A5/1 pedagogical implementation test vector "
                   "(Briceno/Goldberg/Wagner, 1999); continuation pins "
                   "frozen by tools/gen_stream_vectors.py against an "
                   "independent bit-list implementation"),
        "algorithm": "A51",
        "kind": "stream",
        "vectors": [
            {
                "id": "bgw-key12-frame134-burst",
                "key": key.hex(),
                "frame": "000134",
                "a_to_b": published_ab,
                "b_to_a": published_ba,
            },
            {
                "id": "bgw-key12-frame134-keystream",
                "key": blob.hex(),
                "offset": 0,
                "keystream": first14.hex(),
            },
            {
                "id": "pin-key12-frame0-off32",
                "key": zero_blob.hex(),
                "offset": 32,
                "keystream": pin[32:].hex(),
            },
            {
                "id": "pin-key12-frame134-roundtrip",
                "key": blob.hex(),
                "plaintext": plaintext.hex(),
                "ciphertext": ciphertext.hex(),
            },
        ],
    }


def _estream_file(name: str, factory, independent, key_bytes: int,
                  iv_bytes: int, module: str) -> dict:
    zero_key, zero_iv = bytes(key_bytes), bytes(iv_bytes)
    pattern_key = bytes(range(key_bytes))
    pattern_iv = bytes(range(0x80, 0x80 + iv_bytes))
    long_pin = _pin(factory, independent, pattern_key, pattern_iv, 208)
    plaintext = b"m-commerce purchase order #2003"
    with fastpath.force(True):
        ciphertext = factory(pattern_key + pattern_iv).process(plaintext)
    short_blob_pin = _production_keystream(factory, pattern_key, 16)
    if short_blob_pin != independent(pattern_key, zero_iv, 16):
        raise SystemExit(f"{name}: short-blob keystream disagrees")
    return {
        "source": (f"frozen dual-implementation pins generated by "
                   f"tools/gen_stream_vectors.py (independent bit-list "
                   f"implementation vs repro.crypto.{module}, both "
                   f"dispatch paths); bit conventions documented in "
                   f"repro.crypto.{module}"),
        "algorithm": name,
        "kind": "stream",
        "vectors": [
            {
                "id": "pin-zero-key-zero-iv",
                "key": (zero_key + zero_iv).hex(),
                "offset": 0,
                "keystream": _pin(factory, independent,
                                  zero_key, zero_iv, 16),
            },
            {
                "id": "pin-pattern-off0",
                "key": (pattern_key + pattern_iv).hex(),
                "offset": 0,
                "keystream": long_pin[:32],
            },
            {
                "id": "pin-pattern-off192",
                "key": (pattern_key + pattern_iv).hex(),
                "offset": 192,
                "keystream": long_pin[384:],
            },
            {
                "id": "pin-short-blob-zero-iv",
                "key": pattern_key.hex(),
                "offset": 0,
                "keystream": short_blob_pin.hex(),
            },
            {
                "id": "pin-pattern-roundtrip",
                "key": (pattern_key + pattern_iv).hex(),
                "plaintext": plaintext.hex(),
                "ciphertext": ciphertext.hex(),
            },
        ],
    }


def main() -> int:
    files = {
        "a51_bgw_pedagogical.json": build_a51_file(),
        "grain_v1_frozen_pins.json": _estream_file(
            "GRAIN", Grain, independent_grain, 10, 8, "grain"),
        "trivium_frozen_pins.json": _estream_file(
            "TRIVIUM", Trivium, independent_trivium, 10, 10, "trivium"),
    }
    for name, payload in files.items():
        path = VECTOR_DIR / name
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {path.relative_to(ROOT)} "
              f"({len(payload['vectors'])} vectors)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
