#!/usr/bin/env python
"""Standalone fleetwatch runner for CI and local checks.

Thin wrapper over ``python -m repro fleetwatch`` that works without
installing the package: it puts ``src/`` on ``sys.path`` itself, so CI
jobs and developers can run it from the repository root with no
environment setup:

    python tools/run_fleetwatch.py --seed 2003 --report ops.json

The ops report — stitched cross-shard journey traces, windowed
goodput/latency/energy series, and the latched SLO burn-rate alert
ledger over the canonical failover chaos run — is byte-stable per
parameter set, so the CI job runs it twice and ``cmp``s the outputs.
Exit status 0 when the end-to-end energy reconciliation holds against
the handset battery ledgers, 1 otherwise.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.__main__ import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["fleetwatch", *sys.argv[1:]]))
