#!/usr/bin/env python
"""Validate a telemetry JSONL export against the documented schema.

The export format (see ``repro.observability.export``) is line-oriented
JSON with four record types:

* exactly one ``trace`` header, on the first line;
* ``span`` records (ids positive and strictly increasing, parents
  resolving to earlier spans, ``end_s >= start_s``);
* ``event`` records (trace-level events only; span events live inside
  their span's ``events`` array);
* ``metric`` records (sorted label pairs, numeric values).

Exit status 0 when the file conforms, 1 with a per-line diagnosis when
it does not.  Used by the CI telemetry smoke job:

    PYTHONPATH=src python -m repro telemetry-report --jsonl trace.jsonl
    python tools/check_telemetry_schema.py trace.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import List

TRACE_KEYS = {
    "type", "trace_id", "label", "spans", "events", "energy_mj",
    "cycles", "unattributed_mj", "unattributed_cycles",
}
SPAN_KEYS = {
    "type", "id", "parent", "name", "start_s", "end_s", "attrs",
    "events", "energy_mj", "cycles",
}
EVENT_KEYS = {"type", "time_s", "name", "attrs"}
METRIC_KEYS = {"type", "name", "labels", "value"}


def _is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_file(path: str) -> List[str]:
    """Return a list of schema violations (empty = conforming)."""
    errors: List[str] = []
    seen_span_ids = set()
    last_span_id = 0
    declared_spans = declared_events = None
    span_count = event_count = 0

    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    if not lines:
        return ["file is empty: expected a trace header line"]

    for lineno, raw in enumerate(lines, start=1):
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: expected an object")
            continue
        kind = record.get("type")

        if lineno == 1:
            if kind != "trace":
                errors.append("line 1: first record must be the trace "
                              f"header, got type={kind!r}")
                continue
            if set(record) != TRACE_KEYS:
                errors.append(f"line 1: trace keys {sorted(record)} != "
                              f"{sorted(TRACE_KEYS)}")
            if not isinstance(record.get("trace_id"), str) \
                    or len(record.get("trace_id", "")) != 16:
                errors.append("line 1: trace_id must be 16 hex chars")
            declared_spans = record.get("spans")
            declared_events = record.get("events")
            continue

        if kind == "trace":
            errors.append(f"line {lineno}: duplicate trace header")
        elif kind == "span":
            span_count += 1
            if set(record) != SPAN_KEYS:
                errors.append(f"line {lineno}: span keys "
                              f"{sorted(record)} != {sorted(SPAN_KEYS)}")
                continue
            span_id = record["id"]
            if not isinstance(span_id, int) or span_id <= last_span_id:
                errors.append(f"line {lineno}: span id {span_id!r} not "
                              "strictly increasing")
            else:
                last_span_id = span_id
                seen_span_ids.add(span_id)
            parent = record["parent"]
            if parent is not None and parent not in seen_span_ids:
                errors.append(f"line {lineno}: parent {parent!r} does "
                              "not resolve to an earlier span")
            if not (_is_num(record["start_s"]) and _is_num(record["end_s"])
                    and record["end_s"] >= record["start_s"]):
                errors.append(f"line {lineno}: bad span interval")
            if not (_is_num(record["energy_mj"]) and _is_num(record["cycles"])):
                errors.append(f"line {lineno}: non-numeric attribution")
            if not isinstance(record["attrs"], dict) \
                    or not isinstance(record["events"], list):
                errors.append(f"line {lineno}: attrs/events malformed")
        elif kind == "event":
            event_count += 1
            if set(record) != EVENT_KEYS:
                errors.append(f"line {lineno}: event keys "
                              f"{sorted(record)} != {sorted(EVENT_KEYS)}")
        elif kind == "metric":
            if set(record) != METRIC_KEYS:
                errors.append(f"line {lineno}: metric keys "
                              f"{sorted(record)} != {sorted(METRIC_KEYS)}")
            elif not _is_num(record["value"]):
                errors.append(f"line {lineno}: metric value must be numeric")
            elif not isinstance(record["labels"], dict):
                errors.append(f"line {lineno}: metric labels must be an "
                              "object")
        else:
            errors.append(f"line {lineno}: unknown record type {kind!r}")

    if declared_spans is not None and declared_spans != span_count:
        errors.append(f"trace header declares {declared_spans} spans but "
                      f"{span_count} span records follow")
    if declared_events is not None and declared_events != event_count:
        errors.append(f"trace header declares {declared_events} trace "
                      f"events but {event_count} event records follow")
    return errors


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} TRACE.jsonl", file=sys.stderr)
        return 2
    errors = check_file(argv[1])
    if errors:
        for error in errors:
            print(f"{argv[1]}: {error}", file=sys.stderr)
        return 1
    print(f"{argv[1]}: schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
