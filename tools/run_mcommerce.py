#!/usr/bin/env python
"""Standalone m-commerce workload runner for CI and local checks.

Thin wrapper over ``python -m repro mcommerce`` that works without
installing the package: it puts ``src/`` on ``sys.path`` itself, so CI
jobs and developers can run it from the repository root with no
environment setup:

    python tools/run_mcommerce.py --seed 2003 --report report.json

The JSON report is byte-stable per parameter set (sorted keys, rounded
floats, virtual-clock timestamps only), so the CI job runs it twice
and ``cmp``s the outputs — any hidden nondeterminism in the workload
plane (heavy-tail sampling, suite negotiation, the SET payment flow,
energy attribution) fails the build.  Exit status 0 when the energy
reconciliation holds and every dual-signature binding verifies, 1
otherwise.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.__main__ import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["mcommerce", *sys.argv[1:]]))
