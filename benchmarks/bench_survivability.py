"""Survivability sweep: benign goodput vs. attacker fraction.

The adversarial traffic plane (DESIGN.md §10) interleaves four seeded
attacker classes with benign load on one virtual clock.  This bench
sweeps the attacker share of total traffic and records what survives:
benign goodput, the shed breakdown, malformed records discarded, and
the attacker-vs-user energy split — the robustness analogue of the
throughput artifact.

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_survivability.py`` — full
  sweep; writes ``BENCH_survivability.json`` next to the repo root and
  prints it;
* ``PYTHONPATH=src python -m pytest benchmarks/bench_survivability.py``
  — smoke mode: smaller world, asserts the structural floors (baseline
  serves everything, the 50% mix holds the declared goodput bound,
  every request answered, energy reconciles at every fraction).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.adversary import run_survivability
from repro.analysis.survivability import DECLARED_GOODPUT_BOUND

FRACTIONS = [0.0, 0.25, 0.5, 0.75]
SEED = 2003


def measure(sessions: int = 32, requests: int = 4,
            fractions: List[float] = FRACTIONS,
            seed: int = SEED) -> Dict[str, object]:
    """The goodput-vs-attacker-fraction sweep, deterministic per seed."""
    sweep: Dict[str, object] = {}
    for fraction in fractions:
        result = run_survivability(
            sessions=sessions, requests_per_session=requests,
            attacker_fraction=fraction, seed=seed)
        stats = result.stats
        user_mj = sum(
            (battery.capacity_j - battery.remaining_j) * 1000.0
            for battery in result.batteries.values())
        sweep[f"{fraction:.2f}"] = {
            "goodput": round(result.benign_goodput, 6),
            "served": stats.served,
            "degraded": stats.degraded,
            "shed": stats.shed,
            "shed_malformed": stats.shed_malformed,
            "malformed_discarded": stats.malformed_discarded,
            "answered": stats.answered,
            "submitted": stats.submitted,
            "attacker_events": result.population.total_events(),
            "attacker_mj": round(result.population.energy_spent_mj(), 6),
            "user_mj": round(user_mj, 6),
            "alerts": len(result.population.alerts),
            "reconciled": result.reconciliation.ok,
        }
    return {
        "_meta": {
            "sessions": sessions,
            "requests_per_session": requests,
            "seed": seed,
            "attacker_fractions": fractions,
            "declared_goodput_bound": DECLARED_GOODPUT_BOUND,
            "unit": "goodput = served / answered (benign sessions)",
        },
        "sweep": sweep,
    }


# -- smoke-mode assertions (pytest entry point) -----------------------------


def test_survivability_smoke():
    results = measure(sessions=12, requests=3, fractions=[0.0, 0.5])
    sweep = results["sweep"]
    baseline, attacked = sweep["0.00"], sweep["0.50"]
    assert baseline["goodput"] == 1.0
    assert baseline["attacker_events"] == 0
    # The declared survivability bound, at smoke scale.
    assert attacked["goodput"] >= baseline["goodput"] - DECLARED_GOODPUT_BOUND
    for row in sweep.values():
        # Every benign request answered: served, degraded, or shed.
        assert row["answered"] == row["submitted"]
        assert row["reconciled"]
    assert attacked["attacker_events"] > 0
    assert attacked["attacker_mj"] > 0.0


def test_committed_bench_document():
    """The committed JSON is the acceptance artifact: the full-scale
    sweep holds the declared goodput bound at the 50% mix, answers
    every request at every fraction, and reconciles energy exactly."""
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_survivability.json")
    with open(path, encoding="ascii") as handle:
        document = json.load(handle)
    assert document["_meta"]["declared_goodput_bound"] == \
        DECLARED_GOODPUT_BOUND
    sweep = document["sweep"]
    baseline = sweep["0.00"]
    assert baseline["goodput"] == 1.0
    assert sweep["0.50"]["goodput"] >= \
        baseline["goodput"] - DECLARED_GOODPUT_BOUND
    for row in sweep.values():
        assert row["answered"] == row["submitted"]
        assert row["reconciled"] is True
    # More attackers, more attacker energy drained: the sweep is a
    # monotone energy story even where goodput holds.
    fractions = sorted(sweep)
    energies = [sweep[f]["attacker_mj"] for f in fractions]
    assert energies == sorted(energies)


def main() -> None:
    results = measure()
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_survivability.json")
    document = json.dumps(results, indent=2, sort_keys=True)
    with open(out, "w", encoding="ascii") as handle:
        handle.write(document + "\n")
    print(document)
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
