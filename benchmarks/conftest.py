"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.crypto.rsa import generate_keypair
from repro.protocols.certificates import CertificateAuthority


@pytest.fixture(scope="session")
def ca():
    """Session-wide CA for protocol benches."""
    return CertificateAuthority("BenchCA", DeterministicDRBG("bench-ca"))


@pytest.fixture(scope="session")
def server_credentials(ca):
    """Server key + certificate for protocol benches."""
    return ca.issue("bench.server", DeterministicDRBG("bench-server"))


@pytest.fixture(scope="session")
def rsa_512():
    """512-bit RSA pair for attack benches."""
    return generate_keypair(512, DeterministicDRBG("bench-rsa"))
