"""Figure 4 — the impact of security processing on battery life.

Regenerates the two Figure 4 bars (1-KB transactions until a 26 KJ
battery dies, plain vs secure mode) from the paper's measured
constants, cross-validates the event-driven battery simulation against
the closed form, and checks the headline: secure-mode count is *less
than half* the plain count.
"""

import pytest

from repro.analysis.figures import figure4_data
from repro.core.battery_life import (
    figure4_report,
    simulate_transactions,
    transactions_until_empty,
)
from repro.hardware.energy import EnergyModel


def test_fig4_headline(benchmark):
    report = benchmark(figure4_report)
    assert report.plain_transactions == 726_256
    assert report.secure_transactions == 334_190
    assert report.ratio == pytest.approx(0.46, abs=0.005)
    assert report.less_than_half
    print("\n" + figure4_data())


def test_fig4_simulation_cross_validates(benchmark):
    model = EnergyModel()

    def simulate_both():
        return (simulate_transactions(model, 2.0, secure=False),
                simulate_transactions(model, 2.0, secure=True))

    plain, secure = benchmark(simulate_both)
    assert plain == transactions_until_empty(model, 2.0, secure=False)
    assert secure == transactions_until_empty(model, 2.0, secure=True)
    assert secure / plain < 0.5


def test_fig4_energy_constants(benchmark):
    model = EnergyModel()
    per_plain = benchmark(model.transaction_mj, 1.0, False)
    assert per_plain == pytest.approx(35.8)          # 21.5 + 14.3
    assert model.transaction_mj(1.0, True) == pytest.approx(77.8)  # +42
