"""T1/T2/T9/T10 — quantitative §3 text claims.

* T1: the 651.3-MIPS bulk-demand anchor and its linear scaling;
* T2: SA-1100 handshake feasibility by latency target;
* T9: the battery gap (capacity growth 5-8 %/yr loses to workload
  growth);
* T10: cipher-suite flexibility vs peer-population interoperability.
"""

import pytest

from repro.core.battery_life import battery_gap_series
from repro.crypto.registry import (
    aes_rollout,
    default_registry,
    lightweight_rollout,
)
from repro.hardware.cycles import (
    bulk_mips_demand,
    handshake_cost,
    handshake_mips_demand,
)
from repro.hardware.processors import STRONGARM_SA1100, embedded_catalog
from repro.protocols.ciphersuites import ALL_SUITES, suites_for_registry


class TestT1BulkDemand:
    def test_anchor(self, benchmark):
        demand = benchmark(bulk_mips_demand, 10.0, "3DES", "SHA1")
        assert demand == pytest.approx(651.3, abs=0.05)

    def test_wlan_range_sweep(self, benchmark):
        """'current and emerging data rates ... 2-60 Mbps' all exceed
        every embedded processor when running 3DES+SHA."""

        def sweep():
            return {rate: bulk_mips_demand(rate)
                    for rate in (2.0, 11.0, 54.0, 60.0)}

        demands = benchmark(sweep)
        strongest_embedded = max(p.mips for p in embedded_catalog())
        assert all(demand > strongest_embedded
                   for rate, demand in demands.items() if rate >= 11.0)

    def test_lighter_suite_narrows_demand(self, benchmark):
        rc4_demand = benchmark(bulk_mips_demand, 10.0, "RC4", "MD5")
        assert rc4_demand < bulk_mips_demand(10.0, "3DES", "SHA1") / 5


class TestT2HandshakeLatency:
    def test_feasibility_pattern(self, benchmark):
        def pattern():
            return [handshake_mips_demand(latency) <= STRONGARM_SA1100.mips
                    for latency in (0.1, 0.5, 1.0)]

        assert benchmark(pattern) == [False, True, True]

    def test_crt_rescues_tight_latency(self, benchmark):
        """The CRT speedup makes 0.1 s feasible — which is exactly why
        implementers adopt it despite the §3.4 fault-attack risk."""
        demand = benchmark(handshake_mips_demand, 0.1, 1024, True)
        assert demand <= STRONGARM_SA1100.mips * 1.05

    def test_private_op_dominates(self, benchmark):
        cost = benchmark(handshake_cost, 1024)
        assert cost.private_mi > 0.9 * cost.total_mi


class TestT9BatteryGap:
    def test_gap_widens_in_paper_band(self, benchmark):
        series = benchmark(battery_gap_series)
        supported = [count for _, count in series]
        assert supported[-1] < 0.5 * supported[0]

    @pytest.mark.parametrize("growth", [0.05, 0.08])
    def test_both_ends_of_band_lose(self, benchmark, growth):
        series = benchmark(battery_gap_series, 26.0, growth, 0.25, 8)
        supported = [count for _, count in series]
        assert supported[-1] < supported[0]


class TestT10Flexibility:
    def test_suite_count_tracks_registry(self, benchmark):
        def counts():
            registry = default_registry()
            before = len(suites_for_registry(registry))
            aes_rollout(registry)
            after = len(suites_for_registry(registry))
            return before, after

        before, after = benchmark(counts)
        assert after == before + 1

    def test_interoperability_fraction(self, benchmark):
        """Fraction of the §3.1 suite matrix a handset can speak with
        and without each algorithm family — the cost of inflexibility."""

        def fractions():
            full = {s.name for s in ALL_SUITES if s.cipher != "NULL"}
            registry = default_registry()
            aes_rollout(registry)
            lightweight_rollout(registry)
            flexible = {s.name for s in suites_for_registry(registry)}
            registry2 = default_registry()
            registry2.deprecate("RC4")
            rigid = {
                s.name for s in suites_for_registry(registry2)
                if not registry2.get(s.cipher).deprecated
            }
            return (len(flexible) / len(full), len(rigid) / len(full))

        flexible_fraction, rigid_fraction = benchmark(fractions)
        assert flexible_fraction == 1.0
        assert rigid_fraction < flexible_fraction
