"""Reference-vs-fast-path throughput for the precomputed-table kernels.

Measures the same primitive on both sides of the
``repro.crypto.fastpath`` switch and asserts the speedups the fast
paths exist to deliver (paper §3.2: the security processing gap —
wall-clock headroom is what lets the attack simulators run enough
traces to matter).

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_fastpath.py`` — prints a
  reference/fast/speedup table;
* ``PYTHONPATH=src python -m pytest benchmarks/bench_fastpath.py`` —
  asserts each speedup floor.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from repro.crypto import fastpath
from repro.crypto.aes import AES
from repro.crypto.des import DES
from repro.crypto.hmac import hmac
from repro.crypto.md5 import md5
from repro.crypto.modes import CBC, ECB
from repro.crypto.sha1 import sha1
from repro.crypto.tdes import TripleDES

KEY16 = bytes(range(16))
KEY8 = bytes(range(8))
KEY24 = bytes(range(24))
IV16 = bytes(16)


def _aes_cbc(payload: bytes) -> bytes:
    return CBC(AES(KEY16), IV16).encrypt(payload)


def _des_ecb(payload: bytes) -> bytes:
    return ECB(DES(KEY8)).encrypt(payload)


def _3des_ecb(payload: bytes) -> bytes:
    return ECB(TripleDES(KEY24)).encrypt(payload)


def _hmac_sha1(payload: bytes) -> bytes:
    return hmac(b"bench mac key", payload)


# name, workload, payload bytes on the *reference* side, required speedup.
# Reference payloads are kept small (the whole point is that the
# reference loops are slow); throughput normalises them out.
WORKLOADS: List[Tuple[str, Callable[[bytes], bytes], int, float]] = [
    ("AES-128-CBC", _aes_cbc, 4 * 1024, 5.0),
    ("DES-ECB", _des_ecb, 4 * 1024, 5.0),
    ("3DES-ECB", _3des_ecb, 2 * 1024, 5.0),
    ("SHA-1", sha1, 64 * 1024, 5.0),
    ("MD5", md5, 64 * 1024, 5.0),
    ("HMAC-SHA1", _hmac_sha1, 64 * 1024, 5.0),
]

FAST_SCALE = 16  # fast side gets a proportionally larger payload


def _throughput(fn: Callable[[bytes], bytes], payload: bytes,
                min_seconds: float = 0.2) -> float:
    """Bytes/second, timed over at least ``min_seconds`` of work."""
    fn(payload)  # warm up (table construction, hashlib binding)
    iterations = 0
    start = time.perf_counter()
    while True:
        fn(payload)
        iterations += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return iterations * len(payload) / elapsed


def measure(name: str) -> Tuple[float, float, float]:
    """(reference B/s, fast B/s, speedup) for one named workload."""
    for wl_name, fn, ref_size, _floor in WORKLOADS:
        if wl_name == name:
            break
    else:
        raise KeyError(name)
    with fastpath.force(False):
        ref = _throughput(fn, b"\xA5" * ref_size)
    with fastpath.force(True):
        fast = _throughput(fn, b"\xA5" * (ref_size * FAST_SCALE))
    return ref, fast, fast / ref


def _required_speedup(name: str) -> float:
    return next(floor for wl, _f, _s, floor in WORKLOADS if wl == name)


def test_aes_cbc_speedup():
    assert measure("AES-128-CBC")[2] >= _required_speedup("AES-128-CBC")


def test_des_ecb_speedup():
    assert measure("DES-ECB")[2] >= _required_speedup("DES-ECB")


def test_3des_ecb_speedup():
    assert measure("3DES-ECB")[2] >= _required_speedup("3DES-ECB")


def test_sha1_speedup():
    assert measure("SHA-1")[2] >= _required_speedup("SHA-1")


def test_md5_speedup():
    assert measure("MD5")[2] >= _required_speedup("MD5")


def test_hmac_sha1_speedup():
    assert measure("HMAC-SHA1")[2] >= _required_speedup("HMAC-SHA1")


def main() -> None:
    print(f"{'workload':<12} {'reference':>12} {'fast':>12} {'speedup':>9}")
    print("-" * 48)
    for name, _fn, _size, floor in WORKLOADS:
        ref, fast, speedup = measure(name)
        flag = "" if speedup >= floor else f"  (< {floor:.0f}x floor!)"
        print(f"{name:<12} {ref / 1e3:>9.1f}kB/s {fast / 1e6:>9.2f}MB/s "
              f"{speedup:>8.1f}x{flag}")


if __name__ == "__main__":
    main()
