"""M-commerce transaction economics: mJ/transaction by suite and
battery class.

The workload plane (DESIGN.md §13) drives browse/authenticate/purchase
sessions over the sharded fleet with the lightweight stream family
negotiated per battery class.  This bench records what §2's motivating
transaction actually costs: virtual transactions per second, airlink
bytes, and millijoules per transaction broken out by negotiated suite
and by handset battery class — the measured form of the paper's
"without exhausting the battery" requirement.

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_mcommerce.py`` — full
  scale; writes ``BENCH_mcommerce.json`` next to the repo root and
  prints it;
* ``PYTHONPATH=src python -m pytest benchmarks/bench_mcommerce.py`` —
  smoke mode: smaller world, asserts the structural floors (every
  request answered, energy reconciled, the lightweight suites cheaper
  per compute-byte than the legacy block suites, dual-signature
  bindings all holding).
"""

from __future__ import annotations

import json
import os
from typing import Dict

from repro.analysis.mcommerce import build_report
from repro.workloads import run_mcommerce

SEED = 2003


def measure(sessions: int = 27, shards: int = 3,
            duration_s: float = 1.2, seed: int = SEED) -> Dict[str, object]:
    """One full workload run, folded to the bench document shape."""
    result = run_mcommerce(sessions=sessions, shards=shards, seed=seed,
                           duration_s=duration_s)
    report = build_report(result)
    by_suite = {}
    for name, row in report["by_suite"].items():
        by_suite[name] = {
            "sessions": row["sessions"],
            "transactions": row["transactions"],
            "wire_bytes": row["wire_bytes"],
            "compute_mj": row["compute_mj"],
            "mj_per_transaction": row["mj_per_transaction"],
        }
    return {
        "_meta": {
            "sessions": sessions,
            "shards": shards,
            "duration_s": duration_s,
            "seed": seed,
            "unit": "mJ per answered transaction, virtual clock",
        },
        "traffic": {
            "transactions": report["traffic"]["transactions"],
            "transactions_per_s": report["traffic"]["transactions_per_s"],
            "answer_rate": report["traffic"]["answer_rate"],
            "session_mix": report["traffic"]["session_mix"],
        },
        "by_suite": by_suite,
        "by_battery_class": report["by_battery_class"],
        "payments": {
            "purchases": report["payments"]["purchases"],
            "bindings_hold": report["payments"]["bindings_hold"],
        },
        "energy": report["energy"],
    }


# -- smoke-mode assertions (pytest entry point) -----------------------------


def _compute_per_byte(row: Dict[str, object]) -> float:
    return row["compute_mj"] / row["wire_bytes"] if row["wire_bytes"] else 0.0


def test_mcommerce_smoke():
    document = measure(sessions=18, duration_s=0.8)
    assert document["traffic"]["answer_rate"] == 1.0
    assert document["energy"]["reconciled"]
    assert document["payments"]["bindings_hold"]
    by_suite = document["by_suite"]
    # The §3 batching story holds end to end: Trivium's 64-step batch
    # beats AES-CBC per compute-byte through the whole stack.
    trivium = by_suite["RSA_WITH_TRIVIUM_SHA"]
    aes = by_suite["RSA_WITH_AES_128_CBC_SHA"]
    assert _compute_per_byte(trivium) < _compute_per_byte(aes)


def test_committed_bench_document():
    """The committed JSON is the acceptance artifact: full scale,
    everything answered, energy reconciled, every battery class and
    the whole lightweight family represented."""
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_mcommerce.json")
    with open(path, encoding="ascii") as handle:
        document = json.load(handle)
    assert document["traffic"]["answer_rate"] == 1.0
    assert document["energy"]["reconciled"] is True
    assert document["payments"]["bindings_hold"] is True
    assert {"coin", "standard", "extended"} == \
        set(document["by_battery_class"])
    assert {"RSA_WITH_A51_228_SHA", "RSA_WITH_GRAIN_V1_SHA",
            "RSA_WITH_TRIVIUM_SHA"} <= set(document["by_suite"])
    for row in document["by_suite"].values():
        assert row["transactions"] > 0
        assert row["mj_per_transaction"] > 0.0


def main() -> None:
    results = measure()
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_mcommerce.json")
    document = json.dumps(results, indent=2, sort_keys=True)
    with open(out, "w", encoding="ascii") as handle:
        handle.write(document + "\n")
    print(document)
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
