"""Wall-clock throughput of the pure-Python reference primitives.

These are honest microbenchmarks of *this library's* implementations
(CPython wall-clock, not the embedded cycle model): they document the
simulator's own performance envelope and catch regressions in the hot
loops the whole reproduction rides on.
"""

from repro.crypto.aes import AES
from repro.crypto.des import DES
from repro.crypto.hmac import hmac
from repro.crypto.md5 import md5
from repro.crypto.modes import CBC
from repro.crypto.rc2 import RC2
from repro.crypto.rc4 import RC4
from repro.crypto.rng import DeterministicDRBG
from repro.crypto.sha1 import sha1
from repro.crypto.tdes import TripleDES

PAYLOAD_1K = bytes(range(256)) * 4
BLOCK8 = bytes(8)
BLOCK16 = bytes(16)


def test_des_block(benchmark):
    cipher = DES(bytes.fromhex("133457799BBCDFF1"))
    assert len(benchmark(cipher.encrypt_block, BLOCK8)) == 8


def test_3des_block(benchmark):
    cipher = TripleDES(bytes(range(24)))
    assert len(benchmark(cipher.encrypt_block, BLOCK8)) == 8


def test_aes_block(benchmark):
    cipher = AES(bytes(range(16)))
    assert len(benchmark(cipher.encrypt_block, BLOCK16)) == 16


def test_rc2_block(benchmark):
    cipher = RC2(bytes(range(16)))
    assert len(benchmark(cipher.encrypt_block, BLOCK8)) == 8


def test_rc4_kilobyte(benchmark):
    def stream():
        return RC4(b"benchmark key").process(PAYLOAD_1K)

    assert len(benchmark(stream)) == 1024


def test_sha1_kilobyte(benchmark):
    assert len(benchmark(sha1, PAYLOAD_1K)) == 20


def test_md5_kilobyte(benchmark):
    assert len(benchmark(md5, PAYLOAD_1K)) == 16


def test_hmac_sha1_kilobyte(benchmark):
    assert len(benchmark(hmac, b"mac key", PAYLOAD_1K)) == 20


def test_aes_cbc_kilobyte(benchmark):
    def encrypt():
        return CBC(AES(bytes(16)), bytes(16)).encrypt(PAYLOAD_1K)

    assert len(benchmark(encrypt)) == 1024 + 16


def test_rsa_private_op(benchmark, rsa_512):
    ciphertext = 0xC0FFEE % rsa_512.n
    result = benchmark(rsa_512.decrypt_raw, ciphertext)
    assert result == pow(ciphertext, rsa_512.d, rsa_512.n)


def test_rsa_private_op_no_crt(benchmark, rsa_512):
    ciphertext = 0xC0FFEE % rsa_512.n

    def no_crt():
        return rsa_512.decrypt_raw(ciphertext, use_crt=False)

    assert benchmark(no_crt) == pow(ciphertext, rsa_512.d, rsa_512.n)


def test_rsa_sign(benchmark, rsa_512):
    signature = benchmark(rsa_512.sign, b"benchmark message")
    rsa_512.public.verify(b"benchmark message", signature)


def test_drbg_kilobyte(benchmark):
    rng = DeterministicDRBG("bench")
    assert len(benchmark(rng.random_bytes, 1024)) == 1024
