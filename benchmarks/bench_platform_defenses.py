"""E6-E9 — platform-level defence benches.

* E6: the on-chip bus firewall vs. the rogue-DMA key snoop (§3.4's
  on-chip communication threat);
* E7: sealed storage vs. the theft scenario (dump / forge / rollback);
* E8: tamper mesh zeroization vs. an invasive probing campaign, and
  the sub-threshold-glitch residual that keeps the algorithmic
  countermeasure necessary;
* E9: leakage metrology — SNR collapse under masking and CPA
  measurements-to-disclosure.
"""

from repro.analysis.sidechannel_metrics import (
    cpa_success_curve,
    leakage_snr,
)
from repro.attacks.power import MaskedAES, acquire_aes_traces, cpa_attack_aes
from repro.core.keystore import KeyPolicy, KeyUsage, SecureKeyStore
from repro.core.secure_storage import theft_scenario
from repro.core.tamper_response import (
    EnvironmentEvent,
    ProbingAttacker,
    TamperMesh,
    TamperResponder,
    glitching_is_subthreshold,
)
from repro.crypto.aes import SBOX
from repro.crypto.bitops import hamming_weight
from repro.hardware.bus import (
    KEY_REGISTER_BASE,
    SystemBus,
    dma_snoop_attack,
    provision_keys_on_bus,
)

AES_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestE6BusFirewall:
    def test_open_fabric_falls(self, benchmark):
        def snoop_open():
            bus = SystemBus(firewall_enabled=False)
            provision_keys_on_bus(bus, bytes(range(16)))
            return dma_snoop_attack(bus, KEY_REGISTER_BASE, 16)

        assert benchmark(snoop_open) == bytes(range(16))

    def test_firewalled_fabric_stands(self, benchmark):
        def snoop_firewalled():
            bus = SystemBus(firewall_enabled=True)
            provision_keys_on_bus(bus, bytes(range(16)))
            return dma_snoop_attack(bus, KEY_REGISTER_BASE, 16), bus

        loot, bus = benchmark(snoop_firewalled)
        assert loot is None
        assert bus.violations >= 1  # and the attempt is logged


class TestE7SealedStorage:
    def test_theft_scenario(self, benchmark):
        outcome = benchmark(theft_scenario)
        assert outcome == {
            "plaintext_visible": False,
            "forge_accepted": False,
            "rollback_accepted": False,
        }


class TestE8TamperResponse:
    def test_probe_finds_zeroised_keys(self, benchmark):
        def probe_protected():
            keystore = SecureKeyStore.provision("bench-tamper")
            keystore.install(
                "master", bytes(16),
                KeyPolicy(usages=frozenset({KeyUsage.MAC})))
            responder = TamperResponder(mesh=TamperMesh(),
                                        keystore=keystore)
            return ProbingAttacker().run(responder, keystore)

        outcome = benchmark(probe_protected)
        assert outcome["keys_recovered"] == []
        assert not outcome["root_key_intact"]

    def test_subthreshold_glitch_residual(self, benchmark):
        """The mesh does NOT catch fine glitches — quantifying why the
        Bellcore countermeasure stays mandatory (§3.4 layering)."""
        fine_glitch = EnvironmentEvent("voltage", 0.05)
        assert benchmark(glitching_is_subthreshold, fine_glitch)


class TestE9LeakageMetrology:
    def _classifier(self, plaintext: bytes) -> int:
        return hamming_weight(SBOX[plaintext[0] ^ AES_KEY[0]])

    def test_snr_collapse_under_masking(self, benchmark):
        def snrs():
            unmasked = acquire_aes_traces(AES_KEY, 250, seed=21,
                                          noise_sigma=1.0)
            masked = acquire_aes_traces(AES_KEY, 250, seed=21,
                                        noise_sigma=1.0,
                                        cipher_factory=MaskedAES)
            return (leakage_snr(unmasked, 0, self._classifier),
                    leakage_snr(masked, 0, self._classifier))

        snr_unmasked, snr_masked = benchmark.pedantic(
            snrs, rounds=1, iterations=1)
        assert snr_unmasked > 5 * snr_masked

    def test_measurements_to_disclosure(self, benchmark):
        def mtd():
            curve = cpa_success_curve(
                lambda n: acquire_aes_traces(AES_KEY, n, seed=22,
                                             noise_sigma=2.0),
                lambda traces: cpa_attack_aes(traces).key,
                AES_KEY, trace_counts=[25, 100, 400])
            return curve.measurements_to_disclosure

        disclosure = benchmark.pedantic(mtd, rounds=1, iterations=1)
        assert disclosure is not None and disclosure <= 400


class TestE10DoSProtection:
    def test_flood_amplification(self, benchmark):
        from repro.protocols.dos import flood_experiment

        def both():
            naive = flood_experiment(flood_size=1000,
                                     require_cookies=False)
            protected = flood_experiment(flood_size=1000,
                                         require_cookies=True)
            return naive, protected

        naive, protected = benchmark.pedantic(both, rounds=1, iterations=1)
        # The protected responder still pays for the 5 real handshakes;
        # the flood's amplification on top of that floor is >100x.
        assert naive.work_spent_mi > 100 * protected.work_spent_mi
        assert protected.legitimate_clients_served == 5
