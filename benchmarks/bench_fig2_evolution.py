"""Figure 2 — evolution of security protocols.

Regenerates the four protocol timelines (IPSec, SSL/TLS, WTLS, MET)
and checks the shape claims the paper draws from the figure: constant
revision churn, the June 2002 TLS/AES event, and faster wireless
cadence.
"""

from repro.analysis.figures import figure2_data
from repro.core.evolution import (
    algorithm_introduction,
    cumulative_revisions,
    domain_cadence,
    events_for,
    protocols,
)


def test_fig2_timelines(benchmark):
    def build():
        return {name: cumulative_revisions(name) for name in protocols()}

    series = benchmark(build)
    assert set(series) == {"SSL/TLS", "IPSec", "WTLS", "MET"}
    for counts in series.values():
        values = [c for _, c in counts]
        assert values == sorted(values)
    print("\n" + figure2_data())


def test_fig2_tls_aes_event(benchmark):
    events = benchmark(events_for, "SSL/TLS")
    aes_events = [e for e in events if "AES" in e.adds_algorithms]
    assert aes_events and aes_events[0].year == 2002.5  # June 2002


def test_fig2_wireless_churns_faster(benchmark):
    cadence = benchmark(domain_cadence)
    assert cadence["wireless"] < cadence["wired"]


def test_fig2_aes_exists_before_wireless_adoption(benchmark):
    event = benchmark(algorithm_introduction, "AES")
    assert event is not None
    assert event.year <= 2002.5
