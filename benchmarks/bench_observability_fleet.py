"""Fleet observability overhead: dark probes vs tracing vs watchtower.

The fleet observability plane (DESIGN.md §12) promises a zero-cost
seam: with the probe dark a failover run pays a single ``if`` per
probe point, with it lit every span/event/counter lands in one
telemetry stream, and with the full watchtower riding along a
recurring sampler adds windowed series and SLO evaluation on top.
This bench sweeps sessions x shards and measures all three layers on
the *same* seeded chaos run:

* ``off`` — ``run_failover(..., probe_enabled=False)``: the dark
  baseline, zero spans;
* ``traced`` — ``run_failover(...)``: full span/trace-context capture;
* ``watched`` — ``run_fleetwatch(...)``: tracing plus the windowed
  time-series sampler and burn-rate SLO engine.

Wall-clock and RSS are environment-dependent and recorded for trend
reading only; every other field is deterministic per seed, and the
structural assertions below pin those — including that all three
layers answer the identical ledger (observability never changes the
run).

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_observability_fleet.py`` —
  full sweep; writes ``BENCH_observability_fleet.json`` next to the
  repo root and prints it;
* ``PYTHONPATH=src python -m pytest
  benchmarks/bench_observability_fleet.py`` — smoke mode: smaller
  grid, asserts the structural floors (dark layer records nothing,
  the watched layer's ledger matches the dark layer's, windows and
  alerts populated, energy reconciles).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from typing import Dict, List, Tuple

from repro.fleet import run_failover
from repro.fleet.scenario import answered_total
from repro.observability.fleetwatch import run_fleetwatch

GRID: List[Tuple[int, int]] = [
    (8, 1), (8, 4), (8, 8),
    (16, 1), (16, 4), (16, 8),
    (32, 1), (32, 4), (32, 8),
]
REQUESTS = 3
SEED = 2003


def _peak_rss_kb() -> int:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS, kilobytes on Linux.
    return peak // 1024 if sys.platform == "darwin" else peak


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure(grid: List[Tuple[int, int]] = GRID, requests: int = REQUESTS,
            seed: int = SEED) -> Dict[str, object]:
    """The three-layer sweep; deterministic per seed except the
    wall-clock / RSS observations."""
    sweep: Dict[str, object] = {}
    for sessions, shards in grid:
        kwargs = dict(sessions=sessions, shards=shards,
                      requests_per_session=requests, seed=seed)

        dark, dark_s = _timed(lambda: run_failover(
            probe_enabled=False, **kwargs))
        traced, traced_s = _timed(lambda: run_failover(**kwargs))
        watched, watched_s = _timed(lambda: run_fleetwatch(**kwargs))

        ledger = dict(dark.counts)
        summary = watched.watch.engine.summary()
        sweep[f"{sessions}x{shards}"] = {
            "sessions": sessions,
            "shards": shards,
            "answered": answered_total(dark),
            "counts": ledger,
            "crashes": dark.stats.crashes,
            "layers": {
                "off": {
                    "spans": len(dark.telemetry.spans),
                    "wall_s": round(dark_s, 4),
                },
                "traced": {
                    "spans": len(traced.telemetry.spans),
                    "events": len(traced.telemetry.events),
                    "wall_s": round(traced_s, 4),
                },
                "watched": {
                    "spans": len(watched.failover.telemetry.spans),
                    "windows": len(watched.watch.fleet_windows()),
                    "samples": watched.watch.samples_taken,
                    "alerts": len(summary["alerts"]),
                    "streams": len(watched.store.streams()),
                    "wall_s": round(watched_s, 4),
                },
            },
            "ledger_invariant": (
                dict(traced.counts) == ledger
                and dict(watched.failover.counts) == ledger),
            # The dark layer attributes no energy (no spans), so the
            # reconciliation invariant is a lit-layer property.
            "reconciled": (traced.reconciliation.ok
                           and watched.failover.reconciliation.ok),
            "peak_rss_kb": _peak_rss_kb(),
        }
    return {
        "_meta": {
            "grid": [list(cell) for cell in grid],
            "requests_per_session": requests,
            "seed": seed,
            "layers": ("off = probe_enabled=False; traced = spans on; "
                       "watched = tracing + windowed series + SLO engine"),
            "unit": ("wall_s / peak_rss_kb are host-dependent; every "
                     "other field is deterministic per seed"),
        },
        "sweep": sweep,
    }


# -- smoke-mode assertions (pytest entry point) -----------------------------


def test_observability_layers_smoke():
    results = measure(grid=[(8, 1), (10, 2)], requests=3)
    for row in results["sweep"].values():
        layers = row["layers"]
        # The dark layer records nothing; the lit layers record plenty.
        assert layers["off"]["spans"] == 0
        assert layers["traced"]["spans"] > 0
        # The watcher only *adds* spans on top of the traced run.
        assert layers["watched"]["spans"] >= layers["traced"]["spans"]
        assert layers["watched"]["windows"] > 0
        assert layers["watched"]["samples"] > 0
        # Observability never changes the run.
        assert row["ledger_invariant"]
        assert row["reconciled"]


def test_committed_bench_document():
    """The committed JSON is the acceptance artifact: at every grid
    point the dark layer recorded zero spans, all three layers
    answered the identical ledger, the watcher produced windows and
    alerts, and the energy reconciliation held on every layer."""
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_observability_fleet.json")
    with open(path, encoding="ascii") as handle:
        document = json.load(handle)
    sweep = document["sweep"]
    assert len(sweep) == len(document["_meta"]["grid"])
    for row in sweep.values():
        layers = row["layers"]
        assert layers["off"]["spans"] == 0
        assert layers["traced"]["spans"] > 0
        assert layers["watched"]["spans"] >= layers["traced"]["spans"]
        assert layers["watched"]["windows"] > 0
        assert layers["watched"]["streams"] == row["shards"] + 1
        assert row["ledger_invariant"] is True
        assert row["reconciled"] is True
    # More sessions means more spans: the trace volume scales with
    # offered load, not with the watcher.
    assert sweep["32x4"]["layers"]["traced"]["spans"] > \
        sweep["8x4"]["layers"]["traced"]["spans"]


def main() -> None:
    results = measure()
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_observability_fleet.json")
    document = json.dumps(results, indent=2, sort_keys=True)
    with open(out, "w", encoding="ascii") as handle:
        handle.write(document + "\n")
    print(document)
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
