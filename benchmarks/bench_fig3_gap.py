"""Figure 3 — the wireless security processing gap.

Regenerates the MIPS-demand surface over (connection latency, data
rate) and slices it with the processor-capability planes.  Shape
claims verified:

* the [12] anchor: 3DES+SHA at 10 Mbps = 651.3 MIPS of bulk demand;
* the SA-1100 sustains 0.5 s / 1 s connection setups but not 0.1 s;
* embedded processors sit below most of the surface (the gap), the
  desktop plane above most of it;
* the gap *widens* with data-rate growth and stronger crypto.
"""

import pytest

from repro.analysis.figures import figure3_data
from repro.core.gap import (
    compute_surface,
    max_sustainable_rate_mbps,
    stronger_crypto_demand,
    widening_gap_series,
)
from repro.hardware.cycles import bulk_mips_demand, handshake_mips_demand
from repro.hardware.processors import ARM7, PENTIUM4, STRONGARM_SA1100


def test_fig3_surface(benchmark):
    surface = benchmark(compute_surface)
    assert len(surface.points) == 27
    # Demand grows along both axes.
    assert surface.demand(60.0, 0.1) == max(
        p.demand_mips for p in surface.points)
    print("\n" + figure3_data()[0])


def test_fig3_bulk_anchor(benchmark):
    demand = benchmark(bulk_mips_demand, 10.0, "3DES", "SHA1")
    assert demand == pytest.approx(651.3, abs=0.05)


def test_fig3_handshake_plane(benchmark):
    def feasibility():
        return {
            latency: handshake_mips_demand(latency) <= STRONGARM_SA1100.mips
            for latency in (0.1, 0.5, 1.0)
        }

    feasible = benchmark(feasibility)
    assert feasible == {0.1: False, 0.5: True, 1.0: True}


def test_fig3_processor_planes(benchmark):
    surface = compute_surface()

    def fractions():
        return [surface.feasible_fraction(p)
                for p in (ARM7, STRONGARM_SA1100, PENTIUM4)]

    arm7, sa1100, p4 = benchmark(fractions)
    assert arm7 < 0.05          # phones: almost nothing feasible
    assert 0.2 < sa1100 < 0.5   # PDA: partial
    assert p4 > 0.8             # desktop: nearly everything


def test_fig3_frontier(benchmark):
    rate = benchmark(max_sustainable_rate_mbps, STRONGARM_SA1100, 1.0)
    assert 2.0 < rate < 4.0  # well under WLAN's 10+ Mbps -> the gap


def test_fig3_gap_widens_over_time(benchmark):
    series = benchmark(widening_gap_series)
    factors = [f for _, f in series]
    assert factors[-1] > 1.4 * factors[0]


def test_fig3_stronger_crypto_widens_gap(benchmark):
    demands = benchmark(stronger_crypto_demand)
    values = [v for _, v in demands]
    assert values == sorted(values)
    # 2048-bit RSA costs ~8x the 1024-bit handshake (cubic law).
    by_bits = dict(demands)
    assert by_bits[2048] == pytest.approx(8 * by_bits[1024], rel=0.05)
