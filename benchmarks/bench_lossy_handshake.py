"""Handshake + data-phase cost over an increasingly lossy link.

Sweeps the i.i.d. frame-drop probability and measures, per point, what
the lossy-link harness (FaultyChannel + go-back-N ARQ) had to spend to
complete a mini-TLS handshake plus a fixed data exchange: completion
rate, retransmissions, timeouts, and radio energy (the §3.3 battery
tax of reliability).

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_lossy_handshake.py`` —
  prints the sweep as JSON;
* ``PYTHONPATH=src python -m pytest benchmarks/bench_lossy_handshake.py``
  — asserts the qualitative shape (zero-loss transparency, monotone
  energy tax, completion under moderate loss).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.crypto.rng import DeterministicDRBG
from repro.hardware.battery import Battery
from repro.protocols.certificates import CertificateAuthority
from repro.protocols.faults import FaultModel, FaultyChannel
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.reliable import ReliableLink
from repro.protocols.tls import connect
from repro.protocols.transport import ChannelClosed

DROP_SWEEP = [0.0, 0.1, 0.2, 0.3]
RECORDS = 50
SESSIONS_PER_POINT = 3


def _configs(seed: int):
    ca = CertificateAuthority(
        "BenchCA", DeterministicDRBG(("bench-ca", seed).__repr__()))
    key, cert = ca.issue(
        "server.example", DeterministicDRBG(("bench-srv", seed).__repr__()))
    client = ClientConfig(
        rng=DeterministicDRBG(("bench-c", seed).__repr__()), ca=ca,
        expected_server="server.example")
    server = ServerConfig(
        rng=DeterministicDRBG(("bench-s", seed).__repr__()),
        certificate=cert, private_key=key)
    return client, server


def run_session(drop: float, seed: int) -> Dict[str, float]:
    """One handshake + RECORDS round-trips over a ``drop``-lossy link."""
    channel = FaultyChannel(FaultModel.lossy(drop), seed=seed)
    battery = Battery()
    link = ReliableLink(channel, battery_a=battery, battery_b=Battery())
    client, server = _configs(seed)
    try:
        client_conn, server_conn = connect(
            client, server,
            endpoints=(link.endpoint_a(), link.endpoint_b()))
        for index in range(RECORDS):
            client_conn.send(f"record-{index}".encode())
            if server_conn.receive() != f"record-{index}".encode():
                raise ChannelClosed("payload mismatch")
        link.endpoint_a().flush()
        link.endpoint_b().flush()
        completed = True
    except ChannelClosed:
        completed = False
    return {
        "completed": completed,
        "retransmissions": link.total_retransmissions,
        "timeouts": link.total_timeouts,
        "frames_dropped": channel.faults.total_drops,
        "energy_mj": round(link.total_energy_mj, 3),
        "client_battery_drain_mj": round(
            (battery.capacity_j - battery.remaining_j) * 1000, 3),
    }


def sweep() -> List[Dict[str, float]]:
    """The full drop sweep, SESSIONS_PER_POINT seeded runs per point."""
    points = []
    for drop in DROP_SWEEP:
        runs = [run_session(drop, seed=1000 + index)
                for index in range(SESSIONS_PER_POINT)]
        completed = sum(1 for run in runs if run["completed"])
        points.append({
            "drop": drop,
            "sessions": len(runs),
            "completion_rate": completed / len(runs),
            "mean_retransmissions": sum(
                run["retransmissions"] for run in runs) / len(runs),
            "mean_timeouts": sum(
                run["timeouts"] for run in runs) / len(runs),
            "mean_energy_mj": round(sum(
                run["energy_mj"] for run in runs) / len(runs), 3),
            "runs": runs,
        })
    return points


def test_zero_loss_is_free():
    point = run_session(0.0, seed=1)
    assert point["completed"]
    assert point["retransmissions"] == 0
    assert point["timeouts"] == 0


def test_completes_under_twenty_percent_drop():
    point = run_session(0.2, seed=2)
    assert point["completed"]
    assert point["retransmissions"] > 0
    assert point["client_battery_drain_mj"] > 0


def test_energy_tax_grows_with_loss():
    clean = run_session(0.0, seed=3)
    lossy = run_session(0.3, seed=3)
    assert lossy["completed"]
    assert lossy["energy_mj"] > clean["energy_mj"]
    assert lossy["retransmissions"] > clean["retransmissions"]


def test_sweep_is_deterministic():
    assert run_session(0.2, seed=7) == run_session(0.2, seed=7)


def main() -> None:
    print(json.dumps({
        "records_per_session": RECORDS,
        "sessions_per_point": SESSIONS_PER_POINT,
        "sweep": sweep(),
    }, indent=2))


if __name__ == "__main__":
    main()
