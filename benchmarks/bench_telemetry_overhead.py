"""Telemetry-plane overhead: what a probe point costs, per layer.

The observability plane's contract (DESIGN.md §7) is *zero overhead
when disabled*: an instrumented hot path with no active
:class:`~repro.observability.spans.Telemetry` pays one attribute read
and one ``if`` per probe point — the same budget
:class:`~repro.crypto.trace.TraceRecorder` has always had.  This bench
measures that claim on the three instrumented layers the gateway
scenario exercises:

* **record** — the TLS record hot path (encode + decode round trip),
  also measured against the uninstrumented inner kernels
  (``_encode``/``_decode``) to isolate the disabled-probe cost;
* **arq** — go-back-N delivery over a lossy channel (retransmit spans);
* **gateway** — one WTLS->TLS->WTLS proxied request through the WAP
  gateway (admit/forward/wired-leg spans plus battery attribution).

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py`` —
  prints a JSON document with off/on seconds and overhead percentages;
* ``PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py``
  — smoke-asserts the measurements exist and enabled mode still
  produced spans (thresholds live in
  ``tests/observability/test_overhead.py``, inside the timing-guard
  budget).
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict

from repro.observability import probe
from repro.observability.spans import Telemetry
from repro.protocols.ciphersuites import RSA_WITH_AES_SHA
from repro.protocols.faults import FaultModel, FaultyChannel
from repro.protocols.kdf import KeyBlock
from repro.protocols.records import CONTENT_APPLICATION, make_record_pair
from repro.protocols.reliable import ReliableLink
from repro.protocols.wap import build_wap_world

REPEATS = 5


def _key_block(suite) -> KeyBlock:
    def material(tag: int, count: int) -> bytes:
        return bytes((tag + i) % 256 for i in range(count))

    return KeyBlock(
        client_mac_key=material(1, suite.mac_key_bytes),
        server_mac_key=material(2, suite.mac_key_bytes),
        client_cipher_key=material(3, suite.cipher_key_bytes),
        server_cipher_key=material(4, suite.cipher_key_bytes),
        client_iv=material(5, suite.iv_bytes),
        server_iv=material(6, suite.iv_bytes),
    )


def _best_of(fn: Callable[[], None], repeats: int = REPEATS) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-floor estimator)."""
    fn()  # warm-up: table construction, allocator steady state
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- the three layer workloads ----------------------------------------------


def _record_workload(iterations: int = 200, payload_size: int = 512):
    suite = RSA_WITH_AES_SHA
    keys = _key_block(suite)
    encoder, _ = make_record_pair(suite, keys, is_client=True)
    _, decoder = make_record_pair(suite, keys, is_client=False)
    payload = b"\xA5" * payload_size

    def outer() -> None:
        for _ in range(iterations):
            decoder.decode(encoder.encode(CONTENT_APPLICATION, payload))

    def inner() -> None:  # bypasses the probe seam entirely
        for _ in range(iterations):
            decoder._decode(encoder._encode(CONTENT_APPLICATION, payload))

    return outer, inner


def _arq_workload(messages: int = 40):
    def run() -> None:
        link = ReliableLink(FaultyChannel(FaultModel.lossy(0.2), seed=11))
        a, b = link.endpoint_a(), link.endpoint_b()
        for i in range(messages):
            a.send(f"frame-{i:03d}".encode())
        for _ in range(messages):
            b.receive()
        a.flush()

    return run


def _gateway_workload(requests: int = 6):
    handset, gateway, _ca = build_wap_world(seed=5)

    def run() -> None:
        for i in range(requests):
            handset.send(f"GET /bench/{i}".encode())
            gateway.forward("origin.example")
            handset.receive()

    return run


def measure() -> Dict[str, Dict[str, float]]:
    """Off/on timings per layer, plus the record-path inner baseline."""
    results: Dict[str, Dict[str, float]] = {}
    assert probe.active is None, "bench must start with telemetry off"

    record_outer, record_inner = _record_workload()
    arq_run = _arq_workload()
    gateway_run = _gateway_workload()
    layers = {
        "record": record_outer,
        "arq": arq_run,
        "gateway": gateway_run,
    }

    off = {name: _best_of(fn) for name, fn in layers.items()}
    inner_s = _best_of(record_inner)

    telemetry = Telemetry(seed=("bench-overhead",), label="bench")
    with probe.activate(telemetry):
        on = {name: _best_of(fn) for name, fn in layers.items()}
    assert telemetry.spans, "enabled run recorded no spans"

    for name in layers:
        results[name] = {
            "off_s": off[name],
            "on_s": on[name],
            "on_overhead_pct": 100.0 * (on[name] - off[name]) / off[name],
        }
    results["record"]["inner_s"] = inner_s
    results["record"]["disabled_overhead_pct"] = (
        100.0 * (off["record"] - inner_s) / inner_s)
    results["_meta"] = {
        "repeats": float(REPEATS),
        "spans_recorded": float(len(telemetry.spans)),
    }
    return results


def test_overhead_bench_smoke():
    results = measure()
    for layer in ("record", "arq", "gateway"):
        assert results[layer]["off_s"] > 0.0
        assert results[layer]["on_s"] > 0.0
    assert results["record"]["inner_s"] > 0.0
    assert results["_meta"]["spans_recorded"] > 0
    assert probe.active is None  # activate() restored the disabled state


def main() -> None:
    print(json.dumps(measure(), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
