"""Figure 5 — the layered hierarchical approach to security.

Regenerates the layer stack, resolves every inter-layer dependency,
and verifies the foundation property ("each layer of security provides
a foundation for the one above it") — including that breaking a lower
layer invalidates the stack.
"""

from repro.analysis.figures import figure5_data
from repro.core.layers import (
    default_stack,
    dependency_edges,
    validate_stack,
)


def test_fig5_stack_sound(benchmark):
    violations = benchmark(lambda: validate_stack(default_stack()))
    assert violations == []
    print("\n" + figure5_data())


def test_fig5_all_dependencies_resolved(benchmark):
    edges = benchmark(lambda: dependency_edges(default_stack()))
    assert edges
    assert all(provider != "<unsatisfied>" for _, _, provider in edges)


def test_fig5_foundation_property(benchmark):
    """Removing the hardware layer (the foundation) breaks everything
    above it."""

    def broken():
        return validate_stack(default_stack()[1:])

    violations = benchmark(broken)
    assert violations  # crypto foundation loses its hardware services
