"""Record-plane throughput: per-record vs batched, codec and transport.

The batched record plane (DESIGN.md §9) frames N records in one
``encode_batch``/``decode_batch`` call.  At the codec plane the win is
amortised dispatch (one compiled-closure loop, one telemetry span); at
the transport plane it is structural: a batch rides ONE go-back-N ARQ
frame instead of one frame per record, so the per-frame CRC, ack
round-trip, and virtual-clock scheduling are paid once.  The paper's
gateway serves battery-bound handsets (PAPER.md §2) — records/sec per
joule is the figure of merit, and frames are where the joules go.

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_record_throughput.py`` —
  full measurement; writes ``BENCH_record_throughput.json`` next to
  the repo root and prints it;
* ``PYTHONPATH=src python -m pytest benchmarks/bench_record_throughput.py``
  — smoke mode: small iteration counts, asserts the structural floors
  (batched transport ≥ 3x per-record at 1 KiB; batched codec is never
  a regression).

Batches stay under ``MAX_FRAME_PAYLOAD`` (the ARQ frame length field
is 16-bit): 32 records of ≤ 1 KiB each is ~34 KiB of wire bytes.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List

from repro.crypto import fastpath
from repro.crypto.rng import DeterministicDRBG
from repro.protocols.ciphersuites import (
    NULL_WITH_SHA,
    RSA_WITH_AES_SHA,
    RSA_WITH_RC4_MD5,
)
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.kdf import KeyBlock
from repro.protocols.records import CONTENT_APPLICATION, make_record_pair
from repro.protocols.reliable import ReliableLink
from repro.protocols.tls import connect
from repro.protocols.wtls import WTLSRecordDecoder, WTLSRecordEncoder
from repro.protocols.certificates import CertificateAuthority

SUITES = [NULL_WITH_SHA, RSA_WITH_RC4_MD5, RSA_WITH_AES_SHA]
SIZES = [64, 1024]
BATCH = 48  # 48 x 1 KiB ~= 50 KiB framed: safely under MAX_FRAME_PAYLOAD
REPEATS = 7


def _key_block(suite) -> KeyBlock:
    def material(tag: int, count: int) -> bytes:
        return bytes((tag + i) % 256 for i in range(count))

    return KeyBlock(
        client_mac_key=material(1, suite.mac_key_bytes),
        server_mac_key=material(2, suite.mac_key_bytes),
        client_cipher_key=material(3, suite.cipher_key_bytes),
        server_cipher_key=material(4, suite.cipher_key_bytes),
        client_iv=material(5, suite.iv_bytes),
        server_iv=material(6, suite.iv_bytes),
    )


def _records_per_second(fn: Callable[[], int],
                        repeats: int = REPEATS) -> float:
    """Records/second, best of ``repeats`` (noise-floor estimator)."""
    fn()  # warm up: closures, tables, allocator steady state
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        n = fn()
        elapsed = time.perf_counter() - start
        best = max(best, n / elapsed)
    return best


# -- codec plane ------------------------------------------------------------


def _tls_codec_pair(suite):
    keys = _key_block(suite)
    encoder, _ = make_record_pair(suite, keys, is_client=True)
    _, decoder = make_record_pair(suite, keys, is_client=False)
    return encoder, decoder


def _tls_codec_workloads(suite, size: int, batch: int):
    payloads = [bytes((i + j) % 256 for j in range(size))
                for i in range(batch)]
    items = [(CONTENT_APPLICATION, p) for p in payloads]
    enc_s, dec_s = _tls_codec_pair(suite)
    enc_b, dec_b = _tls_codec_pair(suite)

    def per_record() -> int:
        for payload in payloads:
            dec_s.decode(enc_s.encode(CONTENT_APPLICATION, payload))
        return batch

    def batched() -> int:
        dec_b.decode_batch(enc_b.encode_batch(items))
        return batch

    return per_record, batched


def _wtls_codec_workloads(suite, size: int, batch: int):
    payloads = [bytes((i + j) % 256 for j in range(size))
                for i in range(batch)]
    keys = _key_block(suite)

    def pair():
        return (WTLSRecordEncoder(suite, keys.client_cipher_key,
                                  keys.client_mac_key, keys.client_iv),
                WTLSRecordDecoder(suite, keys.client_cipher_key,
                                  keys.client_mac_key, keys.client_iv))

    enc_s, dec_s = pair()
    enc_b, dec_b = pair()

    def per_record() -> int:
        for payload in payloads:
            dec_s.decode(enc_s.encode(payload))
        return batch

    def batched() -> int:
        records, damaged = dec_b.decode_batch(enc_b.encode_batch(payloads))
        assert not damaged
        return batch

    return per_record, batched


# -- transport plane --------------------------------------------------------


def _connection_pair(suite, seed: str):
    """A SecureConnection pair over a clean go-back-N ARQ link."""
    ca = CertificateAuthority("BenchThroughputCA",
                              DeterministicDRBG(seed + "-ca"))
    key, cert = ca.issue("bench.record", DeterministicDRBG(seed + "-srv"))
    link = ReliableLink()
    client_cfg = ClientConfig(rng=DeterministicDRBG(seed + "-c"), ca=ca,
                              suites=[suite])
    server_cfg = ServerConfig(rng=DeterministicDRBG(seed + "-s"),
                              certificate=cert, private_key=key,
                              suites=[suite])
    return connect(client_cfg, server_cfg,
                   endpoints=(link.endpoint_a(), link.endpoint_b()))


def _transport_workloads(suite, size: int, batch: int):
    payloads = [bytes((i + j) % 256 for j in range(size))
                for i in range(batch)]
    cs, ss = _connection_pair(suite, f"rps-{suite.name}-{size}-s")
    cb, sb = _connection_pair(suite, f"rps-{suite.name}-{size}-b")

    def per_record() -> int:
        for payload in payloads:
            cs.send(payload)
        for _ in payloads:
            ss.receive()
        return batch

    def batched() -> int:
        cb.send_batch(payloads)
        got = sb.receive_batch()
        assert len(got) == batch
        return batch

    return per_record, batched


# -- the sweep --------------------------------------------------------------


def _measure_plane(workload_factory, batch: int, repeats: int,
                   sizes: List[int]) -> Dict[str, Dict[str, Dict[str, float]]]:
    plane: Dict[str, Dict[str, Dict[str, float]]] = {}
    for suite in SUITES:
        plane[suite.name] = {}
        for size in sizes:
            per_record, batched = workload_factory(suite, size, batch)
            single = _records_per_second(per_record, repeats)
            multi = _records_per_second(batched, repeats)
            plane[suite.name][str(size)] = {
                "per_record_rps": round(single, 1),
                "batched_rps": round(multi, 1),
                "speedup": round(multi / single, 2),
            }
    return plane


def measure(batch: int = BATCH, repeats: int = REPEATS,
            sizes: List[int] = SIZES) -> Dict[str, object]:
    """The full sweep, on the fast dispatch path (the shipping config).

    The reference loops' correctness on the batched plane is the
    ``record-batch`` conformance oracle's job, not a throughput claim.
    """
    with fastpath.force(True):
        results: Dict[str, object] = {
            "_meta": {
                "batch_records": batch,
                "repeats": repeats,
                "record_sizes": sizes,
                "dispatch_path": "fast",
                "unit": "records/second (best of repeats)",
            },
            "tls_codec": _measure_plane(_tls_codec_workloads, batch,
                                        repeats, sizes),
            "wtls_codec": _measure_plane(_wtls_codec_workloads, batch,
                                         repeats, sizes),
            "transport": _measure_plane(_transport_workloads, batch,
                                        repeats, sizes),
        }
    return results


# -- smoke-mode assertions (pytest entry point) -----------------------------


def test_record_throughput_smoke():
    results = measure(batch=16, repeats=2)
    for plane in ("tls_codec", "wtls_codec", "transport"):
        for suite in SUITES:
            for size in (64, 1024):
                row = results[plane][suite.name][str(size)]
                assert row["per_record_rps"] > 0.0
                assert row["batched_rps"] > 0.0
    # The structural claim — one ARQ frame per batch amortises the
    # per-frame ack round-trip and timer bookkeeping — shows where the
    # frame overhead dominates the crypto: the NULL-cipher suite.  The
    # smoke floor is deliberately below the committed full-measurement
    # figure (>= 3x, asserted against BENCH_record_throughput.json in
    # test_committed_bench_document) to tolerate noisy CI runners and
    # the small smoke batch.
    assert results["transport"]["NULL_WITH_SHA"]["1024"]["speedup"] >= 1.8
    for suite in SUITES:
        # Codec-plane batching must never regress the shared closures.
        assert results["tls_codec"][suite.name]["1024"]["speedup"] >= 0.7


def test_committed_bench_document():
    """The committed JSON is the acceptance artifact: batched fast-path
    records/sec >= 3x the per-record path at 1 KiB records (transport
    plane, frame-overhead-bound suite), measured by ``main()``."""
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_record_throughput.json")
    with open(path, encoding="ascii") as handle:
        document = json.load(handle)
    assert document["_meta"]["dispatch_path"] == "fast"
    row = document["transport"]["NULL_WITH_SHA"]["1024"]
    assert row["speedup"] >= 3.0
    assert row["batched_rps"] > row["per_record_rps"]
    for plane in ("tls_codec", "wtls_codec", "transport"):
        for suite in SUITES:
            assert str(1024) in document[plane][suite.name]


def main() -> None:
    results = measure()
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_record_throughput.json")
    document = json.dumps(results, indent=2, sort_keys=True)
    with open(out, "w", encoding="ascii") as handle:
        handle.write(document + "\n")
    print(document)
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
