"""T7/T8 — the §4.2 security-processing architecture ladder.

T7: accelerators / ISA extensions / protocol engines trade flexibility
for efficiency (speedup and energy ladder on a common workload).
T8: for *full protocol* workloads the ordering is protocol engine >
crypto accelerator > ISA extensions > software, because only the
engine offloads the protocol-processing component.

Includes the parameter-perturbation ablation DESIGN.md calls out: the
ladder's shape must survive halving/doubling the hardware parameters.
"""

import pytest

from repro.analysis.report import format_table
from repro.hardware.accelerators import (
    CryptoAccelerator,
    SoftwareEngine,
    architecture_ladder,
)
from repro.hardware.isa_extensions import ISAExtensionEngine
from repro.hardware.processors import ARM7, STRONGARM_SA1100
from repro.hardware.protocol_engine import ProtocolEngine
from repro.hardware.workloads import (
    BulkWorkload,
    HandshakeWorkload,
    SessionWorkload,
)

SESSION = SessionWorkload(
    handshake=HandshakeWorkload(),
    bulk=BulkWorkload(kilobytes=256.0, packets=200),
)


def test_t7_efficiency_ladder(benchmark):
    def run_ladder():
        return [(engine.name, engine.execute(SESSION))
                for engine in architecture_ladder(STRONGARM_SA1100)]

    reports = benchmark(run_ladder)
    times = [report.time_s for _, report in reports]
    energies = [report.energy_mj for _, report in reports]
    assert times == sorted(times, reverse=True)
    assert energies == sorted(energies, reverse=True)
    rows = [(name, r.time_s * 1000.0, r.energy_mj,
             times[0] / r.time_s) for name, r in reports]
    print("\n" + format_table(
        ("architecture", "time_ms", "energy_mJ", "speedup_vs_sw"), rows))


def test_t7_flexibility_inverts(benchmark):
    def flexibilities():
        software, isa, accel, engine = architecture_ladder(ARM7)
        return (software.flexibility, isa.flexibility,
                engine.flexibility, accel.flexibility)

    values = benchmark(flexibilities)
    assert values == tuple(sorted(values, reverse=True))


def test_t8_protocol_heavy_ordering(benchmark):
    """With protocol processing dominating, the engine's host offload
    is the differentiator."""
    protocol_heavy = BulkWorkload(kilobytes=32.0, packets=5000)

    def host_burden():
        accel = CryptoAccelerator(ARM7)
        engine = ProtocolEngine(ARM7)
        isa = ISAExtensionEngine(ARM7)
        software = SoftwareEngine(ARM7)
        return {
            "software": software.execute(protocol_heavy).time_s,
            "isa-extensions": isa.execute(protocol_heavy).time_s,
            "crypto-accelerator": accel.execute(protocol_heavy).time_s,
            "protocol-engine": engine.execute(protocol_heavy).time_s,
        }

    times = benchmark(host_burden)
    assert times["protocol-engine"] < times["crypto-accelerator"] \
        < times["isa-extensions"] < times["software"]


@pytest.mark.parametrize("scale", [0.5, 2.0])
def test_t7_ablation_parameter_robustness(benchmark, scale):
    """Halve or double the hardware ratings: the ladder's *ordering*
    (the paper's argument) must not depend on exact constants."""

    def perturbed_ladder():
        accel = CryptoAccelerator(STRONGARM_SA1100)
        accel.bulk_mbps = {k: v * scale for k, v in accel.bulk_mbps.items()}
        accel.rsa_ops_per_s *= scale
        engine = ProtocolEngine(
            STRONGARM_SA1100,
            bulk_mbps=100.0 * scale,
            rsa_ops_per_s=400.0 * scale,
        )
        ladder = [SoftwareEngine(STRONGARM_SA1100),
                  ISAExtensionEngine(STRONGARM_SA1100), accel, engine]
        return [option.execute(SESSION).time_s for option in ladder]

    times = benchmark(perturbed_ladder)
    assert times == sorted(times, reverse=True)


def test_t8_crt_vs_verification_tradeoff(benchmark):
    """Ablation: CRT quarters handshake time; the fault-attack
    countermeasure (re-encrypt) gives a little of it back but keeps
    most of the win — quantifying §3.4's performance/security bargain."""
    from repro.hardware.cycles import (
        rsa_private_instructions,
        rsa_public_instructions,
    )

    def costs():
        plain = rsa_private_instructions(1024, use_crt=False)
        crt = rsa_private_instructions(1024, use_crt=True)
        verified_crt = crt + rsa_public_instructions(1024)
        return plain, crt, verified_crt

    plain, crt, verified_crt = benchmark(costs)
    assert crt == pytest.approx(plain / 4)
    assert verified_crt < 1.2 * crt       # verification is cheap
    assert verified_crt < plain / 3       # still far better than no CRT
