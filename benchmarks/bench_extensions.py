"""Benches for the extension systems (optional/forward-looking in the
paper's 2003 frame, implemented here as the natural next steps):

* session resumption — the protocol-level fix for Figure 3's handshake
  plane (full vs abbreviated, both cost-model and wall-clock);
* 3GPP AKA — the §2 "being addressed in newer wireless standards"
  claim, quantified via the false-base-station attack;
* the microprogrammable protocol engine — §4.2.3 flexibility measured:
  interop throughput and field reprogramming;
* battery-aware adaptation — §3.3's "battery-aware system design
  techniques", lifetime under three policies;
* the Vaudenay padding oracle — query complexity against the flawed
  WTLS decoder.
"""

import pytest

from repro.core.battery_aware import compare_policies
from repro.crypto.rng import DeterministicDRBG
from repro.hardware.cycles import handshake_cost, handshake_mips_demand
from repro.hardware.engine_program import EngineContext, stock_engine
from repro.hardware.processors import STRONGARM_SA1100
from repro.protocols.aka import false_base_station_attack
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.ipsec import make_tunnel
from repro.protocols.resumption import (
    CachedSession,
    SessionCache,
    cache_session,
    resume,
)
from repro.protocols.tls import connect


class TestResumption:
    def test_cost_model_collapse(self, benchmark):
        def ratio():
            return handshake_cost().total_mi / \
                handshake_cost(resumed=True).total_mi

        assert benchmark(ratio) > 50.0

    def test_resumed_fits_tight_latency(self, benchmark):
        """Figure 3's infeasible (0.1 s, SA-1100) corner becomes
        feasible with resumption."""

        def both():
            full = handshake_mips_demand(0.1)
            resumed = handshake_cost(resumed=True).total_mi / 0.1
            return full, resumed

        full, resumed = benchmark(both)
        assert full > STRONGARM_SA1100.mips
        assert resumed < STRONGARM_SA1100.mips

    def test_wall_clock_abbreviated_handshake(self, benchmark, ca,
                                              server_credentials):
        key, cert = server_credentials
        client = ClientConfig(rng=DeterministicDRBG("bres-c"), ca=ca)
        server = ServerConfig(rng=DeterministicDRBG("bres-s"),
                              certificate=cert, private_key=key)
        conn_c, conn_s = connect(client, server)
        client_cache, server_cache = SessionCache(), SessionCache()
        session_id = cache_session(client_cache, conn_c.session,
                                   DeterministicDRBG("bsid"))
        server_cache.store(CachedSession(
            session_id=session_id, suite_name=conn_s.session.suite.name,
            master=conn_s.session.master))

        def abbreviated():
            return resume(client, server, client_cache, server_cache,
                          session_id)

        client_session, _ = benchmark(abbreviated)
        assert client_session.handshake_messages == 4


class TestAKA:
    def test_generation_gap(self, benchmark):
        outcome = benchmark(false_base_station_attack, 7)
        assert outcome == {"gsm_compromised": True,
                           "aka_compromised": False}


class TestProgrammableEngine:
    def test_esp_packet_interop(self, benchmark):
        sender, receiver = make_tunnel(0xE0E0, seed=9)
        payload = b"benchmark payload " * 8
        host_packet = sender.encapsulate(payload)
        engine = stock_engine()

        def engine_encap():
            context = EngineContext(
                payload=payload,
                fields={"spi": (0xE0E0).to_bytes(4, "big"),
                        "sequence": (1).to_bytes(4, "big"),
                        "iv": host_packet[8:16]},
                keys={"cipher_key": sender.cipher_key,
                      "mac_key": sender.mac_key})
            return engine.run("esp-encap", context)

        report = benchmark(engine_encap)
        assert report.output == host_packet
        # The modelled engine is far faster than host software.
        assert report.time_s < 1e-3

    def test_field_reprogramming(self, benchmark):
        from repro.hardware.engine_program import Instruction, Microprogram

        new_standard = Microprogram(
            name="post-2003-standard",
            instructions=(Instruction("crc_append"), Instruction("emit")),
        )

        def upgrade_and_run():
            engine = stock_engine()
            engine.load_program(new_standard)
            return engine.run("post-2003-standard",
                              EngineContext(payload=b"new protocol"))

        report = benchmark(upgrade_and_run)
        assert report.output.startswith(b"new protocol")


class TestBatteryAware:
    def test_policy_lifetime_ladder(self, benchmark):
        outcomes = benchmark.pedantic(
            compare_policies, args=(0.1,), rounds=1, iterations=1)
        naive = outcomes["naive (full handshake per transaction)"]
        adaptive = outcomes[
            "battery-aware (resumption + suite adaptation)"]
        assert adaptive > 2 * naive


class TestPaddingOracle:
    def test_query_complexity(self, benchmark):
        from repro.attacks.padding_oracle import (
            OracleStats,
            decrypt_block,
            make_wtls_oracle,
        )
        from repro.protocols.ciphersuites import RSA_WITH_3DES_SHA
        from repro.protocols.wtls import (
            WTLSRecordDecoder,
            WTLSRecordEncoder,
        )

        key, mac_key, iv = bytes(range(24)), bytes(range(20)), bytes(8)
        encoder = WTLSRecordEncoder(RSA_WITH_3DES_SHA, key, mac_key, iv)
        body = encoder.encode(b"attack at dawn, block two")[6:]

        def attack_one_block():
            decoder = WTLSRecordDecoder(
                RSA_WITH_3DES_SHA, key, mac_key, iv,
                distinguishable_errors=True)
            stats = OracleStats()
            decrypt_block(make_wtls_oracle(decoder), body[8:16], 8, stats)
            return stats.queries

        queries = benchmark.pedantic(attack_one_block, rounds=1,
                                     iterations=1)
        assert queries < 8 * 300  # ~128/byte expected


class TestE11DualSignaturePayments:
    def test_set_style_purchase(self, benchmark, ca):
        from repro.protocols.payment import (
            Merchant,
            OrderInfo,
            PaymentGateway,
            PaymentInfo,
            create_payment,
            non_repudiation_evidence,
        )

        key, cert = ca.issue("bench.cardholder",
                             DeterministicDRBG("bench-set"))

        def purchase_flow():
            order = OrderInfo("shop.example", "item", 999, "B-1")
            payment = PaymentInfo("4111111111111111", "12/05", 999, "B-1")
            purchase = create_payment(order, payment, key, cert)
            merchant = Merchant(name="shop.example", ca=ca)
            gateway = PaymentGateway(ca=ca)
            subject = merchant.process(purchase.merchant_view())
            code = gateway.process(purchase.gateway_view())
            evidence = non_repudiation_evidence(purchase, ca)
            return subject, code, evidence

        subject, code, evidence = benchmark(purchase_flow)
        assert subject == "bench.cardholder"
        assert evidence["binding_holds"]
