"""Gateway chaos sweep: offered load × origin fault rate.

Drives the multi-session :class:`~repro.protocols.gateway_runtime.
GatewayRuntime` across the grid in :mod:`repro.analysis.chaos` and
reports how the overload/fault machinery splits the traffic — served,
degraded (``GW-DEGRADED:``), shed (``GW-BUSY:``) — with p95 virtual
latency and handset radio energy per served request.

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_gateway_chaos.py`` —
  prints the sweep as JSON;
* ``PYTHONPATH=src python -m pytest benchmarks/bench_gateway_chaos.py``
  — asserts the qualitative shape (fault-free/light-load everything
  served, faults degrade but never drop, overload sheds, determinism).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.chaos import chaos_point, chaos_sweep

SESSIONS = 4
REQUESTS_PER_SESSION = 8
SEED = 0


def sweep_rows() -> List[Dict[str, float]]:
    """The grid as a flat list of point dicts."""
    return [row[-1] for row in chaos_sweep(
        sessions=SESSIONS, requests_per_session=REQUESTS_PER_SESSION,
        seed=SEED).rows]


def test_light_load_no_faults_serves_everything():
    point = chaos_point(interarrival_s=0.4, fault_rate=0.0, seed=SEED)
    assert point["served"] == point["submitted"]
    assert point["shed"] == 0 and point["degraded"] == 0


def test_faults_degrade_but_every_request_is_answered():
    point = chaos_point(interarrival_s=0.4, fault_rate=0.5, seed=SEED)
    assert point["degraded"] > 0
    assert (point["served"] + point["degraded"] + point["shed"]
            == point["submitted"])


def test_overload_sheds_instead_of_queueing_forever():
    point = chaos_point(interarrival_s=0.002, fault_rate=0.0, seed=SEED,
                        sessions=8, requests_per_session=16)
    assert point["shed"] > 0
    assert (point["served"] + point["degraded"] + point["shed"]
            == point["submitted"])


def test_chaos_point_is_deterministic():
    assert (chaos_point(interarrival_s=0.1, fault_rate=0.3, seed=11)
            == chaos_point(interarrival_s=0.1, fault_rate=0.3, seed=11))


def main() -> None:
    print(json.dumps({
        "sessions": SESSIONS,
        "requests_per_session": REQUESTS_PER_SESSION,
        "seed": SEED,
        "sweep": sweep_rows(),
    }, indent=2))


if __name__ == "__main__":
    main()
