"""Protocol-stack wall-clock benchmarks.

Times the functional stacks themselves (handshake, record throughput,
WTLS datagrams, ESP, WEP) — the simulator's own hot paths.
"""

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.ciphersuites import RSA_WITH_RC4_MD5
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.ipsec import make_tunnel
from repro.protocols.tls import connect
from repro.protocols.wep import WEPStation
from repro.protocols.wtls import wtls_connect

PAYLOAD = bytes(range(256)) * 2  # 512 bytes


def _configs(ca, server_credentials, seed, **kwargs):
    key, cert = server_credentials
    client = ClientConfig(rng=DeterministicDRBG(("c", seed).__repr__()),
                          ca=ca, **kwargs)
    server = ServerConfig(rng=DeterministicDRBG(("s", seed).__repr__()),
                          certificate=cert, private_key=key)
    return client, server


def test_tls_handshake(benchmark, ca, server_credentials):
    counter = {"n": 0}

    def handshake():
        counter["n"] += 1
        client, server = _configs(ca, server_credentials, counter["n"])
        return connect(client, server)

    conn_c, conn_s = benchmark(handshake)
    conn_c.send(b"ok")
    assert conn_s.receive() == b"ok"


def test_tls_record_throughput_3des(benchmark, ca, server_credentials):
    client, server = _configs(ca, server_credentials, "rec")
    conn_c, conn_s = connect(client, server)

    def round_trip():
        conn_c.send(PAYLOAD)
        return conn_s.receive()

    assert benchmark(round_trip) == PAYLOAD


def test_tls_record_throughput_rc4(benchmark, ca, server_credentials):
    client, server = _configs(ca, server_credentials, "rc4",
                              suites=[RSA_WITH_RC4_MD5])
    conn_c, conn_s = connect(client, server)

    def round_trip():
        conn_c.send(PAYLOAD)
        return conn_s.receive()

    assert benchmark(round_trip) == PAYLOAD


def test_wtls_datagram(benchmark, ca, server_credentials):
    client, server = _configs(ca, server_credentials, "wtls")
    handset, gateway = wtls_connect(client, server)

    def round_trip():
        handset.send(PAYLOAD)
        return gateway.receive()

    assert benchmark(round_trip) == PAYLOAD


def test_esp_packet(benchmark):
    sender, receiver = make_tunnel(0xBEEF, seed=1)

    def round_trip():
        return receiver.decapsulate(sender.encapsulate(PAYLOAD))[1]

    assert benchmark(round_trip) == PAYLOAD


def test_wep_frame(benchmark):
    sender = WEPStation(b"abcde")
    receiver = WEPStation(b"abcde")

    def round_trip():
        return receiver.decrypt(sender.encrypt(PAYLOAD))

    assert benchmark(round_trip) == PAYLOAD
