"""Fleet scaling sweep: sessions x shards under the crash sweep.

The crash-fault-tolerance plane (DESIGN.md §11) runs N gateway shards
on one batched virtual-clock scheduler and kills every shard at least
once per run.  This bench sweeps the fleet size and records what the
failover machinery costs: wall-clock per run, peak RSS, the recovery-
latency distribution (virtual seconds from crash to each session's
migration), the warm / cold-resume / cold-full split, and the benign
answer ledger — the scaling artifact for the sharded runtime.

Wall-clock and RSS are environment-dependent and recorded for trend
reading only; every other field is deterministic per seed, and the
structural assertions below pin those.

Runs two ways:

* ``PYTHONPATH=src python benchmarks/bench_fleet_scaling.py`` — full
  sweep; writes ``BENCH_fleet_scaling.json`` next to the repo root and
  prints it;
* ``PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scaling.py``
  — smoke mode: smaller grid, asserts the structural floors (every
  shard killed, every request answered, energy reconciles, recovery
  latencies populated).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from typing import Dict, List, Tuple

from repro.fleet import run_failover
from repro.fleet.scenario import answered_total

GRID: List[Tuple[int, int]] = [(12, 2), (24, 4), (48, 4), (48, 8)]
REQUESTS = 4
SEED = 2003


def _peak_rss_kb() -> int:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS, kilobytes on Linux.
    return peak // 1024 if sys.platform == "darwin" else peak


def measure(grid: List[Tuple[int, int]] = GRID, requests: int = REQUESTS,
            seed: int = SEED) -> Dict[str, object]:
    """The sessions-x-shards sweep; deterministic per seed except the
    wall-clock / RSS observations."""
    sweep: Dict[str, object] = {}
    for sessions, shards in grid:
        start = time.perf_counter()
        result = run_failover(sessions=sessions, shards=shards,
                              requests_per_session=requests, seed=seed)
        elapsed = time.perf_counter() - start
        stats = result.stats
        latencies = sorted(stats.recovery_latencies)
        sweep[f"{sessions}x{shards}"] = {
            "sessions": sessions,
            "shards": shards,
            "submitted": result.fleet.submitted,
            "answered": answered_total(result),
            "served": result.counts["served"],
            "shed": result.counts["shed"],
            "shed_recovering": stats.shed_recovering,
            "crashes": stats.crashes,
            "sessions_migrated": stats.sessions_migrated,
            "migrations_warm": stats.migrations_warm,
            "migrations_cold_resume": stats.migrations_cold_resume,
            "migrations_cold_full": stats.migrations_cold_full,
            "checkpoints_written": result.fleet.checkpoints_written(),
            "recovery_s": {
                "count": len(latencies),
                "p50": round(stats.recovery_p50_s(), 6),
                "p95": round(stats.recovery_p95_s(), 6),
                "max": round(latencies[-1], 6) if latencies else 0.0,
            },
            "reconciled": result.reconciliation.ok,
            "wall_s": round(elapsed, 4),
            "peak_rss_kb": _peak_rss_kb(),
        }
    return {
        "_meta": {
            "grid": [list(cell) for cell in grid],
            "requests_per_session": requests,
            "seed": seed,
            "unit": ("recovery_s = virtual crash-to-migration latency; "
                     "wall_s / peak_rss_kb are host-dependent"),
        },
        "sweep": sweep,
    }


# -- smoke-mode assertions (pytest entry point) -----------------------------


def test_fleet_scaling_smoke():
    results = measure(grid=[(8, 2), (12, 3)], requests=3)
    for row in results["sweep"].values():
        # Every benign request answered: served, degraded, or shed.
        assert row["answered"] == row["submitted"]
        # Every shard killed at least once.
        assert row["crashes"] >= row["shards"]
        assert row["sessions_migrated"] > 0
        assert row["recovery_s"]["count"] == row["sessions_migrated"]
        assert row["recovery_s"]["p95"] >= row["recovery_s"]["p50"] > 0.0
        assert row["reconciled"]


def test_committed_bench_document():
    """The committed JSON is the acceptance artifact: at every grid
    point the crash sweep killed every shard, every benign request was
    answered, and the energy reconciliation held exactly."""
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_fleet_scaling.json")
    with open(path, encoding="ascii") as handle:
        document = json.load(handle)
    sweep = document["sweep"]
    assert len(sweep) == len(document["_meta"]["grid"])
    for row in sweep.values():
        assert row["answered"] == row["submitted"]
        assert row["crashes"] >= row["shards"]
        assert row["sessions_migrated"] > 0
        assert row["reconciled"] is True
    # More sessions on the same shard count means more checkpoint
    # traffic: the journal story scales with the fleet.
    assert sweep["48x4"]["checkpoints_written"] > \
        sweep["24x4"]["checkpoints_written"]


def main() -> None:
    results = measure()
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_fleet_scaling.json")
    document = json.dumps(results, indent=2, sort_keys=True)
    with open(out, "w", encoding="ascii") as handle:
        handle.write(document + "\n")
    print(document)
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
