"""T3-T6 — the §3.4 attack/countermeasure benches.

Each bench *performs* the attack against our instrumented substrate
and asserts the paper's qualitative claim: the naive implementation
falls, the countermeasure stands.
"""

import pytest

from repro.attacks.countermeasures import BlindedRSA, verified_crt_sign
from repro.attacks.fault import FaultInjector, bellcore_attack
from repro.attacks.power import (
    MaskedAES,
    acquire_aes_traces,
    cpa_attack_aes,
)
from repro.attacks.timing import TimingAttack, measure_sqm, rsa_verifier
from repro.attacks.wep_attacks import KeystreamHarvester, bitflip_forgery
from repro.crypto.errors import SignatureError
from repro.crypto.primes import generate_prime
from repro.crypto.rng import DeterministicDRBG
from repro.protocols.wep import WEPStation

AES_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestT3TimingAttack:
    @pytest.fixture(scope="class")
    def victim(self):
        rng = DeterministicDRBG(77)
        p = generate_prime(32, rng)
        q = generate_prime(32, rng)
        n = p * q
        d = rng.randrange(1 << 47, 1 << 48)
        return n, d

    def test_leaky_implementation_falls(self, benchmark, victim):
        n, d = victim
        probe = (12345 % n, pow(12345, d, n))

        def attack():
            return TimingAttack(
                n, lambda base: measure_sqm(base, d, n),
                rsa_verifier(n, 65537, probe),
            ).run(exponent_bits=48, samples=800)

        result = benchmark.pedantic(attack, rounds=1, iterations=1)
        assert result.succeeded and result.recovered_exponent == d

    def test_blinding_stands(self, benchmark, victim):
        from repro.crypto.modmath import OperationTimer
        from repro.crypto.rsa import RSAPrivateKey

        n, d = victim
        rng = DeterministicDRBG(77)
        p = generate_prime(32, rng)
        q = generate_prime(32, rng)
        key = RSAPrivateKey(n=p * q, e=65537, d=d, p=p, q=q)
        blinded = BlindedRSA(key, DeterministicDRBG("bench-blind"))
        probe = (12345 % key.n, pow(12345, d, key.n))

        def oracle(base):
            timer = OperationTimer()
            blinded.decrypt_raw(base, timer=timer)
            return float(timer.total)

        def attack():
            return TimingAttack(
                key.n, oracle, rsa_verifier(key.n, 65537, probe)
            ).run(exponent_bits=48, samples=800, max_retries=4)

        result = benchmark.pedantic(attack, rounds=1, iterations=1)
        assert not result.succeeded


class TestT4PowerAnalysis:
    def test_unprotected_aes_falls(self, benchmark):
        def attack():
            traces = acquire_aes_traces(AES_KEY, 150, seed=3)
            return cpa_attack_aes(traces)

        result = benchmark.pedantic(attack, rounds=1, iterations=1)
        assert result.key == AES_KEY

    def test_masked_aes_stands(self, benchmark):
        def attack():
            traces = acquire_aes_traces(AES_KEY, 150, seed=3,
                                        cipher_factory=MaskedAES)
            return cpa_attack_aes(traces)

        result = benchmark.pedantic(attack, rounds=1, iterations=1)
        assert result.key != AES_KEY


class TestT5FaultAttack:
    MESSAGE = b"sign this purchase order"

    def test_unprotected_crt_falls(self, benchmark, rsa_512):
        def attack():
            faulty = rsa_512.sign(
                self.MESSAGE, use_crt=True,
                fault_hook=FaultInjector(target="p", seed=1))
            return bellcore_attack(rsa_512.public, self.MESSAGE, faulty)

        factors = benchmark.pedantic(attack, rounds=1, iterations=1)
        assert factors is not None
        assert factors[0] * factors[1] == rsa_512.n

    def test_verified_crt_stands(self, benchmark, rsa_512):
        def attempt():
            try:
                verified_crt_sign(rsa_512, self.MESSAGE,
                                  fault_hook=FaultInjector(seed=2))
                return "leaked"
            except SignatureError:
                return "withheld"

        outcome = benchmark.pedantic(attempt, rounds=1, iterations=1)
        assert outcome == "withheld"


class TestT6WEPAttacks:
    KEY = b"abcde"

    def test_keystream_reuse_decrypts(self, benchmark):
        def attack():
            victim = WEPStation(self.KEY)
            harvester = KeystreamHarvester()
            known = b"SNAP-HEADER!" + bytes(20)
            harvester.observe(
                victim.encrypt(known, iv=b"\x00\x00\x01"),
                known_plaintext=known)
            secret = victim.encrypt(b"credit card 4111-1111",
                                    iv=b"\x00\x00\x01")
            return harvester.decrypt(secret)

        plaintext = benchmark(attack)
        assert plaintext == b"credit card 4111-1111"

    def test_bitflip_forgery_verifies(self, benchmark):
        def attack():
            victim = WEPStation(self.KEY)
            receiver = WEPStation(self.KEY)
            frame = victim.encrypt(b"AMOUNT=0010")
            delta = bytes(7) + bytes(
                a ^ b for a, b in zip(b"0010", b"9999"))
            return receiver.decrypt(bitflip_forgery(frame, delta))

        forged = benchmark(attack)
        assert forged == b"AMOUNT=9999"

    def test_iv_space_exhaustion(self, benchmark):
        """The 24-bit IV guarantees reuse: after wrap, frame IVs repeat
        exactly."""

        def wrap():
            station = WEPStation(self.KEY)
            station._iv_counter = (1 << 24) - 2
            ivs = [station.encrypt(b"x").iv for _ in range(4)]
            return ivs

        ivs = benchmark(wrap)
        assert ivs[2] == b"\x00\x00\x00"  # wrapped to the start
