"""Figure 1 — security concerns in a mobile appliance.

Regenerates the concern taxonomy and verifies every concern is backed
by an importable mechanism module of this library.
"""

from repro.analysis.figures import figure1_data
from repro.core.concerns import (
    Concern,
    coverage_table,
    verify_mechanisms_importable,
)


def test_fig1_concern_coverage(benchmark):
    rows = benchmark(coverage_table)
    assert len(rows) == len(Concern) == 7
    print("\n" + figure1_data())


def test_fig1_mechanisms_exist(benchmark):
    failures = benchmark(verify_mechanisms_importable)
    assert failures == []
