"""Figure 6 — the modular base architecture.

Assembles the crypto-engine-centred platform and routes an identical
secure-session workload through it with and without the engine,
verifying the design argument: the engine configuration is markedly
faster and more energy-efficient, while software fallback preserves
algorithm flexibility.
"""

from repro.analysis.figures import figure6_data
from repro.core.base_architecture import reference_architecture
from repro.hardware.workloads import (
    BulkWorkload,
    HandshakeWorkload,
    SessionWorkload,
)

WORKLOAD = SessionWorkload(
    handshake=HandshakeWorkload(),
    bulk=BulkWorkload(kilobytes=64.0, packets=50),
)


def test_fig6_engine_vs_software(benchmark):
    def run_both():
        software = reference_architecture(with_engine=False).execute(WORKLOAD)
        engine = reference_architecture(with_engine=True).execute(WORKLOAD)
        return software, engine

    software, engine = benchmark(run_both)
    assert engine.time_s < software.time_s / 5.0
    assert engine.energy_mj < software.energy_mj / 5.0
    print("\n" + figure6_data())


def test_fig6_api_surface(benchmark):
    architecture = reference_architecture()

    def service_calls():
        random = architecture.api.random_bytes(16)
        report = architecture.api.run_session(WORKLOAD)
        return random, report

    random, report = benchmark(service_calls)
    assert len(random) == 16
    assert report.time_s > 0


def test_fig6_flexibility_fallback(benchmark):
    """An algorithm outside the engine's set still executes (software),
    keeping the platform interoperable (§3.1)."""
    architecture = reference_architecture(with_engine=True)
    rc2_workload = BulkWorkload(cipher="RC2", kilobytes=8.0)
    report = benchmark(architecture.execute, rc2_workload)
    assert report.engine == "software"
