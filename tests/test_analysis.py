"""Figure regeneration, reporting, and the sweep harness."""

import pytest

from repro.analysis.figures import (
    all_figures,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
)
from repro.analysis.report import format_series, format_table
from repro.analysis.sweep import sweep


class TestFigureRegeneration:
    def test_all_six_figures(self):
        figures = all_figures()
        assert [name for name, _ in figures] == [
            f"Figure {i}" for i in range(1, 7)]
        assert all(isinstance(data, str) and data for _, data in figures)

    def test_figure1_mechanisms_verified(self):
        assert "[all mechanisms importable]" in figure1_data()

    def test_figure2_contains_all_protocols(self):
        data = figure2_data()
        for protocol in ("SSL/TLS", "IPSec", "WTLS", "MET"):
            assert protocol in data
        assert "wireless" in data and "wired" in data

    def test_figure3_anchor_visible(self):
        data, fractions = figure3_data()
        assert "651.3" in data or "651.2" in data or "651.4" in data \
            or "709" in data  # the 10 Mbps row at some latency
        assert fractions["Pentium 4 (2.6 GHz)"] > \
            fractions["StrongARM SA-1100 (206 MHz)"] > \
            fractions["ARM7 (36 MHz)"]

    def test_figure4_headline(self):
        data = figure4_data()
        assert "726256" in data
        assert "334190" in data
        assert "True" in data  # less than half

    def test_figure5_sound(self):
        assert "[hierarchy sound]" in figure5_data()

    def test_figure6_engine_wins(self):
        data = figure6_data()
        assert "speedup" in data
        speedup = float(data.split("engine speedup: ")[1].split("x")[0])
        assert speedup > 5.0


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(("a", "bb"), [(1, 2.5), (10, 3.25)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.50" in table

    def test_format_table_empty(self):
        table = format_table(("x",), [])
        assert "x" in table

    def test_format_series(self):
        series = format_series("demo", [(1, 2)], "t", "v")
        assert series.startswith("== demo ==")
        assert "t" in series and "v" in series


class TestSweep:
    def test_cartesian_product(self):
        result = sweep(lambda a, b: a * b, a=[1, 2], b=[10, 20])
        assert result.rows == (
            (1, 10, 10), (1, 20, 20), (2, 10, 20), (2, 20, 40))

    def test_column_and_results(self):
        result = sweep(lambda a, b: a + b, a=[1, 2], b=[5])
        assert result.column("a") == [1, 2]
        assert result.results() == [6, 7]

    def test_filter(self):
        result = sweep(lambda a, b: a - b, a=[1, 2], b=[0, 1])
        assert result.filter(a=2) == [(2, 0, 2), (2, 1, 1)]

    def test_unknown_axis(self):
        result = sweep(lambda a: a, a=[1])
        with pytest.raises(ValueError):
            result.column("nope")
