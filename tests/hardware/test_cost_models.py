"""Cycle/energy cost models: the paper-anchored calibration points."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.battery import Battery, BatteryEmpty, battery_capacity_trend
from repro.hardware.cycles import (
    BULK_IPB,
    bulk_ipb,
    bulk_mips_demand,
    handshake_cost,
    handshake_mips_demand,
    modmult_instructions,
    rsa_private_instructions,
    rsa_public_instructions,
    total_mips_demand,
)
from repro.hardware.energy import (
    RSA_SECURITY_OVERHEAD_MJ_PER_KB,
    RX_MJ_PER_KB,
    TX_MJ_PER_KB,
    EnergyModel,
)
from repro.hardware.processors import (
    ARM7,
    CATALOG,
    DRAGONBALL,
    PENTIUM4,
    STRONGARM_SA1100,
    embedded_catalog,
)
from repro.hardware.radio import BEARERS, SENSOR_RADIO


class TestPaperAnchors:
    """Every number the paper states must fall out of the model."""

    def test_651_mips_anchor(self):
        """§3.2: 3DES + SHA at 10 Mbps ~ 651.3 MIPS."""
        assert bulk_mips_demand(10.0, "3DES", "SHA1") == pytest.approx(
            651.3, abs=0.05)

    def test_sa1100_handshake_feasibility(self):
        """§3.2: 235 MIPS sustains 0.5 s and 1 s setups, not 0.1 s."""
        assert handshake_mips_demand(1.0) <= STRONGARM_SA1100.mips
        assert handshake_mips_demand(0.5) <= STRONGARM_SA1100.mips
        assert handshake_mips_demand(0.1) > STRONGARM_SA1100.mips

    def test_processor_mips_ratings(self):
        """§3.2's published MIPS ratings."""
        assert PENTIUM4.mips == 2890.0
        assert STRONGARM_SA1100.mips == 235.0
        assert DRAGONBALL.mips == 2.7
        assert 15.0 <= ARM7.mips <= 20.0

    def test_energy_constants(self):
        """§3.3 / [36]: 21.5, 14.3, 42 mJ/KB."""
        assert TX_MJ_PER_KB == 21.5
        assert RX_MJ_PER_KB == 14.3
        assert RSA_SECURITY_OVERHEAD_MJ_PER_KB == 42.0

    def test_sensor_radio_rate(self):
        assert SENSOR_RADIO.data_rate_kbps == 10.0


class TestCycleModel:
    def test_demand_linear_in_rate(self):
        assert bulk_mips_demand(20.0) == pytest.approx(
            2 * bulk_mips_demand(10.0))

    def test_cipher_ordering(self):
        """RC4 < AES < DES < 3DES instructions/byte, per the era's code."""
        assert BULK_IPB["RC4"] < BULK_IPB["AES"] < BULK_IPB["DES"] \
            < BULK_IPB["3DES"]

    def test_3des_is_triple_des(self):
        assert BULK_IPB["3DES"] == 3 * BULK_IPB["DES"]

    def test_record_overhead_toggle(self):
        assert bulk_ipb("3DES", "SHA1", record_overhead=True) > \
            bulk_ipb("3DES", "SHA1", record_overhead=False)

    def test_modmult_quadratic(self):
        assert modmult_instructions(2048) == pytest.approx(
            4 * modmult_instructions(1024))

    def test_rsa_private_cubic(self):
        assert rsa_private_instructions(2048) == pytest.approx(
            8 * rsa_private_instructions(1024))

    def test_crt_quarters_cost(self):
        assert rsa_private_instructions(1024, use_crt=True) == \
            pytest.approx(rsa_private_instructions(1024) / 4)

    def test_public_far_cheaper_than_private(self):
        assert rsa_public_instructions(1024) < \
            rsa_private_instructions(1024) / 20

    def test_handshake_breakdown(self):
        cost = handshake_cost(1024)
        assert cost.total_mi == pytest.approx(
            cost.private_mi + cost.public_mi + cost.protocol_mi)
        assert cost.private_mi > cost.public_mi  # private op dominates

    def test_handshake_without_mutual_auth_cheaper(self):
        assert handshake_cost(1024, mutual_auth=False).total_mi < \
            handshake_cost(1024, mutual_auth=True).total_mi

    def test_total_demand_composition(self):
        assert total_mips_demand(10.0, 0.5) == pytest.approx(
            bulk_mips_demand(10.0) + handshake_mips_demand(0.5))

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            handshake_mips_demand(0.0)


class TestProcessors:
    def test_catalog_complete(self):
        assert len(CATALOG) == 5

    def test_embedded_catalog_sorted(self):
        mips = [p.mips for p in embedded_catalog()]
        assert mips == sorted(mips)
        assert all(p.klass != "desktop" for p in embedded_catalog())

    def test_energy_per_instruction(self):
        # mW / MIPS = nJ per instruction.
        assert STRONGARM_SA1100.energy_per_instruction_nj == pytest.approx(
            400.0 / 235.0)

    def test_timing_helpers(self):
        assert STRONGARM_SA1100.seconds_for(235.0) == pytest.approx(1.0)
        assert STRONGARM_SA1100.energy_for_mj(1.0) > 0


class TestEnergyModel:
    def test_figure4_transaction_energy(self):
        model = EnergyModel()
        assert model.transaction_mj(1.0, secure=False) == pytest.approx(35.8)
        assert model.transaction_mj(1.0, secure=True) == pytest.approx(77.8)

    def test_security_overhead_scales(self):
        model = EnergyModel()
        assert model.security_mj(2.5) == pytest.approx(105.0)

    def test_derived_bulk_energy_positive_and_ordered(self):
        model = EnergyModel()
        assert 0 < model.bulk_crypto_mj("RC4", 1.0) < \
            model.bulk_crypto_mj("3DES", 1.0)

    def test_derived_rsa_energy_crt_cheaper(self):
        model = EnergyModel()
        assert model.rsa_private_mj(1024, use_crt=True) < \
            model.rsa_private_mj(1024)


class TestBattery:
    def test_drain_and_remaining(self):
        battery = Battery(capacity_j=1.0)
        battery.drain_mj(400.0)
        assert battery.fraction_remaining == pytest.approx(0.6)

    def test_empty_raises(self):
        battery = Battery(capacity_j=0.001)
        with pytest.raises(BatteryEmpty):
            battery.drain_mj(2.0)

    def test_negative_drain_rejected(self):
        with pytest.raises(ValueError):
            Battery().drain_mj(-1.0)

    def test_can_supply(self):
        battery = Battery(capacity_j=0.01)
        assert battery.can_supply_mj(10.0)
        assert not battery.can_supply_mj(10.1)

    def test_recharge(self):
        battery = Battery(capacity_j=1.0)
        battery.drain_mj(500.0)
        battery.recharge()
        assert battery.fraction_remaining == 1.0

    def test_capacity_trend_bounds(self):
        """§3.3: 5-8 %/yr growth band."""
        low = battery_capacity_trend(100.0, 10, 0.05)
        high = battery_capacity_trend(100.0, 10, 0.08)
        assert low[-1] == pytest.approx(100.0 * 1.05 ** 10)
        assert high[-1] > low[-1]
        assert len(low) == 11

    def test_growth_validation(self):
        with pytest.raises(ValueError):
            battery_capacity_trend(100.0, 5, 1.5)


class TestRadios:
    def test_bearer_catalog(self):
        assert "GSM/GPRS (40 Kbps)" in BEARERS
        assert len(BEARERS) == 5

    def test_faster_radios_cheaper_per_byte(self):
        rates = sorted(BEARERS.values(), key=lambda r: r.data_rate_kbps)
        energies = [r.tx_mj_per_kb for r in rates]
        assert energies == sorted(energies, reverse=True)

    def test_tx_time(self):
        assert SENSOR_RADIO.tx_time_s(1.0) == pytest.approx(0.8)


@settings(max_examples=30, deadline=None)
@given(rate=st.floats(min_value=0.001, max_value=100.0),
       latency=st.floats(min_value=0.01, max_value=10.0))
def test_demand_monotonicity(rate, latency):
    """Demand increases with rate and decreases with allowed latency."""
    base = total_mips_demand(rate, latency)
    assert total_mips_demand(rate * 2, latency) > base
    assert total_mips_demand(rate, latency * 2) < base
