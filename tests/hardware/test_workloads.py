"""Workload descriptors: instruction accounting identities."""

import pytest

from repro.hardware.cycles import (
    PACKET_OVERHEAD_INSTR,
    bulk_ipb,
    handshake_cost,
)
from repro.hardware.workloads import (
    BulkWorkload,
    HandshakeWorkload,
    SessionWorkload,
)


class TestBulkWorkload:
    def test_crypto_instructions_scale_with_payload(self):
        small = BulkWorkload(kilobytes=1.0)
        large = BulkWorkload(kilobytes=10.0)
        assert large.crypto_instructions == pytest.approx(
            10 * small.crypto_instructions)

    def test_protocol_instructions_scale_with_packets(self):
        assert BulkWorkload(packets=7).protocol_instructions == \
            7 * PACKET_OVERHEAD_INSTR

    def test_total_is_sum(self):
        workload = BulkWorkload(kilobytes=3.0, packets=4)
        assert workload.total_instructions == pytest.approx(
            workload.crypto_instructions + workload.protocol_instructions)

    def test_crypto_matches_ipb_table(self):
        workload = BulkWorkload(cipher="RC4", mac="MD5", kilobytes=2.0)
        assert workload.crypto_instructions == pytest.approx(
            bulk_ipb("RC4", "MD5", record_overhead=False) * 2048.0)

    def test_null_cipher_costs_only_mac(self):
        null = BulkWorkload(cipher="NULL", mac="SHA1", kilobytes=1.0,
                            packets=0)
        sha_only = bulk_ipb("NULL", "SHA1", record_overhead=False) * 1024.0
        assert null.total_instructions == pytest.approx(sha_only)


class TestHandshakeWorkload:
    def test_count_scales(self):
        one = HandshakeWorkload(count=1)
        five = HandshakeWorkload(count=5)
        assert five.total_instructions == pytest.approx(
            5 * one.total_instructions)

    def test_matches_cost_model(self):
        workload = HandshakeWorkload(rsa_bits=1024, use_crt=True)
        assert workload.total_instructions == pytest.approx(
            handshake_cost(1024, use_crt=True).total_mi * 1e6)


class TestSessionWorkload:
    def test_composition(self):
        session = SessionWorkload(
            handshake=HandshakeWorkload(count=2),
            bulk=BulkWorkload(kilobytes=5.0, packets=3))
        assert session.total_instructions == pytest.approx(
            session.handshake.total_instructions
            + session.bulk.total_instructions)

    def test_defaults_nontrivial(self):
        assert SessionWorkload().total_instructions > 1e6
