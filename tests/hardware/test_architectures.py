"""The §4.2 architecture ladder and platform composition."""

import pytest

from repro.hardware.accelerators import (
    CryptoAccelerator,
    SoftwareEngine,
    UnsupportedWorkload,
    architecture_ladder,
)
from repro.hardware.battery import Battery, BatteryEmpty
from repro.hardware.isa_extensions import ISAExtensionEngine
from repro.hardware.platform_builder import (
    HardwarePlatform,
    pda_platform,
    phone_platform,
    sensor_node_platform,
)
from repro.hardware.processors import ARM7, STRONGARM_SA1100
from repro.hardware.protocol_engine import ProtocolEngine
from repro.hardware.workloads import (
    BulkWorkload,
    HandshakeWorkload,
    SessionWorkload,
)

SESSION = SessionWorkload(
    handshake=HandshakeWorkload(),
    bulk=BulkWorkload(kilobytes=100.0, packets=80),
)


class TestLadder:
    def test_efficiency_strictly_improves(self):
        """§4.2's headline: each rung is faster AND cheaper in energy."""
        reports = [engine.execute(SESSION)
                   for engine in architecture_ladder(STRONGARM_SA1100)]
        times = [r.time_s for r in reports]
        energies = [r.energy_mj for r in reports]
        assert times == sorted(times, reverse=True)
        assert energies == sorted(energies, reverse=True)

    def test_flexibility_ladder_inverts(self):
        """...while flexibility moves the other way (the §3.1 tension).
        The programmable protocol engine is the §4.2.3 compromise: more
        flexible than fixed-function hardware, still efficient."""
        software, isa, accel, engine = architecture_ladder(STRONGARM_SA1100)
        assert software.flexibility > isa.flexibility > engine.flexibility \
            > accel.flexibility

    def test_host_offload_decreases(self):
        reports = [engine.execute(SESSION)
                   for engine in architecture_ladder(STRONGARM_SA1100)]
        host = [r.host_instructions for r in reports]
        assert host == sorted(host, reverse=True)


class TestSoftwareEngine:
    def test_time_matches_mips(self):
        engine = SoftwareEngine(ARM7)
        bulk = BulkWorkload(kilobytes=10.0, packets=1)
        report = engine.execute(bulk)
        assert report.time_s == pytest.approx(
            bulk.total_instructions / (ARM7.mips * 1e6))

    def test_supports_everything(self):
        assert SoftwareEngine(ARM7).supports(
            BulkWorkload(cipher="AES", mac="MD5"))


class TestISAExtensions:
    def test_speedup_applies_to_crypto_only(self):
        engine = ISAExtensionEngine(ARM7)
        software = SoftwareEngine(ARM7)
        bulk = BulkWorkload(cipher="3DES", kilobytes=50.0, packets=10)
        assert engine.execute(bulk).time_s < software.execute(bulk).time_s

    def test_des_benefits_most(self):
        """Permutation instructions help DES more than RC4 (§4.2.1)."""
        engine = ISAExtensionEngine(ARM7)
        assert engine.speedups["DES"] > engine.speedups["RC4"]

    def test_handshake_speedup(self):
        engine = ISAExtensionEngine(ARM7)
        software = SoftwareEngine(ARM7)
        handshake = HandshakeWorkload()
        ratio = software.execute(handshake).time_s / \
            engine.execute(handshake).time_s
        assert ratio == pytest.approx(engine.speedups["RSA"], rel=0.01)


class TestCryptoAccelerator:
    def test_unsupported_cipher_raises(self):
        accel = CryptoAccelerator(ARM7)
        del accel.bulk_mbps["RC4"]
        with pytest.raises(UnsupportedWorkload):
            accel.execute(BulkWorkload(cipher="RC4"))

    def test_supports_check(self):
        accel = CryptoAccelerator(ARM7)
        del accel.bulk_mbps["RC4"]
        assert not accel.supports(BulkWorkload(cipher="RC4"))
        assert accel.supports(BulkWorkload(cipher="3DES"))

    def test_protocol_work_stays_on_host(self):
        accel = CryptoAccelerator(ARM7)
        few_packets = accel.execute(BulkWorkload(kilobytes=10, packets=1))
        many_packets = accel.execute(BulkWorkload(kilobytes=10, packets=500))
        assert many_packets.host_instructions > few_packets.host_instructions

    def test_crt_speeds_rsa(self):
        accel = CryptoAccelerator(ARM7)
        plain = accel.execute(HandshakeWorkload(use_crt=False))
        crt = accel.execute(HandshakeWorkload(use_crt=True))
        assert crt.time_s < plain.time_s


class TestProtocolEngine:
    def test_offloads_protocol_processing(self):
        """The §4.2.3 differentiator vs. a crypto accelerator."""
        engine = ProtocolEngine(ARM7)
        accel = CryptoAccelerator(ARM7)
        heavy_protocol = BulkWorkload(kilobytes=10, packets=2000)
        assert engine.execute(heavy_protocol).host_instructions < \
            accel.execute(heavy_protocol).host_instructions

    def test_programmability_flag(self):
        assert ProtocolEngine(ARM7, programmable=True).flexibility > \
            ProtocolEngine(ARM7, programmable=False).flexibility

    def test_session_is_sum_of_parts(self):
        engine = ProtocolEngine(ARM7)
        session = SessionWorkload()
        combined = engine.execute(session)
        parts = (engine.execute(session.handshake).time_s
                 + engine.execute(session.bulk).time_s)
        assert combined.time_s == pytest.approx(parts)


class TestPlatform:
    def test_dispatch_prefers_listed_engine(self):
        accel = CryptoAccelerator(STRONGARM_SA1100)
        platform = pda_platform(engines=[accel])
        assert platform.select_engine(SESSION) is accel

    def test_dispatch_falls_back_to_software(self):
        accel = CryptoAccelerator(STRONGARM_SA1100)
        del accel.bulk_mbps["RC4"]
        platform = pda_platform(engines=[accel])
        rc4_bulk = BulkWorkload(cipher="RC4")
        engine = platform.select_engine(rc4_bulk)
        assert isinstance(engine, SoftwareEngine)

    def test_battery_charged_for_work(self):
        platform = phone_platform()
        before = platform.battery.remaining_j
        platform.run_security_workload(BulkWorkload(kilobytes=100))
        assert platform.battery.remaining_j < before

    def test_radio_charges_battery(self):
        platform = sensor_node_platform()
        before = platform.battery.remaining_j
        platform.transmit(1.0)
        platform.receive(1.0)
        drained_mj = (before - platform.battery.remaining_j) * 1000.0
        assert drained_mj == pytest.approx(35.8)

    def test_dead_battery_stops_work(self):
        platform = phone_platform()
        platform.battery = Battery(capacity_j=0.0001)
        platform.__post_init__()
        with pytest.raises(BatteryEmpty):
            platform.run_security_workload(
                BulkWorkload(kilobytes=10_000.0))

    def test_sustainable_rate(self):
        platform = pda_platform()
        rate = platform.sustainable_data_rate_mbps(521.04)
        # 235 MIPS / 521.04 instr/byte ~ 3.6 Mbps: the SA-1100 cannot
        # do 10 Mbps of 3DES+SHA in software (the Figure 3 gap).
        assert rate < 10.0
        assert rate == pytest.approx(235e6 / 521.04 * 8 / 1e6, rel=0.01)

    def test_accounting_accumulates(self):
        platform = phone_platform()
        platform.run_security_workload(BulkWorkload(kilobytes=1))
        platform.transmit(1.0)
        assert platform.energy_spent_mj > 0
        assert platform.time_spent_s > 0
