"""The microprogrammable protocol engine: interop + programmability."""

import pytest

from repro.hardware.engine_program import (
    COST_TABLE,
    EngineContext,
    EngineFault,
    Instruction,
    Microprogram,
    ProgrammableProtocolEngine,
    stock_engine,
)
from repro.protocols.ipsec import make_tunnel
from repro.protocols.wep import WEPStation


@pytest.fixture()
def esp_material():
    sender, receiver = make_tunnel(0xABCD, seed=3)
    payload = b"engine interop payload"
    host_packet = sender.encapsulate(payload)
    return sender, payload, host_packet


class TestBitExactInterop:
    """The engine genuinely implements the protocols: identical bytes."""

    def test_esp_encap_matches_host(self, esp_material):
        sender, payload, host_packet = esp_material
        engine = stock_engine()
        context = EngineContext(
            payload=payload,
            fields={
                "spi": (0xABCD).to_bytes(4, "big"),
                "sequence": (1).to_bytes(4, "big"),
                "iv": host_packet[8:16],
            },
            keys={"cipher_key": sender.cipher_key,
                  "mac_key": sender.mac_key},
        )
        report = engine.run("esp-encap", context)
        assert report.output == host_packet

    def test_esp_decap_opens_host_packet(self, esp_material):
        sender, payload, host_packet = esp_material
        engine = stock_engine()
        context = EngineContext(
            packet=host_packet,
            keys={"cipher_key": sender.cipher_key,
                  "mac_key": sender.mac_key},
        )
        assert engine.run("esp-decap", context).output == payload

    def test_host_opens_engine_packet(self, esp_material):
        sender, payload, host_packet = esp_material
        _, receiver = make_tunnel(0xABCD, seed=3)
        engine = stock_engine()
        context = EngineContext(
            payload=payload,
            fields={
                "spi": (0xABCD).to_bytes(4, "big"),
                "sequence": (1).to_bytes(4, "big"),
                "iv": host_packet[8:16],
            },
            keys={"cipher_key": sender.cipher_key,
                  "mac_key": sender.mac_key},
        )
        packet = engine.run("esp-encap", context).output
        assert receiver.decapsulate(packet)[1] == payload

    def test_wep_encap_matches_host(self):
        station = WEPStation(b"abcde")
        frame = station.encrypt(b"wlan frame", iv=b"\x00\x00\x09")
        engine = stock_engine()
        context = EngineContext(
            payload=b"wlan frame",
            fields={"iv": b"\x00\x00\x09", "key_id": b"\x00"},
            keys={"cipher_key": b"abcde"},
        )
        assert engine.run("wep-encap", context).output == frame.to_bytes()

    def test_wep_decap(self):
        station = WEPStation(b"abcde")
        frame = station.encrypt(b"wlan frame", iv=b"\x00\x00\x09")
        engine = stock_engine()
        context = EngineContext(
            packet=frame.to_bytes(), keys={"cipher_key": b"abcde"})
        assert engine.run("wep-decap", context).output == b"wlan frame"


class TestEnforcement:
    def test_engine_mac_check(self, esp_material):
        sender, _, host_packet = esp_material
        tampered = bytearray(host_packet)
        tampered[20] ^= 0xFF
        engine = stock_engine()
        context = EngineContext(
            packet=bytes(tampered),
            keys={"cipher_key": sender.cipher_key,
                  "mac_key": sender.mac_key})
        with pytest.raises(EngineFault, match="MAC"):
            engine.run("esp-decap", context)

    def test_engine_replay_check(self, esp_material):
        sender, payload, host_packet = esp_material
        engine = stock_engine()
        shared_fields = {}
        for _ in range(2):
            context = EngineContext(
                packet=host_packet, fields=shared_fields,
                keys={"cipher_key": sender.cipher_key,
                      "mac_key": sender.mac_key})
            try:
                engine.run("esp-decap", context)
                first_ok = True
            except EngineFault as exc:
                assert "replay" in str(exc)
                return
        pytest.fail("engine accepted a replayed sequence number")

    def test_wep_icv_check(self):
        station = WEPStation(b"abcde")
        frame = bytearray(station.encrypt(b"data").to_bytes())
        frame[-1] ^= 0x01
        engine = stock_engine()
        context = EngineContext(packet=bytes(frame),
                                keys={"cipher_key": b"abcde"})
        with pytest.raises(EngineFault, match="ICV"):
            engine.run("wep-decap", context)


class TestProgrammability:
    def test_unknown_opcode_rejected(self):
        engine = ProgrammableProtocolEngine()
        rogue = Microprogram("bad", (Instruction("format_flash"),))
        with pytest.raises(EngineFault, match="unknown opcode"):
            engine.load_program(rogue)

    def test_unloaded_program_rejected(self):
        with pytest.raises(EngineFault, match="no program"):
            ProgrammableProtocolEngine().run("esp-encap", EngineContext())

    def test_field_upgrade_new_protocol(self):
        """The §3.1 story: a post-deployment standard gets a program,
        no silicon change — here a CRC-authenticated cleartext beacon
        protocol (contrived but new to the engine)."""
        engine = stock_engine()
        beacon = Microprogram(
            name="beacon-2003",
            description="new standard: payload | CRC | emit",
            instructions=(
                Instruction("crc_append"),
                Instruction("emit"),
            ),
        )
        engine.load_program(beacon)
        report = engine.run(
            "beacon-2003", EngineContext(payload=b"hello"))
        from repro.crypto.crc import crc32_bytes

        assert report.output == b"hello" + crc32_bytes(b"hello")

    def test_cost_accounting(self):
        engine = stock_engine()
        small = EngineContext(
            payload=b"x" * 16,
            fields={"spi": bytes(4), "sequence": (1).to_bytes(4, "big"),
                    "iv": bytes(8)},
            keys={"cipher_key": bytes(24), "mac_key": bytes(20)})
        large = EngineContext(
            payload=b"x" * 1024,
            fields={"spi": bytes(4), "sequence": (1).to_bytes(4, "big"),
                    "iv": bytes(8)},
            keys={"cipher_key": bytes(24), "mac_key": bytes(20)})
        small_report = engine.run("esp-encap", small)
        large_report = engine.run("esp-encap", large)
        assert large_report.cycles > 10 * small_report.cycles
        assert large_report.energy_mj > small_report.energy_mj
        assert engine.instructions_executed == 10  # 5 per run

    def test_cost_table_covers_all_shipped_ops(self):
        engine = stock_engine()
        for program in engine.programs.values():
            for instruction in program.instructions:
                assert instruction.op in COST_TABLE
