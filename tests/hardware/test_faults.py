"""Hardware fault injectors: seeded, scheduled, and transactional.

Covers :mod:`repro.hardware.faults` (FlakyEngine windows and transient
processes, BatteryBrownout idempotence, GlitchCampaign determinism,
FaultPlan aggregation), the transactional :class:`Battery` refusal
contract, and the §4.2 ladder fallback when a fixed-function
:class:`CryptoAccelerator` meets an algorithm it lacks.
"""

from __future__ import annotations

import pytest

from repro.core.supervisor import ApplianceSupervisor
from repro.hardware.accelerators import (
    CryptoAccelerator,
    SoftwareEngine,
    UnsupportedWorkload,
    architecture_ladder,
)
from repro.hardware.battery import Battery, BatteryEmpty
from repro.hardware.faults import (
    AcceleratorFailure,
    BatteryBrownout,
    FaultPlan,
    FlakyEngine,
    GlitchCampaign,
    HardwareFaultLog,
    wrap_engines,
)
from repro.hardware.platform_builder import phone_platform
from repro.hardware.processors import ARM7
from repro.hardware.workloads import BulkWorkload
from repro.protocols.reliable import VirtualClock

AES_WORKLOAD = BulkWorkload(kilobytes=1.0, cipher="AES", mac="SHA1")


# -- FlakyEngine -------------------------------------------------------------


def test_outage_window_has_sharp_edges():
    clock = VirtualClock()
    log = HardwareFaultLog()
    engine = FlakyEngine(SoftwareEngine(ARM7), clock,
                         fail_at_s=1.0, recover_at_s=3.0, log=log)
    assert engine.execute(AES_WORKLOAD).engine == "software"  # t=0: fine
    clock.advance_to(1.0)
    with pytest.raises(AcceleratorFailure):                   # t=1: dead
        engine.execute(AES_WORKLOAD)
    clock.advance_to(3.0)
    engine.execute(AES_WORKLOAD)                              # t=3: back
    assert engine.failures == 1
    assert log.kinds() == ["accelerator-outage"]
    assert engine.name == "flaky(software)"


def test_outage_without_recovery_is_permanent():
    clock = VirtualClock()
    engine = FlakyEngine(SoftwareEngine(ARM7), clock, fail_at_s=0.5)
    clock.advance_to(1e6)
    assert engine.in_outage()
    with pytest.raises(AcceleratorFailure):
        engine.execute(AES_WORKLOAD)


def test_supports_is_never_fault_gated():
    """A real driver discovers a dead datapath at execution, not at
    capability query — ``supports`` must answer even mid-outage."""
    clock = VirtualClock()
    engine = FlakyEngine(SoftwareEngine(ARM7), clock, fail_at_s=0.0)
    assert engine.supports(AES_WORKLOAD)


def test_wrap_engines_leaves_software_pristine():
    clock = VirtualClock()
    ladder = list(reversed(architecture_ladder(ARM7)))
    wrapped = wrap_engines(ladder, clock, fail_at_s=0.0)
    assert isinstance(wrapped[-1], SoftwareEngine)       # untouched
    assert all(isinstance(engine, FlakyEngine)
               for engine in wrapped[:-1])               # all hardware


# -- BatteryBrownout ---------------------------------------------------------


def test_brownout_fires_once_and_never_adds_charge():
    battery = Battery(capacity_j=100.0)
    brownout = BatteryBrownout(battery, at_s=2.0, to_fraction=0.1)
    assert not brownout.poll(1.0)                # not due yet
    assert battery.remaining_j == 100.0
    assert brownout.poll(2.0)                    # fires
    assert battery.remaining_j == pytest.approx(10.0)
    assert not brownout.poll(3.0)                # idempotent
    battery.remaining_j = 5.0                    # drained further
    brownout.applied = False
    assert brownout.poll(4.0)
    assert battery.remaining_j == 5.0            # sag never recharges


def test_brownout_validates_fraction():
    with pytest.raises(ValueError):
        BatteryBrownout(Battery(), at_s=0.0, to_fraction=1.5)


# -- GlitchCampaign ----------------------------------------------------------


def test_seeded_campaign_is_deterministic_and_mixed():
    first = GlitchCampaign.seeded(seed=4, count=20, p_super=0.3)
    second = GlitchCampaign.seeded(seed=4, count=20, p_super=0.3)
    assert first.glitches == second.glitches
    assert first.glitches != GlitchCampaign.seeded(
        seed=5, count=20, p_super=0.3).glitches
    thresholds = {"clock": 0.5, "voltage": 0.3}
    supers = [g for g in first.glitches
              if g.event.magnitude > thresholds[g.event.kind]]
    subs = [g for g in first.glitches
            if g.event.magnitude <= thresholds[g.event.kind]]
    assert supers and subs                       # both regimes drawn


def test_campaign_due_pops_in_schedule_order():
    campaign = GlitchCampaign.seeded(seed=1, count=4, start_s=1.0,
                                     period_s=1.0)
    assert campaign.due(0.5) == []
    first_two = campaign.due(2.0)
    assert len(first_two) == 2
    assert campaign.due(2.0) == []               # already delivered
    assert len(campaign.due(100.0)) == 2         # the remainder
    assert campaign.delivered == 4


# -- FaultPlan ---------------------------------------------------------------


def test_fault_plan_aggregates_on_one_timeline():
    battery = Battery(capacity_j=50.0)
    plan = FaultPlan()
    plan.add_brownout(BatteryBrownout(battery, at_s=1.0, to_fraction=0.2))
    plan.add_campaign(GlitchCampaign.seeded(seed=2, count=3, start_s=2.0))
    assert plan.poll(0.5) == []
    assert battery.remaining_j == 50.0
    assert plan.poll(1.5) == []                  # brownout only
    assert battery.remaining_j == pytest.approx(10.0)
    events = plan.poll(10.0)
    assert len(events) == 3
    assert plan.log.kinds() == ["battery-brownout"] + ["glitch"] * 3


# -- transactional battery ---------------------------------------------------


def test_battery_refusal_is_transactional_and_self_describing():
    battery = Battery(capacity_j=0.01)           # 10 mJ
    battery.drain_mj(4.0)
    with pytest.raises(BatteryEmpty) as excinfo:
        battery.drain_mj(7.0)
    assert excinfo.value.requested_mj == pytest.approx(7.0)
    assert excinfo.value.remaining_mj == pytest.approx(6.0)
    # The refused drain left the ledger untouched:
    assert battery.remaining_j == pytest.approx(0.006)
    battery.drain_mj(6.0)                        # exactly fits
    assert battery.remaining_j == pytest.approx(0.0)


# -- ladder fallback on missing algorithms -----------------------------------


def test_accelerator_raises_unsupported_for_unknown_cipher():
    accelerator = CryptoAccelerator(ARM7)
    exotic = BulkWorkload(kilobytes=1.0, cipher="RC2", mac="SHA1")
    assert not accelerator.supports(exotic)
    with pytest.raises(UnsupportedWorkload):
        accelerator.execute(exotic)


def test_platform_falls_back_to_software_for_unknown_cipher():
    platform = phone_platform(engines=[CryptoAccelerator(ARM7)])
    exotic = BulkWorkload(kilobytes=1.0, cipher="RC2", mac="SHA1")
    report = platform.run_security_workload(exotic)
    assert report.engine == "software"           # flexibility preserved
    assert platform.run_security_workload(AES_WORKLOAD).engine == \
        "crypto-accelerator"                     # hardware when it can


def test_supervisor_survives_optimistic_driver_raising_unsupported():
    """A driver that only discovers the capability gap at execution
    (claims support, then raises UnsupportedWorkload) must still end in
    a software answer plus a recorded fallback, not an exception."""

    class OptimisticDriver:
        def __init__(self, inner):
            self.inner = inner
            self.name = f"optimistic({inner.name})"
            self.flexibility = inner.flexibility

        def supports(self, workload):
            return True                          # overpromises

        def execute(self, workload):
            return self.inner.execute(workload)  # may raise

    supervisor = ApplianceSupervisor(
        [OptimisticDriver(CryptoAccelerator(ARM7)), SoftwareEngine(ARM7)])
    exotic = BulkWorkload(kilobytes=1.0, cipher="RC2", mac="SHA1")
    report = supervisor.execute(exotic)
    assert report.engine == "software"
    assert supervisor.report.engine_fallbacks == 1
    assert supervisor.report.actions() == ["engine-fallback"]
