"""On-chip bus firewall and the DMA-snoop attack."""

import pytest

from repro.hardware.bus import (
    CPU_NORMAL,
    CPU_SECURE,
    CRYPTO_ENGINE,
    KEY_REGISTER_BASE,
    ROGUE_DMA,
    BusFault,
    SystemBus,
    dma_snoop_attack,
    provision_keys_on_bus,
)

KEY = bytes(range(16))


class TestBusFirewall:
    @pytest.fixture()
    def bus(self):
        bus = SystemBus()
        provision_keys_on_bus(bus, KEY)
        return bus

    def test_secure_master_reads_keys(self, bus):
        assert bus.read(CPU_SECURE, KEY_REGISTER_BASE, 16) == KEY
        assert bus.read(CRYPTO_ENGINE, KEY_REGISTER_BASE, 16) == KEY

    def test_normal_cpu_blocked_from_keys(self, bus):
        with pytest.raises(BusFault, match="firewall"):
            bus.read(CPU_NORMAL, KEY_REGISTER_BASE, 16)
        assert bus.violations == 1

    def test_normal_cpu_uses_dram(self, bus):
        bus.write(CPU_NORMAL, 0x1000, b"app data")
        assert bus.read(CPU_NORMAL, 0x1000, 8) == b"app data"

    def test_rogue_dma_blocked(self, bus):
        assert dma_snoop_attack(bus, KEY_REGISTER_BASE, 16) is None

    def test_rogue_dma_succeeds_without_firewall(self):
        """The vulnerable baseline the paper warns about: a commodity
        fabric lets any master read key SRAM."""
        bus = SystemBus(firewall_enabled=False)
        provision_keys_on_bus(bus, KEY)
        assert dma_snoop_attack(bus, KEY_REGISTER_BASE, 16) == KEY

    def test_writes_to_secure_region_blocked(self, bus):
        with pytest.raises(BusFault):
            bus.write(CPU_NORMAL, KEY_REGISTER_BASE, b"\x00" * 16)
        # Key material untouched by the failed write.
        assert bus.read(CPU_SECURE, KEY_REGISTER_BASE, 16) == KEY

    def test_unmapped_address(self, bus):
        with pytest.raises(BusFault, match="no single region"):
            bus.read(CPU_SECURE, 0x7000_0000, 4)

    def test_burst_crossing_region_boundary_rejected(self, bus):
        region = bus.region_of(KEY_REGISTER_BASE)
        last = region.base + region.size - 2
        with pytest.raises(BusFault, match="no single region"):
            bus.read(CPU_SECURE, last, 8)

    def test_transactions_logged(self, bus):
        try:
            bus.read(ROGUE_DMA, KEY_REGISTER_BASE, 4)
        except BusFault:
            pass
        denied = [t for t in bus.log if not t.allowed]
        assert denied and denied[-1].master == ROGUE_DMA.name

    def test_boot_rom_is_secure_only(self, bus):
        with pytest.raises(BusFault):
            bus.read(CPU_NORMAL, 0xFFFF_0000, 4)
