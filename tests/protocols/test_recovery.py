"""Graceful degradation: handshake fallback and session recovery.

Exercises the robustness layer end to end: cipher-suite fallback under
repeated handshake failure, plain retry on link-level loss, MAC-driven
teardown plus full re-handshake, and reconnect-via-resumption after a
link reset — including over a lossy, ARQ-protected link.
"""

import pytest

from dataclasses import replace

from repro.protocols.alerts import HandshakeFailure
from repro.protocols.ciphersuites import (
    ALL_SUITES,
    LIGHTWEIGHT_SUITES,
    RSA_WITH_TRIVIUM_SHA,
)
from repro.protocols.faults import FaultModel, FaultyChannel
from repro.protocols.recovery import ResilientSession
from repro.protocols.reliable import ReliableLink
from repro.protocols.tls import connect_with_fallback
from repro.protocols.transport import ChannelClosed, DuplexChannel


def _corrupting_factory(fail_attempts, frame_index=3):
    """Endpoint factory whose first ``fail_attempts`` links corrupt the
    ``frame_index``-th client->server frame (the client Finished record
    by default, which surfaces as a HandshakeFailure)."""
    state = {"attempt": 0}

    def factory():
        state["attempt"] += 1
        hostile = state["attempt"] <= fail_attempts
        seen = {"count": 0}

        def interceptor(frame, direction):
            if direction == "a->b":
                seen["count"] += 1
                if hostile and seen["count"] == frame_index:
                    return frame[:-1] + bytes([frame[-1] ^ 0x01])
            return frame

        channel = DuplexChannel(interceptor=interceptor)
        return channel.endpoint_a(), channel.endpoint_b()

    return factory


def _dropping_factory(fail_attempts):
    """First ``fail_attempts`` links swallow the ClientHello — a pure
    link loss, which must retry without narrowing the suite list."""
    state = {"attempt": 0}

    def factory():
        state["attempt"] += 1
        hostile = state["attempt"] <= fail_attempts
        seen = {"count": 0}

        def interceptor(frame, direction):
            if direction == "a->b":
                seen["count"] += 1
                if hostile and seen["count"] == 1:
                    return None
            return frame

        channel = DuplexChannel(interceptor=interceptor)
        return channel.endpoint_a(), channel.endpoint_b()

    return factory


class TestHandshakeFallback:
    def test_clean_link_needs_one_attempt(self, client_config,
                                          server_config):
        client_conn, server_conn, log = connect_with_fallback(
            client_config, server_config)
        client_conn.send(b"up")
        assert server_conn.receive() == b"up"
        assert log.attempts == 1
        assert log.suite_fallbacks == 0
        assert log.link_failures == 0

    def test_suite_fallback_walks_preference_list(self, client_config,
                                                  server_config):
        """Two corrupted-Finished failures walk two steps down the
        client's suite preference list; the third attempt succeeds."""
        client_conn, server_conn, log = connect_with_fallback(
            client_config, server_config,
            endpoint_factory=_corrupting_factory(fail_attempts=2))
        assert log.attempts == 3
        assert log.suite_fallbacks == 2
        assert len(log.failures) == 2
        assert client_conn.suite_name == client_config.suites[2].name
        client_conn.send(b"degraded but alive")
        assert server_conn.receive() == b"degraded but alive"

    def test_link_failure_retries_without_narrowing(self, client_config,
                                                    server_config):
        """A lost ClientHello is a link event, not a negotiation event:
        retry on a fresh link with the full preference list."""
        client_conn, _, log = connect_with_fallback(
            client_config, server_config,
            endpoint_factory=_dropping_factory(fail_attempts=1))
        assert log.attempts == 2
        assert log.link_failures == 1
        assert log.suite_fallbacks == 0
        assert client_conn.suite_name == ALL_SUITES[0].name

    def test_legacy_server_walks_past_lightweight_preference(
            self, client_config, server_config):
        """ISSUE 10 regression: a handset leading with the lightweight
        stream family must still converge with a gateway that predates
        the rollout — negotiation skips the unsupported suites and the
        handshake lands on the first shared legacy suite, first try."""
        legacy = [s for s in ALL_SUITES if s not in LIGHTWEIGHT_SUITES]
        client = replace(client_config,
                         suites=list(LIGHTWEIGHT_SUITES) + legacy)
        server = replace(server_config, suites=list(legacy))
        client_conn, server_conn, log = connect_with_fallback(client, server)
        assert log.attempts == 1
        assert log.suite_fallbacks == 0
        assert client_conn.suite_name == legacy[0].name
        client_conn.send(b"legacy gateway, lightweight handset")
        assert server_conn.receive() == \
            b"legacy gateway, lightweight handset"

    def test_failed_lightweight_attempt_falls_back_to_legacy(
            self, client_config, server_config):
        """When the lightweight attempt itself dies (corrupted
        Finished), the retry walk drops the stream suite and lands on
        the next legacy preference."""
        legacy = [s for s in ALL_SUITES if s not in LIGHTWEIGHT_SUITES]
        client = replace(client_config,
                         suites=[RSA_WITH_TRIVIUM_SHA] + legacy)
        client_conn, server_conn, log = connect_with_fallback(
            client, server_config,
            endpoint_factory=_corrupting_factory(fail_attempts=1))
        assert log.attempts == 2
        assert log.suite_fallbacks == 1
        assert client_conn.suite_name == legacy[0].name
        client_conn.send(b"fell back")
        assert server_conn.receive() == b"fell back"

    def test_exhausted_attempts_raise(self, client_config, server_config):
        with pytest.raises(HandshakeFailure):
            connect_with_fallback(
                client_config, server_config, max_attempts=3,
                endpoint_factory=_corrupting_factory(fail_attempts=99))


class TestResilientSession:
    def test_establish_and_deliver(self, client_config, server_config):
        session = ResilientSession(client_config, server_config)
        assert session.deliver_to_server(b"hello") == b"hello"
        assert session.deliver_to_client(b"world") == b"world"
        assert session.report.full_handshakes == 1
        assert session.report.resumptions == 0
        assert session.session_id is not None

    def test_link_reset_recovers_via_resumption(self, client_config,
                                                server_config):
        channels = []

        def factory():
            channel = DuplexChannel()
            channels.append(channel)
            return channel.endpoint_a(), channel.endpoint_b()

        session = ResilientSession(client_config, server_config,
                                   endpoint_factory=factory)
        assert session.deliver_to_server(b"before") == b"before"
        channels[-1].reset()  # the radio link dies mid-session
        assert session.deliver_to_server(b"after") == b"after"
        report = session.report
        assert report.link_failures == 1
        assert report.redeliveries == 1
        # Recovery ran the abbreviated handshake, not a second full one.
        assert report.resumptions == 1
        assert report.full_handshakes == 1
        assert session.client_cache.hits >= 1
        assert session.server_cache.hits >= 1

    def test_reconnect_returns_path_taken(self, client_config,
                                          server_config):
        session = ResilientSession(client_config, server_config)
        session.establish()
        assert session.reconnect() == "resumed"
        session.teardown()
        assert session.reconnect() == "full"

    def test_bad_mac_invalidates_and_rehandshakes(self, client_config,
                                                  server_config):
        session = ResilientSession(client_config, server_config)
        session.establish()
        first_id = session.session_id
        client_conn, _ = session.connections
        # Desynchronise the record keys: the next record fails its MAC.
        client_conn.session.encoder._sequence += 1
        assert session.deliver_to_server(b"tainted") == b"tainted"
        report = session.report
        assert report.mac_failures == 1
        assert report.rehandshakes_after_mac == 1
        assert report.full_handshakes == 2  # NOT a resumption
        assert report.resumptions == 0
        # The tampered session must no longer be resumable anywhere.
        assert session.session_id != first_id
        assert session.client_cache.lookup(first_id) is None
        assert session.server_cache.lookup(first_id) is None

    def test_delivery_gives_up_after_recovery_budget(self, client_config,
                                                     server_config):
        session = ResilientSession(client_config, server_config)
        session.establish()
        client_conn, server_conn = session.connections

        def poison():
            fresh_client, fresh_server = session.connections
            fresh_client.session.encoder._sequence += 1

        poison()
        # Re-poison after every recovery so delivery can never succeed.
        original_establish = session.establish

        def establishing_and_poisoning():
            original_establish()
            session.connections[0].session.encoder._sequence += 1

        session.establish = establishing_and_poisoning
        with pytest.raises(ChannelClosed):
            session.deliver_to_server(b"never arrives")
        assert session.report.mac_failures >= 2

    def test_recovery_over_lossy_arq_link(self, client_config,
                                          server_config):
        """The full composition: resumption handshake riding go-back-N
        over a 20% drop channel."""
        state = {"links": 0}
        links = []

        def factory():
            state["links"] += 1
            link = ReliableLink(FaultyChannel(
                FaultModel.lossy(0.2), seed=100 + state["links"]))
            links.append(link)
            return link.endpoint_a(), link.endpoint_b()

        session = ResilientSession(client_config, server_config,
                                   endpoint_factory=factory)
        assert session.deliver_to_server(b"over loss") == b"over loss"
        assert session.reconnect() == "resumed"
        assert session.deliver_to_client(b"still here") == b"still here"
        assert session.report.resumptions == 1
        # The lossy links really dropped frames under the session.
        assert any(link.channel.faults.total_drops > 0 for link in links)
