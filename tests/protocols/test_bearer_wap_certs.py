"""Bearer security, the WAP gateway, certificates, KDF, messages."""

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.alerts import CertificateError, DecodeError
from repro.protocols.bearer import (
    SIM,
    BaseStation,
    Handset,
    HomeRegister,
    clone_sim,
)
from repro.protocols.certificates import Certificate, CertificateAuthority
from repro.protocols.ciphersuites import RSA_WITH_3DES_SHA
from repro.protocols.kdf import (
    derive_key_block,
    finished_verify_data,
    master_secret,
    p_hash,
    prf,
)
from repro.protocols.messages import (
    ClientHello,
    ClientKeyExchange,
    Finished,
    ServerHello,
)
from repro.protocols.wap import DEGRADED_PREFIX, build_wap_world


class TestBearer:
    @pytest.fixture()
    def network(self):
        register = HomeRegister()
        sim = SIM("262-01-0001", bytes(range(16)))
        register.provision(sim)
        base_station = BaseStation(register=register,
                                   rng=DeterministicDRBG("bs"))
        return sim, base_station

    def test_authentication_and_traffic(self, network):
        sim, base_station = network
        handset = Handset(sim)
        handset.attach(base_station)
        frame = handset.send_uplink(b"hello network")
        assert base_station.receive_uplink(sim.imsi, frame) == \
            b"hello network"

    def test_operator_sees_plaintext(self, network):
        """The §2 point: bearer security terminates at the base station."""
        sim, base_station = network
        handset = Handset(sim)
        handset.attach(base_station)
        base_station.receive_uplink(
            sim.imsi, handset.send_uplink(b"private sms"))
        assert b"private sms" in base_station.uplink_plaintext

    def test_unattached_handset_rejected(self, network):
        sim, base_station = network
        from repro.protocols.alerts import HandshakeFailure

        with pytest.raises(HandshakeFailure):
            base_station.receive_uplink(sim.imsi, b"raw")

    def test_ciphering_disabled_mode(self, network):
        """GSM networks can silently disable ciphering — data then rides
        in clear over the air."""
        sim, base_station = network
        base_station.ciphering_enabled = False
        handset = Handset(sim)
        handset.attach(base_station)
        over_the_air = handset.send_uplink(b"clear text", ciphering=False)
        assert over_the_air == b"clear text"  # an eavesdropper reads it

    def test_strong_sim_not_cloneable(self, network):
        sim, _ = network
        assert clone_sim(sim, DeterministicDRBG("clone")) is None

    def test_weak_sim_cloned(self):
        """The [25] GSM-cloning result against a COMP128-style A3."""
        weak = SIM("262-01-0002", bytes(range(16, 32)), weak_a3=True)
        recovered = clone_sim(weak, DeterministicDRBG("clone2"))
        assert recovered == weak.ki

    def test_triplet_determinism(self):
        register = HomeRegister()
        sim = SIM("x", bytes(16))
        register.provision(sim)
        a = register.triplet("x", DeterministicDRBG(1))
        b = register.triplet("x", DeterministicDRBG(1))
        assert a == b

    def test_short_ki_rejected_at_construction(self):
        """Regression: a sub-2-byte Ki used to crash deep inside the
        weak-A3 response (modulo by len-1) instead of failing fast."""
        with pytest.raises(ValueError):
            SIM("262-01-0003", b"")
        with pytest.raises(ValueError):
            SIM("262-01-0003", b"K", weak_a3=True)

    def test_minimum_ki_works_in_both_modes(self):
        strong = SIM("262-01-0004", b"Ki")
        assert len(strong.a3_response(b"challenge")) == 4
        weak = SIM("262-01-0005", b"Ki", weak_a3=True)
        assert len(weak.a3_response(b"challenge")) == 4
        assert clone_sim(weak, DeterministicDRBG("tiny")) == b"Ki"

    def test_empty_challenge_rejected(self):
        sim = SIM("262-01-0006", bytes(range(16)))
        with pytest.raises(ValueError):
            sim.a3_response(b"")


class TestWAPGateway:
    def test_end_to_end_request(self):
        handset, gateway, _ = build_wap_world(seed=1)
        handset.send(b"GET /portfolio")
        gateway.forward("origin.example")
        assert handset.receive() == b"OK:GET /portfolio"

    def test_wap_gap_exposes_plaintext(self):
        """The WAP gap: the gateway momentarily holds request and
        response in the clear."""
        handset, gateway, _ = build_wap_world(seed=2)
        handset.send(b"PIN 1234")
        gateway.forward("origin.example")
        handset.receive()
        assert b"PIN 1234" in gateway.plaintext_log
        assert b"OK:PIN 1234" in gateway.plaintext_log

    def test_multiple_round_trips(self):
        handset, gateway, _ = build_wap_world(seed=3)
        for i in range(4):
            handset.send(f"req{i}".encode())
            gateway.forward("origin.example")
            assert handset.receive() == f"OK:req{i}".encode()

    def test_custom_handler(self):
        handset, gateway, _ = build_wap_world(
            seed=4, handler=lambda request: request[::-1])
        handset.send(b"abc")
        gateway.forward("origin.example")
        assert handset.receive() == b"cba"

    def test_unknown_origin_degrades_gracefully(self):
        """An unreachable origin yields a GW-DEGRADED reply over WTLS
        instead of crashing the gateway mid-proxy."""
        handset, gateway, _ = build_wap_world(seed=5)
        handset.send(b"GET /nowhere")
        reply = gateway.forward("no-such-origin.example")
        assert reply.startswith(DEGRADED_PREFIX)
        assert handset.receive() == reply
        assert gateway.degraded_responses == 1
        assert gateway.wired_leg_failures == 0

    def test_broken_wired_leg_retries_on_fresh_connection(self):
        """A failed TLS exchange toward the origin tears down the cached
        leg and the retry succeeds over a fresh handshake."""
        handset, gateway, _ = build_wap_world(seed=6)
        handset.send(b"warm up")
        gateway.forward("origin.example")
        assert handset.receive() == b"OK:warm up"
        # Desynchronise the cached TLS leg: its next record fails MAC.
        gateway._server_connections[
            "origin.example"].session.encoder._sequence += 1
        handset.send(b"after the storm")
        reply = gateway.forward("origin.example")
        assert reply == b"OK:after the storm"
        assert handset.receive() == reply
        assert gateway.wired_leg_failures == 1
        assert gateway.degraded_responses == 0

    def test_persistently_dead_wired_leg_degrades(self):
        handset, gateway, _ = build_wap_world(seed=7)
        handset.send(b"warm up")
        gateway.forward("origin.example")
        handset.receive()

        original = gateway._proxy_once

        def always_failing(destination, request):
            # Re-break every leg, fresh ones included, before using it.
            gateway._server_connection(destination)
            gateway._server_connections[
                destination].session.encoder._sequence += 1
            return original(destination, request)

        gateway._proxy_once = always_failing
        handset.send(b"doomed")
        reply = gateway.forward("origin.example", wired_retries=1)
        assert reply.startswith(DEGRADED_PREFIX)
        assert gateway.wired_leg_failures == 2
        assert gateway.degraded_responses == 1
        assert handset.receive() == reply


class TestCertificates:
    def test_issue_and_validate(self, ca):
        _, cert = ca.issue("device.example", DeterministicDRBG("dev"))
        ca.validate(cert, now=500, expected_subject="device.example")

    def test_serialization_roundtrip(self, ca):
        _, cert = ca.issue("ser.example", DeterministicDRBG("ser"))
        assert Certificate.from_bytes(cert.to_bytes()) == cert

    def test_wrong_issuer_rejected(self, ca):
        other = CertificateAuthority("Other", DeterministicDRBG("other"))
        _, cert = other.issue("x.example", DeterministicDRBG("x"))
        with pytest.raises(CertificateError):
            ca.validate(cert)

    def test_forged_signature_rejected(self, ca):
        _, cert = ca.issue("f.example", DeterministicDRBG("f"))
        forged = Certificate(
            subject="f.example", issuer=cert.issuer,
            public_key=cert.public_key, not_before=cert.not_before,
            not_after=cert.not_after,
            signature=bytes(len(cert.signature)),
        )
        with pytest.raises(CertificateError):
            ca.validate(forged)

    def test_validity_window(self, ca):
        _, cert = ca.issue("w.example", DeterministicDRBG("w"),
                           not_before=100, not_after=200)
        ca.validate(cert, now=150)
        with pytest.raises(CertificateError):
            ca.validate(cert, now=50)
        with pytest.raises(CertificateError):
            ca.validate(cert, now=250)

    def test_subject_rebinding_rejected(self, ca):
        """Changing the subject breaks the signature (name binding)."""
        _, cert = ca.issue("orig.example", DeterministicDRBG("o"))
        rebound = Certificate(
            subject="evil.example", issuer=cert.issuer,
            public_key=cert.public_key, not_before=cert.not_before,
            not_after=cert.not_after, signature=cert.signature,
        )
        with pytest.raises(CertificateError):
            ca.validate(rebound)

    def test_truncated_bytes_rejected(self, ca):
        _, cert = ca.issue("t.example", DeterministicDRBG("t"))
        with pytest.raises(CertificateError):
            Certificate.from_bytes(cert.to_bytes()[:20])


class TestKDF:
    def test_p_hash_length(self):
        for length in (1, 20, 21, 100):
            assert len(p_hash(b"secret", b"seed", length)) == length

    def test_prf_label_separation(self):
        assert prf(b"s", b"label-a", b"seed", 20) != \
            prf(b"s", b"label-b", b"seed", 20)

    def test_master_secret_binds_both_nonces(self):
        base = master_secret(b"pm", b"cr", b"sr")
        assert master_secret(b"pm", b"cX", b"sr") != base
        assert master_secret(b"pm", b"cr", b"sX") != base
        assert len(base) == 48

    def test_key_block_layout(self):
        keys = derive_key_block(b"m" * 48, b"c" * 32, b"s" * 32,
                                RSA_WITH_3DES_SHA)
        assert len(keys.client_mac_key) == 20
        assert len(keys.client_cipher_key) == 24
        assert len(keys.client_iv) == 8
        assert keys.client_cipher_key != keys.server_cipher_key

    def test_export_weakening_changes_keys(self):
        from repro.protocols.ciphersuites import RSA_WITH_RC2_MD5

        weak = derive_key_block(b"m" * 48, b"c" * 32, b"s" * 32,
                                RSA_WITH_RC2_MD5)
        assert len(weak.client_cipher_key) == 16  # stretched back

    def test_finished_verify_data(self):
        a = finished_verify_data(b"m" * 48, b"digest", b"client finished")
        b = finished_verify_data(b"m" * 48, b"digest", b"server finished")
        assert len(a) == 12
        assert a != b


class TestMessages:
    def test_client_hello_roundtrip(self):
        hello = ClientHello(bytes(32), ["A", "B", "C"])
        assert ClientHello.from_bytes(hello.to_bytes()) == hello

    def test_server_hello_roundtrip(self):
        hello = ServerHello(bytes(32), "SUITE", b"certbytes", b"kex", True)
        parsed = ServerHello.from_bytes(hello.to_bytes())
        assert parsed == hello

    def test_ckx_roundtrip(self):
        ckx = ClientKeyExchange(b"encrypted", b"cert", b"verify")
        assert ClientKeyExchange.from_bytes(ckx.to_bytes()) == ckx

    def test_finished_roundtrip(self):
        finished = Finished(bytes(12))
        assert Finished.from_bytes(finished.to_bytes()) == finished

    def test_wrong_type_rejected(self):
        hello = ClientHello(bytes(32), ["A"])
        with pytest.raises(DecodeError):
            ServerHello.from_bytes(hello.to_bytes())

    def test_truncation_rejected(self):
        hello = ClientHello(bytes(32), ["A"])
        with pytest.raises(DecodeError):
            ClientHello.from_bytes(hello.to_bytes()[:-3])

    def test_trailing_bytes_rejected(self):
        hello = ClientHello(bytes(32), ["A"])
        with pytest.raises(DecodeError):
            ClientHello.from_bytes(hello.to_bytes() + b"x")

    def test_empty_message_rejected(self):
        with pytest.raises(DecodeError):
            Finished.from_bytes(b"")
