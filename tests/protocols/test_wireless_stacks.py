"""WTLS, WEP, and ESP behaviour (the wireless §2 stacks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.alerts import (
    BadRecordMAC,
    DecodeError,
    ReplayError,
)
from repro.protocols.ciphersuites import RSA_WITH_AES_SHA, RSA_WITH_RC4_SHA
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.ipsec import SecurityAssociation, make_tunnel
from repro.protocols.wep import WEPFrame, WEPStation
from repro.protocols.wtls import wtls_connect
from repro.crypto.errors import InvalidKeyLength


@pytest.fixture()
def wtls_pair(ca, server_credentials):
    key, cert = server_credentials
    client = ClientConfig(rng=DeterministicDRBG("wtls-c"), ca=ca)
    server = ServerConfig(rng=DeterministicDRBG("wtls-s"),
                          certificate=cert, private_key=key)
    return wtls_connect(client, server)


class TestWTLS:
    def test_roundtrip(self, wtls_pair):
        handset, gateway = wtls_pair
        handset.send(b"balance?")
        assert gateway.receive() == b"balance?"
        gateway.send(b"42")
        assert handset.receive() == b"42"

    def test_loss_tolerance(self, wtls_pair):
        """Datagram records decode despite lost predecessors."""
        handset, gateway = wtls_pair
        handset.send(b"lost")       # never delivered
        gateway.endpoint.receive()  # simulate loss: drop the frame
        handset.send(b"arrives")
        assert gateway.receive() == b"arrives"

    def test_replay_rejected(self, wtls_pair):
        handset, gateway = wtls_pair
        record = handset.encoder.encode(b"pay 10")
        gateway.decoder.decode(record)
        with pytest.raises(ReplayError):
            gateway.decoder.decode(record)

    def test_tamper_rejected(self, wtls_pair):
        handset, gateway = wtls_pair
        record = bytearray(handset.encoder.encode(b"important"))
        record[-1] ^= 1
        with pytest.raises(BadRecordMAC):
            gateway.decoder.decode(bytes(record))

    def test_receive_next_skips_damaged_datagrams(self, wtls_pair):
        """The datagram reader degrades gracefully: damaged records are
        discarded (and counted) instead of killing the session."""
        handset, gateway = wtls_pair
        damaged = bytearray(handset.encoder.encode(b"mangled"))
        damaged[-1] ^= 1
        handset.endpoint.send(bytes(damaged))
        handset.send(b"good one")
        assert gateway.receive_next() == b"good one"
        assert gateway.discarded == 1

    def test_receive_next_budget_exhausts(self, wtls_pair):
        handset, gateway = wtls_pair
        for _ in range(3):
            damaged = bytearray(handset.encoder.encode(b"x"))
            damaged[-1] ^= 1
            handset.endpoint.send(bytes(damaged))
        with pytest.raises(BadRecordMAC):
            gateway.receive_next(max_skip=2)
        assert gateway.discarded == 3

    def test_records_lost_counts_sequence_gaps(self, wtls_pair):
        handset, gateway = wtls_pair
        handset.send(b"first")       # seq 0, lost below
        gateway.endpoint.receive()   # simulate loss: drop the frame
        handset.send(b"second")      # seq 1
        assert gateway.receive() == b"second"
        assert gateway.records_lost == 1

    def test_truncated_mac_length(self, wtls_pair):
        """WTLS trades MAC bytes for bandwidth: 10-byte tags."""
        from repro.protocols.wtls import WTLS_MAC_BYTES

        handset, _ = wtls_pair
        record = handset.encoder.encode(b"")
        body_length = int.from_bytes(record[4:6], "big")
        # NULL-adjacent check: for stream/block the body >= MAC size.
        assert body_length >= WTLS_MAC_BYTES

    def test_stream_suite_datagrams(self, ca, server_credentials):
        key, cert = server_credentials
        client = ClientConfig(rng=DeterministicDRBG("wc2"), ca=ca,
                              suites=[RSA_WITH_RC4_SHA])
        server = ServerConfig(rng=DeterministicDRBG("ws2"),
                              certificate=cert, private_key=key)
        handset, gateway = wtls_connect(client, server)
        for i in range(5):
            handset.send(f"dgram {i}".encode())
        # Out-of-order delivery: drain all, order preserved by channel
        for i in range(5):
            assert gateway.receive() == f"dgram {i}".encode()

    def test_short_record_rejected(self, wtls_pair):
        _, gateway = wtls_pair
        with pytest.raises(DecodeError):
            gateway.decoder.decode(b"\x00\x00\x01")


class TestWEP:
    def test_interoperability(self):
        sender = WEPStation(b"abcde")
        receiver = WEPStation(b"abcde")
        frame = sender.encrypt(b"association request")
        assert receiver.decrypt(frame) == b"association request"

    def test_wire_format_roundtrip(self):
        frame = WEPStation(b"abcde").encrypt(b"payload")
        parsed = WEPFrame.from_bytes(frame.to_bytes())
        assert parsed == frame

    def test_wrong_key_fails_icv(self):
        frame = WEPStation(b"abcde").encrypt(b"payload")
        with pytest.raises(BadRecordMAC):
            WEPStation(b"fghij").decrypt(frame)

    def test_iv_counter_mode_increments(self):
        station = WEPStation(b"abcde")
        first = station.encrypt(b"x")
        second = station.encrypt(b"x")
        assert first.iv != second.iv
        assert int.from_bytes(second.iv, "big") == \
            int.from_bytes(first.iv, "big") + 1

    def test_iv_wraps_at_24_bits(self):
        station = WEPStation(b"abcde")
        station._iv_counter = (1 << 24) - 1
        last = station.encrypt(b"x")
        wrapped = station.encrypt(b"x")
        assert last.iv == b"\xff\xff\xff"
        assert wrapped.iv == b"\x00\x00\x00"  # keystream reuse guaranteed

    def test_random_iv_mode(self):
        station = WEPStation(b"abcde", iv_mode="random",
                             rng=DeterministicDRBG(5))
        frames = [station.encrypt(b"x") for _ in range(10)]
        assert len({f.iv for f in frames}) > 1

    def test_key_lengths(self):
        WEPStation(b"a" * 5)
        WEPStation(b"a" * 13)
        with pytest.raises(InvalidKeyLength):
            WEPStation(b"a" * 8)

    def test_same_iv_same_keystream(self):
        """The WEP flaw in one assertion: IV collision => identical
        keystream."""
        station = WEPStation(b"abcde")
        ks1 = station.keystream_for_iv(b"\x00\x01\x02", 32)
        ks2 = station.keystream_for_iv(b"\x00\x01\x02", 32)
        assert ks1 == ks2

    def test_frame_too_short(self):
        with pytest.raises(DecodeError):
            WEPFrame.from_bytes(b"\x00\x00")


class TestESP:
    def test_roundtrip(self):
        sender, receiver = make_tunnel(0x100, seed=1)
        packet = sender.encapsulate(b"ip datagram payload")
        sequence, payload = receiver.decapsulate(packet)
        assert sequence == 1
        assert payload == b"ip datagram payload"

    def test_sequence_increments(self):
        sender, receiver = make_tunnel(0x100, seed=2)
        for expected in (1, 2, 3):
            seq, _ = receiver.decapsulate(sender.encapsulate(b"x"))
            assert seq == expected

    def test_replay_rejected(self):
        sender, receiver = make_tunnel(0x100, seed=3)
        packet = sender.encapsulate(b"once")
        receiver.decapsulate(packet)
        with pytest.raises(ReplayError):
            receiver.decapsulate(packet)
        assert receiver.replay_drops == 1

    def test_out_of_order_within_window_ok(self):
        sender, receiver = make_tunnel(0x100, seed=4)
        packets = [sender.encapsulate(f"p{i}".encode()) for i in range(5)]
        receiver.decapsulate(packets[4])
        receiver.decapsulate(packets[1])  # late but inside window
        receiver.decapsulate(packets[2])
        with pytest.raises(ReplayError):
            receiver.decapsulate(packets[1])  # replayed late packet

    def test_below_window_rejected(self):
        sender, receiver = make_tunnel(0x100, seed=5)
        early = sender.encapsulate(b"early")
        for _ in range(70):  # push window far past sequence 1
            receiver.decapsulate(sender.encapsulate(b"fill"))
        with pytest.raises(ReplayError):
            receiver.decapsulate(early)

    def test_tamper_rejected_before_decrypt(self):
        sender, receiver = make_tunnel(0x100, seed=6)
        packet = bytearray(sender.encapsulate(b"payload"))
        packet[12] ^= 0xFF  # flip ciphertext
        with pytest.raises(BadRecordMAC):
            receiver.decapsulate(bytes(packet))

    def test_wrong_spi_rejected(self):
        sender, _ = make_tunnel(0x100, seed=7)
        _, receiver = make_tunnel(0x200, seed=7)
        with pytest.raises(DecodeError):
            receiver.decapsulate(sender.encapsulate(b"x"))

    def test_aes_suite_tunnel(self):
        sender, receiver = make_tunnel(0x300, seed=8, suite=RSA_WITH_AES_SHA)
        packet = sender.encapsulate(b"aes protected")
        assert receiver.decapsulate(packet)[1] == b"aes protected"

    def test_packet_too_short(self):
        _, receiver = make_tunnel(0x100, seed=9)
        with pytest.raises(DecodeError):
            receiver.decapsulate(bytes(10))


@settings(max_examples=20, deadline=None)
@given(payload=st.binary(max_size=300))
def test_esp_roundtrip_property(payload):
    sender, receiver = make_tunnel(0x500, seed=10)
    assert receiver.decapsulate(sender.encapsulate(payload))[1] == payload
