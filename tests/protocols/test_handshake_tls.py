"""The mini-TLS handshake: negotiation, auth, failure modes."""

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.alerts import (
    BadRecordMAC,
    CertificateError,
    HandshakeFailure,
)
from repro.protocols.certificates import CertificateAuthority
from repro.protocols.ciphersuites import (
    ALL_SUITES,
    DH_WITH_3DES_SHA,
    RSA_WITH_3DES_SHA,
    RSA_WITH_AES_SHA,
    RSA_WITH_RC2_MD5,
    RSA_WITH_RC4_SHA,
    negotiate,
    suites_for_registry,
)
from repro.crypto.registry import aes_rollout, default_registry
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.tls import connect
from repro.protocols.transport import DuplexChannel


def make_client(ca, seed="c", **kwargs):
    return ClientConfig(rng=DeterministicDRBG(seed), ca=ca, **kwargs)


def make_server(server_credentials, seed="s", **kwargs):
    key, cert = server_credentials
    return ServerConfig(rng=DeterministicDRBG(seed), certificate=cert,
                        private_key=key, **kwargs)


class TestNegotiation:
    def test_first_client_preference_wins(self, ca, server_credentials):
        client = make_client(ca, suites=[RSA_WITH_RC4_SHA, RSA_WITH_3DES_SHA])
        server = make_server(server_credentials)
        conn_c, conn_s = connect(client, server)
        assert conn_c.suite_name == "RSA_WITH_RC4_128_SHA"
        assert conn_s.suite_name == conn_c.suite_name

    def test_server_restriction_respected(self, ca, server_credentials):
        client = make_client(ca)  # offers everything
        server = make_server(server_credentials,
                             suites=[RSA_WITH_AES_SHA])
        conn_c, _ = connect(client, server)
        assert conn_c.suite_name == "RSA_WITH_AES_128_CBC_SHA"

    def test_no_common_suite_fails(self, ca, server_credentials):
        client = make_client(ca, suites=[RSA_WITH_RC4_SHA])
        server = make_server(server_credentials, suites=[RSA_WITH_3DES_SHA])
        with pytest.raises(HandshakeFailure):
            connect(client, server)

    def test_negotiate_helper(self):
        assert negotiate([RSA_WITH_RC4_SHA], [RSA_WITH_RC4_SHA]) is \
            RSA_WITH_RC4_SHA
        assert negotiate([RSA_WITH_RC4_SHA], [RSA_WITH_3DES_SHA]) is None

    def test_registry_gates_suites(self):
        registry = default_registry()
        before = {s.name for s in suites_for_registry(registry)}
        assert "RSA_WITH_AES_128_CBC_SHA" not in before
        aes_rollout(registry)
        after = {s.name for s in suites_for_registry(registry)}
        assert "RSA_WITH_AES_128_CBC_SHA" in after

    @pytest.mark.parametrize("suite", [s for s in ALL_SUITES
                                       if s.cipher != "NULL"],
                             ids=lambda s: s.name)
    def test_every_suite_carries_data(self, ca, server_credentials, suite):
        client = make_client(ca, suites=[suite])
        server = make_server(server_credentials)
        conn_c, conn_s = connect(client, server)
        conn_c.send(b"up " + suite.name.encode())
        assert conn_s.receive() == b"up " + suite.name.encode()
        conn_s.send(b"down")
        assert conn_c.receive() == b"down"


class TestAuthentication:
    def test_server_name_check(self, ca, server_credentials):
        client = make_client(ca, expected_server="other.example")
        server = make_server(server_credentials)
        with pytest.raises(CertificateError):
            connect(client, server)

    def test_untrusted_ca_rejected(self, server_credentials):
        rogue_ca = CertificateAuthority("RogueCA", DeterministicDRBG("rogue"))
        client = make_client(rogue_ca)
        server = make_server(server_credentials)
        with pytest.raises(CertificateError):
            connect(client, server)

    def test_expired_certificate_rejected(self, ca):
        key, cert = ca.issue("old.example", DeterministicDRBG("old"),
                             not_before=0, not_after=10)
        client = make_client(ca)
        client.now = 100
        server = ServerConfig(rng=DeterministicDRBG("s"), certificate=cert,
                              private_key=key)
        with pytest.raises(CertificateError):
            connect(client, server)

    def test_mutual_auth_succeeds(self, ca, server_credentials,
                                  client_credentials):
        ckey, ccert = client_credentials
        client = make_client(ca, certificate=ccert, private_key=ckey)
        server = make_server(server_credentials, require_client_auth=True,
                             ca=ca)
        conn_c, conn_s = connect(client, server)
        assert conn_s.session.peer_certificate.subject == "client.device"

    def test_mutual_auth_without_credential_fails(self, ca,
                                                  server_credentials):
        client = make_client(ca)
        server = make_server(server_credentials, require_client_auth=True,
                             ca=ca)
        with pytest.raises(HandshakeFailure):
            connect(client, server)


class TestActiveAttacks:
    def test_mitm_suite_downgrade_detected(self, ca, server_credentials):
        """A MITM rewriting the ClientHello to strip strong suites is
        caught (here: the handshake breaks rather than silently
        downgrading, because the key exchange binds the transcript)."""

        def downgrade(frame, direction):
            if direction == "a->b" and frame[:1] == b"\x01":
                strong = b"RSA_WITH_3DES_EDE_CBC_SHA"
                weak = b"RSA_EXPORT_WITH_RC2_CBC_40"
                if strong in frame:
                    return frame.replace(strong, weak[:len(strong)])
            return frame

        channel = DuplexChannel(interceptor=downgrade)
        client = make_client(ca, suites=[RSA_WITH_3DES_SHA, RSA_WITH_RC2_MD5])
        server = make_server(server_credentials)
        with pytest.raises((HandshakeFailure, BadRecordMAC, Exception)):
            conn_c, conn_s = connect(client, server, channel)
            conn_c.send(b"x")
            conn_s.receive()

    def test_handshake_tamper_breaks_finished(self, ca, server_credentials):
        """Flipping any pre-Finished byte desynchronises the transcript
        digests, so a Finished check must fail."""
        state = {"done": False}

        def tamper(frame, direction):
            # Corrupt a byte of the ClientKeyExchange (type 3).
            if (direction == "a->b" and frame[:1] == b"\x03"
                    and not state["done"]):
                state["done"] = True
                mutated = bytearray(frame)
                mutated[10] ^= 0x01
                return bytes(mutated)
            return frame

        channel = DuplexChannel(interceptor=tamper)
        client = make_client(ca)
        server = make_server(server_credentials)
        with pytest.raises((HandshakeFailure, BadRecordMAC, Exception)):
            connect(client, server, channel)

    def test_application_data_tamper_detected(self, ca, server_credentials):
        flip = {"armed": False}

        def tamper(frame, direction):
            if flip["armed"] and direction == "a->b":
                mutated = bytearray(frame)
                mutated[-1] ^= 0xFF
                return bytes(mutated)
            return frame

        channel = DuplexChannel(interceptor=tamper)
        conn_c, conn_s = connect(
            make_client(ca), make_server(server_credentials), channel)
        flip["armed"] = True
        conn_c.send(b"transfer 100")
        with pytest.raises(BadRecordMAC):
            conn_s.receive()

    def test_eavesdropper_sees_no_plaintext(self, ca, server_credentials):
        channel = DuplexChannel()
        conn_c, conn_s = connect(
            make_client(ca), make_server(server_credentials), channel)
        secret = b"PIN=1234 ACCOUNT=9876543210"
        conn_c.send(secret)
        conn_s.receive()
        for _, frame in channel.log:
            assert secret not in frame


class TestSessionProperties:
    def test_shared_master_secret(self, ca, server_credentials):
        conn_c, conn_s = connect(
            make_client(ca), make_server(server_credentials))
        assert conn_c.session.master == conn_s.session.master

    def test_different_runs_different_keys(self, ca, server_credentials):
        first_c, _ = connect(
            make_client(ca, seed="run1"), make_server(server_credentials,
                                                      seed="srv1"))
        second_c, _ = connect(
            make_client(ca, seed="run2"), make_server(server_credentials,
                                                      seed="srv2"))
        assert first_c.session.master != second_c.session.master

    def test_transcript_digests_agree(self, ca, server_credentials):
        conn_c, conn_s = connect(
            make_client(ca), make_server(server_credentials))
        assert conn_c.session.transcript_digest == \
            conn_s.session.transcript_digest

    def test_byte_counters(self, ca, server_credentials):
        conn_c, conn_s = connect(
            make_client(ca), make_server(server_credentials))
        conn_c.send(b"12345")
        conn_s.receive()
        assert conn_c.bytes_sent == 5
        assert conn_s.bytes_received == 5

    def test_dh_forward_secrecy_setup(self, ca, server_credentials):
        client = make_client(ca, suites=[DH_WITH_3DES_SHA])
        server = make_server(server_credentials)
        conn_c, conn_s = connect(client, server)
        conn_c.send(b"ephemeral")
        assert conn_s.receive() == b"ephemeral"
