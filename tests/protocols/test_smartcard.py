"""The ISO 7816-style SIM card interface."""

import pytest

from repro.protocols.bearer import SIM
from repro.protocols.smartcard import (
    APDU,
    FILE_ICCID,
    FILE_IMSI,
    INS_READ_BINARY,
    INS_RUN_GSM_ALGORITHM,
    INS_SELECT_FILE,
    INS_VERIFY_CHV,
    SIMCard,
    SW_BLOCKED,
    SW_OK,
    SW_SECURITY_NOT_SATISFIED,
    SW_WRONG_LENGTH,
    kiosk_cloning_attack,
)


@pytest.fixture()
def card():
    return SIMCard(sim=SIM("262-01-7777", bytes(range(16))), chv1=b"1234")


def _verify(card, pin=b"1234"):
    return card.transmit(APDU(0xA0, INS_VERIFY_CHV, data=pin))


class TestPINGate:
    def test_correct_pin(self, card):
        assert _verify(card).ok
        assert card.nvm["chv1_retries"] == 3

    def test_wrong_pin_decrements(self, card):
        response = _verify(card, b"0000")
        assert response.sw == 0x63C2  # two retries left
        assert card.nvm["chv1_retries"] == 2

    def test_three_strikes_blocks(self, card):
        for _ in range(2):
            _verify(card, b"9999")
        assert _verify(card, b"9999").sw == SW_BLOCKED
        # Even the correct PIN is refused once blocked.
        assert _verify(card).sw == SW_BLOCKED

    def test_power_cycle_does_not_reset_retries(self, card):
        """The classic bypass attempt: guess, power-cycle, repeat."""
        _verify(card, b"9999")
        card.power_cycle()
        assert card.nvm["chv1_retries"] == 2  # persisted in NVM
        _verify(card, b"9999")
        card.power_cycle()
        assert _verify(card, b"9999").sw == SW_BLOCKED

    def test_correct_pin_resets_counter(self, card):
        _verify(card, b"9999")
        assert _verify(card).ok
        assert card.nvm["chv1_retries"] == 3

    def test_power_cycle_clears_session_auth(self, card):
        _verify(card)
        card.power_cycle()
        response = card.transmit(
            APDU(0xA0, INS_RUN_GSM_ALGORITHM, data=bytes(16)))
        assert response.sw == SW_SECURITY_NOT_SATISFIED


class TestFileSystem:
    def test_iccid_world_readable(self, card):
        card.transmit(APDU(0xA0, INS_SELECT_FILE,
                           data=FILE_ICCID.to_bytes(2, "big")))
        response = card.transmit(APDU(0xA0, INS_READ_BINARY))
        assert response.ok and response.data == card.iccid

    def test_imsi_requires_chv1(self, card):
        card.transmit(APDU(0xA0, INS_SELECT_FILE,
                           data=FILE_IMSI.to_bytes(2, "big")))
        assert card.transmit(APDU(0xA0, INS_READ_BINARY)).sw == \
            SW_SECURITY_NOT_SATISFIED
        _verify(card)
        response = card.transmit(APDU(0xA0, INS_READ_BINARY))
        assert response.ok and response.data == b"262-01-7777"

    def test_unknown_file(self, card):
        response = card.transmit(APDU(0xA0, INS_SELECT_FILE,
                                      data=(0x1234).to_bytes(2, "big")))
        assert not response.ok

    def test_unknown_instruction(self, card):
        assert not card.transmit(APDU(0xA0, 0xEE)).ok


class TestRunGSMAlgorithm:
    def test_produces_sres_and_kc(self, card):
        _verify(card)
        response = card.transmit(
            APDU(0xA0, INS_RUN_GSM_ALGORITHM, data=bytes(16)))
        assert response.ok
        assert len(response.data) == 12  # SRES(4) + Kc(8)
        assert response.data[:4] == card.sim.a3_response(bytes(16))

    def test_challenge_length_enforced(self, card):
        _verify(card)
        assert card.transmit(
            APDU(0xA0, INS_RUN_GSM_ALGORITHM, data=bytes(8))).sw == \
            SW_WRONG_LENGTH

    def test_gated_behind_chv1(self, card):
        assert card.transmit(
            APDU(0xA0, INS_RUN_GSM_ALGORITHM, data=bytes(16))).sw == \
            SW_SECURITY_NOT_SATISFIED


class TestKioskCloning:
    def test_weak_card_cloned_through_apdus(self):
        weak = SIMCard(sim=SIM("262-01-0002", bytes(range(16, 32)),
                               weak_a3=True), chv1=b"1234")
        recovered = kiosk_cloning_attack(weak, b"1234")
        assert recovered == weak.sim.ki
        # The whole attack went through the card interface (CHV verify
        # + a few dozen chosen RUN-GSM challenges).
        assert len(weak.apdu_log) > 30

    def test_strong_card_resists(self, card):
        assert kiosk_cloning_attack(card, b"1234") is None

    def test_wrong_pin_stops_attack(self):
        weak = SIMCard(sim=SIM("x", bytes(range(16)), weak_a3=True),
                       chv1=b"1234")
        assert kiosk_cloning_attack(weak, b"0000") is None
