"""Batched record plane: equivalence, transactional state, wrap guards.

The three confirmed record-layer bugs this PR fixes are pinned here:

* raw ``OverflowError`` on oversized payloads -> ``RecordOverflow``
  (and ``encode_batch`` auto-fragments instead);
* CBC residue IV committed before MAC verification, poisoning every
  later valid record -> transactional decoder state;
* raw ``OverflowError`` on sequence-counter wrap (TLS 64-bit MAC
  header, WTLS 32-bit wire field) -> ``RenegotiationRequired``.

Plus the both-path property: ``encode_batch``/``decode_batch`` are
byte-identical to N sequential ``encode``/``decode`` calls on every
suite and both dispatch paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import fastpath
from repro.protocols import records_batch
from repro.protocols.alerts import (
    BadRecordMAC,
    DecodeError,
    RecordOverflow,
    RenegotiationRequired,
)
from repro.protocols.ciphersuites import (
    ALL_SUITES,
    NULL_WITH_SHA,
    RSA_WITH_AES_SHA,
    RSA_WITH_RC4_MD5,
)
from repro.protocols.kdf import KeyBlock
from repro.protocols.records import (
    CONTENT_APPLICATION,
    RecordDecoder,
    RecordEncoder,
)
from repro.protocols.records_batch import (
    MAX_FRAGMENT,
    TLS_MAX_SEQUENCE,
    WTLS_MAX_SEQUENCE,
    BatchRecordError,
)
from repro.protocols.reliable import (
    KIND_DATA,
    MAX_FRAME_PAYLOAD,
    FrameTooLarge,
    encode_frame,
)
from repro.protocols.wtls import WTLSRecordDecoder, WTLSRecordEncoder


def _key_block(suite):
    def material(tag, count):
        return bytes((tag + i) % 256 for i in range(count))

    return KeyBlock(
        client_mac_key=material(1, suite.mac_key_bytes),
        server_mac_key=material(2, suite.mac_key_bytes),
        client_cipher_key=material(3, suite.cipher_key_bytes),
        server_cipher_key=material(4, suite.cipher_key_bytes),
        client_iv=material(5, suite.iv_bytes),
        server_iv=material(6, suite.iv_bytes),
    )


def _tls_pair(suite):
    keys = _key_block(suite)
    return (RecordEncoder(suite, keys.client_cipher_key,
                          keys.client_mac_key, keys.client_iv),
            RecordDecoder(suite, keys.client_cipher_key,
                          keys.client_mac_key, keys.client_iv))


def _wtls_pair(suite):
    keys = _key_block(suite)
    return (WTLSRecordEncoder(suite, keys.client_cipher_key,
                              keys.client_mac_key, keys.client_iv),
            WTLSRecordDecoder(suite, keys.client_cipher_key,
                              keys.client_mac_key, keys.client_iv))


# ---------------------------------------------------------------------------
# The both-path equivalence property
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("suite", ALL_SUITES, ids=lambda s: s.name)
@pytest.mark.parametrize("path", ["fast", "reference"])
@settings(max_examples=5, deadline=None)
@given(payloads=st.lists(st.binary(max_size=300), min_size=1, max_size=3))
def test_batch_equals_sequential(suite, path, payloads):
    with fastpath.force(path == "fast"):
        enc_single, dec_single = _tls_pair(suite)
        enc_batch, dec_batch = _tls_pair(suite)
        sequential = [enc_single.encode(CONTENT_APPLICATION, p)
                      for p in payloads]
        batch = enc_batch.encode_batch(
            [(CONTENT_APPLICATION, p) for p in payloads])
        assert batch == b"".join(sequential)
        assert dec_batch.decode_batch(batch) == [
            dec_single.decode(record) for record in sequential]

        wenc_single, wdec_single = _wtls_pair(suite)
        wenc_batch, wdec_batch = _wtls_pair(suite)
        sequential = [wenc_single.encode(p) for p in payloads]
        batch = wenc_batch.encode_batch(payloads)
        assert batch == b"".join(sequential)
        records, damaged = wdec_batch.decode_batch(batch)
        assert not damaged
        assert records == [wdec_single.decode(record)
                           for record in sequential]


def test_batch_of_one_is_byte_identical_to_single():
    enc_a, _ = _tls_pair(RSA_WITH_AES_SHA)
    enc_b, _ = _tls_pair(RSA_WITH_AES_SHA)
    payload = bytes(range(200)) * 3
    assert (enc_a.encode_batch([(CONTENT_APPLICATION, payload)])
            == enc_b.encode(CONTENT_APPLICATION, payload))


# ---------------------------------------------------------------------------
# Bugfix 1: oversized payloads -> RecordOverflow, batch auto-fragments
# ---------------------------------------------------------------------------


def test_oversized_payload_raises_record_overflow_not_overflow_error():
    # Repro from the issue: a 65530-byte payload + 16-byte MAC overflows
    # the 2-byte length field and used to crash with a raw OverflowError.
    encoder, _ = _tls_pair(RSA_WITH_RC4_MD5)
    with pytest.raises(RecordOverflow):
        encoder.encode(CONTENT_APPLICATION, b"\xA5" * 65530)
    # The guard is the TLS 2^14 fragment ceiling, not the field width.
    with pytest.raises(RecordOverflow):
        encoder.encode(CONTENT_APPLICATION, b"\xA5" * (MAX_FRAGMENT + 1))
    assert encoder.sequence == 0  # failed sends commit nothing


def test_mac_helper_guards_the_same_ceiling():
    encoder, _ = _tls_pair(NULL_WITH_SHA)
    with pytest.raises(RecordOverflow):
        encoder._mac(CONTENT_APPLICATION, b"x" * (MAX_FRAGMENT + 1))


def test_ceiling_sized_payload_still_encodes():
    encoder, decoder = _tls_pair(RSA_WITH_RC4_MD5)
    payload = b"\x5A" * MAX_FRAGMENT
    assert decoder.decode(encoder.encode(CONTENT_APPLICATION, payload)) == \
        (CONTENT_APPLICATION, payload)


def test_encode_batch_auto_fragments_oversized_payloads():
    encoder, decoder = _tls_pair(RSA_WITH_RC4_MD5)
    payload = bytes((i * 7) % 256 for i in range(65530))
    batch = encoder.encode_batch([(CONTENT_APPLICATION, payload)])
    records = decoder.decode_batch(batch)
    assert len(records) == 4  # ceil(65530 / 16384)
    assert all(t == CONTENT_APPLICATION for t, _ in records)
    assert b"".join(p for _, p in records) == payload


def test_wtls_encode_batch_auto_fragments():
    encoder, decoder = _wtls_pair(RSA_WITH_AES_SHA)
    payload = bytes((i * 11) % 256 for i in range(40000))
    with pytest.raises(RecordOverflow):
        encoder.encode(payload)
    batch = encoder.encode_batch([payload])
    records, damaged = decoder.decode_batch(batch)
    assert not damaged
    assert len(records) == 3  # ceil(40000 / 16384)
    assert b"".join(p for _, p in records) == payload


# ---------------------------------------------------------------------------
# Bugfix 2: transactional decoder state
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "suite", [RSA_WITH_AES_SHA, RSA_WITH_RC4_MD5, NULL_WITH_SHA],
    ids=lambda s: s.name)
def test_tampered_record_does_not_poison_valid_successors(suite):
    # Repro from the issue: tamper record 1, and record 2 used to fail
    # despite being authentic (the CBC residue IV advanced on failure).
    encoder, decoder = _tls_pair(suite)
    records = [encoder.encode(CONTENT_APPLICATION, f"rec-{i}".encode() * 20)
               for i in range(3)]
    assert decoder.decode(records[0])[1].startswith(b"rec-0")
    tampered = bytearray(records[1])
    tampered[-1] ^= 0x01
    with pytest.raises(BadRecordMAC):
        decoder.decode(bytes(tampered))
    # A retransmission of the genuine record verifies: nothing committed.
    assert decoder.decode(records[1])[1].startswith(b"rec-1")
    assert decoder.decode(records[2])[1].startswith(b"rec-2")


def test_failed_decode_commits_no_state():
    encoder, decoder = _tls_pair(RSA_WITH_AES_SHA)
    record = bytearray(encoder.encode(CONTENT_APPLICATION, b"p" * 100))
    record[10] ^= 0xFF
    iv_before = decoder._cbc.iv
    with pytest.raises(BadRecordMAC):
        decoder.decode(bytes(record))
    assert decoder._cbc.iv == iv_before
    assert decoder.sequence == 0


def test_stream_decoder_restores_keystream_position():
    encoder, decoder = _tls_pair(RSA_WITH_RC4_MD5)
    good = [encoder.encode(CONTENT_APPLICATION, bytes([i]) * 64)
            for i in range(2)]
    tampered = bytearray(good[0])
    tampered[-1] ^= 0x80
    with pytest.raises(BadRecordMAC):
        decoder.decode(bytes(tampered))
    # The failed attempt consumed no RC4 keystream.
    assert decoder.decode(good[0]) == (CONTENT_APPLICATION, b"\x00" * 64)
    assert decoder.decode(good[1]) == (CONTENT_APPLICATION, b"\x01" * 64)


def test_batch_error_carries_neighbours_and_supports_resume():
    encoder, decoder = _tls_pair(RSA_WITH_AES_SHA)
    payloads = [f"payload-{i}".encode() for i in range(3)]
    records = [encoder.encode(CONTENT_APPLICATION, p) for p in payloads]
    tampered = bytearray(records[1])
    tampered[-1] ^= 0x01
    with pytest.raises(BatchRecordError) as excinfo:
        decoder.decode_batch(records[0] + bytes(tampered) + records[2])
    err = excinfo.value
    assert err.index == 1
    assert err.decoded == [(CONTENT_APPLICATION, payloads[0])]
    assert isinstance(err.cause, BadRecordMAC)
    # Retransmission of the genuine records completes the batch.
    assert decoder.decode(records[1]) == (CONTENT_APPLICATION, payloads[1])
    assert decoder.decode(records[2]) == (CONTENT_APPLICATION, payloads[2])


def test_truncated_batch_raises_batch_error_with_decode_cause():
    encoder, decoder = _tls_pair(NULL_WITH_SHA)
    batch = encoder.encode_batch([(CONTENT_APPLICATION, b"a" * 50),
                                  (CONTENT_APPLICATION, b"b" * 50)])
    with pytest.raises(BatchRecordError) as excinfo:
        decoder.decode_batch(batch[:-1])
    assert excinfo.value.index == 1
    assert isinstance(excinfo.value.cause, DecodeError)
    assert excinfo.value.decoded == [(CONTENT_APPLICATION, b"a" * 50)]


def test_wtls_batch_skips_damaged_and_delivers_neighbours():
    encoder, decoder = _wtls_pair(RSA_WITH_AES_SHA)
    records = [encoder.encode(f"dgram-{i}".encode()) for i in range(3)]
    tampered = bytearray(records[1])
    tampered[-1] ^= 0x01
    batch = records[0] + bytes(tampered) + records[2]
    opened, damaged = decoder.decode_batch(batch, skip_damaged=True)
    assert [p for _, p in opened] == [b"dgram-0", b"dgram-2"]
    assert len(damaged) == 1 and isinstance(damaged[0], BadRecordMAC)
    # Strict mode surfaces the same failure as a batch error instead.
    encoder2, decoder2 = _wtls_pair(RSA_WITH_AES_SHA)
    records2 = [encoder2.encode(f"dgram-{i}".encode()) for i in range(3)]
    tampered2 = bytearray(records2[1])
    tampered2[-1] ^= 0x01
    with pytest.raises(BatchRecordError):
        decoder2.decode_batch(records2[0] + bytes(tampered2) + records2[2])


def _session_configs(ca, server_credentials, seed):
    from repro.crypto.rng import DeterministicDRBG
    from repro.protocols.handshake import ClientConfig, ServerConfig

    key, cert = server_credentials
    return (ClientConfig(rng=DeterministicDRBG(seed + "-c"), ca=ca),
            ServerConfig(rng=DeterministicDRBG(seed + "-s"),
                         certificate=cert, private_key=key))


def test_wtls_receive_next_still_skips_and_continues(
        ca, server_credentials):
    from repro.protocols.wtls import wtls_connect

    client_cfg, server_cfg = _session_configs(
        ca, server_credentials, "batch-skip")
    client, server = wtls_connect(client_cfg, server_cfg)
    client.send(b"zero")
    damaged = bytearray(client.encoder.encode(b"damaged"))
    damaged[-1] ^= 0x01
    client.endpoint.send(bytes(damaged))
    client.send(b"two")
    assert server.receive_next() == b"zero"
    assert server.receive_next() == b"two"
    assert server.discarded == 1


# ---------------------------------------------------------------------------
# Bugfix 3: sequence-counter wrap -> RenegotiationRequired
# ---------------------------------------------------------------------------


def test_tls_sequence_wrap_raises_renegotiation_required():
    encoder, decoder = _tls_pair(NULL_WITH_SHA)
    encoder._sequence = TLS_MAX_SEQUENCE
    decoder._sequence = TLS_MAX_SEQUENCE
    last = encoder.encode(CONTENT_APPLICATION, b"final")  # boundary: fits
    assert decoder.decode(last) == (CONTENT_APPLICATION, b"final")
    with pytest.raises(RenegotiationRequired):
        encoder.encode(CONTENT_APPLICATION, b"one too many")
    with pytest.raises(RenegotiationRequired):
        decoder._decode_one(CONTENT_APPLICATION, b"")


def test_wtls_sequence_wrap_raises_renegotiation_required():
    encoder, decoder = _wtls_pair(NULL_WITH_SHA)
    encoder._sequence = WTLS_MAX_SEQUENCE
    last = encoder.encode(b"final")  # the boundary value still fits
    sequence, payload = decoder.decode(last)
    assert (sequence, payload) == (WTLS_MAX_SEQUENCE, b"final")
    with pytest.raises(RenegotiationRequired):
        encoder.encode(b"one too many")


# ---------------------------------------------------------------------------
# Batched connections and transports
# ---------------------------------------------------------------------------


def test_secure_connection_batch_roundtrip(ca, server_credentials):
    from repro.protocols.tls import connect

    client_cfg, server_cfg = _session_configs(
        ca, server_credentials, "batch-tls")
    client, server = connect(client_cfg, server_cfg)
    payloads = [f"req-{i}".encode() * 10 for i in range(5)]
    client.send_batch(payloads)
    assert server.receive_batch() == payloads
    assert server.bytes_received == sum(len(p) for p in payloads)
    # Interleaves transparently with the single-record API.
    server.send(b"reply")
    assert client.receive() == b"reply"


def test_wtls_connection_batch_roundtrip(ca, server_credentials):
    from repro.protocols.wtls import wtls_connect

    client_cfg, server_cfg = _session_configs(
        ca, server_credentials, "batch-wtls")
    client, server = wtls_connect(client_cfg, server_cfg)
    payloads = [f"dgram-{i}".encode() for i in range(4)]
    client.send_batch(payloads)
    assert server.receive_batch() == payloads
    assert server.discarded == 0


def test_frame_too_large_raises_cleanly():
    with pytest.raises(FrameTooLarge):
        encode_frame(KIND_DATA, 0, b"\x00" * (MAX_FRAME_PAYLOAD + 1))
    assert encode_frame(KIND_DATA, 0, b"\x00" * 10)  # small frames fine


def test_gateway_reply_batching_matches_unbatched_ledger():
    from repro.protocols.gateway_runtime import (
        RuntimeConfig,
        build_gateway_runtime_world,
    )

    def run_world(reply_batch):
        runtime, handsets, _ = build_gateway_runtime_world(
            sessions=2, config=RuntimeConfig(reply_batch=reply_batch))
        for i in range(6):
            session_id = f"handset-{i % 2:02d}"
            handsets[session_id].send(f"ping-{i}".encode())
            runtime.submit(session_id, "origin.example",
                           arrival_offset_s=0.1 * i)
        stats = runtime.run()
        replies = {}
        for session_id, conn in handsets.items():
            if reply_batch == 1:
                replies[session_id] = [conn.receive() for _ in range(3)]
            else:
                batches = []
                while len(batches) < 3:
                    batches.extend(conn.receive_batch())
                replies[session_id] = batches
        return stats, replies

    unbatched_stats, unbatched_replies = run_world(reply_batch=1)
    batched_stats, batched_replies = run_world(reply_batch=2)
    assert batched_replies == unbatched_replies
    assert batched_stats.served == unbatched_stats.served == 6
    assert batched_stats.energy_mj == unbatched_stats.energy_mj
