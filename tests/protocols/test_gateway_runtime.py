"""Overload-resilient gateway runtime: admission, breaker, acceptance.

Covers the unit surfaces (token bucket, circuit breaker, structured
``GW-BUSY:`` replies, the three shedding paths), the fault-free
byte-for-byte transparency pin against single-session
``WAPGateway.forward``, and the chaos acceptance scenario from the
issue: 32 concurrent handset sessions with injected origin outages, an
accelerator failure, and a battery brownout — every request answered,
the breaker provably cycling closed → open → half-open → closed, and
the whole run byte-identical across repeats with the same seed (the
CI chaos job re-runs it across seeds via ``CHAOS_SEED``).
"""

from __future__ import annotations

import os

import pytest

from repro.core.supervisor import ApplianceSupervisor
from repro.hardware.accelerators import architecture_ladder
from repro.hardware.battery import Battery
from repro.hardware.faults import BatteryBrownout, FaultPlan, wrap_engines
from repro.hardware.processors import ARM7
from repro.hardware.workloads import BulkWorkload
from repro.protocols.gateway_runtime import (
    BUSY_PREFIX,
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    GatewayRuntime,
    RuntimeConfig,
    TokenBucket,
    build_gateway_runtime_world,
    busy_reply,
)
from repro.protocols.wap import DEGRADED_PREFIX, build_wap_world

ORIGIN = "origin.example"
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


def classify(reply: bytes) -> str:
    if reply.startswith(BUSY_PREFIX):
        return "shed"
    if reply.startswith(DEGRADED_PREFIX):
        return "degraded"
    return "served"


# -- token bucket ------------------------------------------------------------


def test_token_bucket_burst_then_sustained_rate():
    bucket = TokenBucket(capacity=3, refill_per_s=2.0)
    assert [bucket.try_take(0.0) for _ in range(4)] == [
        True, True, True, False]
    assert bucket.seconds_until_token(0.0) == pytest.approx(0.5)
    assert bucket.try_take(0.5)            # one token refilled
    assert not bucket.try_take(0.5)


def test_token_bucket_never_exceeds_capacity():
    bucket = TokenBucket(capacity=2, refill_per_s=100.0)
    assert [bucket.try_take(1000.0) for _ in range(3)] == [
        True, True, False]


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(capacity=0, refill_per_s=1.0)
    with pytest.raises(ValueError):
        TokenBucket(capacity=1, refill_per_s=0.0)


# -- circuit breaker ---------------------------------------------------------


def test_breaker_full_cycle():
    breaker = CircuitBreaker(ORIGIN, BreakerConfig(
        failure_threshold=2, reset_timeout_s=1.0))
    assert breaker.state == CLOSED
    assert breaker.allow(0.0)
    breaker.record_failure(0.0)
    assert breaker.state == CLOSED          # below threshold
    breaker.record_failure(0.1)
    assert breaker.state == OPEN            # threshold reached
    assert not breaker.allow(0.5)           # cooling: fast-fail
    assert breaker.fast_fails == 1
    assert breaker.allow(1.2)               # cooled: half-open probe
    assert breaker.state == HALF_OPEN
    breaker.record_success(1.2)
    assert breaker.state == CLOSED
    assert breaker.state_history() == [OPEN, HALF_OPEN, CLOSED]


def test_breaker_reopens_on_failed_probe():
    breaker = CircuitBreaker(ORIGIN, BreakerConfig(
        failure_threshold=1, reset_timeout_s=1.0))
    breaker.record_failure(0.0)
    assert breaker.allow(1.5)               # half-open
    breaker.record_failure(1.5)             # probe failed
    assert breaker.state == OPEN
    assert not breaker.allow(2.0)           # cooling restarted at 1.5
    assert breaker.allow(2.6)


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(ORIGIN, BreakerConfig(failure_threshold=2))
    breaker.record_failure(0.0)
    breaker.record_success(0.1)
    breaker.record_failure(0.2)
    assert breaker.state == CLOSED          # streak broken by the success


# -- structured rejections ---------------------------------------------------


def test_busy_reply_is_machine_parseable():
    assert busy_reply("deadline") == b"GW-BUSY: reason=deadline"
    assert busy_reply("rate-limited", 0.125) == \
        b"GW-BUSY: reason=rate-limited retry-after=0.125"


# -- shedding paths ----------------------------------------------------------


def _drain(handsets):
    """All replies currently queued at the handsets, per session."""
    return {sid: [conn.receive() for _ in range(conn.endpoint.pending())]
            for sid, conn in handsets.items()}


def test_rate_limit_shed_carries_retry_after():
    config = RuntimeConfig(bucket_capacity=1.0, bucket_refill_per_s=1.0)
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED, config=config)
    for index in range(3):
        handsets["handset-00"].send(f"r{index}".encode())
        runtime.submit("handset-00", ORIGIN)   # burst at t=0
    stats = runtime.run()
    replies = _drain(handsets)["handset-00"]
    assert stats.shed_rate_limited == 2
    assert [classify(reply) for reply in replies] == [
        "served", "shed", "shed"]
    assert all(b"reason=rate-limited retry-after=" in reply
               for reply in replies[1:])


def test_queue_full_shed():
    config = RuntimeConfig(
        queue_limit=2, bucket_capacity=16.0, bucket_refill_per_s=16.0,
        service_time_s=1.0)
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED, config=config)
    for index in range(4):
        handsets["handset-00"].send(f"r{index}".encode())
        runtime.submit("handset-00", ORIGIN)
    stats = runtime.run()
    assert stats.shed_queue_full > 0
    assert stats.answered == stats.submitted


def test_deadline_shed_answers_instead_of_serving_stale():
    config = RuntimeConfig(
        queue_limit=32, bucket_capacity=32.0, bucket_refill_per_s=32.0,
        service_time_s=1.0, deadline_s=1.5)
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED, config=config)
    for index in range(4):
        handsets["handset-00"].send(f"r{index}".encode())
        runtime.submit("handset-00", ORIGIN)   # queue 4s of work at t=0
    stats = runtime.run()
    replies = _drain(handsets)["handset-00"]
    assert stats.shed_deadline > 0
    assert b"GW-BUSY: reason=deadline" in replies
    assert stats.answered == stats.submitted


def test_unknown_origin_degrades():
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED)
    handsets["handset-00"].send(b"hello")
    runtime.submit("handset-00", "no.such.origin")
    runtime.run()
    reply = handsets["handset-00"].receive()
    assert reply.startswith(DEGRADED_PREFIX)


def test_handler_failures_counted_and_not_breaker_events():
    def flaky_handler(request: bytes) -> bytes:
        if request.endswith(b"boom"):
            raise RuntimeError("application bug")
        return b"OK:" + request

    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED, handler=flaky_handler)
    for payload in (b"fine", b"boom", b"fine2"):
        handsets["handset-00"].send(payload)
        runtime.submit("handset-00", ORIGIN, arrival_offset_s=0.0)
    stats = runtime.run()
    replies = _drain(handsets)["handset-00"]
    assert stats.handler_failures == 1
    assert runtime.gateway.handler_failures == 1
    assert [classify(r) for r in replies] == [
        "served", "degraded", "served"]
    assert b"origin handler error" in replies[1]
    # Application failures must not open the breaker:
    assert runtime.breaker_for(ORIGIN).state == CLOSED
    assert runtime.breaker_for(ORIGIN).transitions == []


def test_session_management_guards():
    runtime, handsets, ca = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED)
    with pytest.raises(KeyError):
        runtime.submit("nope", ORIGIN)
    with pytest.raises(ValueError):
        runtime.submit("handset-00", ORIGIN, arrival_offset_s=-1.0)
    with pytest.raises(ValueError):
        runtime.adopt_session("handset-00", handsets["handset-00"])


# -- fault-free transparency -------------------------------------------------


def test_runtime_is_byte_transparent_without_faults():
    """With no faults and no overload the runtime's answers are
    byte-for-byte those of the single-session ``WAPGateway.forward``
    path (same seed, same DRBG streams, same WAP-gap plaintext log)."""
    requests = [f"request-{index}".encode() for index in range(5)]

    handset_a, gateway_a, _ = build_wap_world(seed=CHAOS_SEED)
    replies_a = []
    for request in requests:
        handset_a.send(request)
        replies_a.append(gateway_a.forward(ORIGIN))

    handset_b, gateway_b, _ = build_wap_world(seed=CHAOS_SEED)
    runtime = GatewayRuntime(gateway_b)
    runtime.adopt_session("h0", gateway_b.handset_side)
    for index, request in enumerate(requests):
        handset_b.send(request)
        runtime.submit("h0", ORIGIN, arrival_offset_s=index * 1.0)
    stats = runtime.run()

    replies_b = [handset_b.receive() for _ in requests]
    assert replies_b == replies_a
    assert gateway_b.plaintext_log == gateway_a.plaintext_log
    assert stats.served == len(requests)
    assert stats.shed == 0 and stats.degraded == 0
    assert runtime.breaker_for(ORIGIN).transitions == []


# -- breaker end-to-end ------------------------------------------------------


def test_outage_window_drives_breaker_cycle():
    config = RuntimeConfig(
        bucket_capacity=32.0, bucket_refill_per_s=32.0,
        service_time_s=0.05,
        breaker=BreakerConfig(failure_threshold=3, reset_timeout_s=1.0))
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED, config=config)
    runtime.set_outage(ORIGIN, [(0.0, 0.5)])
    # Six requests inside/around the outage open the breaker and then
    # fast-fail; three late ones arrive after the cooling period.
    offsets = [index * 0.1 for index in range(6)] + [1.5, 1.6, 1.7]
    for index, offset in enumerate(offsets):
        handsets["handset-00"].send(f"r{index}".encode())
        runtime.submit("handset-00", ORIGIN, arrival_offset_s=offset)
    stats = runtime.run()
    breaker = runtime.breaker_for(ORIGIN)
    history = breaker.state_history()
    assert history[:3] == [OPEN, HALF_OPEN, CLOSED]
    assert stats.breaker_fast_fails > 0
    assert stats.wired_failures >= 3
    assert stats.answered == stats.submitted
    # After the breaker re-closed, requests are served for real again.
    final = _drain(handsets)["handset-00"][-1]
    assert classify(final) == "served"


# -- the acceptance scenario -------------------------------------------------


def _acceptance_run(seed: int):
    """One full chaos run: 32 sessions, origin outage, accelerator
    failure, battery brownout, supervisor on the runtime clock."""
    config = RuntimeConfig(
        queue_limit=16, bucket_capacity=12.0, bucket_refill_per_s=6.0,
        service_time_s=0.05, deadline_s=4.0,
        breaker=BreakerConfig(failure_threshold=3, reset_timeout_s=1.0))
    battery = Battery(capacity_j=100.0)
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=32, seed=seed, config=config,
        batteries={"handset-00": battery})
    runtime.set_outage(ORIGIN, [(0.0, 0.7)])

    # Device-side chaos on the same virtual clock: the accelerator dies
    # at t=0.5 and recovers at t=2.0; the battery sags at t=1.0.
    plan = FaultPlan()
    plan.add_brownout(BatteryBrownout(battery, at_s=1.0, to_fraction=0.0))
    engines = wrap_engines(
        list(reversed(architecture_ladder(ARM7))), runtime.clock,
        fail_at_s=0.5, recover_at_s=2.0, seed=seed)
    supervisor = ApplianceSupervisor(
        engines, battery=battery, clock=runtime.clock, fault_plan=plan,
        probe_interval_s=0.5)
    workload = BulkWorkload(kilobytes=1.0, cipher="AES", mac="SHA1")
    engines_used = []

    def ticker(now: float) -> None:
        supervisor.poll(now)
        engines_used.append(supervisor.execute(workload).engine)

    runtime.add_ticker(ticker)

    for round_index in range(3):
        for slot, session_id in enumerate(sorted(handsets)):
            handsets[session_id].send(
                f"req-{session_id}-{round_index}".encode())
            runtime.submit(session_id, ORIGIN,
                           arrival_offset_s=round_index * 0.8
                           + slot * 0.02)
    stats = runtime.run()
    replies = _drain(handsets)
    return runtime, stats, supervisor, replies, engines_used


def test_acceptance_chaos_scenario():
    runtime, stats, supervisor, replies, engines_used = \
        _acceptance_run(CHAOS_SEED)

    # Every one of the 96 requests got exactly one answer.
    assert stats.submitted == 96
    assert stats.answered == stats.submitted
    flat = [reply for session in replies.values() for reply in session]
    assert len(flat) == stats.submitted
    kinds = [classify(reply) for reply in flat]
    assert kinds.count("served") == stats.served
    assert kinds.count("degraded") == stats.degraded
    assert kinds.count("shed") == stats.shed
    assert stats.served > 0 and stats.degraded > 0 and stats.shed > 0

    # The breaker provably cycled closed -> open -> half-open -> closed.
    history = runtime.breaker_for(ORIGIN).state_history()
    assert history[:3] == [OPEN, HALF_OPEN, CLOSED]
    assert stats.breaker_fast_fails > 0

    # The accelerator died and the supervisor walked the ladder down to
    # software, then restored the hardware engine after recovery.
    assert supervisor.report.engine_fallbacks > 0
    assert supervisor.report.engine_restorations > 0
    assert "software" in engines_used
    assert engines_used[0] != "software"
    assert engines_used[-1] != "software"

    # The brownout was absorbed: refused charges, suite stepped down.
    assert stats.battery_refusals > 0
    assert supervisor.report.suite_downgrades >= 1


def test_acceptance_chaos_scenario_is_deterministic():
    first = _acceptance_run(CHAOS_SEED)
    second = _acceptance_run(CHAOS_SEED)
    assert first[3] == second[3]                      # reply bytes
    assert first[1] == second[1]                      # full stats ledger
    assert (first[0].breaker_for(ORIGIN).transitions
            == second[0].breaker_for(ORIGIN).transitions)
    assert (first[2].report.actions() == second[2].report.actions())
    assert first[4] == second[4]                      # engine schedule


# -- adversarial hardening (PR 7) --------------------------------------------


def test_breaker_half_open_admits_exactly_one_probe():
    """Concurrent sessions racing the half-open slot: only the first
    ``allow`` wins the probe; the rest fast-fail until it resolves."""
    breaker = CircuitBreaker(ORIGIN, BreakerConfig(
        failure_threshold=1, reset_timeout_s=1.0))
    breaker.record_failure(0.0)
    assert breaker.state == OPEN

    # Cooling period over: the first caller transitions to half-open
    # and claims the single probe slot.
    assert breaker.allow(1.5) is True
    assert breaker.state == HALF_OPEN
    # Every racer while the probe is in flight is fast-failed.
    fast_fails_before = breaker.fast_fails
    assert breaker.allow(1.5) is False
    assert breaker.allow(1.6) is False
    assert breaker.fast_fails == fast_fails_before + 2
    assert breaker.state == HALF_OPEN

    # Probe succeeds: breaker closes, everyone may pass again.
    breaker.record_success(1.7)
    assert breaker.state == CLOSED
    assert breaker.allow(1.8) is True and breaker.allow(1.8) is True


def test_breaker_failed_probe_releases_slot_for_next_cycle():
    breaker = CircuitBreaker(ORIGIN, BreakerConfig(
        failure_threshold=1, reset_timeout_s=1.0))
    breaker.record_failure(0.0)
    assert breaker.allow(1.5) is True          # probe slot claimed
    breaker.record_failure(1.6)                # probe failed -> reopen
    assert breaker.state == OPEN
    assert breaker.allow(1.7) is False         # back in cooling
    # Next cooling period: a fresh probe slot is available again.
    assert breaker.allow(2.7) is True
    assert breaker.allow(2.7) is False


def test_seconds_until_token_at_exact_refill_boundaries():
    bucket = TokenBucket(capacity=2.0, refill_per_s=4.0)
    assert bucket.try_take(0.0) and bucket.try_take(0.0)
    # Empty at t=0: next token exactly 0.25s away.
    assert bucket.seconds_until_token(0.0) == pytest.approx(0.25)
    # At the exact refill instant the answer must be 0, not an epsilon.
    assert bucket.seconds_until_token(0.25) == 0.0
    assert bucket.try_take(0.25) is True
    # Straight after consuming at the boundary: a full period again.
    assert bucket.seconds_until_token(0.25) == pytest.approx(0.25)
    # Midway through a period, the residual fraction.
    assert bucket.seconds_until_token(0.375) == pytest.approx(0.125)


def test_shed_energy_charged_to_battery_per_reason():
    """GW-BUSY answers cost real handset battery and are booked per
    shed reason — attacker-induced shedding is never free."""
    config = RuntimeConfig(bucket_capacity=1.0, bucket_refill_per_s=1.0)
    battery = Battery(capacity_j=5.0)
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED, config=config,
        batteries={"handset-00": battery})
    for index in range(3):
        handsets["handset-00"].send(f"r{index}".encode())
        runtime.submit("handset-00", ORIGIN)
    stats = runtime.run()
    assert stats.shed_rate_limited == 2
    shed_mj = stats.shed_energy_mj["rate-limited"]
    assert shed_mj > 0.0
    # The shed replies' energy is part of (not additional to) the
    # total radio ledger, and the battery actually paid for it.
    assert shed_mj < stats.energy_mj
    assert battery.remaining_j < battery.capacity_j


def test_injected_garbage_is_skipped_and_counted():
    """Wire-injected malformed frames ahead of a benign request are
    skipped (counted) and the request still served."""
    from repro.protocols.faults import FaultyChannel

    channel = FaultyChannel(seed=7)
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED,
        channel_factory=lambda sid: channel)
    handsets["handset-00"].send(b"real request")
    for index in range(3):
        channel.inject("a->b", b"\x17garbage-%d" % index, front=True)
    runtime.submit("handset-00", ORIGIN)
    stats = runtime.run()
    assert stats.malformed_discarded == 3
    assert stats.shed_malformed == 0
    assert stats.served == 1
    reply = handsets["handset-00"].receive()
    assert classify(reply) == "served"


def test_malformed_flood_sheds_structurally():
    """A garbage flood past the skip budget exhausts the receive and
    answers a structured ``malformed`` shed — never an exception."""
    from repro.protocols.faults import FaultyChannel

    channel = FaultyChannel(seed=7)
    config = RuntimeConfig(malformed_skip=4)
    runtime, handsets, _ = build_gateway_runtime_world(
        sessions=1, seed=CHAOS_SEED, config=config,
        channel_factory=lambda sid: channel)
    handsets["handset-00"].send(b"drowned request")
    for index in range(8):
        channel.inject("a->b", b"\x15junk-%d" % index, front=True)
    runtime.submit("handset-00", ORIGIN)
    stats = runtime.run()
    assert stats.shed_malformed == 1
    assert stats.malformed_discarded >= 4
    assert stats.answered == stats.submitted
    reply = handsets["handset-00"].receive()
    assert reply.startswith(b"GW-BUSY: reason=malformed")
    assert stats.shed_energy_mj["malformed"] > 0.0
