"""The KEA key-exchange suite in the mini-TLS handshake (§3.1)."""

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.alerts import HandshakeFailure
from repro.protocols.ciphersuites import KEA_WITH_3DES_SHA
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.tls import connect
from repro.protocols.transport import DuplexChannel


def _configs(ca, server_credentials, seed="kea"):
    key, cert = server_credentials
    client = ClientConfig(rng=DeterministicDRBG(seed + "-c"), ca=ca,
                          suites=[KEA_WITH_3DES_SHA])
    server = ServerConfig(rng=DeterministicDRBG(seed + "-s"),
                          certificate=cert, private_key=key)
    return client, server


class TestKEASuite:
    def test_handshake_and_data(self, ca, server_credentials):
        conn_c, conn_s = connect(*_configs(ca, server_credentials))
        assert conn_c.suite_name == "KEA_WITH_3DES_EDE_CBC_SHA"
        conn_c.send(b"kea protected")
        assert conn_s.receive() == b"kea protected"

    def test_masters_agree(self, ca, server_credentials):
        conn_c, conn_s = connect(*_configs(ca, server_credentials))
        assert conn_c.session.master == conn_s.session.master

    def test_fresh_keys_per_run(self, ca, server_credentials):
        first, _ = connect(*_configs(ca, server_credentials, "r1"))
        second, _ = connect(*_configs(ca, server_credentials, "r2"))
        assert first.session.master != second.session.master

    def test_parameter_tamper_detected(self, ca, server_credentials):
        """Rewriting the KEA server parameters breaks the RSA signature
        over them."""
        state = {"done": False}

        def tamper(frame, direction):
            if direction == "b->a" and frame[:1] == b"\x02" \
                    and not state["done"]:
                state["done"] = True
                mutated = bytearray(frame)
                mutated[-60] ^= 0x01  # inside the key-exchange payload
                return bytes(mutated)
            return frame

        channel = DuplexChannel(interceptor=tamper)
        with pytest.raises((HandshakeFailure, Exception)):
            connect(*_configs(ca, server_credentials, "t"), channel)
