"""Fault injection (FaultyChannel) and the go-back-N ARQ layer.

The lossy-link harness: seeded fault schedules, reliable in-order
delivery over them, energy-metered retransmissions, and the acceptance
scenario — a full mini-TLS handshake plus a 100-record exchange over a
20% drop channel, charged to a battery.
"""

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.hardware.battery import Battery
from repro.protocols.faults import (
    FaultModel,
    FaultyChannel,
    GilbertElliott,
)
from repro.protocols.reliable import (
    ARQConfig,
    FrameDamaged,
    KIND_ACK,
    KIND_DATA,
    ReliableLink,
    RetryBudgetExhausted,
    VirtualClock,
    decode_frame,
    encode_frame,
)
from repro.protocols.tls import connect
from repro.protocols.transport import ChannelEmpty


def _drain(endpoint):
    """Read every pending frame off a raw endpoint."""
    frames = []
    while True:
        try:
            frames.append(endpoint.receive())
        except ChannelEmpty:
            return frames


class TestFaultModels:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultModel(drop=1.5)
        with pytest.raises(ValueError):
            FaultModel(corrupt=-0.1)
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=2.0)

    def test_default_model_is_faultless(self):
        channel = FaultyChannel(seed=3)
        a, b = channel.endpoint_a(), channel.endpoint_b()
        sent = [f"frame{i}".encode() for i in range(50)]
        for frame in sent:
            a.send(frame)
        assert _drain(b) == sent
        assert channel.faults.total_drops == 0
        assert channel.faults.corruptions == 0

    def test_iid_drop_rate(self):
        channel = FaultyChannel(FaultModel.lossy(0.3), seed=11)
        a, b = channel.endpoint_a(), channel.endpoint_b()
        total = 2000
        for i in range(total):
            a.send(b"x")
        assert len(_drain(b)) == total - channel.faults.drops
        # Seeded, so exact; band-checked so the assertion documents
        # the statistics rather than one magic number.
        assert 0.2 < channel.faults.drops / total < 0.4

    def test_corruption_flips_exactly_one_bit(self):
        channel = FaultyChannel(FaultModel.noisy(1.0), seed=5)
        a, b = channel.endpoint_a(), channel.endpoint_b()
        sent = b"\x00" * 32
        a.send(sent)
        [received] = _drain(b)
        assert len(received) == len(sent)
        assert received != sent
        assert sum(bin(byte).count("1") for byte in received) == 1
        assert channel.faults.corruptions == 1

    def test_duplication(self):
        channel = FaultyChannel(FaultModel(duplicate=1.0), seed=5)
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"once")
        assert _drain(b) == [b"once", b"once"]
        assert channel.faults.duplicates == 1

    def test_reorder_swaps_adjacent_frames(self):
        channel = FaultyChannel(FaultModel(reorder=1.0), seed=5)
        a, b = channel.endpoint_a(), channel.endpoint_b()
        for frame in (b"1", b"2", b"3", b"4"):
            a.send(frame)
        assert _drain(b) == [b"2", b"1", b"4", b"3"]
        assert channel.faults.reorders == 2

    def test_flush_held_releases_reorder_buffer(self):
        channel = FaultyChannel(FaultModel(reorder=1.0), seed=5)
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"held")
        assert _drain(b) == []
        assert channel.flush_held() == 1
        assert _drain(b) == [b"held"]

    def test_gilbert_elliott_burst_drops(self):
        channel = FaultyChannel(FaultModel.bursty(), seed=9)
        a, b = channel.endpoint_a(), channel.endpoint_b()
        total = 2000
        for _ in range(total):
            a.send(b"x")
        faults = channel.faults
        assert faults.burst_drops > 0
        assert faults.bad_state_frames > 0
        # Bad-state fades drop far more often than the good state, so
        # losses must cluster well above the good-state baseline.
        assert faults.burst_drops > total * GilbertElliott().drop_good

    def test_determinism_same_seed_same_schedule(self):
        def run(seed):
            channel = FaultyChannel(
                FaultModel(drop=0.2, duplicate=0.1, reorder=0.1,
                           corrupt=0.1), seed=seed)
            a, b = channel.endpoint_a(), channel.endpoint_b()
            for i in range(300):
                a.send(f"frame{i}".encode())
            return _drain(b), channel.faults

        delivered1, faults1 = run(21)
        delivered2, faults2 = run(21)
        assert delivered1 == delivered2
        assert faults1 == faults2

        delivered3, faults3 = run(22)
        assert delivered3 != delivered1 or faults3 != faults1

    def test_fault_drops_do_not_touch_interceptor_counter(self):
        """channel.dropped counts interceptor drops only; the fault
        pipeline's losses land in channel.faults."""
        channel = FaultyChannel(FaultModel.lossy(1.0), seed=0)
        a, _ = channel.endpoint_a(), channel.endpoint_b()
        for _ in range(10):
            a.send(b"x")
        assert channel.dropped == 0
        assert channel.faults.drops == 10

    def test_model_swappable_mid_stream(self):
        """Run a clean phase, then turn the weather bad."""
        channel = FaultyChannel(seed=2)
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"clean")
        channel.model = FaultModel.lossy(1.0)
        a.send(b"doomed")
        assert _drain(b) == [b"clean"]
        assert channel.faults.drops == 1


class TestFraming:
    def test_roundtrip(self):
        frame = encode_frame(KIND_DATA, 7, b"payload")
        assert decode_frame(frame) == (KIND_DATA, 7, b"payload")

    def test_ack_has_empty_payload(self):
        assert decode_frame(encode_frame(KIND_ACK, 3)) == (KIND_ACK, 3, b"")

    def test_crc_rejects_any_single_bit_flip(self):
        frame = encode_frame(KIND_DATA, 1, b"data")
        for index in range(len(frame)):
            damaged = (frame[:index] + bytes([frame[index] ^ 0x04])
                       + frame[index + 1:])
            with pytest.raises(FrameDamaged):
                decode_frame(damaged)

    def test_truncated_frame_rejected(self):
        with pytest.raises(FrameDamaged):
            decode_frame(encode_frame(KIND_DATA, 1, b"data")[:6])


class TestVirtualClock:
    def test_monotonic(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance_to(2.0)  # never backward
        assert clock.now == 5.0


class TestARQConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ARQConfig(window=0)
        with pytest.raises(ValueError):
            ARQConfig(retry_budget=0)


class TestReliableLink:
    def test_transparent_at_zero_loss(self):
        link = ReliableLink(FaultyChannel(seed=1))
        a, b = link.endpoint_a(), link.endpoint_b()
        sent = [f"payload-{i}".encode() for i in range(50)]
        for payload in sent:
            a.send(payload)
        assert [b.receive() for _ in sent] == sent
        a.flush()
        assert link.total_retransmissions == 0
        assert link.total_timeouts == 0
        assert a.stats.data_sent == 50
        assert b.stats.data_received == 50
        assert a.unacked == 0

    def test_zero_loss_is_deterministic(self):
        def run():
            link = ReliableLink(FaultyChannel(seed=1))
            a, b = link.endpoint_a(), link.endpoint_b()
            for i in range(20):
                a.send(f"d{i}".encode())
            received = [b.receive() for _ in range(20)]
            a.flush()
            return received, list(link.channel.log)

        (received1, log1), (received2, log2) = run(), run()
        assert received1 == received2
        assert log1 == log2  # byte-identical wire traffic

    def test_in_order_delivery_over_heavy_loss(self):
        link = ReliableLink(FaultyChannel(FaultModel.lossy(0.3), seed=7))
        a, b = link.endpoint_a(), link.endpoint_b()
        sent = [f"msg{i}".encode() for i in range(40)]
        for payload in sent:
            a.send(payload)
        assert [b.receive() for _ in sent] == sent
        a.flush()
        assert link.total_retransmissions > 0
        assert link.total_timeouts > 0
        assert link.channel.faults.total_drops > 0

    def test_survives_corruption_via_crc(self):
        link = ReliableLink(FaultyChannel(FaultModel.noisy(0.2), seed=13))
        a, b = link.endpoint_a(), link.endpoint_b()
        sent = [f"msg{i}".encode() for i in range(30)]
        for payload in sent:
            a.send(payload)
        assert [b.receive() for _ in sent] == sent
        a.flush()
        stats = a.stats.corrupt_dropped + b.stats.corrupt_dropped
        assert stats > 0  # damaged frames were detected, not delivered

    def test_survives_duplication_and_reordering(self):
        link = ReliableLink(FaultyChannel(
            FaultModel(duplicate=0.2, reorder=0.2), seed=17))
        a, b = link.endpoint_a(), link.endpoint_b()
        sent = [f"msg{i}".encode() for i in range(30)]
        for payload in sent:
            a.send(payload)
        assert [b.receive() for _ in sent] == sent
        a.flush()
        dropped = (b.stats.duplicates_dropped
                   + b.stats.out_of_order_dropped)
        assert dropped > 0

    def test_retry_budget_exhausted_on_dead_link(self):
        link = ReliableLink(
            FaultyChannel(FaultModel.lossy(1.0), seed=1),
            config=ARQConfig(retry_budget=3))
        a = link.endpoint_a()
        a.send(b"into the void")
        with pytest.raises(RetryBudgetExhausted):
            a.flush()
        # Exactly budget + 1 transmissions of the one frame.
        assert a.stats.retransmissions == 3

    def test_receive_on_idle_link_raises_channel_empty(self):
        link = ReliableLink(FaultyChannel(seed=1))
        with pytest.raises(ChannelEmpty):
            link.endpoint_b().receive()

    def test_window_bounds_outstanding_frames(self):
        link = ReliableLink(FaultyChannel(FaultModel.lossy(0.2), seed=3),
                            config=ARQConfig(window=2))
        a, b = link.endpoint_a(), link.endpoint_b()
        sent = [f"w{i}".encode() for i in range(12)]
        for payload in sent:
            a.send(payload)
            assert a.unacked <= 2
        assert [b.receive() for _ in sent] == sent

    def test_backoff_grows_and_caps(self):
        link = ReliableLink(FaultyChannel(seed=1), config=ARQConfig(
            base_timeout=1.0, backoff_factor=2.0, max_timeout=8.0,
            jitter=0.0))
        assert link.timeout_for(0) == 1.0
        assert link.timeout_for(1) == 2.0
        assert link.timeout_for(2) == 4.0
        assert link.timeout_for(5) == 8.0  # capped

    def test_jitter_is_seeded_and_bounded(self):
        link1 = ReliableLink(FaultyChannel(seed=1), seed=4)
        link2 = ReliableLink(FaultyChannel(seed=1), seed=4)
        draws1 = [link1.timeout_for(0) for _ in range(10)]
        draws2 = [link2.timeout_for(0) for _ in range(10)]
        assert draws1 == draws2
        for timeout in draws1:
            assert 0.9 <= timeout <= 1.1

    def test_energy_charged_per_transmission(self):
        battery_a = Battery()
        battery_b = Battery()
        link = ReliableLink(FaultyChannel(FaultModel.lossy(0.3), seed=7),
                            battery_a=battery_a, battery_b=battery_b)
        a, b = link.endpoint_a(), link.endpoint_b()
        for i in range(20):
            a.send(f"msg{i}".encode())
        for _ in range(20):
            b.receive()
        a.flush()
        drained_a_mj = (battery_a.capacity_j - battery_a.remaining_j) * 1000
        drained_b_mj = (battery_b.capacity_j - battery_b.remaining_j) * 1000
        assert drained_a_mj == pytest.approx(a.stats.energy_total_mj)
        assert drained_b_mj == pytest.approx(b.stats.energy_total_mj)
        # Retransmissions are the §3.3 tax: real, separately accounted.
        assert a.stats.retransmit_energy_mj > 0
        assert a.stats.retransmit_energy_mj < a.stats.energy_tx_mj

    def test_lossier_link_costs_more_energy(self):
        def energy_at(drop):
            link = ReliableLink(
                FaultyChannel(FaultModel.lossy(drop), seed=7))
            a, b = link.endpoint_a(), link.endpoint_b()
            for i in range(30):
                a.send(f"msg{i}".encode())
            for _ in range(30):
                b.receive()
            a.flush()
            return link.total_energy_mj

        assert energy_at(0.3) > energy_at(0.0)


class TestTLSOverLossyLink:
    """The acceptance scenario of the lossy-link harness."""

    def _run(self, drop, seed=42):
        channel = FaultyChannel(FaultModel.lossy(drop), seed=seed)
        battery_a, battery_b = Battery(), Battery()
        link = ReliableLink(channel, battery_a=battery_a,
                            battery_b=battery_b)
        ca_rng = DeterministicDRBG(("lossy-ca", seed).__repr__())
        from repro.protocols.certificates import CertificateAuthority
        ca = CertificateAuthority("LossyCA", ca_rng)
        key, cert = ca.issue(
            "server.example", DeterministicDRBG(("lossy-srv", seed).__repr__()))
        from repro.protocols.handshake import ClientConfig, ServerConfig
        client = ClientConfig(
            rng=DeterministicDRBG(("lossy-c", seed).__repr__()), ca=ca,
            expected_server="server.example")
        server = ServerConfig(
            rng=DeterministicDRBG(("lossy-s", seed).__repr__()),
            certificate=cert, private_key=key)
        client_conn, server_conn = connect(
            client, server,
            endpoints=(link.endpoint_a(), link.endpoint_b()))
        received = []
        for i in range(100):
            client_conn.send(f"record-{i}".encode())
            received.append(server_conn.receive())
        link.endpoint_a().flush()
        link.endpoint_b().flush()
        return link, channel, (battery_a, battery_b), received

    def test_handshake_and_100_records_at_20_percent_drop(self):
        link, channel, (battery_a, battery_b), received = self._run(0.2)
        assert received == [f"record-{i}".encode() for i in range(100)]
        # The link really was hostile, and the ARQ really worked for it:
        assert channel.faults.total_drops > 0
        assert link.total_retransmissions > 0
        assert link.total_timeouts > 0
        # Every transmission (including every retry) hit the batteries.
        assert battery_a.remaining_j < battery_a.capacity_j
        assert battery_b.remaining_j < battery_b.capacity_j
        retransmit_mj = (
            link.endpoint_a().stats.retransmit_energy_mj
            + link.endpoint_b().stats.retransmit_energy_mj)
        assert retransmit_mj > 0

    def test_zero_drop_control_is_transparent(self):
        link, channel, _, received = self._run(0.0)
        assert received == [f"record-{i}".encode() for i in range(100)]
        assert channel.faults.total_drops == 0
        assert link.total_retransmissions == 0
        assert link.total_timeouts == 0

    def test_lossy_run_is_reproducible(self):
        link1, _, _, received1 = self._run(0.2)
        link2, _, _, received2 = self._run(0.2)
        assert received1 == received2
        assert link1.total_retransmissions == link2.total_retransmissions
        assert link1.total_energy_mj == pytest.approx(
            link2.total_energy_mj)
