"""Session resumption and 3GPP AKA."""

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.aka import (
    SQN_WINDOW,
    AKAChallenge,
    AuthenticationCentre,
    FalseBaseStation,
    ServingNetwork3G,
    USIM,
    f1_mac,
    false_base_station_attack,
)
from repro.protocols.alerts import HandshakeFailure, ReplayError
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.resumption import (
    CachedSession,
    SessionCache,
    cache_session,
    resume,
)
from repro.protocols.tls import SecureConnection, connect
from repro.protocols.transport import DuplexChannel


@pytest.fixture()
def established(ca, server_credentials):
    key, cert = server_credentials
    client = ClientConfig(rng=DeterministicDRBG("res-c"), ca=ca)
    server = ServerConfig(rng=DeterministicDRBG("res-s"),
                          certificate=cert, private_key=key)
    conn_c, conn_s = connect(client, server)
    client_cache, server_cache = SessionCache(), SessionCache()
    session_id = cache_session(
        client_cache, conn_c.session, DeterministicDRBG("sid"))
    server_cache.store(CachedSession(
        session_id=session_id, suite_name=conn_s.session.suite.name,
        master=conn_s.session.master))
    return client, server, client_cache, server_cache, session_id


class TestResumption:
    def test_abbreviated_handshake_carries_data(self, established):
        client, server, c_cache, s_cache, sid = established
        cs, ss = resume(client, server, c_cache, s_cache, sid)
        # Wire the resumed sessions through a fresh channel.
        channel = DuplexChannel()
        cs_ep, ss_ep = channel.endpoint_a(), channel.endpoint_b()
        cs_ep.send(cs.encoder.encode(23, b"resumed data"))
        _, payload = ss.decoder.decode(ss_ep.receive())
        assert payload == b"resumed data"

    def test_new_nonces_give_new_keys(self, established):
        client, server, c_cache, s_cache, sid = established
        first_c, _ = resume(client, server, c_cache, s_cache, sid)
        second_c, _ = resume(client, server, c_cache, s_cache, sid)
        assert first_c.transcript_digest != second_c.transcript_digest

    def test_cache_hit_miss_accounting(self, established):
        client, server, c_cache, s_cache, sid = established
        resume(client, server, c_cache, s_cache, sid)
        assert c_cache.hits >= 1
        assert s_cache.hits >= 1
        s_cache.lookup(b"\x00" * 16)
        assert s_cache.misses >= 1

    def test_server_lost_session_fails(self, established):
        client, server, c_cache, _, sid = established
        with pytest.raises(HandshakeFailure):
            resume(client, server, c_cache, SessionCache(), sid)

    def test_client_lost_session_fails(self, established):
        client, server, _, s_cache, sid = established
        with pytest.raises(HandshakeFailure):
            resume(client, server, SessionCache(), s_cache, sid)

    def test_cache_eviction(self):
        cache = SessionCache(capacity=2)
        for i in range(3):
            cache.store(CachedSession(bytes([i]) * 16, "X", b"m" * 48))
        assert len(cache) == 2
        assert cache.lookup(bytes([0]) * 16) is None  # oldest evicted

    def test_resumption_is_cheap_in_the_cost_model(self):
        from repro.hardware.cycles import handshake_cost

        full = handshake_cost().total_mi
        resumed = handshake_cost(resumed=True).total_mi
        assert resumed < full / 50  # the §3.2 gap collapses

    def test_resumed_handshake_meets_tight_latency(self):
        """Resumption makes the 0.1 s latency target feasible on the
        SA-1100 — the protocol-level fix for Figure 3's hot corner."""
        from repro.hardware.cycles import handshake_cost
        from repro.hardware.processors import STRONGARM_SA1100

        demand = handshake_cost(resumed=True).total_mi / 0.1
        assert demand <= STRONGARM_SA1100.mips


class TestAKA:
    @pytest.fixture()
    def network(self):
        usim = USIM("262-01-0001", bytes(range(16)))
        auc = AuthenticationCentre(rng=DeterministicDRBG("auc"))
        auc.provision(usim)
        return usim, ServingNetwork3G(auc=auc)

    def test_mutual_authentication(self, network):
        usim, net = network
        ck, ik = net.attach(usim)
        assert len(ck) == 16 and len(ik) == 16
        assert net.sessions[usim.imsi] == (ck, ik)

    def test_fresh_keys_per_attach(self, network):
        usim, net = network
        assert net.attach(usim) != net.attach(usim)

    def test_forged_autn_rejected(self, network):
        usim, _ = network
        rogue = FalseBaseStation(rng=DeterministicDRBG("rogue"))
        assert not rogue.fake_aka_challenge(usim)
        assert usim.rejected_challenges == 1

    def test_replayed_challenge_rejected(self, network):
        usim, net = network
        challenge, *_ = net.auc.generate_challenge(usim.imsi)
        usim.process_challenge(challenge)
        with pytest.raises(ReplayError):
            usim.process_challenge(challenge)

    def test_sqn_window(self, network):
        usim, net = network
        # A far-future SQN (beyond the window) must be rejected.
        k = usim.k
        rand = bytes(16)
        from repro.protocols.aka import f5_ak
        from repro.crypto.bitops import xor_bytes

        future_sqn = usim.sqn + SQN_WINDOW + 5
        challenge = AKAChallenge(
            rand=rand,
            sqn_xor_ak=xor_bytes(future_sqn.to_bytes(6, "big"),
                                 f5_ak(k, rand)),
            amf=b"\x80\x00",
            mac_a=f1_mac(k, future_sqn, rand, b"\x80\x00"),
        )
        with pytest.raises(ReplayError):
            usim.process_challenge(challenge)

    def test_generation_gap(self):
        """The §2 claim, computed: GSM falls to the false base station,
        AKA does not."""
        outcome = false_base_station_attack(seed=5)
        assert outcome == {"gsm_compromised": True,
                           "aka_compromised": False}

    def test_tampered_amf_rejected(self, network):
        usim, net = network
        challenge, *_ = net.auc.generate_challenge(usim.imsi)
        tampered = AKAChallenge(
            rand=challenge.rand, sqn_xor_ak=challenge.sqn_xor_ak,
            amf=b"\x00\x01", mac_a=challenge.mac_a)
        with pytest.raises(HandshakeFailure):
            usim.process_challenge(tampered)
