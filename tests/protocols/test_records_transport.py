"""Record layer and in-memory transport."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.alerts import BadRecordMAC, DecodeError
from repro.protocols.ciphersuites import (
    NULL_WITH_SHA,
    RSA_WITH_3DES_SHA,
    RSA_WITH_AES_SHA,
    RSA_WITH_RC4_MD5,
)
from repro.protocols.kdf import KeyBlock
from repro.protocols.records import (
    CONTENT_APPLICATION,
    RecordDecoder,
    RecordEncoder,
    make_record_pair,
)
from repro.protocols.transport import (
    ChannelClosed,
    ChannelEmpty,
    DuplexChannel,
)


def _key_block(suite):
    def material(tag, count):
        return bytes((tag + i) % 256 for i in range(count))

    return KeyBlock(
        client_mac_key=material(1, suite.mac_key_bytes),
        server_mac_key=material(2, suite.mac_key_bytes),
        client_cipher_key=material(3, suite.cipher_key_bytes),
        server_cipher_key=material(4, suite.cipher_key_bytes),
        client_iv=material(5, suite.iv_bytes),
        server_iv=material(6, suite.iv_bytes),
    )


@pytest.fixture(params=[RSA_WITH_3DES_SHA, RSA_WITH_RC4_MD5,
                        RSA_WITH_AES_SHA, NULL_WITH_SHA],
                ids=lambda s: s.name)
def record_pair(request):
    suite = request.param
    keys = _key_block(suite)
    client_enc, client_dec = make_record_pair(suite, keys, is_client=True)
    server_enc, server_dec = make_record_pair(suite, keys, is_client=False)
    return client_enc, server_dec, server_enc, client_dec


class TestRecordLayer:
    def test_roundtrip(self, record_pair):
        client_enc, server_dec, _, _ = record_pair
        record = client_enc.encode(CONTENT_APPLICATION, b"hello world")
        content_type, payload = server_dec.decode(record)
        assert content_type == CONTENT_APPLICATION
        assert payload == b"hello world"

    def test_bidirectional(self, record_pair):
        client_enc, server_dec, server_enc, client_dec = record_pair
        assert server_dec.decode(
            client_enc.encode(CONTENT_APPLICATION, b"up"))[1] == b"up"
        assert client_dec.decode(
            server_enc.encode(CONTENT_APPLICATION, b"down"))[1] == b"down"

    def test_sequence_of_records(self, record_pair):
        client_enc, server_dec, _, _ = record_pair
        for index in range(10):
            message = f"record {index}".encode()
            assert server_dec.decode(
                client_enc.encode(CONTENT_APPLICATION, message))[1] == message

    def test_tamper_detected(self, record_pair):
        client_enc, server_dec, _, _ = record_pair
        record = bytearray(
            client_enc.encode(CONTENT_APPLICATION, b"important data"))
        record[-1] ^= 0x01
        with pytest.raises(BadRecordMAC):
            server_dec.decode(bytes(record))

    def test_reorder_detected(self, record_pair):
        client_enc, server_dec, _, _ = record_pair
        client_enc.encode(CONTENT_APPLICATION, b"one")  # frame 0, lost
        second = client_enc.encode(CONTENT_APPLICATION, b"two")
        # Delivering frame 1 while the decoder expects frame 0 must fail:
        # the implicit sequence number is part of the MAC input.
        with pytest.raises(BadRecordMAC):
            server_dec.decode(second)

    def test_replay_detected(self, record_pair):
        client_enc, server_dec, _, _ = record_pair
        record = client_enc.encode(CONTENT_APPLICATION, b"pay 10")
        server_dec.decode(record)
        with pytest.raises(BadRecordMAC):
            server_dec.decode(record)

    def test_truncated_record(self, record_pair):
        client_enc, server_dec, _, _ = record_pair
        record = client_enc.encode(CONTENT_APPLICATION, b"data")
        with pytest.raises(DecodeError):
            server_dec.decode(record[:-2])

    def test_header_too_short(self, record_pair):
        _, server_dec, _, _ = record_pair
        with pytest.raises(DecodeError):
            server_dec.decode(b"\x17")

    def test_direction_keys_differ(self):
        # Client-written records must not decode on the client's decoder.
        suite = RSA_WITH_3DES_SHA
        keys = _key_block(suite)
        client_enc, client_dec = make_record_pair(suite, keys, is_client=True)
        record = client_enc.encode(CONTENT_APPLICATION, b"loopback?")
        with pytest.raises(BadRecordMAC):
            client_dec.decode(record)

    def test_ciphertext_hides_plaintext(self):
        suite = RSA_WITH_3DES_SHA
        keys = _key_block(suite)
        encoder = RecordEncoder(
            suite, keys.client_cipher_key, keys.client_mac_key,
            keys.client_iv)
        record = encoder.encode(CONTENT_APPLICATION, b"SECRETSECRET")
        assert b"SECRETSECRET" not in record


@settings(max_examples=25, deadline=None)
@given(payload=st.binary(max_size=400))
def test_record_roundtrip_property(payload):
    suite = RSA_WITH_AES_SHA
    keys = _key_block(suite)
    encoder, _ = make_record_pair(suite, keys, is_client=True)
    _, decoder = make_record_pair(suite, keys, is_client=False)
    assert decoder.decode(
        encoder.encode(CONTENT_APPLICATION, payload))[1] == payload


class TestTransport:
    def test_fifo_delivery(self):
        channel = DuplexChannel()
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"1")
        a.send(b"2")
        assert b.receive() == b"1"
        assert b.receive() == b"2"

    def test_bidirectional(self):
        channel = DuplexChannel()
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"ping")
        b.send(b"pong")
        assert b.receive() == b"ping"
        assert a.receive() == b"pong"

    def test_empty_read_raises(self):
        channel = DuplexChannel()
        with pytest.raises(ChannelClosed):
            channel.endpoint_a().receive()

    def test_interceptor_modifies(self):
        channel = DuplexChannel(
            interceptor=lambda frame, direction: frame.upper())
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"quiet")
        assert b.receive() == b"QUIET"

    def test_interceptor_drops(self):
        channel = DuplexChannel(interceptor=lambda frame, direction: None)
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"gone")
        assert b.pending() == 0
        assert channel.dropped == 1

    def test_log_captures_all(self):
        channel = DuplexChannel()
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"x")
        b.send(b"y")
        assert [(d, f) for d, f in channel.log] == [
            ("a->b", b"x"), ("b->a", b"y")]

    def test_log_records_frame_as_sent_not_as_mutated(self):
        """The eavesdropper's log sees what the sender transmitted;
        the interceptor's mutation only affects delivery."""
        channel = DuplexChannel(
            interceptor=lambda frame, direction: frame.upper())
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"quiet")
        assert b.receive() == b"QUIET"
        assert channel.log == [("a->b", b"quiet")]

    def test_dropped_counts_every_interceptor_drop(self):
        decisions = iter([None, b"keep", None, b"keep"])
        channel = DuplexChannel(
            interceptor=lambda frame, direction: next(decisions))
        a, b = channel.endpoint_a(), channel.endpoint_b()
        for _ in range(4):
            a.send(b"frame")
        assert channel.dropped == 2
        assert b.pending() == 2
        assert len(channel.log) == 4  # drops are still logged


class TestChannelLifecycle:
    def test_empty_read_is_channel_empty(self):
        channel = DuplexChannel()
        with pytest.raises(ChannelEmpty):
            channel.endpoint_a().receive()

    def test_empty_subclasses_closed(self):
        # Compatibility guarantee: pre-ARQ callers catch ChannelClosed.
        assert issubclass(ChannelEmpty, ChannelClosed)

    def test_half_close_drains_then_raises_closed(self):
        channel = DuplexChannel()
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"last words")
        a.close()
        assert a.closed
        assert b.receive() == b"last words"
        with pytest.raises(ChannelClosed) as excinfo:
            b.receive()
        assert not isinstance(excinfo.value, ChannelEmpty)

    def test_half_close_is_directional(self):
        channel = DuplexChannel()
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.close()
        b.send(b"still flowing")  # the b->a direction stays open
        assert a.receive() == b"still flowing"

    def test_send_after_close_raises(self):
        channel = DuplexChannel()
        a = channel.endpoint_a()
        a.close()
        with pytest.raises(ChannelClosed):
            a.send(b"too late")

    def test_graceful_close_keeps_queued_frames(self):
        channel = DuplexChannel()
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"in flight")
        channel.close()
        assert b.receive() == b"in flight"

    def test_reset_loses_in_flight_frames(self):
        channel = DuplexChannel()
        a, b = channel.endpoint_a(), channel.endpoint_b()
        a.send(b"doomed")
        channel.reset()
        assert channel.resets == 1
        with pytest.raises(ChannelClosed):
            b.receive()
