"""Property-based round-trip tests for the datagram stacks.

Hypothesis drives ESP encapsulate→decapsulate and WEP encrypt→
(wire)→decrypt over arbitrary payloads: every valid input must come
back intact, and any single-bit ciphertext corruption must be rejected
with the stack's declared integrity alert — never returned as
plaintext and never a crash.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.protocols.alerts import BadRecordMAC  # noqa: E402
from repro.protocols.ipsec import make_tunnel  # noqa: E402
from repro.protocols.wep import WEPFrame, WEPStation  # noqa: E402

payloads = st.binary(min_size=0, max_size=200)
wep_keys = st.sampled_from([b"abcde", b"\x00" * 5, b"0123456789abc"])


@settings(max_examples=30, deadline=None)
@given(payload=payloads, spi=st.integers(min_value=1, max_value=0xFFFF))
def test_esp_roundtrip(payload, spi):
    sender, receiver = make_tunnel(spi, seed=9)
    sequence, opened = receiver.decapsulate(sender.encapsulate(payload))
    assert opened == payload
    assert sequence == 1


@settings(max_examples=30, deadline=None)
@given(payload=payloads, data=st.data())
def test_esp_rejects_any_corrupted_byte(payload, data):
    sender, receiver = make_tunnel(0xBEEF, seed=9)
    packet = bytearray(sender.encapsulate(payload))
    # Corrupt anywhere after the SPI/sequence header: IV, ciphertext,
    # or the auth tag itself — HMAC must catch all of them.
    index = data.draw(st.integers(min_value=8, max_value=len(packet) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    packet[index] ^= 1 << bit
    with pytest.raises(BadRecordMAC):
        receiver.decapsulate(bytes(packet))


@settings(max_examples=30, deadline=None)
@given(payload=payloads, key=wep_keys)
def test_wep_roundtrip_through_the_wire_format(payload, key):
    sender = WEPStation(key)
    receiver = WEPStation(key)
    frame = WEPFrame.from_bytes(sender.encrypt(payload).to_bytes())
    assert receiver.decrypt(frame) == payload


@settings(max_examples=30, deadline=None)
@given(payload=st.binary(min_size=1, max_size=200), data=st.data())
def test_wep_icv_catches_single_bit_noise(payload, data):
    """CRC-32 detects every single-bit error (that is what it is for —
    noise, not adversaries; the linear-forgery attack needs multi-bit
    compensating flips)."""
    station = WEPStation(b"abcde")
    frame = station.encrypt(payload)
    ciphertext = bytearray(frame.ciphertext)
    index = data.draw(st.integers(min_value=0, max_value=len(ciphertext) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    ciphertext[index] ^= 1 << bit
    with pytest.raises(BadRecordMAC):
        station.decrypt(WEPFrame(iv=frame.iv, key_id=frame.key_id,
                                 ciphertext=bytes(ciphertext)))
