"""Stateless-cookie DoS protection for connection setup."""

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.dos import (
    CookieProtectedResponder,
    flood_experiment,
)


@pytest.fixture()
def responder():
    return CookieProtectedResponder(rng=DeterministicDRBG("dos-test"))


class TestCookieGate:
    def test_legitimate_round_trip(self, responder):
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert cookie is not None
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        assert responder.handshakes_started == 1

    def test_forged_cookie_rejected(self, responder):
        responder.first_contact("192.168.1.2", b"nonce-01")
        assert not responder.second_contact(
            "192.168.1.2", b"nonce-01", bytes(16))
        assert responder.handshakes_started == 0
        assert responder.cookies_rejected == 1

    def test_cookie_bound_to_address(self, responder):
        """A cookie issued to one address fails from another (source
        spoofing cannot harvest cookies for later use)."""
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert not responder.second_contact(
            "10.9.9.9", b"nonce-01", cookie)

    def test_cookie_bound_to_nonce(self, responder):
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert not responder.second_contact(
            "192.168.1.2", b"nonce-02", cookie)

    def test_two_rotations_expire_cookies(self, responder):
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        responder.rotate_secret()
        responder.rotate_secret()
        assert not responder.second_contact(
            "192.168.1.2", b"nonce-01", cookie)
        assert responder.cookies_rejected == 1
        assert responder.cookies_grace_accepted == 0

    def test_one_rotation_grace_accepts(self, responder):
        """A cookie that crossed the slow radio link while the secret
        rotated is honoured for one grace rotation, and counted."""
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        responder.rotate_secret()
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        assert responder.cookies_grace_accepted == 1
        assert responder.cookies_verified == 1
        assert responder.handshakes_started == 1

    def test_grace_window_still_rejects_forgeries(self, responder):
        responder.first_contact("192.168.1.2", b"nonce-01")
        responder.rotate_secret()
        assert not responder.second_contact(
            "192.168.1.2", b"nonce-01", bytes(16))
        assert responder.cookies_rejected == 1
        assert responder.cookies_grace_accepted == 0

    def test_fresh_cookie_skips_grace_path(self, responder):
        """Current-secret cookies verify on the first HMAC; the grace
        counter only moves for previous-secret cookies."""
        responder.rotate_secret()
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        assert responder.cookies_grace_accepted == 0

    def test_first_contact_is_stateless_and_cheap(self, responder):
        for index in range(100):
            responder.first_contact(f"10.0.0.{index}", b"n")
        # 100 cookies cost ~0.2 MI total; no handshake state committed.
        assert responder.handshakes_started == 0
        assert responder.work_spent_mi < 1.0


class TestBoundedPendingTable:
    def test_pending_table_tracks_and_consumes(self, responder):
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert responder.pending_cookies == 1
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        assert responder.pending_cookies == 0
        assert responder.cookies_unmatched == 0

    def test_flood_cannot_grow_unbounded_state(self, responder):
        """The anti-DoS table must not itself be a memory DoS: a
        spoofed flood far beyond the bound leaves at most
        ``pending_limit`` entries, evicting seeded-random victims."""
        flood = responder.pending_limit * 4
        for index in range(flood):
            responder.first_contact(
                f"10.{index % 256}.{(index // 256) % 256}.1",
                index.to_bytes(4, "big"))
        assert responder.pending_cookies == responder.pending_limit
        assert responder.evicted == flood - responder.pending_limit

    def test_evicted_legit_client_is_still_served(self, responder):
        """Fail-open: eviction costs a counter tick, never a client.
        The HMAC remains the authoritative gate."""
        cookie = responder.first_contact("192.168.1.2", b"real-nonce")
        for index in range(responder.pending_limit * 2):   # flood it out
            responder.first_contact(f"10.0.{index % 256}.9",
                                    index.to_bytes(4, "big"))
        unmatched_before = responder.cookies_unmatched
        assert responder.second_contact(
            "192.168.1.2", b"real-nonce", cookie)
        assert responder.handshakes_started == 1
        # Either the entry survived or its consumption went unmatched —
        # service is identical, only the accounting differs.
        assert responder.cookies_unmatched in (
            unmatched_before, unmatched_before + 1)

    def test_replay_within_window_counts_unmatched(self, responder):
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        # Replay: still cryptographically valid inside the window, but
        # its single-use entry is gone.
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        assert responder.cookies_unmatched == 1

    def test_rotations_garbage_collect_expired_entries(self, responder):
        responder.first_contact("192.168.1.2", b"nonce-01")
        assert responder.pending_cookies == 1
        responder.rotate_secret()
        assert responder.pending_cookies == 1      # grace window: kept
        responder.rotate_secret()
        assert responder.pending_cookies == 0      # fully expired: GC'd

    def test_grace_window_consumes_pending_entry(self, responder):
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        responder.rotate_secret()
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        assert responder.pending_cookies == 0
        assert responder.cookies_unmatched == 0

    def test_eviction_is_deterministic(self):
        def run():
            responder = CookieProtectedResponder(
                rng=DeterministicDRBG("dos-evict"), pending_limit=8)
            for index in range(64):
                responder.first_contact(f"10.0.0.{index}",
                                        index.to_bytes(2, "big"))
            return sorted(responder._pending), responder.evicted

        assert run() == run()

    def test_pending_limit_validated(self):
        with pytest.raises(ValueError):
            CookieProtectedResponder(
                rng=DeterministicDRBG("dos-bad"), pending_limit=0)


class TestFloodExperiment:
    def test_naive_responder_melts(self):
        report = flood_experiment(flood_size=1000, require_cookies=False)
        assert report.handshakes_started == 1005  # every spoof costs RSA
        # >4 minutes of SA-1100 time burned by one blind second of UDP.
        assert report.seconds_on_sa1100 > 240.0

    def test_protected_responder_survives(self):
        report = flood_experiment(flood_size=1000, require_cookies=True)
        assert report.handshakes_started == 5  # only real clients
        assert report.legitimate_clients_served == 5
        assert report.seconds_on_sa1100 < 2.0

    def test_amplification_factor(self):
        """The cookie gate cuts the flood's work amplification by
        orders of magnitude — §2's DoS-prevention function quantified."""
        naive = flood_experiment(flood_size=500, require_cookies=False)
        protected = flood_experiment(flood_size=500, require_cookies=True)
        assert naive.work_spent_mi > 100 * protected.work_spent_mi

    def test_legitimate_clients_served_in_both_modes(self):
        for require_cookies in (False, True):
            report = flood_experiment(flood_size=50,
                                      require_cookies=require_cookies)
            assert report.legitimate_clients_served == 5


# -- the observability seam (PR 7) -------------------------------------------


class TestSnapshotAndExport:
    def test_snapshot_mirrors_counters(self):
        responder = CookieProtectedResponder(
            rng=DeterministicDRBG("snap"), pending_limit=4)
        nonce = b"\x01" * 8
        cookie = responder.first_contact("10.0.0.1", nonce)
        responder.second_contact("10.0.0.1", nonce, cookie)
        responder.second_contact("10.0.0.2", nonce, b"\x00" * 16)
        snap = responder.snapshot()
        assert snap["cookies_issued"] == 1
        assert snap["cookies_verified"] == 1
        assert snap["cookies_rejected"] == 1
        assert snap["pending_cookies"] == 0
        assert snap["handshakes_started"] == 1
        assert snap["work_spent_mi"] > 0.0

    def test_export_dos_responder_is_live(self):
        from repro.observability.metrics import (
            MetricsRegistry,
            export_dos_responder,
        )

        responder = CookieProtectedResponder(
            rng=DeterministicDRBG("export"), pending_limit=2)
        registry = MetricsRegistry()
        export_dos_responder(registry, responder, role="gateway")

        def sample(name):
            for sampled, key, value in registry.samples():
                if sampled == name and ("role", "gateway") in key:
                    return value
            raise AssertionError(f"no sample {name}")

        assert sample("repro_dos_responder_cookies_issued") == 0.0
        for index in range(3):   # one past the pending limit: evicts
            responder.first_contact(f"10.0.0.{index}", bytes([index] * 8))
        # Ledger adapter reads through live, including the property.
        assert sample("repro_dos_responder_cookies_issued") == 3.0
        assert sample("repro_dos_responder_pending_cookies") == 2.0
        assert sample("repro_dos_responder_evicted") == 1.0
