"""Stateless-cookie DoS protection for connection setup."""

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.dos import (
    CookieProtectedResponder,
    flood_experiment,
)


@pytest.fixture()
def responder():
    return CookieProtectedResponder(rng=DeterministicDRBG("dos-test"))


class TestCookieGate:
    def test_legitimate_round_trip(self, responder):
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert cookie is not None
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        assert responder.handshakes_started == 1

    def test_forged_cookie_rejected(self, responder):
        responder.first_contact("192.168.1.2", b"nonce-01")
        assert not responder.second_contact(
            "192.168.1.2", b"nonce-01", bytes(16))
        assert responder.handshakes_started == 0
        assert responder.cookies_rejected == 1

    def test_cookie_bound_to_address(self, responder):
        """A cookie issued to one address fails from another (source
        spoofing cannot harvest cookies for later use)."""
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert not responder.second_contact(
            "10.9.9.9", b"nonce-01", cookie)

    def test_cookie_bound_to_nonce(self, responder):
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert not responder.second_contact(
            "192.168.1.2", b"nonce-02", cookie)

    def test_two_rotations_expire_cookies(self, responder):
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        responder.rotate_secret()
        responder.rotate_secret()
        assert not responder.second_contact(
            "192.168.1.2", b"nonce-01", cookie)
        assert responder.cookies_rejected == 1
        assert responder.cookies_grace_accepted == 0

    def test_one_rotation_grace_accepts(self, responder):
        """A cookie that crossed the slow radio link while the secret
        rotated is honoured for one grace rotation, and counted."""
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        responder.rotate_secret()
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        assert responder.cookies_grace_accepted == 1
        assert responder.cookies_verified == 1
        assert responder.handshakes_started == 1

    def test_grace_window_still_rejects_forgeries(self, responder):
        responder.first_contact("192.168.1.2", b"nonce-01")
        responder.rotate_secret()
        assert not responder.second_contact(
            "192.168.1.2", b"nonce-01", bytes(16))
        assert responder.cookies_rejected == 1
        assert responder.cookies_grace_accepted == 0

    def test_fresh_cookie_skips_grace_path(self, responder):
        """Current-secret cookies verify on the first HMAC; the grace
        counter only moves for previous-secret cookies."""
        responder.rotate_secret()
        cookie = responder.first_contact("192.168.1.2", b"nonce-01")
        assert responder.second_contact("192.168.1.2", b"nonce-01", cookie)
        assert responder.cookies_grace_accepted == 0

    def test_first_contact_is_stateless_and_cheap(self, responder):
        for index in range(100):
            responder.first_contact(f"10.0.0.{index}", b"n")
        # 100 cookies cost ~0.2 MI total; no handshake state committed.
        assert responder.handshakes_started == 0
        assert responder.work_spent_mi < 1.0


class TestFloodExperiment:
    def test_naive_responder_melts(self):
        report = flood_experiment(flood_size=1000, require_cookies=False)
        assert report.handshakes_started == 1005  # every spoof costs RSA
        # >4 minutes of SA-1100 time burned by one blind second of UDP.
        assert report.seconds_on_sa1100 > 240.0

    def test_protected_responder_survives(self):
        report = flood_experiment(flood_size=1000, require_cookies=True)
        assert report.handshakes_started == 5  # only real clients
        assert report.legitimate_clients_served == 5
        assert report.seconds_on_sa1100 < 2.0

    def test_amplification_factor(self):
        """The cookie gate cuts the flood's work amplification by
        orders of magnitude — §2's DoS-prevention function quantified."""
        naive = flood_experiment(flood_size=500, require_cookies=False)
        protected = flood_experiment(flood_size=500, require_cookies=True)
        assert naive.work_spent_mi > 100 * protected.work_spent_mi

    def test_legitimate_clients_served_in_both_modes(self):
        for require_cookies in (False, True):
            report = flood_experiment(flood_size=50,
                                      require_cookies=require_cookies)
            assert report.legitimate_clients_served == 5
