"""SET-style dual-signature payments (§2 application-layer security)."""

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.crypto.sha1 import sha1
from repro.protocols.payment import (
    DualSignedPayment,
    Merchant,
    OrderInfo,
    PaymentError,
    PaymentGateway,
    PaymentInfo,
    create_payment,
    non_repudiation_evidence,
)

CARD = "4111111111111111"


@pytest.fixture()
def cardholder(ca):
    return ca.issue("alice.cardholder", DeterministicDRBG("set-alice"))


@pytest.fixture()
def purchase(cardholder):
    key, cert = cardholder
    order = OrderInfo(merchant="shop.example", description="ringtone-42",
                      amount_cents=299, order_id="ORD-1")
    payment = PaymentInfo(card_number=CARD, expiry="12/05",
                          amount_cents=299, order_id="ORD-1")
    return create_payment(order, payment, key, cert)


class TestDualSignature:
    def test_merchant_accepts_and_identifies(self, ca, purchase):
        merchant = Merchant(name="shop.example", ca=ca)
        subject = merchant.process(purchase.merchant_view())
        assert subject == "alice.cardholder"
        assert merchant.fulfilled == ["ORD-1"]

    def test_gateway_authorises(self, ca, purchase):
        gateway = PaymentGateway(ca=ca)
        code = gateway.process(purchase.gateway_view())
        assert len(code) == 12
        assert gateway.authorised[0][0] == "ORD-1"

    def test_merchant_never_sees_card(self, purchase):
        order, payment_digest, signature, cert = purchase.merchant_view()
        blob = order.to_bytes() + payment_digest + signature + cert
        assert CARD.encode() not in blob

    def test_gateway_never_sees_order_description(self, purchase):
        payment, order_digest, signature, cert = purchase.gateway_view()
        blob = payment.to_bytes() + order_digest + signature + cert
        assert b"ringtone-42" not in blob

    def test_merchant_cannot_inflate_amount(self, ca, purchase):
        """Substituting a modified order breaks the dual signature."""
        inflated = OrderInfo(
            merchant="shop.example", description="ringtone-42",
            amount_cents=29_900, order_id="ORD-1")
        view = (inflated, purchase.payment_digest,
                purchase.dual_signature, purchase.cardholder_certificate)
        with pytest.raises(PaymentError, match="dual signature"):
            Merchant(name="shop.example", ca=ca).process(view)

    def test_payment_cannot_be_redirected(self, ca, cardholder, purchase):
        """Splicing this dual signature onto different payment info
        fails at the gateway."""
        other_payment = PaymentInfo(card_number="5500000000000004",
                                    expiry="12/05", amount_cents=299,
                                    order_id="ORD-1")
        view = (other_payment, purchase.order_digest,
                purchase.dual_signature, purchase.cardholder_certificate)
        with pytest.raises(PaymentError):
            PaymentGateway(ca=ca).process(view)

    def test_wrong_merchant_rejected(self, ca, purchase):
        with pytest.raises(PaymentError, match="addressed to"):
            Merchant(name="other.example", ca=ca).process(
                purchase.merchant_view())

    def test_mismatched_halves_rejected_at_creation(self, cardholder):
        key, cert = cardholder
        order = OrderInfo("m", "thing", 100, "A")
        payment = PaymentInfo(CARD, "12/05", 999, "A")
        with pytest.raises(PaymentError, match="amount"):
            create_payment(order, payment, key, cert)
        payment2 = PaymentInfo(CARD, "12/05", 100, "B")
        with pytest.raises(PaymentError, match="order id"):
            create_payment(order, payment2, key, cert)

    def test_non_repudiation_evidence(self, ca, purchase):
        evidence = non_repudiation_evidence(purchase, ca)
        assert evidence == {
            "cardholder": "alice.cardholder",
            "order_id": "ORD-1",
            "amount_cents": 299,
            "binding_holds": True,
        }

    def test_forged_evidence_detected(self, ca, purchase):
        forged = DualSignedPayment(
            order=OrderInfo("shop.example", "yacht", 10**9, "ORD-1"),
            payment_digest=purchase.payment_digest,
            payment=purchase.payment,
            order_digest=sha1(b"forged"),
            dual_signature=purchase.dual_signature,
            cardholder_certificate=purchase.cardholder_certificate,
        )
        assert not non_repudiation_evidence(forged, ca)["binding_holds"]

    def test_end_to_end_through_wap_gap(self, ca, cardholder):
        """The closing §2 argument: the dual-signed request traverses
        the WAP gateway without exposing the card number even in the
        gateway's plaintext log."""
        from repro.protocols.wap import build_wap_world

        key, cert = cardholder
        order = OrderInfo("origin.example", "song", 199, "ORD-9")
        payment = PaymentInfo(CARD, "12/05", 199, "ORD-9")
        purchase = create_payment(order, payment, key, cert)

        # Serialise only the merchant view through the gateway.
        order_wire, payment_digest, signature, cert_bytes = \
            purchase.merchant_view()
        request = (order_wire.to_bytes() + b"||" + payment_digest
                   + b"||" + signature)

        handset, gateway, _ = build_wap_world(
            seed=55, handler=lambda req: b"ACK:" + req[:20])
        handset.send(request)
        gateway.forward("origin.example")
        handset.receive()
        assert all(CARD.encode() not in item
                   for item in gateway.plaintext_log)
