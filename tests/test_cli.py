"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for number in range(1, 7):
            assert f"Figure {number}" in out

    def test_single_figure(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "726256" in out
        assert "Figure 3" not in out

    def test_figure_range_validated(self):
        with pytest.raises(SystemExit):
            main(["figure", "9"])

    def test_gap(self, capsys):
        assert main(["gap"]) == 0
        out = capsys.readouterr().out
        assert "StrongARM" in out and "Pentium" in out

    def test_battery(self, capsys):
        assert main(["battery"]) == 0
        out = capsys.readouterr().out
        assert "less than half" in out
        assert "battery gap projection" in out

    def test_appliance(self, capsys):
        assert main(["appliance", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "boot: ok" in out
        assert "unlock: True" in out

    def test_attacks(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert "key recovered" in out
        assert "defeated (masking)" in out
        assert "modulus factored" in out
        assert "faulty signature withheld" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
