"""Satellite fixes riding the fleet PR.

* the bounded resumption cache: seeded eviction and rotation GC;
* :class:`~repro.protocols.recovery.ReconnectPolicy`: the reconnect
  path honours a per-attempt virtual-time deadline with exponential
  backoff and seeded jitter, surfacing ``reconnect_deadline_exceeded``
  instead of hammering resumption forever.
"""

import pytest

from repro.crypto.rng import DeterministicDRBG
from repro.protocols.recovery import ReconnectPolicy, ResilientSession
from repro.protocols.reliable import VirtualClock
from repro.protocols.resumption import CachedSession, SessionCache
from repro.protocols.transport import DuplexChannel


def entry(tag: int) -> CachedSession:
    return CachedSession(session_id=bytes([tag]) * 16,
                         suite_name="RSA_WITH_AES_128_CBC_SHA",
                         master=bytes(48))


class TestBoundedSessionCache:
    def test_fifo_eviction_without_rng(self):
        cache = SessionCache(capacity=2)
        for tag in range(4):
            cache.store(entry(tag))
        assert len(cache) == 2
        assert cache.evictions == 2
        assert cache.lookup(entry(0).session_id) is None
        assert cache.lookup(entry(3).session_id) is not None

    def test_seeded_eviction_is_deterministic(self):
        def survivors(seed):
            cache = SessionCache(
                capacity=3,
                eviction_rng=DeterministicDRBG(f"evict-{seed}"))
            for tag in range(8):
                cache.store(entry(tag))
            return sorted(cache._entries)

        assert survivors(5) == survivors(5)
        assert SessionCache(capacity=3).evictions == 0

    def test_restoring_an_existing_id_never_evicts(self):
        cache = SessionCache(capacity=2)
        cache.store(entry(0))
        cache.store(entry(1))
        cache.store(entry(0))
        assert cache.evictions == 0
        assert len(cache) == 2

    def test_rotation_expires_untouched_entries(self):
        cache = SessionCache(capacity=8, generation_limit=2)
        cache.store(entry(0))
        cache.rotate()
        cache.store(entry(1))
        cache.rotate()
        # entry(0) was born 2 epochs ago; the third rotation passes the
        # limit and expires it, while entry(1) survives one more.
        expired = cache.rotate()
        assert expired == 1
        assert cache.expired == 1
        assert cache.rotations == 3
        assert cache.lookup(entry(0).session_id) is None
        assert cache.lookup(entry(1).session_id) is not None

    def test_touch_refreshes_the_generation(self):
        cache = SessionCache(capacity=8, generation_limit=1)
        cache.store(entry(0))
        cache.rotate()
        cache.touch(entry(0).session_id)
        assert cache.rotate() == 0
        assert len(cache) == 1

    def test_rotation_without_limit_only_advances_the_epoch(self):
        cache = SessionCache(capacity=8)
        cache.store(entry(0))
        for _ in range(5):
            assert cache.rotate() == 0
        assert len(cache) == 1


class TestReconnectPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ReconnectPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            ReconnectPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ReconnectPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ReconnectPolicy(base_backoff_s=-1.0)

    def test_legacy_path_makes_exactly_one_resume_attempt(
            self, client_config, server_config):
        session = ResilientSession(client_config, server_config)
        session.establish()
        session.server_cache.invalidate(session.session_id)
        assert session.reconnect() == "full"
        assert session.report.resume_attempts == 1
        assert session.report.reconnect_deadline_exceeded == 0

    def test_deadline_exceeded_is_surfaced_and_falls_back_to_full(
            self, client_config, server_config):
        clock = VirtualClock()
        session = ResilientSession(
            client_config, server_config, clock=clock,
            reconnect_policy=ReconnectPolicy(
                deadline_s=0.5, base_backoff_s=1.0, max_attempts=10))
        session.establish()
        session.server_cache.invalidate(session.session_id)
        assert session.reconnect() == "full"
        # One failed resume, then the backoff (capped at the default
        # max_backoff_s of 0.8) blows the 0.5 s deadline before
        # attempt two.
        assert session.report.resume_attempts == 1
        assert session.report.reconnect_deadline_exceeded == 1
        assert session.report.full_handshakes == 2
        assert clock.now >= 0.8
        assert any("deadline" in failure
                   for failure in session.report.failures)

    def test_backoff_retries_until_the_link_comes_back(
            self, client_config, server_config):
        clock = VirtualClock()
        calls = {"n": 0}

        def flaky_factory():
            calls["n"] += 1
            channel = DuplexChannel()
            if calls["n"] in (2, 3):     # the two resume tries that fail
                channel.close()
            return channel.endpoint_a(), channel.endpoint_b()

        session = ResilientSession(
            client_config, server_config,
            endpoint_factory=flaky_factory, clock=clock,
            reconnect_policy=ReconnectPolicy(
                deadline_s=10.0, base_backoff_s=0.1, backoff_factor=2.0,
                jitter_s=0.01, max_attempts=5))
        session.establish()              # factory call 1
        assert session.reconnect() == "resumed"
        assert session.report.resume_attempts == 3
        assert session.report.resumptions == 1
        assert session.report.reconnect_deadline_exceeded == 0
        # Two backoffs elapsed on the virtual clock (0.1 + 0.2 plus
        # seeded jitter, bounded by jitter_s per attempt).
        assert 0.3 <= clock.now <= 0.32

    def test_backoff_and_jitter_are_deterministic(
            self, client_config, server_config):
        def run():
            clock = VirtualClock()
            session = ResilientSession(
                client_config, server_config, clock=clock,
                reconnect_policy=ReconnectPolicy(
                    deadline_s=5.0, base_backoff_s=0.05, max_attempts=3))
            session.establish()
            session.server_cache.invalidate(session.session_id)
            session.reconnect()
            return clock.now, session.report.resume_attempts

        assert run() == run()
