"""The fleet acceptance gate: the seeded multi-shard chaos run.

One canonical run (24 sessions x 4 shards x 6 requests, seed 2003)
must satisfy every declared property of the crash-fault-tolerance
plane at once: every shard killed at least once, every benign request
answered or shed with a structured reason, all three recovery tiers
exercised, exact energy reconciliation, zero replayed or skipped
record sequences on any handset, and byte-identical behaviour on a
same-seed rerun.
"""

import pytest

from repro.analysis.failover import build_report, format_report
from repro.fleet import run_failover
from repro.fleet.scenario import answered_total

SESSIONS = 24
SHARDS = 4
REQUESTS = 6
SEED = 2003


@pytest.fixture(scope="module")
def result():
    return run_failover(sessions=SESSIONS, shards=SHARDS,
                        requests_per_session=REQUESTS, seed=SEED)


class TestChaosAcceptance:
    def test_every_shard_killed_at_least_once(self, result):
        assert result.stats.crashes >= SHARDS
        assert all(shard.crash_count >= 1
                   for shard in result.fleet.shards)
        assert result.stats.detections == result.stats.crashes
        assert result.stats.restarts == result.stats.crashes

    def test_every_benign_request_answered(self, result):
        assert result.fleet.submitted == SESSIONS * REQUESTS
        assert answered_total(result) == result.fleet.submitted
        # Exactly one answer per request, per session.
        assert all(count == REQUESTS
                   for count in result.per_session_replies.values())
        assert sum(result.counts.values()) == result.fleet.submitted

    def test_sheds_carry_structured_reasons(self, result):
        assert result.counts["shed"] == sum(result.shed_reasons.values())
        assert "unknown" not in result.shed_reasons
        # The failover windows produced recovering sheds specifically.
        assert result.shed_reasons.get("recovering", 0) > 0
        assert result.stats.shed_recovering == \
            result.shed_reasons["recovering"]

    def test_all_three_recovery_tiers_exercised(self, result):
        stats = result.stats
        assert stats.migrations_warm > 0
        assert stats.migrations_cold_resume > 0
        assert stats.migrations_cold_full > 0
        assert stats.sessions_migrated == (
            stats.migrations_warm + stats.migrations_cold_resume
            + stats.migrations_cold_full)
        assert stats.checkpoints_restored == stats.migrations_warm

    def test_recovery_latencies_are_tracked(self, result):
        stats = result.stats
        assert len(stats.recovery_latencies) == stats.sessions_migrated
        assert 0.0 < stats.recovery_p50_s() <= stats.recovery_p95_s()

    def test_energy_reconciles_exactly(self, result):
        assert result.reconciliation.ok
        assert result.stats.recovery_energy_mj > 0.0

    def test_no_handset_ever_saw_a_replayed_or_damaged_record(self, result):
        # A mid-batch crash must never replay a record sequence: the
        # restore-time sequence skip leapfrogs anything the dead shard
        # could have consumed, so no handset discards a single record.
        assert all(handset.discarded == 0
                   for handset in result.fleet.handsets.values())

    def test_bounded_stores_actually_bounded(self, result):
        fleet = result.fleet
        limit = fleet.config.journal_index_limit
        assert all(shard.journal.tracked_sessions() <= limit
                   for shard in fleet.shards)
        assert len(fleet.ticket_cache) <= fleet.config.ticket_cache_limit
        # The canonical sizing forces evictions (the cold-path driver).
        assert fleet.journal_evictions() > 0
        assert fleet.ticket_cache.evictions > 0

    def test_restarts_rotate_the_ticket_cache(self, result):
        assert result.fleet.ticket_cache.rotations == result.stats.restarts


class TestDeterminism:
    def test_same_seed_reruns_are_byte_identical(self, result):
        text = format_report(build_report(result))
        rerun = run_failover(sessions=SESSIONS, shards=SHARDS,
                             requests_per_session=REQUESTS, seed=SEED)
        assert format_report(build_report(rerun)) == text

    def test_different_seeds_diverge(self, result):
        other = run_failover(sessions=SESSIONS, shards=SHARDS,
                             requests_per_session=REQUESTS, seed=7)
        assert format_report(build_report(other)) != \
            format_report(build_report(result))
        # But the invariants hold at any seed.
        assert answered_total(other) == other.fleet.submitted
        assert other.reconciliation.ok
