"""Consistent-hash ring: determinism, minimal movement, eligibility."""

import pytest

from repro.fleet import ConsistentRing

SHARDS = ["shard-0", "shard-1", "shard-2", "shard-3"]
KEYS = [f"handset-{index:02d}" for index in range(64)]


def test_owner_is_deterministic():
    left = ConsistentRing(SHARDS)
    right = ConsistentRing(SHARDS)
    assert [left.owner(key) for key in KEYS] == \
        [right.owner(key) for key in KEYS]


def test_every_shard_owns_something():
    spread = ConsistentRing(SHARDS).spread(KEYS)
    assert set(spread) == set(SHARDS)
    assert all(count > 0 for count in spread.values())
    assert sum(spread.values()) == len(KEYS)


def test_failover_moves_only_the_dead_shards_keys():
    ring = ConsistentRing(SHARDS)
    before = {key: ring.owner(key) for key in KEYS}
    survivors = [name for name in SHARDS if name != "shard-1"]
    after = {key: ring.owner(key, eligible=survivors) for key in KEYS}
    for key in KEYS:
        if before[key] != "shard-1":
            # Consistent hashing: surviving placements never move.
            assert after[key] == before[key]
        else:
            assert after[key] in survivors


def test_single_survivor_takes_everything():
    ring = ConsistentRing(SHARDS)
    assert all(ring.owner(key, eligible=["shard-2"]) == "shard-2"
               for key in KEYS)


def test_empty_inputs_rejected():
    with pytest.raises(ValueError):
        ConsistentRing([])
    with pytest.raises(ValueError):
        ConsistentRing(SHARDS, vnodes=0)
    with pytest.raises(ValueError):
        ConsistentRing(SHARDS).owner("key", eligible=[])
