"""Session snapshots: codec safety and the crash-equivalence property.

The load-bearing property of the whole checkpoint plane, stated as
code: interrupting a session at *any* point — checkpoint, crash,
restore on a different endpoint — then continuing, is byte-identical
on the wire to never having crashed at all, on every suite and both
dispatch paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import fastpath
from repro.fleet import SessionSnapshot, capture_connection, restore_connection
from repro.protocols.alerts import ReplayError
from repro.protocols.ciphersuites import (
    ALL_SUITES,
    LIGHTWEIGHT_SUITES,
    RSA_WITH_AES_SHA,
    RSA_WITH_RC4_SHA,
)
from repro.protocols.kdf import KeyBlock
from repro.protocols.transport import DuplexChannel
from repro.protocols.wtls import (
    WTLSConnection,
    WTLSRecordDecoder,
    WTLSRecordEncoder,
)


def _key_block(suite):
    def material(tag, count):
        return bytes((tag + i) % 256 for i in range(count))

    return KeyBlock(
        client_mac_key=material(1, suite.mac_key_bytes),
        server_mac_key=material(2, suite.mac_key_bytes),
        client_cipher_key=material(3, suite.cipher_key_bytes),
        server_cipher_key=material(4, suite.cipher_key_bytes),
        client_iv=material(5, suite.iv_bytes),
        server_iv=material(6, suite.iv_bytes),
    )


def _make_world(suite, channel):
    """A handset/gateway WTLS pair over one channel (fixed keys)."""
    keys = _key_block(suite)
    handset = WTLSConnection(
        encoder=WTLSRecordEncoder(suite, keys.client_cipher_key,
                                  keys.client_mac_key, keys.client_iv),
        decoder=WTLSRecordDecoder(suite, keys.server_cipher_key,
                                  keys.server_mac_key, keys.server_iv),
        endpoint=channel.endpoint_a(), suite_name=suite.name)
    gateway = WTLSConnection(
        encoder=WTLSRecordEncoder(suite, keys.server_cipher_key,
                                  keys.server_mac_key, keys.server_iv),
        decoder=WTLSRecordDecoder(suite, keys.client_cipher_key,
                                  keys.client_mac_key, keys.client_iv),
        endpoint=channel.endpoint_b(), suite_name=suite.name)
    return handset, gateway


def _exchange(handset, gateway, request: bytes) -> bytes:
    handset.send(request)
    seen = gateway.receive()
    gateway.send(seen[::-1])
    return handset.receive()


def _snap(gateway, mutation=0):
    return capture_connection("s-00", gateway, ticket=b"t" * 16,
                              battery_remaining_mj=1234.5, mutation=mutation)


class TestCodec:
    def test_round_trip_is_exact(self):
        channel = DuplexChannel()
        handset, gateway = _make_world(RSA_WITH_AES_SHA, channel)
        _exchange(handset, gateway, b"warm-up")
        snapshot = _snap(gateway, mutation=4)
        decoded = SessionSnapshot.from_bytes(snapshot.to_bytes())
        assert decoded == snapshot
        assert decoded.battery_remaining_uj == 1_234_500
        assert decoded.mutation == 4

    @pytest.mark.parametrize("damage", ["truncate", "trailing", "version"])
    def test_damaged_blobs_raise_value_error(self, damage):
        channel = DuplexChannel()
        _, gateway = _make_world(RSA_WITH_AES_SHA, channel)
        raw = _snap(gateway).to_bytes()
        if damage == "truncate":
            raw = raw[:-3]
        elif damage == "trailing":
            raw = raw + b"\x00"
        else:
            raw = bytes([99]) + raw[1:]
        with pytest.raises(ValueError):
            SessionSnapshot.from_bytes(raw)


class TestVersionCompat:
    def test_v2_carries_trace_context(self):
        channel = DuplexChannel()
        _, gateway = _make_world(RSA_WITH_AES_SHA, channel)
        snapshot = capture_connection(
            "s-00", gateway, trace_ctx=b"\x01ctx-bytes")
        decoded = SessionSnapshot.from_bytes(snapshot.to_bytes())
        assert decoded.trace_ctx == b"\x01ctx-bytes"

    def test_v1_journals_still_decode(self):
        # A v1 frame is a v2 frame minus the trailing length-prefixed
        # trace_ctx field, with the version byte rolled back.
        channel = DuplexChannel()
        handset, gateway = _make_world(RSA_WITH_AES_SHA, channel)
        _exchange(handset, gateway, b"warm-up")
        snapshot = _snap(gateway, mutation=2)
        assert snapshot.trace_ctx == b""
        v2 = snapshot.to_bytes()
        v1 = bytes([1]) + v2[1:-2]
        decoded = SessionSnapshot.from_bytes(v1)
        assert decoded == snapshot

    def test_v1_frame_with_trailing_bytes_rejected(self):
        channel = DuplexChannel()
        _, gateway = _make_world(RSA_WITH_AES_SHA, channel)
        v2 = _snap(gateway).to_bytes()
        v1 = bytes([1]) + v2[1:-2]
        with pytest.raises(ValueError):
            SessionSnapshot.from_bytes(v1 + b"\x00\x00")


class TestCrashEquivalence:
    @pytest.mark.parametrize("suite", ALL_SUITES, ids=lambda s: s.name)
    @pytest.mark.parametrize("path", ["fast", "reference"])
    @settings(max_examples=5, deadline=None)
    @given(payloads=st.lists(st.binary(min_size=1, max_size=120),
                             min_size=1, max_size=5),
           cut_raw=st.integers(min_value=0, max_value=5))
    def test_checkpoint_restore_continue_is_byte_identical(
            self, suite, path, payloads, cut_raw):
        cut = cut_raw % (len(payloads) + 1)
        with fastpath.force(path == "fast"):
            # The uninterrupted world.
            chan_u = DuplexChannel()
            handset_u, gateway_u = _make_world(suite, chan_u)
            replies_u = [_exchange(handset_u, gateway_u, p)
                         for p in payloads]

            # The crashed world: checkpoint after `cut` exchanges, kill
            # the gateway, restore from serialized bytes on a fresh
            # endpoint, continue.
            chan_c = DuplexChannel()
            handset_c, gateway_c = _make_world(suite, chan_c)
            replies_c = [_exchange(handset_c, gateway_c, p)
                         for p in payloads[:cut]]
            blob = _snap(gateway_c, mutation=cut).to_bytes()
            del gateway_c
            restored = restore_connection(
                SessionSnapshot.from_bytes(blob), chan_c.endpoint_b())
            replies_c += [_exchange(handset_c, restored, p)
                          for p in payloads[cut:]]

        assert replies_c == replies_u
        # The strongest form: the wire itself is byte-identical.
        assert chan_c.log == chan_u.log
        # And the crash neither replayed nor skipped a sequence.
        assert handset_c.decoder.received == len(payloads)
        assert handset_c.discarded == 0
        assert handset_c.decoder.records_lost == 0


class TestKeystreamOffset:
    """Stream suites re-key every WTLS record from ``key XOR
    sequence``, so the snapshot's sequence counters *are* the
    keystream offset.  The pin: after restore, the next outbound
    record must decrypt under a cipher derived independently from the
    snapshot's ``enc_sequence`` — off by one record, and every later
    record would run against the wrong keystream."""

    @pytest.mark.parametrize(
        "suite", LIGHTWEIGHT_SUITES + [RSA_WITH_RC4_SHA],
        ids=lambda s: s.name)
    def test_snapshot_pins_keystream_position(self, suite):
        channel = DuplexChannel()
        handset, gateway = _make_world(suite, channel)
        for i in range(3):
            _exchange(handset, gateway, bytes([i]) * 20)
        snapshot = _snap(gateway)
        assert snapshot.enc_sequence == gateway.encoder._sequence
        del gateway
        restored = restore_connection(
            SessionSnapshot.from_bytes(snapshot.to_bytes()),
            channel.endpoint_b())

        handset.send(b"after-restore")
        assert restored.receive() == b"after-restore"
        reply = b"keystream-offset-pin"
        restored.send(reply)

        # Open the raw datagram with a cipher derived from the
        # *snapshot*, not from the live encoder: the gateway-side
        # (server) cipher key XOR the wire sequence number.
        raw = handset.endpoint.receive()
        sequence = int.from_bytes(raw[:4], "big")
        assert sequence == snapshot.enc_sequence  # no skip requested
        keys = _key_block(suite)
        key_int = int.from_bytes(keys.server_cipher_key, "big")
        stream = suite.make_cipher(
            (key_int ^ sequence).to_bytes(suite.cipher_key_bytes, "big"))
        opened = stream.process(raw[6:])
        assert opened[:len(reply)] == reply
    """The torn-tail compensation: a stale checkpoint must leapfrog
    sequences the dead shard consumed after its last durable frame."""

    def _stale_restore(self, sequence_skip):
        channel = DuplexChannel()
        handset, gateway = _make_world(RSA_WITH_AES_SHA, channel)
        _exchange(handset, gateway, b"one")
        blob = _snap(gateway).to_bytes()
        # The dead shard sent one more reply after the checkpoint —
        # the handset has consumed that sequence number already.
        _exchange(handset, gateway, b"two")
        restored = restore_connection(
            SessionSnapshot.from_bytes(blob), channel.endpoint_b(),
            sequence_skip=sequence_skip)
        return handset, restored

    def test_without_skip_the_handset_rejects_the_replayed_sequence(self):
        handset, restored = self._stale_restore(sequence_skip=0)
        handset.send(b"three")
        restored.receive()
        restored.send(b"reply")
        # Replay protection fires: the dead shard already used that
        # sequence number for the post-checkpoint reply.
        with pytest.raises(ReplayError):
            handset.receive()

    def test_with_skip_the_restored_shard_is_accepted(self):
        handset, restored = self._stale_restore(sequence_skip=8)
        handset.send(b"three")
        assert restored.receive() == b"three"
        restored.send(b"reply")
        assert handset.receive() == b"reply"
        assert handset.discarded == 0
