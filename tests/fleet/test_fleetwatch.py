"""The fleet watchtower end to end: traces, windows, SLOs, neutrality.

The acceptance gates for the fleet observability plane:

* two same-seed watched runs produce byte-identical ops reports;
* every crashed session's journey stitches into one trace, and the
  three recovery tiers all appear across the canonical run;
* watching a run does not change what the run did (the embedded
  failover report is byte-identical to an unwatched run's);
* energy reconciliation still closes exactly;
* a shard killed mid-span aborts the span instead of leaking it open.
"""

import pytest

from repro.analysis.failover import build_report as build_failover_report
from repro.analysis.failover import format_report as format_failover
from repro.analysis.fleetwatch import build_report, format_report
from repro.fleet.scenario import run_failover
from repro.observability.fleetwatch import run_fleetwatch


@pytest.fixture(scope="module")
def result():
    """The canonical watched chaos run (24 sessions, 4 shards)."""
    return run_fleetwatch(seed=2003)


@pytest.fixture(scope="module")
def report(result):
    return build_report(result)


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        first = format_report(build_report(run_fleetwatch(
            sessions=10, shards=2, requests_per_session=3, seed=9)))
        second = format_report(build_report(run_fleetwatch(
            sessions=10, shards=2, requests_per_session=3, seed=9)))
        assert first == second

    def test_watching_does_not_change_the_run(self):
        plain = format_failover(build_failover_report(run_failover(
            sessions=10, shards=2, requests_per_session=3, seed=9)))
        watched = format_failover(build_failover_report(run_fleetwatch(
            sessions=10, shards=2, requests_per_session=3,
            seed=9).failover))
        assert plain == watched

    def test_probe_disabled_run_same_outcomes(self):
        lit = run_failover(sessions=10, shards=2,
                           requests_per_session=3, seed=9)
        dark = run_failover(sessions=10, shards=2,
                            requests_per_session=3, seed=9,
                            probe_enabled=False)
        assert dark.counts == lit.counts
        assert dark.shed_reasons == lit.shed_reasons
        assert dark.telemetry.spans == []


class TestJourneys(object):
    def test_every_session_has_a_journey(self, result, report):
        journeys = report["traces"]["journeys"]
        assert sorted(journeys) == sorted(result.failover.batteries)

    def test_every_migrated_session_stitched(self, result, report):
        journeys = report["traces"]["journeys"]
        migrated = {session: row for session, row in journeys.items()
                    if row["tiers"]}
        assert len(migrated) >= result.failover.stats.crashes
        for session, row in migrated.items():
            assert row["stitched"], session
            assert row["crash_milestones"] >= 1, session
            assert len(row["shards"]) >= 2, session

    def test_all_three_tiers_represented(self, report):
        assert report["traces"]["tiers_seen"] == [
            "cold-full", "cold-resume", "warm"]

    def test_tier_counts_match_fleet_ledger(self, result, report):
        stats = result.failover.stats
        tiers = [tier for row in report["traces"]["journeys"].values()
                 for tier in row["tiers"]]
        assert tiers.count("warm") == stats.migrations_warm
        assert tiers.count("cold-resume") == stats.migrations_cold_resume
        assert tiers.count("cold-full") == stats.migrations_cold_full

    def test_streams_are_the_shards_plus_supervisor(self, result, report):
        names = {shard.name for shard in result.failover.fleet.shards}
        assert set(report["traces"]["streams"]) == names | {"fleet"}

    def test_no_span_left_open(self, result):
        assert all(span.end_s is not None
                   for span in result.failover.telemetry.spans)


class TestWindows:
    def test_window_sums_conserve_the_ledger(self, result, report):
        totals = result.failover.fleet.runtime_totals()
        rows = report["windows"]["fleet"]
        assert sum(row["served"] for row in rows) == (
            totals["served"] + totals["degraded"])
        assert sum(row["shed"] for row in rows) == totals["shed"]
        assert sum(row["shed_recovering"] for row in rows) == (
            result.failover.stats.shed_recovering)
        assert sum(row["energy_mj"]["serve"]
                   for row in rows) == pytest.approx(
            totals["energy_mj"], abs=1e-3)
        assert sum(row["energy_mj"]["recovery"]
                   for row in rows) == pytest.approx(
            result.failover.stats.recovery_energy_mj, abs=1e-3)

    def test_tier_window_counts_match_migrations(self, result, report):
        stats = result.failover.stats
        rows = report["windows"]["fleet"]
        for key, expected in (("warm", stats.migrations_warm),
                              ("cold_resume", stats.migrations_cold_resume),
                              ("cold_full", stats.migrations_cold_full)):
            assert sum(row["tiers"][key] for row in rows) == expected

    def test_crash_windows_show_recovery(self, report):
        rows = report["windows"]["fleet"]
        storm = [row for row in rows if row["shed_recovering"]]
        assert storm, "no window saw recovering sheds"
        for row in storm:
            assert row["goodput"] < 1.0

    def test_shard_windows_and_merged_percentiles(self, result, report):
        shards = report["windows"]["shards"]
        assert sorted(shards) == sorted(
            shard.name for shard in result.failover.fleet.shards)
        for entry in shards.values():
            assert entry["windows"]
            if "latency" in entry:
                lat = entry["latency"]
                assert 0.0 < lat["p50"] <= lat["p95"] <= lat["p99"]

    def test_overall_latency_present(self, report):
        overall = report["windows"]["overall_latency"]
        assert overall["count"] > 0
        assert 0.0 < overall["p50"] <= overall["p95"]


class TestSlo:
    def test_availability_burns_during_the_storm(self, report):
        specs = report["slo"]["specs"]
        assert specs["availability"]["ever_fired"] is True
        assert specs["availability"]["max_burn"] > 10.0

    def test_alert_ledger_latched(self, report):
        alerts = report["slo"]["alerts"]
        states = [alert["state"] for alert in alerts]
        assert "firing" in states and "cleared" in states
        # Ledger is time-ordered and never rewritten.
        assert [a["at_s"] for a in alerts] == sorted(
            a["at_s"] for a in alerts)

    def test_latency_slo_healthy(self, report):
        assert report["slo"]["specs"]["latency"]["ever_fired"] is False


class TestEnergy:
    def test_reconciliation_still_exact(self, result):
        assert result.failover.reconciliation.ok

    def test_report_energy_reconciled(self, report):
        assert report["failover"]["energy"]["reconciled"] is True


class TestMidSpanCrash:
    def test_crash_aborts_open_shard_span(self):
        opened = {}

        def instrument(fleet, telemetry):
            opened["span"] = telemetry.start_span(
                "longlived.io", shard="shard-00")

        result = run_failover(sessions=6, shards=2,
                              requests_per_session=3, seed=5,
                              instrument=instrument)
        span = opened["span"]
        assert span.end_s is not None
        assert span.attrs["aborted"] is True
        assert span.attrs["abort_reason"] == "shard-crash"
        assert all(s.end_s is not None for s in result.telemetry.spans)
        assert result.reconciliation.ok
