"""Batched event scheduler: ordering, batching, sources, recurrence."""

import pytest

from repro.fleet import EventScheduler
from repro.protocols.reliable import VirtualClock


class FakeSource:
    """A scripted work source: events at fixed times, in order."""

    def __init__(self, times):
        self.times = list(times)
        self.stepped_at = []

    def next_event_time(self):
        return self.times[0] if self.times else None

    def step(self):
        if not self.times:
            return False
        self.stepped_at.append(self.times.pop(0))
        return True


class TestControlEvents:
    def test_fires_in_time_then_schedule_order(self):
        sched = EventScheduler()
        fired = []
        sched.at(2.0, lambda now: fired.append("late"))
        sched.at(1.0, lambda now: fired.append("early-a"))
        sched.at(1.0, lambda now: fired.append("early-b"))
        sched.run()
        assert fired == ["early-a", "early-b", "late"]

    def test_same_tick_events_cost_one_batch(self):
        sched = EventScheduler()
        fired = []
        for index in range(5):
            sched.at(1.0, lambda now, i=index: fired.append(i))
        assert sched.run() == 1
        assert fired == [0, 1, 2, 3, 4]
        assert sched.batches == 1
        assert sched.events_fired == 5

    def test_past_times_clamp_to_now(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        sched = EventScheduler(clock)
        seen = []
        sched.at(1.0, lambda now: seen.append(now))
        sched.run()
        assert seen == [5.0]

    def test_cancelled_event_never_fires(self):
        sched = EventScheduler()
        fired = []
        event = sched.at(1.0, lambda now: fired.append("no"))
        sched.at(1.0, lambda now: fired.append("yes"))
        event.cancel()
        sched.run()
        assert fired == ["yes"]

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            sched.after(-0.1, lambda now: None)


class TestRecurring:
    def test_recurring_rearms_until_cancelled(self):
        sched = EventScheduler()
        ticks = []

        def tick(now):
            ticks.append(round(now, 6))
            if len(ticks) == 3:
                handle.cancel()

        handle = sched.every(0.5, tick)
        sched.run()
        assert ticks == [0.5, 1.0, 1.5]

    def test_recurring_excluded_from_pending_oneshot(self):
        sched = EventScheduler()
        sched.every(1.0, lambda now: None)
        assert sched.pending_oneshot() == 0
        sched.at(2.0, lambda now: None)
        assert sched.pending_oneshot() == 1

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().every(0.0, lambda now: None)


class TestSources:
    def test_interleaves_sources_with_control_events(self):
        sched = EventScheduler()
        source = FakeSource([0.5, 1.5])
        sched.add_source(source)
        fired = []
        sched.at(1.0, lambda now: fired.append(now))
        sched.run()
        assert source.stepped_at == [0.5, 1.5]
        assert fired == [1.0]
        assert sched.clock.now == 1.5

    def test_sources_step_in_registration_order(self):
        sched = EventScheduler()
        order = []

        class Tagged(FakeSource):
            def __init__(self, tag, times):
                super().__init__(times)
                self.tag = tag

            def step(self):
                order.append(self.tag)
                return super().step()

        sched.add_source(Tagged("a", [1.0]))
        sched.add_source(Tagged("b", [1.0]))
        sched.run()
        assert order == ["a", "b"]

    def test_idle_scheduler_reports_done(self):
        sched = EventScheduler()
        assert sched.next_time() is None
        assert sched.run_batch() is False
        assert sched.run() == 0

    def test_stop_predicate_halts_the_loop(self):
        sched = EventScheduler()
        fired = []
        sched.at(1.0, lambda now: fired.append(1))
        sched.at(2.0, lambda now: fired.append(2))
        sched.run(stop=lambda: bool(fired))
        assert fired == [1]
