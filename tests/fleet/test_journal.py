"""Checkpoint journal: framing, torn tails, bounded seeded eviction."""

from repro.fleet import CheckpointJournal, SessionSnapshot


def snap(session_id: str, mutation: int = 0,
         enc_sequence: int = 7) -> SessionSnapshot:
    return SessionSnapshot(
        session_id=session_id, suite_name="RSA_WITH_AES_128_CBC_SHA",
        enc_key=b"k" * 16, enc_mac_key=b"m" * 20, enc_iv=b"i" * 8,
        enc_sequence=enc_sequence,
        dec_key=b"K" * 16, dec_mac_key=b"M" * 20, dec_iv=b"I" * 8,
        dec_highest_sequence=5, dec_received=4, dec_seen=(1, 2, 4, 5),
        discarded=1, ticket=b"t" * 16,
        battery_remaining_uj=4_321_000, mutation=mutation)


class TestRoundTrip:
    def test_latest_durable_frame_per_session_wins(self):
        journal = CheckpointJournal("shard-0")
        journal.append(snap("a", mutation=0, enc_sequence=1))
        journal.append(snap("b", mutation=0, enc_sequence=2))
        journal.append(snap("a", mutation=1, enc_sequence=9))
        recovered, torn = journal.recover()
        assert torn == 0
        assert sorted(recovered) == ["a", "b"]
        assert recovered["a"].enc_sequence == 9
        assert recovered["a"].mutation == 1
        assert journal.checkpoints_written == 3

    def test_recovered_snapshot_is_byte_faithful(self):
        journal = CheckpointJournal("shard-0")
        original = snap("a", mutation=3)
        journal.append(original)
        recovered, _ = journal.recover()
        assert recovered["a"] == original
        assert recovered["a"].to_bytes() == original.to_bytes()

    def test_forget_and_reset(self):
        journal = CheckpointJournal("shard-0")
        journal.append(snap("a"))
        journal.forget("a")
        assert journal.recover()[0] == {}
        journal.append(snap("b"))
        journal.reset()
        assert len(journal) == 0
        assert journal.recover() == ({}, 0)


class TestTornTail:
    def test_torn_final_frame_is_dropped_earlier_frames_survive(self):
        journal = CheckpointJournal("shard-0")
        journal.append(snap("a", mutation=0, enc_sequence=1))
        journal.append(snap("a", mutation=1, enc_sequence=9))
        assert journal.tear_tail(3) == 3
        recovered, torn = journal.recover()
        assert torn == 1
        # The torn frame never became durable; the previous one wins.
        assert recovered["a"].enc_sequence == 1
        assert journal.torn_records == 1

    def test_tear_beyond_buffer_is_clamped(self):
        journal = CheckpointJournal("shard-0")
        journal.append(snap("a"))
        lost = journal.tear_tail(10 ** 9)
        assert lost == len(snap("a").to_bytes()) + 8
        # The whole log vanished: nothing durable, no partial frame.
        assert journal.recover() == ({}, 0)

    def test_tear_of_nothing_is_zero(self):
        journal = CheckpointJournal("shard-0")
        assert journal.tear_tail(16) == 0
        assert journal.tear_tail(0) == 0

    def test_frame_sizes_track_durable_frames(self):
        journal = CheckpointJournal("shard-0")
        journal.append(snap("a"))
        journal.append(snap("b"))
        sizes = journal.frame_sizes()
        assert len(sizes) == 2
        assert sum(sizes) == len(journal)


class TestBoundedIndex:
    def test_seeded_eviction_beyond_limit(self):
        journal = CheckpointJournal("shard-0", seed=11, index_limit=4)
        for index in range(10):
            journal.append(snap(f"s{index}"))
        assert journal.tracked_sessions() == 4
        assert journal.evictions == 6
        recovered, _ = journal.recover()
        # Evicted sessions' frames are untrusted history.
        assert len(recovered) == 4

    def test_eviction_is_seed_deterministic(self):
        def survivors(seed):
            journal = CheckpointJournal("shard-0", seed=seed, index_limit=3)
            for index in range(8):
                journal.append(snap(f"s{index}"))
            return sorted(journal.recover()[0])

        assert survivors(7) == survivors(7)

    def test_rewriting_an_indexed_session_never_evicts(self):
        journal = CheckpointJournal("shard-0", index_limit=2)
        journal.append(snap("a"))
        journal.append(snap("b"))
        for mutation in range(5):
            journal.append(snap("a", mutation=mutation))
        assert journal.evictions == 0
        assert journal.tracked_sessions() == 2
