"""Shared fixtures for the test suite.

Key generation dominates test runtime in pure Python, so the expensive
artifacts (CA, server/client credentials, a provisioned appliance) are
session-scoped and deterministic.
"""

from __future__ import annotations

import pytest

from repro.core.appliance import provision_appliance
from repro.crypto.rng import DeterministicDRBG
from repro.crypto.rsa import generate_keypair
from repro.protocols.certificates import CertificateAuthority
from repro.protocols.handshake import ClientConfig, ServerConfig


@pytest.fixture(scope="session")
def vector_corpus():
    """The official-vector corpus, parsed from JSON once per session.

    ``load_corpus`` keeps a module-level cache keyed by directory, so
    every later use (fixtures, parametrized cases, the conformance
    runner itself) is a dict lookup — ``pytest --durations`` should
    show corpus-heavy tests paying the file I/O at most once.
    """
    from repro.conformance.vectors import load_corpus

    return load_corpus()


@pytest.fixture(scope="session")
def ca():
    """A session-wide certificate authority."""
    return CertificateAuthority("TestRootCA", DeterministicDRBG("ca-seed"))


@pytest.fixture(scope="session")
def server_credentials(ca):
    """(private_key, certificate) for 'server.example'."""
    return ca.issue("server.example", DeterministicDRBG("server-seed"))


@pytest.fixture(scope="session")
def client_credentials(ca):
    """(private_key, certificate) for 'client.device'."""
    return ca.issue("client.device", DeterministicDRBG("client-seed"))


@pytest.fixture(scope="session")
def rsa_512():
    """A session-wide 512-bit RSA key pair."""
    return generate_keypair(512, DeterministicDRBG("rsa512-seed"))


@pytest.fixture(scope="session")
def rsa_384():
    """A session-wide 384-bit RSA key pair (fast paths)."""
    return generate_keypair(384, DeterministicDRBG("rsa384-seed"))


@pytest.fixture()
def drbg():
    """A fresh deterministic RNG per test."""
    return DeterministicDRBG("per-test")


@pytest.fixture()
def client_config(ca, client_credentials):
    """A fresh client handshake configuration per test."""
    key, cert = client_credentials
    return ClientConfig(
        rng=DeterministicDRBG("client-cfg"), ca=ca,
        expected_server="server.example",
        certificate=cert, private_key=key,
    )


@pytest.fixture()
def server_config(ca, server_credentials):
    """A fresh server handshake configuration per test."""
    key, cert = server_credentials
    return ServerConfig(
        rng=DeterministicDRBG("server-cfg"), certificate=cert,
        private_key=key, ca=ca,
    )


@pytest.fixture(scope="session")
def appliance():
    """A provisioned, booted, unlocked appliance (shared, read-mostly)."""
    device = provision_appliance(seed=11)
    device.boot()
    device.unlock("owner", device._finger_simulator.read("owner"))
    return device
