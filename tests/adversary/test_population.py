"""The adversary classes: seeded arrival processes, per-class damage,
energy-bounded attackers, and the latched alert rules."""

from __future__ import annotations

import pytest

from repro.adversary.population import (
    Adversary,
    AdversaryPopulation,
    CookieFloodAdversary,
    DowngradeAdversary,
    FuzzInjectionAdversary,
    StreamStripAdversary,
    TimingProbeAdversary,
)
from repro.conformance.fuzzcorpus import default_targets, mutation_stream
from repro.crypto.rng import DeterministicDRBG
from repro.hardware.battery import Battery
from repro.protocols.certificates import CertificateAuthority
from repro.protocols.dos import CookieProtectedResponder
from repro.protocols.faults import FaultyChannel
from repro.protocols.handshake import ServerConfig


class _CountingAdversary(Adversary):
    kind = "counting"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fired_at = []

    def fire(self, at):
        self.fired_at.append(round(at, 9))
        self._spend(64)


def _responder(seed=0):
    return CookieProtectedResponder(
        rng=DeterministicDRBG(("test-dos", seed).__repr__()),
        pending_limit=8)


def _gateway_credentials(seed=0):
    ca = CertificateAuthority(
        "AdvCA", DeterministicDRBG(("adv-ca", seed).__repr__()))
    key, cert = ca.issue(
        "gateway.operator", DeterministicDRBG(("adv-gw", seed).__repr__()))
    server = ServerConfig(
        rng=DeterministicDRBG(("adv-srv", seed).__repr__()),
        certificate=cert, private_key=key)
    return ca, server


class TestArrivalProcess:
    def test_same_seed_same_schedule(self):
        first = _CountingAdversary("a", 50.0, seed=7)
        second = _CountingAdversary("a", 50.0, seed=7)
        for now in (0.1, 0.25, 0.5):
            first.tick(now)
            second.tick(now)
        assert first.fired_at == second.fired_at
        assert first.events > 0

    def test_different_seed_different_schedule(self):
        first = _CountingAdversary("a", 50.0, seed=7)
        second = _CountingAdversary("a", 50.0, seed=8)
        first.tick(1.0)
        second.tick(1.0)
        assert first.fired_at != second.fired_at

    def test_zero_rate_never_fires(self):
        quiet = _CountingAdversary("q", 0.0, seed=1)
        quiet.tick(1e9)
        assert quiet.events == 0

    def test_battery_exhaustion_retires_the_adversary(self):
        broke = _CountingAdversary(
            "b", 1000.0, seed=1, battery=Battery(capacity_j=0.01))
        broke.tick(10.0)
        assert broke.exhausted
        events_at_exhaustion = broke.events
        broke.tick(20.0)   # retired: no further events fire
        assert broke.events == events_at_exhaustion

    def test_snapshot_shape(self):
        adversary = _CountingAdversary("s", 10.0, seed=1)
        adversary.tick(0.5)
        snap = adversary.snapshot()
        assert snap["events"] == adversary.events
        assert snap["energy_spent_mj"] > 0.0
        assert snap["battery_drained_mj"] == pytest.approx(
            snap["energy_spent_mj"])


class TestCookieFlood:
    def test_flood_drives_pending_table_to_eviction(self):
        responder = _responder()
        flood = CookieFloodAdversary(
            "f", 100.0, seed=3, responder=responder, floods_per_event=8)
        flood.tick(1.0)
        assert flood.hellos_sent > 8
        assert responder.cookies_issued == flood.hellos_sent
        assert responder.evicted > 0
        assert responder.pending_cookies <= responder.pending_limit

    def test_blind_cookie_guesses_are_rejected(self):
        responder = _responder()
        flood = CookieFloodAdversary(
            "f", 100.0, seed=3, responder=responder)
        flood.tick(1.0)
        assert flood.forged_cookies > 0
        assert responder.cookies_rejected == flood.forged_cookies
        # The flood never gets expensive work out of the responder.
        assert responder.handshakes_started == 0


class TestDowngrade:
    def test_downgrade_is_always_blocked_at_finished(self):
        ca, server = _gateway_credentials()
        mitm = DowngradeAdversary(
            "m", 40.0, seed=5, server_config=server, ca=ca,
            expected_server="gateway.operator")
        mitm.tick(0.2)
        assert mitm.events > 0
        assert mitm.downgrades_blocked == mitm.events
        assert mitm.downgrades_succeeded == 0
        assert mitm.energy_spent_mj > 0.0


class TestStreamStrip:
    def test_stripping_lightweight_suites_is_always_blocked(self):
        """The m-commerce downgrade shape: a MITM strips the lightweight
        stream suites from a handset that prefers them.  Negotiation
        quietly lands on a legacy suite, so the block has to come from
        the dual-transcript Finished — and it must, every time."""
        ca, server = _gateway_credentials()
        mitm = StreamStripAdversary(
            "s", 40.0, seed=7, server_config=server, ca=ca,
            expected_server="gateway.operator")
        mitm.tick(0.2)
        assert mitm.events > 0
        assert mitm.downgrades_blocked == mitm.events
        assert mitm.downgrades_succeeded == 0

    def test_strip_leaves_only_legacy_suites_in_the_hello(self):
        from repro.protocols.ciphersuites import LIGHTWEIGHT_SUITES
        from repro.protocols.messages import ClientHello

        ca, server = _gateway_credentials()
        mitm = StreamStripAdversary(
            "s", 40.0, seed=7, server_config=server, ca=ca,
            expected_server="gateway.operator")
        preferred = mitm._client_suites()
        # The victim really does lead with the lightweight family.
        assert preferred[:len(LIGHTWEIGHT_SUITES)] == LIGHTWEIGHT_SUITES
        hello = ClientHello(b"\x00" * 16, [s.name for s in preferred])
        mitm._rewrite_hello(hello)
        lightweight = {s.name for s in LIGHTWEIGHT_SUITES}
        assert hello.suite_names  # never empties the offer
        assert not lightweight & set(hello.suite_names)


class TestTimingProbe:
    def test_probe_collects_then_attacks_offline(self):
        probe = TimingProbeAdversary(
            "t", 100.0, seed=11, samples_per_event=24)
        probe.tick(1.0)
        assert probe.samples_collected >= 32
        probe.finish(1.0)
        assert probe.attack_ran
        assert probe.bits_recovered > 0
        # finish() is idempotent: the offline attack runs once.
        bits = probe.bits_recovered
        probe.finish(2.0)
        assert probe.bits_recovered == bits

    def test_underfunded_probe_never_attacks(self):
        probe = TimingProbeAdversary(
            "t", 1.0, seed=11, samples_per_event=1)
        probe.tick(0.1)
        probe.finish(0.1)
        assert not probe.attack_ran


class TestFuzzInjection:
    def test_injects_mutants_into_victim_channels(self):
        channels = {"handset-00": FaultyChannel(seed=1),
                    "handset-01": FaultyChannel(seed=2)}
        target = next(t for t in default_targets()
                      if t.name == "wtls_record")
        fuzz = FuzzInjectionAdversary(
            "z", 100.0, seed=13, channels=channels,
            mutations=mutation_stream(target, 13))
        fuzz.tick(0.5)
        assert fuzz.frames_injected > 0
        injected = sum(c.faults.injected for c in channels.values())
        assert injected == fuzz.frames_injected
        assert fuzz.bytes_injected > 0
        assert fuzz.bursts_fired >= 1


class TestPopulationAlerts:
    def test_rules_latch_once(self):
        responder = _responder()
        flood = CookieFloodAdversary(
            "f", 100.0, seed=3, responder=responder)
        population = AdversaryPopulation([flood])
        population.add_rule(
            "evictions",
            lambda: (f"evicted {responder.evicted}"
                     if responder.evicted > 0 else None))
        population.tick(1.0)
        population.tick(2.0)
        names = [alert.name for alert in population.alerts]
        assert names == ["evictions"]
        assert population.alerts[0].at_s == 1.0

    def test_energy_ledger_sums_attacker_batteries(self):
        flood = CookieFloodAdversary(
            "f", 100.0, seed=3, responder=_responder(),
            battery=Battery(capacity_j=1.0))
        population = AdversaryPopulation([flood])
        population.tick(0.5)
        assert population.energy_spent_mj() == pytest.approx(
            (flood.battery.capacity_j - flood.battery.remaining_j) * 1000.0)
        assert population.total_events() == flood.events
