"""Acceptance tests for the adversarial traffic plane (ISSUE PR 7).

The seeded mixed-load scenario — 32 benign handsets plus the four
adversary classes on one virtual clock — must produce a byte-identical
survivability report across same-seed reruns, hold the declared
goodput bound against the attack-free baseline, answer every benign
request, and reconcile attacker-vs-user energy exactly.
"""

from __future__ import annotations

import pytest

from repro.adversary import run_survivability
from repro.analysis.survivability import (
    DECLARED_GOODPUT_BOUND,
    build_report,
    format_report,
)

SEED = 2003


@pytest.fixture(scope="module")
def attacked():
    """The full-scale acceptance run: 32 sessions, 50% attacker mix."""
    return run_survivability(seed=SEED)


@pytest.fixture(scope="module")
def baseline():
    """Same world, same seed, zero attackers."""
    return run_survivability(attacker_fraction=0.0, seed=SEED)


class TestAcceptance:
    def test_full_scale_world_shape(self, attacked):
        assert attacked.params["sessions"] >= 32
        kinds = {adversary.kind
                 for adversary in attacked.population.adversaries}
        assert kinds == {"cookie-flood", "downgrade", "timing-probe",
                         "fuzz-injection"}

    def test_report_is_byte_identical_across_same_seed_reruns(
            self, attacked):
        rerun = run_survivability(seed=SEED)
        assert format_report(build_report(attacked)) == \
            format_report(build_report(rerun))

    def test_goodput_holds_declared_bound(self, attacked, baseline):
        assert baseline.benign_goodput == 1.0
        assert attacked.benign_goodput >= \
            baseline.benign_goodput - DECLARED_GOODPUT_BOUND

    def test_every_benign_request_is_answered(self, attacked):
        answered = sum(attacked.counts.values())
        assert answered == attacked.stats.submitted
        assert answered == attacked.params["sessions"] * \
            attacked.params["requests_per_session"]

    def test_energy_reconciles_exactly(self, attacked, baseline):
        assert attacked.reconciliation.ok
        assert baseline.reconciliation.ok

    def test_attacker_energy_is_separated_from_user_energy(self, attacked):
        report = build_report(attacked)
        energy = report["energy"]
        assert energy["attacker_mj"] > 0.0
        assert energy["user_mj"] > 0.0
        # Per-class span attribution covers every adversary that fired.
        fired = {a.kind for a in attacked.population.adversaries
                 if a.events > 0}
        assert fired <= set(energy["per_adversary_class_mj"])

    def test_malformed_traffic_is_absorbed_structurally(self, attacked):
        # The fuzz adversary's bursts are discarded (skip path) or shed
        # with a structured GW-BUSY, never an unhandled exception.
        total_garbage = (attacked.stats.malformed_discarded
                         + attacked.leftover_discarded)
        assert total_garbage > 0
        fuzz = next(a for a in attacked.population.adversaries
                    if a.kind == "fuzz-injection")
        assert fuzz.frames_injected >= total_garbage

    def test_downgrade_never_succeeds(self, attacked):
        mitm = next(a for a in attacked.population.adversaries
                    if a.kind == "downgrade")
        assert mitm.events > 0
        assert mitm.downgrades_succeeded == 0
        assert mitm.downgrades_blocked == mitm.events

    def test_dos_gate_absorbs_the_flood(self, attacked):
        snap = attacked.responder.snapshot()
        flood = next(a for a in attacked.population.adversaries
                     if a.kind == "cookie-flood")
        assert flood.hellos_sent > 0
        assert snap["evicted"] > 0
        assert snap["secret_rotations"] > 0
        # All 32 benign handsets passed the gate despite the flood.
        assert snap["cookies_verified"] >= attacked.params["sessions"]

    def test_alert_rules_latched(self, attacked):
        names = {alert.name for alert in attacked.population.alerts}
        assert {"dos-table-pressure", "wire-garbage",
                "downgrade-attempts"} <= names


class TestBaseline:
    def test_baseline_population_is_empty(self, baseline):
        assert baseline.population.adversaries == []
        assert baseline.population.total_events() == 0
        assert baseline.population.energy_spent_mj() == 0.0
        assert baseline.stats.malformed_discarded == 0
        assert baseline.population.alerts == []


class TestFaultVariant:
    def test_origin_faults_trip_breaker_and_alert(self):
        result = run_survivability(
            sessions=12, requests_per_session=3, fault_rate=0.3,
            seed=SEED)
        transitions = [t for trans in result.breakers.values()
                       for t in trans]
        assert any(to == "open" for _, _, to in transitions)
        assert "origin-breaker-open" in {
            alert.name for alert in result.population.alerts}
        assert result.reconciliation.ok

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            run_survivability(attacker_fraction=1.0)
        with pytest.raises(ValueError):
            run_survivability(attacker_fraction=-0.1)
