"""The m-commerce workload plane: deterministic planning, honest
negotiation, exact energy reconciliation, byte-stable reporting."""

import pytest

from repro.analysis.mcommerce import build_report, format_report
from repro.protocols.ciphersuites import SUITES_BY_NAME
from repro.workloads import (
    BATTERY_CLASSES,
    SESSION_KINDS,
    plan_workload,
    run_mcommerce,
)
from repro.workloads.mcommerce import MAX_REQUESTS_PER_SESSION


@pytest.fixture(scope="module")
def result():
    """One shared small run (handshakes are the expensive part)."""
    return run_mcommerce(sessions=18, shards=3, seed=2003, duration_s=0.8)


class TestPlan:
    def test_same_seed_is_identical(self):
        assert plan_workload(12, 7, 1.0) == plan_workload(12, 7, 1.0)

    def test_different_seed_differs(self):
        assert plan_workload(12, 7, 1.0) != plan_workload(12, 8, 1.0)

    def test_every_battery_class_is_populated(self):
        plans = plan_workload(9, 2003, 1.0)
        assert {p.battery_class for p in plans} == \
            {k.name for k in BATTERY_CLASSES}

    def test_leads_follow_the_class_policy(self):
        """Each session's negotiation target is one of its class's
        lead suites, and the full fallback matrix rides behind."""
        by_name = {k.name: k for k in BATTERY_CLASSES}
        for plan in plan_workload(18, 2003, 1.0):
            klass = by_name[plan.battery_class]
            assert SUITES_BY_NAME[plan.suite_name] in klass.leads
            assert plan.suites[0].name == plan.suite_name
            assert len(plan.suites) == len(set(plan.suites))

    def test_arrivals_are_increasing_and_capped(self):
        for plan in plan_workload(30, 11, 5.0):
            assert list(plan.arrivals_s) == sorted(plan.arrivals_s)
            assert len(plan.arrivals_s) <= MAX_REQUESTS_PER_SESSION
            assert len(plan.arrivals_s) == len(plan.payload_sizes)
            kind = next(k for k in SESSION_KINDS if k.name == plan.kind)
            assert len(plan.arrivals_s) >= min(kind.min_requests,
                                               MAX_REQUESTS_PER_SESSION)
            for size in plan.payload_sizes:
                assert 16 <= size <= kind.payload_cap


class TestRun:
    def test_every_request_is_answered(self, result):
        answered = sum(result.per_session_replies.values())
        assert answered == result.fleet.submitted
        assert sum(result.counts.values()) == answered

    def test_negotiated_suite_matches_the_plan(self, result):
        for plan in result.plans:
            assert result.fleet.handsets[plan.session_id].suite_name == \
                plan.suite_name

    def test_energy_reconciles_exactly(self, result):
        assert result.reconciliation.ok
        # Compute charges really landed: every suite that carried
        # traffic has a non-zero bulk-crypto entry.
        for plan in result.plans:
            assert result.compute_mj.get(plan.suite_name, 0.0) > 0.0

    def test_purchases_run_the_dual_signature_flow(self, result):
        purchases = [p for p in result.plans if p.kind == "purchase"]
        assert len(result.payments) == len(purchases)
        for record in result.payments:
            assert record["binding_holds"]
            assert record["cardholder"] == "cardholder.device"
            assert len(record["auth_code"]) == 12
        assert result.dual_signature_mj > 0.0


class TestReport:
    def test_report_is_deterministic(self, result):
        text = format_report(build_report(result))
        rerun = run_mcommerce(sessions=18, shards=3, seed=2003,
                              duration_s=0.8)
        assert format_report(build_report(rerun)) == text

    def test_report_reconciles_and_covers_every_suite(self, result):
        report = build_report(result)
        assert report["energy"]["reconciled"]
        assert report["traffic"]["answer_rate"] == 1.0
        assert set(report["by_suite"]) == \
            {p.suite_name for p in result.plans}
        for row in report["by_suite"].values():
            assert row["transactions"] > 0
            assert row["mj_per_transaction"] > 0.0
        assert set(report["by_battery_class"]) == \
            {k.name for k in BATTERY_CLASSES}
        assert report["payments"]["bindings_hold"]
