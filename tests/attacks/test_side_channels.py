"""Timing and power attacks with their countermeasures (§3.4)."""

import pytest

from repro.attacks.countermeasures import (
    BlindedRSA,
    constant_time_decrypt_raw,
)
from repro.attacks.power import (
    MaskedAES,
    acquire_aes_traces,
    acquire_des_traces,
    cpa_attack_aes,
    dpa_attack_des,
)
from repro.attacks.timing import (
    TimingAttack,
    exponent_hamming_weight_from_trace,
    measure_sqm,
    rsa_verifier,
)
from repro.crypto.aes import AES
from repro.crypto.des import DES, expand_key
from repro.crypto.modmath import OperationTimer, modexp_sqm
from repro.crypto.primes import generate_prime
from repro.crypto.rng import DeterministicDRBG


@pytest.fixture(scope="module")
def timing_victim():
    """A small RSA-like victim: 64-bit factors, 48-bit secret exponent."""
    rng = DeterministicDRBG(77)
    p = generate_prime(32, rng)
    q = generate_prime(32, rng)
    n = p * q
    d = rng.randrange(1 << 47, 1 << 48)
    return n, d


class TestTimingAttack:
    def test_recovers_exponent(self, timing_victim):
        n, d = timing_victim
        probe = (12345 % n, pow(12345, d, n))
        attack = TimingAttack(
            n, lambda base: measure_sqm(base, d, n),
            rsa_verifier(n, 65537, probe))
        result = attack.run(exponent_bits=48, samples=800)
        assert result.succeeded
        assert result.recovered_exponent == d

    def test_fails_with_too_few_samples(self, timing_victim):
        """Timing attacks have a sample-complexity floor."""
        n, d = timing_victim
        probe = (12345 % n, pow(12345, d, n))
        attack = TimingAttack(
            n, lambda base: measure_sqm(base, d, n),
            rsa_verifier(n, 65537, probe))
        result = attack.run(exponent_bits=48, samples=20, max_retries=2)
        assert not result.succeeded

    def test_blinding_defeats_attack(self, timing_victim):
        """Kocher's countermeasure: blinded exponentiation decorrelates
        time from the chosen base even on the leaky multiplier."""
        from repro.crypto.rsa import RSAPrivateKey
        from repro.crypto.modmath import invmod

        n, d = timing_victim
        # Build a private key object around the victim parameters.
        rng = DeterministicDRBG(77)
        p = generate_prime(32, rng)
        q = generate_prime(32, rng)
        key = RSAPrivateKey(n=p * q, e=65537, d=d, p=p, q=q)
        blinded = BlindedRSA(key, DeterministicDRBG("blind"))

        def oracle(base):
            timer = OperationTimer()
            blinded.decrypt_raw(base, timer=timer)
            return float(timer.total)

        probe = (12345 % key.n, pow(12345, d, key.n))
        attack = TimingAttack(key.n, oracle,
                              rsa_verifier(key.n, 65537, probe))
        result = attack.run(exponent_bits=48, samples=800, max_retries=4)
        assert not result.succeeded

    def test_hamming_weight_leak(self, timing_victim):
        n, d = timing_victim
        timer = OperationTimer()
        modexp_sqm(5, d, n, timer)
        assert exponent_hamming_weight_from_trace(
            timer.per_operation, 48) == bin(d).count("1")

    def test_ladder_hides_hamming_weight(self, timing_victim):
        """The constant-sequence countermeasure removes the SPA leak."""
        n, _ = timing_victim
        dense, sparse = (1 << 48) - 1, (1 << 47) + 1  # both 48 bits
        timer_dense, timer_sparse = OperationTimer(), OperationTimer()
        from repro.crypto.modmath import modexp_ladder

        modexp_ladder(5, dense, n, timer_dense)
        modexp_ladder(5, sparse, n, timer_sparse)
        assert len(timer_dense.per_operation) == \
            len(timer_sparse.per_operation)

    def test_constant_time_wrapper_correct(self, rsa_384):
        ciphertext = 0xDEADBEEF % rsa_384.n
        assert constant_time_decrypt_raw(rsa_384, ciphertext) == \
            pow(ciphertext, rsa_384.d, rsa_384.n)


class TestDPAonDES:
    KEY = bytes.fromhex("0131D9619DC1376E")

    @pytest.fixture(scope="class")
    def traces(self):
        return acquire_des_traces(self.KEY, 300, seed=1)

    def test_round_key_recovered(self, traces):
        result = dpa_attack_des(traces)
        assert result.round_key == expand_key(self.KEY)[0]

    def test_full_key_recovered(self, traces):
        plaintext = bytes(8)
        expected_ct = DES(self.KEY).encrypt_block(plaintext)
        result = dpa_attack_des(traces, known_pair=(plaintext, expected_ct))
        assert result.succeeded
        # Parity bits are unconstrained; the recovered key must be
        # functionally identical.
        assert DES(result.full_key).encrypt_block(plaintext) == expected_ct

    def test_survives_measurement_noise(self):
        noisy = acquire_des_traces(self.KEY, 800, seed=2, noise_sigma=1.0)
        result = dpa_attack_des(noisy)
        assert result.round_key == expand_key(self.KEY)[0]

    def test_difference_of_means_variant_runs(self, traces):
        """Kocher's original single-bit DoM — recovers *most* S-boxes
        but is allowed ghost peaks (that weakness is the point)."""
        result = dpa_attack_des(traces, statistic="dom")
        true_key = expand_key(self.KEY)[0]
        matching_boxes = sum(
            ((result.round_key >> (6 * i)) & 0x3F)
            == ((true_key >> (6 * i)) & 0x3F)
            for i in range(8))
        assert matching_boxes >= 5

    def test_invalid_statistic(self, traces):
        with pytest.raises(ValueError):
            dpa_attack_des(traces, statistic="magic")


class TestCPAonAES:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

    def test_key_recovered(self):
        traces = acquire_aes_traces(self.KEY, 150, seed=3)
        result = cpa_attack_aes(traces)
        assert result.key == self.KEY
        assert result.margin_over_noise(0.9)  # noiseless: r = 1.0

    def test_key_recovered_with_noise(self):
        traces = acquire_aes_traces(self.KEY, 600, seed=4, noise_sigma=1.5)
        result = cpa_attack_aes(traces)
        assert result.key == self.KEY

    def test_masking_defeats_cpa(self):
        """First-order masking: identical campaign, key not recovered."""
        traces = acquire_aes_traces(self.KEY, 300, seed=5,
                                    cipher_factory=MaskedAES)
        result = cpa_attack_aes(traces)
        assert result.key != self.KEY
        wrong_bytes = sum(a != b for a, b in zip(result.key, self.KEY))
        assert wrong_bytes >= 12  # essentially everything is noise

    def test_masked_aes_functionally_identical(self):
        plaintext = bytes(range(16))
        assert MaskedAES(self.KEY).encrypt_block(plaintext) == \
            AES(self.KEY).encrypt_block(plaintext)

    def test_more_noise_needs_more_traces(self):
        """At high noise, 40 traces fail where 600 succeed — the
        standard DPA trace-count/noise trade-off."""
        few = cpa_attack_aes(
            acquire_aes_traces(self.KEY, 40, seed=6, noise_sigma=3.0))
        many = cpa_attack_aes(
            acquire_aes_traces(self.KEY, 900, seed=6, noise_sigma=3.0))
        few_correct = sum(a == b for a, b in zip(few.key, self.KEY))
        many_correct = sum(a == b for a, b in zip(many.key, self.KEY))
        assert many_correct > few_correct
        assert many_correct >= 14
