"""Vaudenay padding-oracle attack against the flawed WTLS decoder."""

import pytest

from repro.attacks.padding_oracle import (
    OracleStats,
    decrypt_block,
    make_wtls_oracle,
    recover_plaintext,
)
from repro.protocols.ciphersuites import RSA_WITH_3DES_SHA
from repro.protocols.wtls import WTLSRecordDecoder, WTLSRecordEncoder

KEY = bytes(range(24))
MAC_KEY = bytes(range(20))
IV = bytes(8)
SECRET = b"PIN=4711 transfer 5000 EUR now"


@pytest.fixture()
def captured_record():
    encoder = WTLSRecordEncoder(RSA_WITH_3DES_SHA, KEY, MAC_KEY, IV)
    record = encoder.encode(SECRET)
    return record[6:]  # CBC body (header stripped)


@pytest.fixture()
def vulnerable_decoder():
    return WTLSRecordDecoder(RSA_WITH_3DES_SHA, KEY, MAC_KEY, IV,
                             distinguishable_errors=True)


@pytest.fixture()
def hardened_decoder():
    return WTLSRecordDecoder(RSA_WITH_3DES_SHA, KEY, MAC_KEY, IV)


class TestPaddingOracle:
    def test_recovers_payload(self, captured_record, vulnerable_decoder):
        oracle = make_wtls_oracle(vulnerable_decoder)
        plaintext = recover_plaintext(oracle, captured_record, 8)
        # All blocks after the first are recovered: the tail of the
        # secret, the MAC, and the padding.
        assert SECRET[8:] in plaintext

    def test_query_complexity(self, captured_record, vulnerable_decoder):
        """~128 expected queries per byte, as Vaudenay reports."""
        stats = OracleStats()
        oracle = make_wtls_oracle(vulnerable_decoder)
        recover_plaintext(oracle, captured_record, 8, stats)
        blocks_recovered = len(captured_record) // 8 - 1
        per_byte = stats.queries / (8 * blocks_recovered)
        assert 60 < per_byte < 260

    def test_single_block_preimage(self, captured_record,
                                   vulnerable_decoder):
        from repro.crypto.bitops import xor_bytes
        from repro.crypto.tdes import TripleDES

        oracle = make_wtls_oracle(vulnerable_decoder)
        target = captured_record[8:16]
        preimage = decrypt_block(oracle, target, 8)
        assert TripleDES(KEY).decrypt_block(target) == preimage
        assert xor_bytes(preimage, captured_record[:8]) == SECRET[8:16]

    def test_unified_errors_defeat_attack(self, captured_record,
                                          hardened_decoder):
        """The countermeasure: with one error for padding and MAC, the
        attacker's oracle degenerates and is detected."""
        oracle = make_wtls_oracle(hardened_decoder)
        with pytest.raises(RuntimeError, match="countermeasure"):
            decrypt_block(oracle, captured_record[8:16], 8)

    def test_attack_never_touches_key(self, captured_record,
                                      vulnerable_decoder, monkeypatch):
        """Sanity: the oracle interface exposes only error behaviour."""
        calls = {"count": 0}
        original = vulnerable_decoder.decode

        def counting_decode(record):
            calls["count"] += 1
            return original(record)

        monkeypatch.setattr(vulnerable_decoder, "decode", counting_decode)
        oracle = make_wtls_oracle(vulnerable_decoder)
        decrypt_block(oracle, captured_record[8:16], 8)
        assert calls["count"] > 100  # all interaction went via decode()
