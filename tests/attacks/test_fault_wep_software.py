"""Fault attacks, WEP attacks, and the software-attack campaign."""

import pytest

from repro.attacks.countermeasures import verified_crt_sign
from repro.attacks.fault import (
    FaultInjector,
    bellcore_attack,
    differential_fault_attack,
    recover_private_key,
)
from repro.attacks.software import (
    application_patching,
    firmware_tampering,
    invocation_flood,
    run_standard_campaign,
    trojan_key_theft,
    unsigned_secure_install,
)
from repro.attacks.wep_attacks import (
    KeystreamHarvester,
    bitflip_forgery,
    run_iv_collision_experiment,
)
from repro.core.keystore import KeyPolicy, KeyUsage, SecureKeyStore
from repro.core.secure_boot import SecureBootROM, VendorSigner, reference_chain
from repro.core.secure_execution import SecureExecutionEnvironment
from repro.crypto.errors import SignatureError
from repro.crypto.rng import DeterministicDRBG
from repro.protocols.wep import WEPStation


class TestFaultAttacks:
    MESSAGE = b"authorize payment of 250 euro"

    def test_bellcore_single_fault_factors(self, rsa_512):
        injector = FaultInjector(target="p", model="bitflip", seed=1)
        faulty = rsa_512.sign(self.MESSAGE, use_crt=True,
                              fault_hook=injector)
        factors = bellcore_attack(rsa_512.public, self.MESSAGE, faulty)
        assert factors is not None
        assert set(factors) == {rsa_512.p, rsa_512.q}
        assert injector.injections >= 1

    @pytest.mark.parametrize("model", ["bitflip", "stuck", "random"])
    @pytest.mark.parametrize("target", ["p", "q"])
    def test_all_fault_models_work(self, rsa_512, model, target):
        injector = FaultInjector(target=target, model=model, seed=2)
        faulty = rsa_512.sign(self.MESSAGE, use_crt=True,
                              fault_hook=injector)
        factors = bellcore_attack(rsa_512.public, self.MESSAGE, faulty)
        assert factors is not None
        assert factors[0] * factors[1] == rsa_512.n

    def test_correct_signature_reveals_nothing(self, rsa_512):
        good = rsa_512.sign(self.MESSAGE, use_crt=True)
        assert bellcore_attack(rsa_512.public, self.MESSAGE, good) is None

    def test_differential_variant(self, rsa_512):
        good = rsa_512.sign(self.MESSAGE)
        injector = FaultInjector(target="q", model="random", seed=3)
        faulty = rsa_512.sign(self.MESSAGE, use_crt=True,
                              fault_hook=injector)
        factors = differential_fault_attack(rsa_512.public, good, faulty)
        assert factors is not None and factors[0] * factors[1] == rsa_512.n

    def test_full_private_key_recovery(self, rsa_512):
        injector = FaultInjector(seed=4)
        faulty = rsa_512.sign(self.MESSAGE, use_crt=True,
                              fault_hook=injector)
        factors = bellcore_attack(rsa_512.public, self.MESSAGE, faulty)
        recovered = recover_private_key(rsa_512.public, factors)
        # The recovered key must sign interchangeably with the original.
        assert recovered.sign(b"probe") == rsa_512.sign(b"probe")

    def test_countermeasure_withholds_faulty_signature(self, rsa_512):
        with pytest.raises(SignatureError):
            verified_crt_sign(rsa_512, self.MESSAGE,
                              fault_hook=FaultInjector(seed=5))

    def test_countermeasure_passes_clean_signing(self, rsa_512):
        signature = verified_crt_sign(rsa_512, self.MESSAGE)
        rsa_512.public.verify(self.MESSAGE, signature)

    def test_injector_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(target="x")
        with pytest.raises(ValueError):
            FaultInjector(model="zap")

    def test_bad_factors_rejected(self, rsa_512):
        with pytest.raises(ValueError):
            recover_private_key(rsa_512.public, (3, 5))


class TestWEPAttacks:
    KEY = b"abcde"

    def test_keystream_harvest_and_decrypt(self):
        victim = WEPStation(self.KEY)
        harvester = KeystreamHarvester()
        beacon = b"BEACON" + bytes(26)  # 32 bytes of known plaintext
        harvester.observe(victim.encrypt(beacon, iv=b"\x00\x00\x07"),
                          known_plaintext=beacon)
        secret_frame = victim.encrypt(b"user PIN 4711 send money",
                                      iv=b"\x00\x00\x07")
        assert harvester.decrypt(secret_frame) == \
            b"user PIN 4711 send money"

    def test_xor_of_plaintexts_without_any_knowledge(self):
        victim = WEPStation(self.KEY)
        frame_a = victim.encrypt(b"first secret!", iv=b"\x01\x02\x03")
        frame_b = victim.encrypt(b"second secret", iv=b"\x01\x02\x03")
        harvester = KeystreamHarvester()
        xored = harvester.xor_of_plaintexts(frame_a, frame_b)
        expected = bytes(a ^ b for a, b in zip(b"first secret!",
                                               b"second secret"))
        assert xored[:13] == expected

    def test_counter_reset_reuses_keystream(self):
        """Two stations (or one after reboot) restart the IV counter —
        the paper-era firmware behaviour that made WEP fall quickly."""
        first_boot = WEPStation(self.KEY)
        second_boot = WEPStation(self.KEY)
        assert first_boot.encrypt(b"x").iv == second_boot.encrypt(b"x").iv

    def test_bitflip_forgery_passes_icv(self):
        victim = WEPStation(self.KEY)
        receiver = WEPStation(self.KEY)
        frame = victim.encrypt(b"PAY 001 TO MALLORY")
        delta = bytearray(18)
        for i, (old, new) in enumerate(zip(b"001", b"999")):
            delta[4 + i] = old ^ new
        forged = bitflip_forgery(frame, bytes(delta))
        assert receiver.decrypt(forged) == b"PAY 999 TO MALLORY"

    def test_forgery_delta_too_long(self):
        frame = WEPStation(self.KEY).encrypt(b"tiny")
        with pytest.raises(ValueError):
            bitflip_forgery(frame, bytes(100))

    def test_counter_mode_collides_deterministically(self):
        experiment = run_iv_collision_experiment(
            lambda: _resetting_station(self.KEY), 600, "counter-reset")
        assert experiment.total_collisions > 0

    def test_random_mode_birthday_collision(self):
        experiment = run_iv_collision_experiment(
            lambda: WEPStation(self.KEY, iv_mode="random",
                               rng=DeterministicDRBG(42)),
            12_000, "random")
        # Birthday bound over 2^24 IVs: ~99% collision probability by
        # 12k frames.
        assert experiment.first_collision is not None

    def test_harvester_counts(self):
        victim = WEPStation(self.KEY)
        harvester = KeystreamHarvester()
        harvester.observe(victim.encrypt(b"a", iv=b"\x00\x00\x01"))
        harvester.observe(victim.encrypt(b"b", iv=b"\x00\x00\x01"))
        assert harvester.frames_seen == 2
        assert harvester.collisions_seen == 0  # no keystream learned yet


def _resetting_station(key):
    """A station whose IV counter restarts mid-campaign (reboot model)."""
    station = WEPStation(key)
    original_next_iv = station._next_iv
    state = {"count": 0}

    def next_iv():
        state["count"] += 1
        if state["count"] % 200 == 0:
            station._iv_counter = 0  # reboot
        return original_next_iv()

    station._next_iv = next_iv
    return station


class TestSoftwareAttacks:
    @pytest.fixture()
    def defended_device(self, rsa_512):
        vendor = VendorSigner.create(seed=8)
        keystore = SecureKeyStore.provision("sw-attack-device")
        keystore.install(
            "payment-key", rsa_512,
            KeyPolicy(usages=frozenset({KeyUsage.SIGN}),
                      secure_world_only=True))
        environment = SecureExecutionEnvironment(
            keystore=keystore, installer_key=vendor.public_key,
            invocation_budget=500)
        boot_rom = SecureBootROM(vendor_key=vendor.public_key)
        chain = reference_chain(vendor)
        return environment, vendor, boot_rom, chain

    def test_trojan_key_theft_blocked(self, defended_device):
        environment, *_ = defended_device
        outcome = trojan_key_theft(environment, "payment-key")
        assert outcome.blocked
        assert outcome.loot is None
        assert outcome.category == "privacy"

    def test_application_patching_blocked(self, defended_device):
        environment, vendor, *_ = defended_device
        outcome = application_patching(environment, vendor.key,
                                       "payment-key")
        assert outcome.blocked
        assert outcome.category == "integrity"

    def test_invocation_flood_contained(self, defended_device):
        environment, *_ = defended_device
        outcome = invocation_flood(environment, flood_size=2000)
        assert outcome.blocked
        assert "contained after 500" in outcome.detail

    def test_firmware_tampering_blocked(self, defended_device):
        environment, vendor, boot_rom, chain = defended_device
        outcome = firmware_tampering(boot_rom, chain)
        assert outcome.blocked

    def test_unsigned_secure_install_blocked(self, defended_device):
        environment, *_ = defended_device
        outcome = unsigned_secure_install(environment)
        assert outcome.blocked

    def test_full_campaign_all_blocked(self, defended_device):
        environment, vendor, boot_rom, chain = defended_device
        outcomes = run_standard_campaign(
            environment, vendor.key, boot_rom, chain, "payment-key")
        assert len(outcomes) == 5
        assert all(outcome.blocked for outcome in outcomes)
        categories = {outcome.category for outcome in outcomes}
        assert categories == {"privacy", "integrity", "availability"}

    def test_undefended_device_falls(self, rsa_512):
        """Ablation: without world separation the trojan succeeds —
        the §3.4 motivation for the secure execution environment."""
        vendor = VendorSigner.create(seed=9)
        keystore = SecureKeyStore.provision("naive-device")
        keystore.install(
            "payment-key", rsa_512,
            KeyPolicy(usages=frozenset({KeyUsage.SIGN}),
                      secure_world_only=False))  # no world gate
        environment = SecureExecutionEnvironment(
            keystore=keystore, installer_key=vendor.public_key)
        outcome = trojan_key_theft(environment, "payment-key")
        assert not outcome.blocked
        assert outcome.loot is not None
