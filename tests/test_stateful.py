"""Stateful property tests (hypothesis RuleBasedStateMachine).

Each machine drives a security-critical stateful component with random
operation sequences and checks it against a simple reference model —
the invariants the §3.4 attack classes try to break: replay windows
never re-accept, policy gates never leak, usage meters never
over-grant, energy ledgers never go negative.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core.drm import (
    ContentProvider,
    DRMAgent,
    RightsViolation,
    UsageRules,
)
from repro.core.keystore import (
    AccessDenied,
    KeyPolicy,
    KeyUsage,
    SecureKeyStore,
    World,
)
from repro.crypto.rng import DeterministicDRBG
from repro.crypto.rsa import generate_keypair
from repro.hardware.battery import Battery, BatteryEmpty
from repro.protocols.alerts import BadRecordMAC, DecodeError, ReplayError
from repro.protocols.ipsec import make_tunnel
from repro.protocols.resumption import CachedSession, SessionCache


class ESPReplayMachine(RuleBasedStateMachine):
    """The ESP anti-replay window against a perfect-memory model.

    Sent packets go into a pool; delivery happens in arbitrary order.
    The window may legitimately reject *old* packets the model would
    still accept (finite window), but it must NEVER accept a packet
    twice — the security invariant.
    """

    packets = Bundle("packets")

    def __init__(self):
        super().__init__()
        self.sender, self.receiver = make_tunnel(0x5151, seed=77)
        self.delivered = set()

    @rule(target=packets)
    def send(self):
        packet = self.sender.encapsulate(b"payload")
        return (self.sender.sequence, packet)

    @rule(item=packets)
    def deliver(self, item):
        sequence, packet = item
        try:
            got_sequence, _ = self.receiver.decapsulate(packet)
        except ReplayError:
            return  # rejection is always safe
        except (BadRecordMAC, DecodeError):
            pytest.fail("valid packet failed integrity checks")
        assert got_sequence == sequence
        assert sequence not in self.delivered, \
            "replay window accepted a duplicate!"
        self.delivered.add(sequence)

    @rule(item=packets)
    def replay_immediately(self, item):
        _, packet = item
        try:
            self.receiver.decapsulate(packet)
        except ReplayError:
            pass
        try:
            self.receiver.decapsulate(packet)
        except ReplayError:
            return
        pytest.fail("immediate replay accepted")


class KeyStoreMachine(RuleBasedStateMachine):
    """Key-store policy enforcement against a dict model."""

    names = Bundle("names")

    _RSA = generate_keypair(384, DeterministicDRBG("stateful-rsa"))

    def __init__(self):
        super().__init__()
        self.store = SecureKeyStore.provision("stateful-device")
        self.model = {}
        self.counter = 0

    @rule(target=names,
          secure_only=st.booleans(),
          usages=st.sets(st.sampled_from(
              [KeyUsage.SIGN, KeyUsage.DECRYPT, KeyUsage.MAC]),
              min_size=1),
          symmetric=st.booleans())
    def install(self, secure_only, usages, symmetric):
        self.counter += 1
        name = f"key-{self.counter}"
        material = bytes(range(16)) if symmetric else self._RSA
        policy = KeyPolicy(usages=frozenset(usages),
                           secure_world_only=secure_only)
        self.store.install(name, material, policy)
        self.model[name] = (policy, symmetric)
        return name

    @rule(name=names, world=st.sampled_from([World.NORMAL, World.SECURE]),
          usage=st.sampled_from([KeyUsage.SIGN, KeyUsage.MAC]))
    def attempt(self, name, world, usage):
        policy, symmetric = self.model[name]
        should_pass_policy = (
            (not policy.secure_world_only or world is World.SECURE)
            and usage in policy.usages
        )
        type_ok = (usage is KeyUsage.MAC) == symmetric
        operation = self.store.mac if usage is KeyUsage.MAC else \
            self.store.sign
        try:
            operation(name, b"data", world)
            assert should_pass_policy and type_ok, \
                "operation succeeded against policy!"
        except AccessDenied:
            assert not (should_pass_policy and type_ok), \
                "operation denied although policy allows it"

    @rule(world=st.sampled_from([World.NORMAL, World.SECURE]))
    def unknown_key_always_denied(self, world):
        with pytest.raises(AccessDenied):
            self.store.sign("never-installed", b"x", world)


class DRMMeterMachine(RuleBasedStateMachine):
    """Play-count metering never over-grants."""

    def __init__(self):
        super().__init__()
        provider_key = generate_keypair(384, DeterministicDRBG("sf-prov"))
        self.provider = ContentProvider(
            signing_key=provider_key, rng=DeterministicDRBG("sf-rng"))
        device_key = generate_keypair(384, DeterministicDRBG("sf-dev"))
        keystore = SecureKeyStore.provision("sf-drm")
        DRMAgent.provision_device_key(keystore, device_key)
        self.agent = DRMAgent(device_id="sf-handset", keystore=keystore,
                              provider_public=provider_key.public)
        self.content = self.provider.package("item", b"CONTENT " * 16)
        self.license = self.provider.issue_license(
            "item", "sf-handset", device_key.public,
            UsageRules(max_plays=5))
        self.model_plays = 0

    @rule()
    def play(self):
        try:
            self.agent.play(self.content, self.license)
            self.model_plays += 1
            assert self.model_plays <= 5, "meter over-granted!"
        except RightsViolation:
            assert self.model_plays >= 5, "meter under-granted"

    @invariant()
    def remaining_consistent(self):
        remaining = self.agent.plays_remaining(self.license)
        assert remaining == 5 - self.model_plays


class BatteryLedgerMachine(RuleBasedStateMachine):
    """The energy ledger: conservation and non-negativity."""

    def __init__(self):
        super().__init__()
        self.battery = Battery(capacity_j=1.0)
        self.model_remaining_mj = 1000.0

    @rule(amount=st.floats(min_value=0.0, max_value=400.0,
                           allow_nan=False))
    def drain(self, amount):
        try:
            self.battery.drain_mj(amount)
            self.model_remaining_mj -= amount
        except BatteryEmpty:
            assert amount > self.model_remaining_mj + 1e-6

    @rule()
    def recharge(self):
        self.battery.recharge()
        self.model_remaining_mj = 1000.0

    @invariant()
    def ledger_matches_model(self):
        assert self.battery.remaining_j * 1000.0 == pytest.approx(
            self.model_remaining_mj, abs=1e-6)
        assert self.battery.remaining_j >= 0.0


class SessionCacheMachine(RuleBasedStateMachine):
    """The resumption cache never exceeds capacity and FIFO-evicts."""

    def __init__(self):
        super().__init__()
        self.cache = SessionCache(capacity=4)
        self.counter = 0
        self.inserted = []

    @rule()
    def store(self):
        self.counter += 1
        session_id = self.counter.to_bytes(16, "big")
        self.cache.store(CachedSession(session_id, "S", b"m" * 48))
        self.inserted.append(session_id)

    @rule()
    def lookup_recent(self):
        if self.inserted:
            assert self.cache.lookup(self.inserted[-1]) is not None

    @invariant()
    def bounded(self):
        assert len(self.cache) <= 4


_settings = settings(max_examples=25, stateful_step_count=30,
                     deadline=None)

TestESPReplay = ESPReplayMachine.TestCase
TestESPReplay.settings = _settings
TestKeyStore = KeyStoreMachine.TestCase
TestKeyStore.settings = _settings
TestDRMMeter = DRMMeterMachine.TestCase
TestDRMMeter.settings = settings(max_examples=10, stateful_step_count=15,
                                 deadline=None)
TestBatteryLedger = BatteryLedgerMachine.TestCase
TestBatteryLedger.settings = _settings
TestSessionCache = SessionCacheMachine.TestCase
TestSessionCache.settings = _settings
