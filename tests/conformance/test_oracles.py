"""Differential and property oracles: every registered oracle runs
green, deterministically, and the sweep covers the planned planes."""

import pytest

from repro.conformance.oracles import ORACLES, run_oracles

EXPECTED_ORACLES = {
    "hash-vs-hashlib", "hmac-vs-stdlib", "cipher-roundtrip",
    "record-agreement", "record-batch", "stream-suite",
}


def test_registry_covers_every_plane():
    assert set(ORACLES) == EXPECTED_ORACLES


@pytest.mark.parametrize("name", sorted(EXPECTED_ORACLES))
def test_oracle_green(name):
    results = ORACLES[name]()
    assert results, f"oracle {name} produced no checks"
    failures = [r for r in results if not r.ok]
    assert not failures, failures


def test_run_oracles_deterministic():
    first = run_oracles()
    second = run_oracles()
    assert first == second
    assert all(r.ok for r in first)


def test_hash_oracle_exercises_both_paths():
    cases = {r.vector_id for r in ORACLES["hash-vs-hashlib"]()}
    fast = {c for c in cases if c.endswith("-fast")}
    reference = {c for c in cases if c.endswith("-reference")}
    assert fast and reference
    assert {c[:-len("-fast")] for c in fast} == \
        {c[:-len("-reference")] for c in reference}


def test_roundtrip_oracle_reports_mode_rows():
    files = {r.file for r in ORACLES["cipher-roundtrip"]()}
    assert files == {"cipher-roundtrip", "mode-roundtrip"}


def test_record_batch_covers_every_suite_and_both_paths():
    from repro.protocols.ciphersuites import ALL_SUITES

    results = ORACLES["record-batch"]()
    ids = {r.vector_id for r in results}
    for suite in ALL_SUITES:
        for tail in ("tls-fast", "tls-reference", "wtls-fast",
                     "wtls-reference", "transactional"):
            assert f"{suite.name}-{tail}" in ids


def test_stream_suite_oracle_covers_every_stream_suite():
    from repro.protocols.ciphersuites import ALL_SUITES

    results = ORACLES["stream-suite"]()
    stream_names = {s.name for s in ALL_SUITES
                    if s.cipher_kind == "stream" and s.cipher != "NULL"}
    for name in stream_names:
        for tail in ("three-way", "keystream-rollback", "batch-damage",
                     "wtls-damage"):
            assert f"{name}-{tail}" in {r.vector_id for r in results}
    # The lightweight family is in the sweep.
    assert {"RSA_WITH_A51_228_SHA", "RSA_WITH_GRAIN_V1_SHA",
            "RSA_WITH_TRIVIUM_SHA"} <= stream_names


def test_record_agreement_covers_every_suite():
    from repro.protocols.ciphersuites import ALL_SUITES

    results = ORACLES["record-agreement"]()
    covered = {r.vector_id.rsplit("-", 1)[0] for r in results}
    assert covered == {suite.name for suite in ALL_SUITES}
    # Both the round-trip and tamper halves ran for every suite.
    assert {r.vector_id.rsplit("-", 1)[1] for r in results} == \
        {"roundtrip", "tamper"}
