"""The handshake state-machine model: matrix completeness, golden
replay, the exhaustive check, and targeted forbidden transitions."""

import pytest

from repro.conformance.statemachine import (
    AWAIT_FINISHED,
    AWAIT_HELLO,
    AWAIT_KEY_EXCHANGE,
    CLOSED,
    DATA_RECEIVED,
    ESTABLISHED,
    STATES,
    SYMBOLS,
    TRANSITIONS,
    ReferenceServerMachine,
    check_model,
    golden_messages,
)
from repro.protocols.alerts import (
    BadRecordMAC,
    DecodeError,
    ProtocolAlert,
    UnexpectedMessage,
)


def test_transition_matrix_is_total():
    """Every (state, symbol) pair is declared — no undefined behaviour."""
    assert set(TRANSITIONS) == {(state, symbol)
                                for state in STATES for symbol in SYMBOLS}
    for value in TRANSITIONS.values():
        assert value in STATES or (isinstance(value, type)
                                   and issubclass(value, ProtocolAlert))


def test_golden_messages_replay_on_a_fresh_machine():
    golden = golden_messages()
    assert set(golden) == set(SYMBOLS)
    machine = ReferenceServerMachine()
    machine.feed(golden["client_hello"])
    assert machine.state == AWAIT_KEY_EXCHANGE
    machine.feed(golden["client_key_exchange"])
    assert machine.state == AWAIT_FINISHED
    reply = machine.feed(golden["finished"])
    assert machine.state == ESTABLISHED
    assert reply  # server Finished
    machine.feed(golden["appdata"])
    assert machine.state == DATA_RECEIVED
    assert machine.inbox == [b"conformance: application data"]


@pytest.mark.parametrize("symbol,alert", [
    ("server_hello", UnexpectedMessage),   # reflected server message
    ("client_key_exchange", UnexpectedMessage),  # skipped ClientHello
    ("finished", DecodeError),             # record framing in plaintext state
    ("appdata", DecodeError),
    ("junk", DecodeError),
])
def test_forbidden_opening_moves(symbol, alert):
    machine = ReferenceServerMachine()
    with pytest.raises(alert):
        machine.feed(golden_messages()[symbol])
    assert machine.state == CLOSED


def test_replayed_finished_is_rejected():
    """A replayed Finished record must die on the MAC (sequence number
    moved on), not re-run the handshake logic."""
    golden = golden_messages()
    machine = ReferenceServerMachine()
    machine.feed(golden["client_hello"])
    machine.feed(golden["client_key_exchange"])
    machine.feed(golden["finished"])
    with pytest.raises(BadRecordMAC):
        machine.feed(golden["finished"])
    assert machine.state == CLOSED


def test_closed_machine_rejects_everything():
    golden = golden_messages()
    for symbol in SYMBOLS:
        machine = ReferenceServerMachine()
        with pytest.raises(ProtocolAlert):
            machine.feed(golden["junk"])
        assert machine.state == CLOSED
        with pytest.raises(UnexpectedMessage):
            machine.feed(golden[symbol])


def test_exhaustive_model_check():
    report = check_model(depth=3)
    assert report.ok, report.mismatches
    # 6 + 6^2 + 6^3 sequences of the six symbols.
    assert report.sequences == 6 + 36 + 216
    assert report.steps > report.sequences
    assert report.alerts > 0


def test_depth_four_covers_all_live_transitions():
    """Depth 4 reaches every declared transition except the
    DATA_RECEIVED row (first reachable at step 4, so its outgoing
    edges need depth 5)."""
    report = check_model(depth=4)
    assert report.ok, report.mismatches
    assert report.sequences == 6 + 36 + 216 + 1296
    assert report.transitions_covered == len(TRANSITIONS) - len(SYMBOLS)
