"""The official-vector registry: corpus integrity, both dispatch
paths, the negative control, and the session-cache behaviour."""

import time

import pytest

from repro.conformance.vectors import (
    CORPUS_DIR,
    PATHS,
    check_vector,
    clear_cache,
    load_corpus,
    run_vectors,
)

EXPECTED_FILES = {
    "aes_fips197", "des_fips46_3", "hmac_rfc2202", "md5_rfc1321",
    "rc2_rfc2268", "rc4_rfc6229", "rsa_dh_pairs", "sha1_rfc3174",
    "a51_bgw_pedagogical", "grain_v1_frozen_pins", "trivium_frozen_pins",
}


def _all_cases():
    corpus = load_corpus()
    cases = []
    for name in sorted(corpus.files):
        file = corpus.files[name]
        for vector in file.vectors:
            paths = ("fast",) if vector.get("fast_only") else PATHS
            for path in paths:
                cases.append(pytest.param(
                    file, vector, path,
                    id=f"{name}:{vector['id']}:{path}"))
    return cases


class TestCorpusIntegrity:
    def test_expected_files_present(self, vector_corpus):
        assert set(vector_corpus.files) == EXPECTED_FILES

    def test_every_file_cites_its_source(self, vector_corpus):
        for file in vector_corpus.files.values():
            assert file.source, f"{file.name} has no source citation"
            assert file.algorithm
            assert file.kind in ("block", "stream", "hash", "hmac",
                                 "asymmetric")
            assert file.vectors, f"{file.name} is empty"

    def test_vector_ids_unique_per_file(self, vector_corpus):
        for file in vector_corpus.files.values():
            ids = [v["id"] for v in file.vectors]
            assert len(ids) == len(set(ids)), f"duplicate ids in {file.name}"


@pytest.mark.parametrize("file,vector,path", _all_cases())
def test_official_vector(file, vector, path):
    result = check_vector(file, vector, path)
    assert result.ok, (f"{file.name}:{vector['id']} [{path}] "
                       f"failed: {result.detail}")


def test_run_vectors_all_green(vector_corpus):
    results = run_vectors(vector_corpus)
    failures = [r for r in results if not r.ok]
    assert not failures
    # Every non-fast_only vector appears on both dispatch paths.
    assert {r.path for r in results} == set(PATHS)


def test_negative_control_detects_corruption(vector_corpus):
    """A corrupted expected value must be flagged, proving the harness
    actually compares something (guards against vacuous green)."""
    file = vector_corpus.files["aes_fips197"]
    vector = dict(file.vectors[0])
    good = vector["ciphertext"]
    vector["ciphertext"] = ("0" if good[0] != "0" else "1") + good[1:]
    for path in PATHS:
        result = check_vector(file, vector, path)
        assert not result.ok
        assert "encrypt" in result.detail


@pytest.mark.parametrize("name,field", [
    ("a51_bgw_pedagogical", "a_to_b"),
    ("grain_v1_frozen_pins", "keystream"),
    ("trivium_frozen_pins", "keystream"),
])
def test_negative_control_detects_stream_corruption(vector_corpus, name,
                                                    field):
    """The lightweight-stream files get their own vacuous-green guard:
    flipping a nibble of the pinned keystream/burst must fail on both
    dispatch paths."""
    file = vector_corpus.files[name]
    vector = next(v for v in file.vectors if field in v)
    vector = dict(vector)
    good = vector[field]
    vector[field] = ("0" if good[0] != "0" else "1") + good[1:]
    for path in PATHS:
        result = check_vector(file, vector, path)
        assert not result.ok
        assert field in result.detail


def test_negative_control_detects_crash(vector_corpus):
    """A malformed vector surfaces as a failure detail, not a raise."""
    file = vector_corpus.files["aes_fips197"]
    vector = dict(file.vectors[0])
    vector["key"] = "00"  # invalid AES key length
    result = check_vector(file, vector, "fast")
    assert not result.ok
    assert "raised" in result.detail


class TestCorpusCache:
    def test_fixture_shares_the_module_cache(self, vector_corpus):
        assert load_corpus() is vector_corpus

    def test_cached_load_skips_file_io(self):
        """The session fixture is free after first use: a cold load
        pays JSON parsing, a warm load is a dict lookup.  (Run pytest
        with ``--durations=10`` to see the cold parse charged to at
        most one test.)"""
        clear_cache()
        start = time.perf_counter()
        cold = load_corpus()
        cold_time = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(100):
            warm = load_corpus()
        warm_time = (time.perf_counter() - start) / 100

        assert warm is cold
        assert warm_time < cold_time, (
            f"cached load ({warm_time:.6f}s) not faster than cold "
            f"parse ({cold_time:.6f}s)")

    def test_unknown_directory_yields_empty_corpus(self, tmp_path):
        corpus = load_corpus(tmp_path)
        assert corpus.files == {}
        assert corpus.vector_count == 0
        clear_cache()  # do not leak the scratch dir into the cache

    def test_default_directory_is_the_committed_corpus(self):
        assert CORPUS_DIR.name == "vectors"
        assert (CORPUS_DIR / "regressions").is_dir()
