"""The conformance runner: one green report, byte-stable per seed."""

from repro.conformance.runner import format_report, run_conformance


def _small_run(seed=2003):
    # Small fuzz budget + shallow enumeration: the full campaign runs
    # in CI via ``python -m repro conformance``; this test checks the
    # wiring and the determinism contract.
    return run_conformance(seed=seed, fuzz_iterations=25,
                           statemachine_depth=2)


def test_full_run_is_green():
    report = _small_run()
    assert report.ok
    assert report.vector_results and report.oracle_results
    assert report.statemachine.ok
    assert report.fuzz.ok
    assert report.regressions  # the committed corpus replayed
    assert all(escape is None for _, escape in report.regressions)


def test_report_text_is_byte_stable():
    first = format_report(_small_run())
    second = format_report(_small_run())
    assert first == second
    assert first.endswith("RESULT: PASS\n")
    # Every plane shows up in the rendered report.
    for heading in ("official vectors", "oracles", "state machine",
                    "fuzzing", "regression corpus replay"):
        assert heading in first


def test_failure_is_reported_not_hidden():
    report = _small_run()
    report.regressions = [("client_hello:deadbeef", "RuntimeError: boom")]
    assert not report.ok
    text = format_report(report)
    assert "REGRESSED: RuntimeError: boom" in text
    assert text.endswith("RESULT: FAIL\n")
