"""The seeded fuzzer: determinism, the strict contract, minimization,
the committed regression corpus, and pins for the parser bugs the
fuzzer originally found (all fixed; these keep them fixed)."""

import pytest

from repro.conformance.fuzzcorpus import (
    ALERTS_ONLY,
    FuzzTarget,
    default_targets,
    load_regressions,
    minimize,
    persist_crashers,
    replay_regression,
    run_fuzz,
)
from repro.protocols.alerts import (
    BadRecordMAC,
    CertificateError,
    DecodeError,
)
from repro.protocols.certificates import Certificate
from repro.protocols.messages import ClientHello, ServerHello, encode_fields


def test_same_seed_same_campaign():
    first = run_fuzz(seed=77, iterations=40)
    second = run_fuzz(seed=77, iterations=40)
    assert (first.executions, first.accepted, first.rejections) == \
        (second.executions, second.accepted, second.rejections)
    assert first.crashers == second.crashers


def test_default_campaign_finds_no_contract_escapes():
    report = run_fuzz(seed=2003, iterations=150)
    assert report.ok, [c.error for c in report.crashers]
    assert report.executions == 150 * len(default_targets())
    # The structure-aware seeds do reach accepting paths.
    assert report.accepted > 0


def test_every_target_seed_honours_the_contract():
    """Each target's seed blobs must at least stay inside the declared
    exception contract (the engine targets run with their own fixed
    keys, so foreign-keyed seeds legitimately fail the MAC — but only
    with a declared fault, never a crash)."""
    from repro.conformance.fuzzcorpus import _escapes

    for target in default_targets():
        for seed_blob in target.seeds:
            escape = _escapes(target, seed_blob)
            assert escape is None, f"{target.name} seed escaped: {escape}"


def test_protocol_target_seeds_parse_cleanly():
    """The protocol-stack targets' seeds are fully valid wire blobs —
    the mutator must start from accepting inputs to reach deep paths."""
    engine_targets = {"engine_esp_decap", "engine_wep_decap"}
    for target in default_targets():
        if target.name in engine_targets:
            continue
        for seed_blob in target.seeds:
            target.parse(seed_blob)  # must not raise


def test_minimize_shrinks_while_preserving_the_escape():
    def parse(blob):
        if b"\xe9" in blob:
            raise RuntimeError("boom")

    target = FuzzTarget(name="toy", parse=parse, allowed=ALERTS_ONLY,
                        seeds=(b"\x00" * 8,))
    crasher = b"prefix-\xe9-suffix" * 4
    minimized = minimize(target, crasher)
    assert len(minimized) < len(crasher)
    assert b"\xe9" in minimized


class TestRegressionCorpus:
    def test_corpus_is_committed(self):
        records = load_regressions()
        assert len(records) >= 3
        assert {r["target"] for r in records} >= {
            "certificate", "client_hello", "server_hello"}

    @pytest.mark.parametrize(
        "record", load_regressions(),
        ids=[f"{r['target']}--{r['blob'][:10]}" for r in load_regressions()])
    def test_regression_replays_clean(self, record):
        escape = replay_regression(record)
        assert escape is None, f"{record['target']} regressed: {escape}"

    def test_persist_round_trips(self, tmp_path):
        from repro.conformance.fuzzcorpus import CrashRecord

        crash = CrashRecord(target="client_hello", blob=b"\x01\x00\x01\xec",
                            error="UnicodeDecodeError: test", note="pin")
        written = persist_crashers([crash], tmp_path)
        assert len(written) == 1
        (loaded,) = load_regressions(tmp_path)
        assert loaded["target"] == "client_hello"
        assert bytes.fromhex(loaded["blob"]) == crash.blob


class TestParserPins:
    """Unit pins for every bug class the fuzzer surfaced: the parsers
    must refuse these inside their declared alert contract."""

    def test_client_hello_rejects_non_utf8_suites(self):
        blob = encode_fields(1, [b"\x00" * 32, b"\xec\xffRSA"])
        with pytest.raises(DecodeError):
            ClientHello.from_bytes(blob)

    def test_server_hello_rejects_non_utf8_suite_name(self):
        blob = encode_fields(
            2, [b"\x00" * 32, b"\xff\xfe", b"cert", b"", b"\x00"])
        with pytest.raises(DecodeError):
            ServerHello.from_bytes(blob)

    @staticmethod
    def _cert_blob(subject=b"s", issuer=b"i", n_bytes=b"\x05\x03",
                   e_bytes=b"\x03"):
        def enc(data):
            return len(data).to_bytes(2, "big") + data
        return (enc(subject) + enc(issuer) + enc(n_bytes) + enc(e_bytes)
                + (0).to_bytes(8, "big") + (1000).to_bytes(8, "big")
                + enc(b"sig"))

    def test_certificate_rejects_non_utf8_names(self):
        with pytest.raises(CertificateError):
            Certificate.from_bytes(self._cert_blob(subject=b"\xe9"))

    def test_certificate_rejects_degenerate_keys(self):
        """n=0/e=0 previously survived parsing and crashed later in
        ``pow(sig, e, 0)`` during signature verification."""
        with pytest.raises(CertificateError):
            Certificate.from_bytes(self._cert_blob(n_bytes=b"", e_bytes=b""))
        with pytest.raises(CertificateError):
            Certificate.from_bytes(self._cert_blob(n_bytes=b"\x01"))

    def test_certificate_rejects_oversized_key_fields(self):
        """A multi-kilobyte modulus would turn signature verification
        into an unbounded modexp — refuse it at the parser."""
        with pytest.raises(CertificateError):
            Certificate.from_bytes(self._cert_blob(n_bytes=b"\xff" * 1025))
        with pytest.raises(CertificateError):
            Certificate.from_bytes(self._cert_blob(e_bytes=b"\x01" * 9))

    def test_certificate_still_parses_valid_blob(self):
        cert = Certificate.from_bytes(self._cert_blob())
        assert (cert.public_key.n, cert.public_key.e) == (0x0503, 3)

    def test_tls_record_misaligned_body_is_bad_record_mac(self):
        """A ciphertext that is not a block multiple used to escape as
        ``InvalidBlockSize``; the decoder must treat it as any other
        undecryptable record."""
        from repro.protocols.ciphersuites import RSA_WITH_3DES_SHA
        from repro.protocols.records import (
            CONTENT_APPLICATION,
            RecordDecoder,
            RecordEncoder,
        )
        encoder = RecordEncoder(RSA_WITH_3DES_SHA, bytes(24), bytes(20),
                                bytes(8))
        record = encoder.encode(CONTENT_APPLICATION, b"payload")
        body = record[3:-1]  # chop one byte: no longer a block multiple
        broken = bytes([record[0]]) + len(body).to_bytes(2, "big") + body
        decoder = RecordDecoder(RSA_WITH_3DES_SHA, bytes(24), bytes(20),
                                bytes(8))
        with pytest.raises(BadRecordMAC):
            decoder.decode(broken)

    def test_wtls_record_misaligned_body_is_bad_record_mac(self):
        from repro.protocols.ciphersuites import RSA_WITH_3DES_SHA
        from repro.protocols.wtls import (
            WTLSRecordDecoder,
            WTLSRecordEncoder,
        )
        encoder = WTLSRecordEncoder(RSA_WITH_3DES_SHA, bytes(24), bytes(20),
                                    bytes(8))
        record = encoder.encode(b"payload")
        body = record[6:-1]
        broken = record[:4] + len(body).to_bytes(2, "big") + body
        decoder = WTLSRecordDecoder(RSA_WITH_3DES_SHA, bytes(24), bytes(20),
                                    bytes(8))
        with pytest.raises(BadRecordMAC):
            decoder.decode(broken)


# -- the public mutation stream (PR 7) ---------------------------------------


class TestMutationStream:
    def test_stream_matches_fuzz_campaign_inputs(self):
        """The first N stream items are exactly the N inputs
        ``fuzz_target`` executes for the same seed — one mutation
        engine shared by live adversarial traffic and the fuzzer."""
        import random

        from repro.conformance.fuzzcorpus import (
            _next_mutation,
            mutation_stream,
        )

        target = default_targets()[0]
        rng = random.Random(f"2003:{target.name}")
        campaign = [_next_mutation(target, rng) for _ in range(50)]
        stream = mutation_stream(target, 2003)
        assert [next(stream) for _ in range(50)] == campaign

    def test_stream_determinism_regression_pin(self):
        """Pinned digest: the wtls_record mutation stream is a stable
        function of its seed across refactors."""
        from repro.conformance.fuzzcorpus import mutation_stream
        from repro.crypto.sha1 import sha1

        target = next(t for t in default_targets()
                      if t.name == "wtls_record")
        stream = mutation_stream(target, 2003)
        blobs = [next(stream) for _ in range(64)]
        digest = sha1(b"\x00".join(blobs)).hex()
        assert digest == "3ca5cad6f8c1473287e596b001a82cfee4b06f44"
        # Different seed, different stream.
        other = mutation_stream(target, 2004)
        assert sha1(b"\x00".join(
            next(other) for _ in range(64))).hex() != digest

    def test_run_fuzz_unchanged_by_refactor(self):
        """Factoring the stream out of ``fuzz_target`` must not perturb
        the campaign: the full report is seed-stable and clean."""
        first = run_fuzz(seed=2003, iterations=40)
        second = run_fuzz(seed=2003, iterations=40)
        assert first == second
        assert first.ok
