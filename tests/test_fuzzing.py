"""Parser robustness: random garbage must fail *cleanly*.

Every wire-format parser in the library is fed arbitrary bytes; the
contract is that they raise only their declared protocol exceptions
(never ``IndexError``/``struct.error``-style crashes), because §3.4's
software attackers control exactly these inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.secure_storage import (
    FlashDevice,
    SecureStorage,
    StorageTampered,
)
from repro.core.keystore import SecureKeyStore
from repro.crypto.errors import CryptoError
from repro.crypto.rng import DeterministicDRBG
from repro.hardware.engine_program import (
    EngineContext,
    EngineFault,
    stock_engine,
)
from repro.protocols.alerts import ProtocolAlert
from repro.protocols.certificates import Certificate
from repro.protocols.ciphersuites import RSA_WITH_3DES_SHA
from repro.protocols.ipsec import make_tunnel
from repro.protocols.messages import (
    ClientHello,
    ClientKeyExchange,
    Finished,
    ServerHello,
)
from repro.protocols.records import RecordDecoder
from repro.protocols.wep import WEPFrame, WEPStation
from repro.protocols.wtls import WTLSRecordDecoder

ACCEPTABLE = (ProtocolAlert, CryptoError, StorageTampered, EngineFault,
              ValueError)

FUZZ = settings(max_examples=80, deadline=None)


@FUZZ
@given(blob=st.binary(max_size=300))
def test_handshake_message_parsers(blob):
    for parser in (ClientHello, ServerHello, ClientKeyExchange, Finished):
        try:
            parser.from_bytes(blob)
        except ACCEPTABLE:
            pass


@FUZZ
@given(blob=st.binary(max_size=300))
def test_certificate_parser(blob):
    try:
        Certificate.from_bytes(blob)
    except ACCEPTABLE:
        pass


@FUZZ
@given(blob=st.binary(max_size=200))
def test_record_decoder(blob):
    decoder = RecordDecoder(RSA_WITH_3DES_SHA, bytes(24), bytes(20),
                            bytes(8))
    try:
        decoder.decode(blob)
    except ACCEPTABLE:
        pass


@FUZZ
@given(blob=st.binary(max_size=200))
def test_wtls_decoder(blob):
    decoder = WTLSRecordDecoder(RSA_WITH_3DES_SHA, bytes(24), bytes(20),
                                bytes(8))
    try:
        decoder.decode(blob)
    except ACCEPTABLE:
        pass


@FUZZ
@given(blob=st.binary(max_size=200))
def test_esp_decapsulation(blob):
    _, receiver = make_tunnel(0xF122, seed=1)
    try:
        receiver.decapsulate(blob)
    except ACCEPTABLE:
        pass


@FUZZ
@given(blob=st.binary(max_size=200))
def test_wep_frame_and_decrypt(blob):
    station = WEPStation(b"abcde")
    try:
        frame = WEPFrame.from_bytes(blob)
        station.decrypt(frame)
    except ACCEPTABLE:
        pass


@FUZZ
@given(blob=st.binary(max_size=200))
def test_engine_decap_programs(blob):
    engine = stock_engine()
    for program in ("esp-decap", "wep-decap"):
        context = EngineContext(
            packet=blob,
            keys={"cipher_key": bytes(24), "mac_key": bytes(20)})
        try:
            engine.run(program, context)
        except ACCEPTABLE:
            pass


@FUZZ
@given(blob=st.binary(max_size=200), name=st.text(min_size=1, max_size=10))
def test_sealed_storage_unseal(blob, name):
    storage = SecureStorage(
        flash=FlashDevice(), keystore=SecureKeyStore.provision("fuzz"),
        rng=DeterministicDRBG("fuzz"))
    storage.store(name, b"original")
    storage.flash.program(name, blob)
    try:
        storage.load(name)
    except ACCEPTABLE:
        pass
