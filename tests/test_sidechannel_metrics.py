"""Side-channel evaluation metrology (SNR, success curves, MTD)."""

import pytest

from repro.analysis.sidechannel_metrics import (
    SuccessCurve,
    cpa_success_curve,
    leakage_snr,
    timing_attack_success_curve,
)
from repro.attacks.power import MaskedAES, acquire_aes_traces, cpa_attack_aes
from repro.crypto.aes import SBOX
from repro.crypto.bitops import hamming_weight

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def _classifier(byte_index: int):
    def classify(plaintext: bytes) -> int:
        return hamming_weight(SBOX[plaintext[byte_index] ^ KEY[byte_index]])

    return classify


class TestSNR:
    def test_unmasked_aes_leaks(self):
        traces = acquire_aes_traces(KEY, 300, seed=11, noise_sigma=1.0)
        snr = leakage_snr(traces, sample_index=0,
                          classifier=_classifier(0))
        assert snr > 0.5  # strong leakage at the right model

    def test_masking_collapses_snr(self):
        unmasked = acquire_aes_traces(KEY, 300, seed=11, noise_sigma=1.0)
        masked = acquire_aes_traces(KEY, 300, seed=11, noise_sigma=1.0,
                                    cipher_factory=MaskedAES)
        snr_unmasked = leakage_snr(unmasked, 0, _classifier(0))
        snr_masked = leakage_snr(masked, 0, _classifier(0))
        assert snr_masked < snr_unmasked / 5

    def test_wrong_model_no_signal(self):
        """Classifying with the wrong key byte shows (near) no SNR —
        the control that validates the metric itself."""
        traces = acquire_aes_traces(KEY, 300, seed=12)

        def wrong_classifier(plaintext: bytes) -> int:
            return hamming_weight(SBOX[plaintext[0] ^ 0x42])

        right = leakage_snr(traces, 0, _classifier(0))
        wrong = leakage_snr(traces, 0, wrong_classifier)
        assert right > 10 * wrong

    def test_degenerate_inputs(self):
        assert leakage_snr([], 0, lambda p: 0) == 0.0
        one_class = [(bytes(16), [1.0]), (bytes(16), [2.0])]
        assert leakage_snr(one_class, 0, lambda p: 0) == 0.0


class TestSuccessCurves:
    def test_cpa_curve_and_mtd(self):
        def acquire(count):
            return acquire_aes_traces(KEY, count, seed=13, noise_sigma=2.0)

        def attack(traces):
            return cpa_attack_aes(traces).key

        curve = cpa_success_curve(acquire, attack, KEY,
                                  trace_counts=[20, 100, 400])
        # More traces must not make the attack worse at the top end.
        assert curve.successes[-1]
        mtd = curve.measurements_to_disclosure
        assert mtd is not None and mtd <= 400

    def test_mtd_none_when_never_successful(self):
        curve = SuccessCurve(trace_counts=[10, 20],
                             successes=[False, False])
        assert curve.measurements_to_disclosure is None

    def test_mtd_requires_stable_success(self):
        curve = SuccessCurve(trace_counts=[10, 20, 30],
                             successes=[True, False, True])
        assert curve.measurements_to_disclosure == 30

    def test_timing_curve_shape(self):
        """Low sample counts fail, high ones succeed — delegating to the
        real attack is covered by the attack tests; here the harness."""
        outcomes = {50: False, 800: True}
        curve = timing_attack_success_curve(
            lambda n: outcomes[n], [50, 800])
        assert curve.successes == [False, True]
        assert curve.measurements_to_disclosure == 800
