"""Metrics registry and the ledger adapters (satellite: one scrape
unifies every pre-existing ad-hoc counter, old attributes untouched)."""

import pytest

from repro.core.supervisor import DegradationReport
from repro.hardware.battery import Battery
from repro.observability.metrics import (
    MetricsRegistry,
    attach_ledger,
    export_battery,
    export_degradation_report,
    export_fault_stats,
    export_gateway,
)
from repro.protocols.faults import FaultStats


class TestPrimitives:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "test counter")
        counter.inc()
        counter.inc(2.0)
        assert counter.value() == 3.0

    def test_counter_labels_are_independent_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("replies_total")
        counter.inc(outcome="served")
        counter.inc(outcome="served")
        counter.inc(outcome="shed")
        assert counter.value(outcome="served") == 2.0
        assert counter.value(outcome="shed") == 1.0
        assert counter.value(outcome="degraded") == 0.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("ups_total").inc(-1.0)

    def test_gauge_goes_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.value() == 3.0

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_s", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(6.05)
        samples = dict(((name, key), v)
                       for name, key, v in histogram.samples())
        assert samples[("latency_s_bucket", (("le", "0.1"),))] == 1.0
        assert samples[("latency_s_bucket", (("le", "1.0"),))] == 3.0
        assert samples[("latency_s_bucket", (("le", "+Inf"),))] == 4.0

    def test_get_or_create_is_idempotent_but_typed(self):
        registry = MetricsRegistry()
        counter = registry.counter("thing_total")
        assert registry.counter("thing_total") is counter
        with pytest.raises(ValueError):
            registry.gauge("thing_total")

    def test_registry_value_raises_on_unknown_series(self):
        registry = MetricsRegistry()
        registry.counter("known_total").inc()
        with pytest.raises(KeyError):
            registry.value("unknown_total")

    def test_render_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b_total", "second").inc(2.0, kind="x")
            registry.counter("a_total", "first").inc()
            registry.gauge("c").set(1.5)
            return registry.render()

        first, second = build(), build()
        assert first == second
        assert first.index("a_total") < first.index("b_total")
        assert "# TYPE a_total counter" in first


class TestLedgerAdapters:
    def test_attach_ledger_reads_through_live(self):
        registry = MetricsRegistry()
        stats = FaultStats()
        export_fault_stats(registry, stats, channel="radio")
        assert registry.value("repro_channel_faults_drops",
                              channel="radio") == 0.0
        stats.drops += 3          # the old idiom keeps working
        assert registry.value("repro_channel_faults_drops",
                              channel="radio") == 3.0
        # Property fields ride along too.
        assert registry.value("repro_channel_faults_total_drops",
                              channel="radio") == stats.total_drops

    def test_degradation_report_adapter(self):
        registry = MetricsRegistry()
        report = DegradationReport()
        export_degradation_report(registry, report, device="unit")
        report.engine_fallbacks += 2
        assert registry.value("repro_supervisor_engine_fallbacks",
                              device="unit") == 2.0

    def test_battery_adapter_tracks_drain(self):
        registry = MetricsRegistry()
        battery = Battery(capacity_j=1.0)
        export_battery(registry, battery, device="handset-00")
        battery.drain_mj(250.0)
        assert registry.value("repro_battery_drained_mj",
                              device="handset-00") == pytest.approx(250.0)
        assert registry.value("repro_battery_fraction_remaining",
                              device="handset-00") == pytest.approx(0.75)

    def test_gateway_adapter_counts_plaintext_exposure(self):
        class FakeGateway:
            def __init__(self):
                self.wired_leg_failures = 0
                self.handler_failures = 0
                self.degraded_responses = 0
                self.plaintext_log = []

        registry = MetricsRegistry()
        gateway = FakeGateway()
        export_gateway(registry, gateway)
        gateway.plaintext_log.extend([b"req", b"resp"])
        gateway.degraded_responses = 1
        assert registry.value("repro_gateway_plaintext_records") == 2.0
        assert registry.value("repro_gateway_degraded_responses") == 1.0

    def test_attach_ledger_skips_non_numeric(self):
        class Mixed:
            def __init__(self):
                self.count = 4
                self.label = "not-a-number"
                self.flag = True

        registry = MetricsRegistry()
        attach_ledger(registry, "repro_mixed", Mixed())
        names = {name for name, _key, _v in registry.samples()}
        assert names == {"repro_mixed_count"}
