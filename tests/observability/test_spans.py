"""Span trees, deterministic identities, and the probe seam contract."""

import pytest

from repro.observability import probe
from repro.observability.spans import (
    Telemetry,
    derive_trace_id,
    fnv1a_64,
)
from repro.protocols.reliable import VirtualClock


class TestDeterministicIdentity:
    def test_fnv1a_offset_basis(self):
        # FNV-1a of the empty string is the offset basis by definition.
        assert fnv1a_64(b"") == 0xCBF29CE484222325

    def test_fnv1a_known_vector(self):
        # Classic FNV-1a test vector: "a" -> 0xaf63dc4c8601ec8c.
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_trace_id_is_pure_function_of_seed(self):
        assert derive_trace_id("x", 1) == derive_trace_id("x", 1)
        assert derive_trace_id("x", 1) != derive_trace_id("x", 2)
        assert derive_trace_id("x", 1) != derive_trace_id("y", 1)
        assert len(derive_trace_id("x", 1)) == 16

    def test_same_seed_same_trace_id(self):
        a = Telemetry(seed=("chaos", 32, 0), label="gateway")
        b = Telemetry(seed=("chaos", 32, 0), label="gateway")
        assert a.trace_id == b.trace_id

    def test_span_ids_sequential(self):
        telemetry = Telemetry()
        with telemetry.span("one"):
            with telemetry.span("two"):
                pass
        with telemetry.span("three"):
            pass
        assert [s.span_id for s in telemetry.spans] == [1, 2, 3]


class TestSpanTree:
    def test_nesting_sets_parent_ids(self):
        telemetry = Telemetry()
        with telemetry.span("session") as session:
            with telemetry.span("handshake") as handshake:
                with telemetry.span("kex") as kex:
                    pass
        assert session.parent_id is None
        assert handshake.parent_id == session.span_id
        assert kex.parent_id == handshake.span_id
        assert telemetry.children(session) == [handshake]
        assert telemetry.open_spans() == []

    def test_siblings_share_parent(self):
        telemetry = Telemetry()
        with telemetry.span("record") as parent:
            with telemetry.span("cipher"):
                pass
            with telemetry.span("mac"):
                pass
        names = [s.name for s in telemetry.children(parent)]
        assert names == ["cipher", "mac"]

    def test_strict_stack_discipline(self):
        telemetry = Telemetry()
        outer = telemetry.start_span("outer")
        telemetry.start_span("inner")
        with pytest.raises(RuntimeError):
            telemetry.end_span(outer)

    def test_virtual_clock_stamps(self):
        clock = VirtualClock()
        telemetry = Telemetry(clock=clock)
        span = telemetry.start_span("work")
        clock.advance_to(2.5)
        telemetry.end_span(span)
        assert span.start_s == 0.0
        assert span.end_s == 2.5
        assert span.duration_s == 2.5

    def test_exception_still_closes_span(self):
        telemetry = Telemetry()
        with pytest.raises(ValueError):
            with telemetry.span("doomed"):
                raise ValueError("boom")
        assert telemetry.open_spans() == []
        assert telemetry.spans[0].end_s is not None

    def test_events_attach_to_current_span_or_trace(self):
        telemetry = Telemetry()
        telemetry.event("trace-level", detail="a")
        with telemetry.span("work") as span:
            telemetry.event("span-level", detail="b")
        assert [e.name for e in telemetry.events] == ["trace-level"]
        assert [e.name for e in span.events] == ["span-level"]

    def test_attrs_set_and_find(self):
        telemetry = Telemetry()
        with telemetry.span("record", n=42) as span:
            span.set(path="fast")
        found = telemetry.find("record")
        assert found == [span]
        assert span.attrs == {"n": 42, "path": "fast"}


class TestAttributionSinks:
    def test_energy_charges_innermost_span(self):
        telemetry = Telemetry()
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                telemetry.add_energy_mj(3.0)
            telemetry.add_energy_mj(1.0)
        assert inner.energy_mj == 3.0
        assert outer.energy_mj == 1.0
        assert telemetry.total_energy_mj() == 4.0

    def test_unattributed_bucket(self):
        telemetry = Telemetry()
        telemetry.add_energy_mj(2.0)
        telemetry.add_cycles(100.0)
        assert telemetry.unattributed_mj == 2.0
        assert telemetry.unattributed_cycles == 100.0
        assert telemetry.total_energy_mj() == 2.0
        assert telemetry.total_cycles() == 100.0

    def test_sinks_mirror_into_registry(self):
        telemetry = Telemetry()
        with telemetry.span("handshake"):
            telemetry.add_energy_mj(1.5, kind="battery")
            telemetry.add_cycles(1e6, kind="model")
        assert telemetry.registry.value(
            "repro_telemetry_energy_mj_total",
            kind="battery", span="handshake") == 1.5
        assert telemetry.registry.value(
            "repro_telemetry_cycles_total",
            kind="model", span="handshake") == 1e6


class TestProbeSeam:
    def test_disabled_by_default(self):
        assert probe.active is None

    def test_disabled_span_is_shared_null_context(self):
        assert probe.span("anything", n=1) is probe.span("other")
        with probe.span("no-op") as span:
            assert span is None

    def test_disabled_event_is_noop(self):
        probe.event("nothing", detail="ignored")  # must not raise

    def test_activate_restores_previous(self):
        outer = Telemetry(label="outer")
        inner = Telemetry(label="inner")
        with probe.activate(outer):
            assert probe.active is outer
            with probe.activate(inner):
                assert probe.active is inner
            assert probe.active is outer
        assert probe.active is None

    def test_activate_restores_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with probe.activate(telemetry):
                raise RuntimeError("boom")
        assert probe.active is None

    def test_install_uninstall(self):
        telemetry = Telemetry()
        try:
            assert probe.install(telemetry) is telemetry
            assert probe.active is telemetry
            with probe.span("live") as span:
                assert span is telemetry.spans[0]
        finally:
            probe.uninstall()
        assert probe.active is None
