"""TraceContext propagation and the fleet trace store."""

import pytest

from repro.observability.spans import Telemetry
from repro.observability.tracecontext import (
    CTX_PARENT,
    CTX_TRACE,
    FleetTraceStore,
    TraceContext,
    attach,
    baggage_attrs,
    context_of,
)
from repro.protocols.reliable import VirtualClock


class TestTraceContext:
    def test_root_is_pure_function_of_seed(self):
        a = TraceContext.root("journey", "s-1", 2003, session="s-1")
        b = TraceContext.root("journey", "s-1", 2003, session="s-1")
        c = TraceContext.root("journey", "s-2", 2003, session="s-2")
        assert a.trace_id == b.trace_id
        assert a.trace_id != c.trace_id
        assert a.parent_span == 0

    def test_baggage_sorted_and_readable(self):
        ctx = TraceContext.root("j", 1, shard="shard-01", session="s-9")
        assert ctx.baggage == (("session", "s-9"), ("shard", "shard-01"))
        assert ctx.get("shard") == "shard-01"
        assert ctx.get("missing") is None
        assert ctx.get("missing", "x") == "x"

    def test_with_baggage_replaces_and_stays_canonical(self):
        ctx = TraceContext.root("j", 1, shard="a", session="s")
        moved = ctx.with_baggage(shard="b", tier="warm")
        assert moved.trace_id == ctx.trace_id
        assert moved.get("shard") == "b"
        assert moved.get("tier") == "warm"
        assert ctx.get("shard") == "a"  # original untouched
        assert moved.baggage == tuple(sorted(moved.baggage))

    def test_child_of_repoints_parent(self):
        telemetry = Telemetry()
        with telemetry.span("parent") as span:
            ctx = TraceContext.root("j", 1).child_of(span)
            assert ctx.parent_span == span.span_id


class TestWireForm:
    def test_round_trip(self):
        ctx = TraceContext.root("j", 7, session="s-0", shard="shard-02",
                                handset_class="5J")
        assert TraceContext.from_bytes(ctx.to_bytes()) == ctx

    def test_round_trip_empty_baggage(self):
        ctx = TraceContext(trace_id="abcd", parent_span=9)
        assert TraceContext.from_bytes(ctx.to_bytes()) == ctx

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceContext.from_bytes(b"")

    def test_unknown_version_rejected(self):
        raw = TraceContext.root("j", 1).to_bytes()
        with pytest.raises(ValueError):
            TraceContext.from_bytes(bytes([99]) + raw[1:])

    def test_truncation_rejected(self):
        raw = TraceContext.root("j", 1, session="s").to_bytes()
        for cut in (1, len(raw) // 2, len(raw) - 1):
            with pytest.raises(ValueError):
                TraceContext.from_bytes(raw[:cut])

    def test_trailing_bytes_rejected(self):
        raw = TraceContext.root("j", 1).to_bytes()
        with pytest.raises(ValueError):
            TraceContext.from_bytes(raw + b"\x00")


class TestAttach:
    def test_attach_and_recover(self):
        telemetry = Telemetry()
        ctx = TraceContext.root("j", 1, session="s-3", shard="shard-00")
        with telemetry.span("fleet.attach") as span:
            attach(span, ctx)
        assert span.attrs[CTX_TRACE] == ctx.trace_id
        assert span.attrs[CTX_PARENT] == 0
        assert span.attrs["bg.session"] == "s-3"
        assert context_of(span) == ctx

    def test_context_of_plain_span_is_none(self):
        telemetry = Telemetry()
        with telemetry.span("plain") as span:
            pass
        assert context_of(span) is None

    def test_baggage_attrs_for_events(self):
        ctx = TraceContext.root("j", 1, session="s")
        attrs = baggage_attrs(ctx)
        assert attrs[CTX_TRACE] == ctx.trace_id
        assert attrs["bg.session"] == "s"


def _sharded_telemetry():
    """Two shards' worth of spans on one telemetry, interleaved."""
    clock = VirtualClock()
    telemetry = Telemetry(seed=("store-test",), clock=clock)
    ctx = TraceContext.root("j", "s-0", session="s-0")
    with telemetry.span("fleet.attach", shard="shard-00") as span:
        attach(span, ctx)
        with telemetry.span("handshake"):  # inherits shard-00
            pass
    clock.advance_to(1.0)
    with telemetry.span("fleet.recover", shard="shard-01",
                        tier="warm") as span:
        attach(span, ctx.with_baggage(shard="shard-01"))
    with telemetry.span("supervisor.sweep"):  # no shard anywhere
        pass
    return telemetry, ctx


class TestFleetTraceStore:
    def test_partition_inherits_shard_from_ancestors(self):
        telemetry, _ = _sharded_telemetry()
        store = FleetTraceStore.partition(telemetry)
        assert store.streams() == ["fleet", "shard-00", "shard-01"]
        merged = store.merged()
        by_name = {span.name: stream
                   for _t, stream, _id, span in merged}
        assert by_name["handshake"] == "shard-00"
        assert by_name["fleet.recover"] == "shard-01"
        assert by_name["supervisor.sweep"] == "fleet"

    def test_merged_order_is_time_stream_id(self):
        telemetry, _ = _sharded_telemetry()
        store = FleetTraceStore.partition(telemetry)
        rows = [(t, stream, span_id)
                for t, stream, span_id, _span in store.merged()]
        assert rows == sorted(rows)

    def test_journeys_stitch_across_streams(self):
        telemetry, ctx = _sharded_telemetry()
        store = FleetTraceStore.partition(telemetry)
        journeys = store.journeys()
        assert set(journeys) == {ctx.trace_id}
        journey = journeys[ctx.trace_id]
        assert journey.session == "s-0"
        assert journey.shards == ["shard-00", "shard-01"]
        assert journey.tiers == ["warm"]
        assert journey.span_count == 2
        assert store.journey(ctx.trace_id) is not None
        assert store.journey("nope") is None

    def test_render_journey_deterministic(self):
        telemetry, ctx = _sharded_telemetry()
        store = FleetTraceStore.partition(telemetry)
        journey = store.journey(ctx.trace_id)
        text = store.render_journey(journey)
        assert text == store.render_journey(journey)
        assert "shard-00>shard-01" in text
        assert "tier=warm" in text

    def test_add_stream_multi_telemetry_shape(self):
        a = Telemetry(seed=("a",))
        b = Telemetry(seed=("b",))
        with a.span("one"):
            pass
        with b.span("two"):
            pass
        store = FleetTraceStore()
        store.add_telemetry("shard-a", a)
        store.add_telemetry("shard-b", b)
        assert store.streams() == ["shard-a", "shard-b"]
        assert len(store.merged()) == 2
