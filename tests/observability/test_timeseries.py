"""Windowed series, the mergeable quantile sketch, and the registry feed."""

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.observability.timeseries import (
    QuantileSketch,
    WindowedSeries,
    register_series,
)


class TestQuantileSketch:
    def test_quantiles_interpolated(self):
        sketch = QuantileSketch(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            sketch.observe(value)
        assert sketch.total == 4
        assert sketch.sum == 6.5
        # p100 inside the (2, 4] bucket interpolates to its top edge.
        assert sketch.quantile(1.0) == pytest.approx(4.0)
        assert sketch.quantile(0.0) == 0.0
        assert 0.0 < sketch.quantile(0.5) <= 2.0

    def test_empty_sketch_quantile_zero(self):
        assert QuantileSketch().quantile(0.95) == 0.0

    def test_merge_adds_counts(self):
        a = QuantileSketch(bounds=(1.0, 2.0))
        b = QuantileSketch(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.total == 3
        assert a.sum == pytest.approx(7.0)
        # Merging is count addition: quantiles match a one-shot sketch.
        direct = QuantileSketch(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            direct.observe(value)
        for q in (0.25, 0.5, 0.95):
            assert a.quantile(q) == direct.quantile(q)

    def test_merge_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(bounds=(1.0,)).merge(
                QuantileSketch(bounds=(2.0,)))

    def test_count_le_is_strict(self):
        sketch = QuantileSketch(bounds=(0.1, 0.25, 0.5))
        for value in (0.05, 0.2, 0.3, 0.9):
            sketch.observe(value)
        # 0.3 lands in the (0.25, 0.5] bucket, whose top edge exceeds
        # the threshold — strict counting excludes the whole bucket.
        assert sketch.count_le(0.25) == 2
        assert sketch.count_le(0.5) == 3


class TestWindowedSeries:
    def test_slide_must_divide_width(self):
        with pytest.raises(ValueError):
            WindowedSeries("x", 1.0, slide_s=0.3)
        with pytest.raises(ValueError):
            WindowedSeries("x", 1.0, slide_s=2.0)
        with pytest.raises(ValueError):
            WindowedSeries("x", 0.0)

    def test_tumbling_covers_gaps(self):
        series = WindowedSeries("x", 1.0)
        series.inc(0.2, 5.0)
        series.inc(3.7, 2.0)  # windows 1 and 2 are silent, not absent
        windows = series.tumbling()
        assert [w.start_s for w in windows] == [0.0, 1.0, 2.0, 3.0]
        assert [w.sum for w in windows] == [5.0, 0.0, 0.0, 2.0]

    def test_sliding_merges_adjacent_sub_buckets(self):
        series = WindowedSeries("x", 1.0, slide_s=0.5)
        series.inc(0.1, 1.0)
        series.inc(0.6, 2.0)
        series.inc(1.1, 4.0)
        sums = [w.sum for w in series.sliding()]
        # Windows starting at 0.0, 0.5, 1.0 (each one second wide).
        assert sums == [3.0, 6.0, 4.0]

    def test_window_lookup_requires_alignment(self):
        series = WindowedSeries("x", 1.0, slide_s=0.5)
        series.inc(0.7, 1.0)
        assert series.window(0.0).sum == 1.0
        with pytest.raises(ValueError):
            series.window(0.5)  # sub-bucket boundary, not a window start

    def test_boundary_observation_joins_starting_window(self):
        series = WindowedSeries("x", 1.0)
        series.inc(1.0, 3.0)
        assert series.window(1.0).sum == 3.0
        assert series.window(0.0).sum == 0.0

    def test_quantile_tracking_per_window(self):
        series = WindowedSeries("lat", 1.0, track_quantiles=True)
        for value in (0.02, 0.04, 0.2):
            series.observe(0.5, value)
        window = series.window(0.0)
        assert window.sketch.total == 3
        assert window.sketch.quantile(0.5) > 0.0
        d = window.as_dict()
        assert set(d) >= {"start_s", "end_s", "count", "sum",
                          "p50", "p95", "p99"}

    def test_ring_evicts_lowest_index_first(self):
        series = WindowedSeries("x", 1.0, capacity=2)
        series.inc(0.5, 1.0)
        series.inc(1.5, 1.0)
        series.inc(2.5, 1.0)
        assert series.evicted_buckets == 1
        assert [w.start_s for w in series.tumbling()] == [1.0, 2.0]

    def test_inc_zero_is_skipped(self):
        series = WindowedSeries("x", 1.0)
        series.inc(0.5, 0.0)
        assert series.observations == 0
        assert series.tumbling() == []

    def test_deterministic_same_feed_same_windows(self):
        def build():
            series = WindowedSeries("x", 1.0, slide_s=0.5,
                                    track_quantiles=True)
            for step in range(40):
                series.observe(step * 0.13, (step % 7) * 0.01)
            return [w.as_dict() for w in series.tumbling()]

        assert build() == build()


class TestRegistryFeed:
    def test_series_collector_exports_latest_window(self):
        registry = MetricsRegistry()
        series = WindowedSeries("fleet.served", 1.0)
        register_series(registry, [series])
        series.inc(0.2, 4.0)
        series.inc(1.3, 2.0)
        samples = {(name, key): value
                   for name, key, value in registry.samples()}
        key = (("series", "fleet.served"), ("window_start_s", "1.000000"))
        assert samples[("repro_window_sum", key)] == 2.0
        assert samples[("repro_window_count", key)] == 1.0
