"""Energy/cycle attribution: pricing helpers, roll-ups, and the
32-session acceptance reconciliation."""

import pytest

from repro.hardware.battery import Battery
from repro.hardware.cycles import bulk_ipb, handshake_cost, modmult_instructions
from repro.observability.attribution import (
    handshake_cycles,
    modexp_cycles,
    phase_energy_mj,
    reconcile_energy,
    record_cycles,
    span_rollup,
)
from repro.observability.scenario import run_gateway_chaos
from repro.observability.spans import Telemetry


class TestPricingHelpers:
    def test_record_cycles_matches_bulk_model(self):
        assert record_cycles("AES", "SHA1", 1024) == \
            bulk_ipb("AES", "SHA1") * 1024

    def test_handshake_cycles_matches_handshake_model(self):
        expected = handshake_cost(1024, False, resumed=False).total_mi * 1e6
        assert handshake_cycles(rsa_bits=1024) == expected
        assert handshake_cycles(rsa_bits=1024, resumed=True) < expected

    def test_modexp_cycles_square_and_multiply(self):
        # exponent 5 = 0b101: 3 bits, 2 set bits -> 4 multiplies.
        assert modexp_cycles(5, 512) == 4 * modmult_instructions(512)
        assert modexp_cycles(0, 512) == 0.0
        assert modexp_cycles(-3, 512) == 0.0


class TestRollups:
    def _traced(self):
        telemetry = Telemetry()
        with telemetry.span("session"):
            with telemetry.span("handshake"):
                telemetry.add_energy_mj(2.0)
                with telemetry.span("modexp"):
                    telemetry.add_cycles(1e6)
            with telemetry.span("record.encode"):
                telemetry.add_energy_mj(0.5)
        telemetry.add_energy_mj(0.25)  # outside any span
        return telemetry

    def test_span_rollup_self_vs_inclusive(self):
        rows = {row.name: row for row in span_rollup(self._traced())}
        assert rows["handshake"].self_mj == 2.0
        assert rows["handshake"].inclusive_cycles == 1e6
        assert rows["session"].self_mj == 0.0
        assert rows["session"].inclusive_mj == pytest.approx(2.5)
        # Sorted heaviest-inclusive first.
        ordered = [row.name for row in span_rollup(self._traced())]
        assert ordered[0] == "session"

    def test_phase_energy_accounts_for_everything(self):
        telemetry = self._traced()
        phases = phase_energy_mj(telemetry)
        assert phases["handshake"] == pytest.approx(2.0)
        assert phases["record.encode"] == pytest.approx(0.5)
        assert phases["unattributed"] == pytest.approx(0.25)
        assert sum(phases.values()) == pytest.approx(
            telemetry.total_energy_mj())

    def test_nested_phase_counted_once(self):
        telemetry = Telemetry()
        with telemetry.span("handshake"):
            telemetry.add_energy_mj(1.0)
            with telemetry.span("record.encode"):  # nested phase span
                telemetry.add_energy_mj(0.5)
        phases = phase_energy_mj(telemetry)
        # The inner phase is inside the outer phase's inclusive total;
        # it must not be double-counted at the top level.
        assert phases["handshake"] == pytest.approx(1.5)
        assert phases["record.encode"] == pytest.approx(0.0)
        assert sum(phases.values()) == pytest.approx(1.5)


class TestReconciliation:
    def test_simple_reconciliation(self):
        telemetry = Telemetry()
        battery = Battery(capacity_j=1.0)
        with telemetry.span("work"):
            # Mirror what Battery.drain_mj does when probed.
            battery.drain_mj(100.0)
            telemetry.add_energy_mj(100.0, kind="battery")
        result = reconcile_energy(telemetry, [battery])
        assert result.ok
        assert result.attributed_mj == pytest.approx(100.0)
        assert result.battery_drain_mj == pytest.approx(100.0)

    def test_mismatch_detected(self):
        telemetry = Telemetry()
        battery = Battery(capacity_j=1.0)
        battery.drain_mj(100.0)  # drained with telemetry off: unattributed
        result = reconcile_energy(telemetry, [battery])
        assert not result.ok
        assert result.delta_mj == pytest.approx(-100.0)


class TestAcceptanceScenario:
    """The ISSUE acceptance criterion: a seeded 32-session chaos run
    whose per-phase attribution reconciles with the batteries."""

    @pytest.fixture(scope="class")
    def chaos(self):
        return run_gateway_chaos(sessions=32, requests_per_session=4,
                                 fault_rate=0.2, seed=0)

    def test_energy_reconciles_with_battery_drain(self, chaos):
        recon = chaos.reconciliation
        assert recon.ok, (
            f"attributed {recon.attributed_mj} mJ vs battery drain "
            f"{recon.battery_drain_mj} mJ (delta {recon.delta_mj})")
        drained = sum((b.capacity_j - b.remaining_j) * 1000.0
                      for b in chaos.batteries.values())
        assert recon.battery_drain_mj == pytest.approx(drained)
        assert drained > 0.0

    def test_per_phase_rollup_covers_the_total(self, chaos):
        phases = phase_energy_mj(chaos.telemetry)
        total = chaos.telemetry.total_energy_mj()
        assert sum(phases.values()) == pytest.approx(total)
        # The gateway runtime charges radio energy inside admit/serve.
        assert phases["gateway.admit"] + phases["gateway.serve"] > 0.0

    def test_span_taxonomy_present(self, chaos):
        names = {span.name for span in chaos.telemetry.spans}
        assert {"session", "handshake", "kex", "modexp",
                "record.encode", "record.decode",
                "gateway.admit", "gateway.serve"} <= names
        assert chaos.telemetry.open_spans() == []

    def test_every_request_answered(self, chaos):
        assert sum(chaos.counts.values()) == 32 * 4

    def test_registry_unifies_the_ledgers(self, chaos):
        registry = chaos.telemetry.registry
        names = {name for name, _key, _value in registry.samples()}
        assert "repro_gateway_runtime_submitted" in names
        assert "repro_battery_drained_mj" in names
        assert "repro_telemetry_energy_mj_total" in names
        assert registry.value("repro_gateway_runtime_submitted") == 128.0
