"""Deterministic exports: byte-identical JSONL, schema conformance,
Prometheus text, and the human-facing renderings."""

import importlib.util
import json
import pathlib

import pytest

from repro.observability.export import (
    flamegraph_folds,
    prometheus_text,
    rollup_table,
    span_tree,
    to_jsonl,
    write_jsonl,
)
from repro.observability.scenario import run_gateway_chaos
from repro.observability.spans import Telemetry

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _load_schema_checker():
    spec = importlib.util.spec_from_file_location(
        "check_telemetry_schema",
        REPO_ROOT / "tools" / "check_telemetry_schema.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _small_chaos(seed: int = 3):
    return run_gateway_chaos(sessions=3, requests_per_session=2,
                             fault_rate=0.25, seed=seed)


class TestByteDeterminism:
    """The headline satellite: two same-seed chaos runs must export
    byte-identical JSONL."""

    def test_same_seed_same_bytes(self):
        first = to_jsonl(_small_chaos(seed=3).telemetry)
        second = to_jsonl(_small_chaos(seed=3).telemetry)
        assert first == second

    def test_different_seed_different_trace(self):
        first = to_jsonl(_small_chaos(seed=3).telemetry)
        second = to_jsonl(_small_chaos(seed=4).telemetry)
        assert first != second
        assert (json.loads(first.splitlines()[0])["trace_id"]
                != json.loads(second.splitlines()[0])["trace_id"])

    def test_write_jsonl_is_byte_stable_on_disk(self, tmp_path):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        write_jsonl(_small_chaos(seed=3).telemetry, path_a)
        write_jsonl(_small_chaos(seed=3).telemetry, path_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_prometheus_text_deterministic(self):
        assert (prometheus_text(_small_chaos(seed=3).telemetry)
                == prometheus_text(_small_chaos(seed=3).telemetry))


class TestSchema:
    def test_chaos_export_passes_schema_checker(self, tmp_path):
        checker = _load_schema_checker()
        path = tmp_path / "trace.jsonl"
        write_jsonl(_small_chaos().telemetry, path)
        assert checker.check_file(str(path)) == []

    def test_schema_checker_rejects_garbage(self, tmp_path):
        checker = _load_schema_checker()
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"span","id":1}\nnot json\n')
        errors = checker.check_file(str(path))
        assert errors  # wrong first line AND a parse failure
        assert any("trace header" in e for e in errors)

    def test_schema_checker_rejects_dangling_parent(self, tmp_path):
        checker = _load_schema_checker()
        telemetry = Telemetry()
        with telemetry.span("only"):
            pass
        lines = to_jsonl(telemetry).splitlines()
        record = json.loads(lines[1])
        record["parent"] = 99
        lines[1] = json.dumps(record, sort_keys=True,
                              separators=(",", ":"))
        path = tmp_path / "dangling.jsonl"
        path.write_text("\n".join(lines) + "\n")
        errors = checker.check_file(str(path))
        assert any("parent" in e for e in errors)

    def test_header_counts_match_body(self):
        telemetry = _small_chaos().telemetry
        lines = to_jsonl(telemetry).splitlines()
        header = json.loads(lines[0])
        kinds = [json.loads(line)["type"] for line in lines[1:]]
        assert header["spans"] == kinds.count("span")
        assert header["events"] == kinds.count("event")
        assert kinds.count("metric") > 0

    def test_non_json_attrs_coerced_to_strings(self):
        telemetry = Telemetry()
        with telemetry.span("odd", payload=b"\x00bytes", obj=object()):
            pass
        record = json.loads(to_jsonl(telemetry).splitlines()[1])
        assert isinstance(record["attrs"]["payload"], str)
        assert isinstance(record["attrs"]["obj"], str)


class TestHumanRenderings:
    def test_span_tree_shows_hierarchy_and_truncates(self):
        telemetry = _small_chaos().telemetry
        tree = span_tree(telemetry, max_spans=5)
        assert tree.startswith(f"trace {telemetry.trace_id}")
        assert "more spans" in tree
        full = span_tree(telemetry, max_spans=10_000)
        assert "more spans" not in full
        assert "handshake" in full

    def test_flamegraph_folds_weighted_stacks(self):
        telemetry = Telemetry()
        with telemetry.span("gateway.serve"):
            with telemetry.span("record.encode"):
                telemetry.add_energy_mj(0.004)  # 4 uJ
        folds = flamegraph_folds(telemetry)
        assert folds == "gateway.serve;record.encode 4\n"

    def test_rollup_table_lists_every_span_name(self):
        telemetry = _small_chaos().telemetry
        table = rollup_table(telemetry)
        for name in ("gateway.serve", "handshake", "(unattributed)"):
            assert name in table

    def test_cli_telemetry_report_runs(self, capsys, tmp_path):
        from repro.__main__ import main
        jsonl = tmp_path / "cli.jsonl"
        code = main(["telemetry-report", "--sessions", "2",
                     "--requests", "2", "--seed", "5",
                     "--max-spans", "10", "--metrics",
                     "--jsonl", str(jsonl)])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry report" in out
        assert "reconciled" in out
        assert jsonl.exists()
        checker = _load_schema_checker()
        assert checker.check_file(str(jsonl)) == []
