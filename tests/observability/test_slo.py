"""SLO specs, burn-rate math, and the latched multi-window alerting."""

import pytest

from repro.observability.slo import (
    BURN_CAP,
    Alert,
    BurnRatePolicy,
    SloEngine,
    SloSpec,
)


class TestSloSpec:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="uptime")

    def test_objective_must_be_fraction(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                SloSpec(name="x", kind="availability", objective=bad)

    def test_latency_and_energy_need_threshold(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="latency_quantile")
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="energy_budget")

    def test_burn_rate_math(self):
        spec = SloSpec(name="a", kind="availability", objective=0.95)
        assert spec.error_budget == pytest.approx(0.05)
        assert spec.burn(good=100, total=100) == 0.0
        # 5% bad at a 5% budget burns at exactly 1x sustainable.
        assert spec.burn(good=95, total=100) == pytest.approx(1.0)
        assert spec.burn(good=50, total=100) == pytest.approx(10.0)
        assert spec.burn(good=0, total=0) == 0.0

    def test_burn_capped(self):
        spec = SloSpec(name="a", kind="availability", objective=0.999999)
        assert spec.burn(good=0, total=100) == BURN_CAP

    def test_energy_burn(self):
        spec = SloSpec(name="e", kind="energy_budget", threshold=2.0)
        assert spec.burn_budget(consumed=4.0, served=4) == pytest.approx(0.5)
        assert spec.burn_budget(consumed=0.0, served=0) == 0.0
        # Spending with zero served requests is infinitely over budget.
        assert spec.burn_budget(consumed=1.0, served=0) == BURN_CAP

    def test_burn_budget_only_for_energy(self):
        spec = SloSpec(name="a", kind="availability")
        with pytest.raises(ValueError):
            spec.burn_budget(1.0, 1.0)


class TestBurnRatePolicy:
    def test_window_ordering_validated(self):
        with pytest.raises(ValueError):
            BurnRatePolicy(fast_windows=0)
        with pytest.raises(ValueError):
            BurnRatePolicy(fast_windows=4, slow_windows=2)
        with pytest.raises(ValueError):
            BurnRatePolicy(fast_burn=0.0)


def _engine(policies=None):
    return SloEngine(
        [SloSpec(name="avail", kind="availability", objective=0.95)],
        policies if policies is not None else
        [BurnRatePolicy(name="page", fast_windows=1, slow_windows=3,
                        fast_burn=10.0, slow_burn=2.0)])


class TestSloEngine:
    def test_duplicate_names_rejected(self):
        specs = [SloSpec(name="a", kind="availability"),
                 SloSpec(name="a", kind="availability")]
        with pytest.raises(ValueError):
            SloEngine(specs)

    def test_fast_alone_does_not_fire(self):
        engine = _engine()
        # One terrible window after two perfect ones: fast burn is
        # huge but the slow (3-window) average stays at 2/3 * 20 / 3.
        engine.record_window("avail", 0.0, 1.0, good=100, total=100)
        engine.record_window("avail", 1.0, 2.0, good=100, total=100)
        engine.record_window("avail", 2.0, 3.0, good=97, total=100)
        assert engine.alerts == []
        assert not engine.ever_fired("avail")

    def test_fires_when_fast_and_slow_exceeded(self):
        engine = _engine()
        engine.record_window("avail", 0.0, 1.0, good=40, total=100)
        alerts = engine.alerts
        assert len(alerts) == 1
        assert alerts[0].state == "firing"
        assert alerts[0].at_s == 1.0
        assert alerts[0].burn_fast == pytest.approx(12.0)
        assert engine.ever_fired("avail")

    def test_clear_latched_not_rewritten(self):
        engine = _engine()
        engine.record_window("avail", 0.0, 1.0, good=40, total=100)
        engine.record_window("avail", 1.0, 2.0, good=100, total=100)
        states = [alert.state for alert in engine.alerts]
        assert states == ["firing", "cleared"]
        # A second incident appends; the first stays in the ledger.
        engine.record_window("avail", 2.0, 3.0, good=100, total=100)
        engine.record_window("avail", 3.0, 4.0, good=0, total=100)
        states = [alert.state for alert in engine.alerts]
        assert states == ["firing", "cleared", "firing"]

    def test_no_duplicate_firing_while_already_firing(self):
        engine = _engine()
        engine.record_window("avail", 0.0, 1.0, good=0, total=100)
        engine.record_window("avail", 1.0, 2.0, good=0, total=100)
        assert [alert.state for alert in engine.alerts] == ["firing"]

    def test_multiple_policies_independent(self):
        engine = _engine(policies=[
            BurnRatePolicy(name="page", fast_windows=1, slow_windows=2,
                           fast_burn=10.0, slow_burn=2.0,
                           severity="page"),
            BurnRatePolicy(name="ticket", fast_windows=1, slow_windows=2,
                           fast_burn=2.0, slow_burn=0.5,
                           severity="ticket"),
        ])
        engine.record_window("avail", 0.0, 1.0, good=80, total=100)
        # burn 4: the ticket fires, the page does not.
        assert [(a.policy, a.state) for a in engine.alerts] == [
            ("ticket", "firing")]

    def test_summary_shape_and_rounding(self):
        engine = _engine()
        engine.record_window("avail", 0.0, 1.0, good=40, total=100)
        summary = engine.summary()
        spec = summary["specs"]["avail"]
        assert spec["windows"] == 1
        assert spec["attainment"] == pytest.approx(0.4)
        assert spec["max_burn"] == pytest.approx(12.0)
        assert spec["ever_fired"] is True
        assert summary["policies"][0]["name"] == "page"
        assert summary["alerts"][0]["state"] == "firing"
        assert isinstance(summary["alerts"][0], dict)

    def test_alert_as_dict_rounded(self):
        alert = Alert(at_s=1.23456789, slo="a", policy="p",
                      severity="page", state="firing",
                      burn_fast=1.000000049, burn_slow=2.0)
        d = alert.as_dict()
        assert d["at_s"] == 1.234568
        assert d["burn_fast"] == 1.0
