"""The fleet metrics adapter against a seeded two-shard chaos run.

Satellite coverage for :func:`repro.observability.metrics.export_fleet`:
per-shard collector label sets (liveness, journal health, and the
answer ledger summed across incarnations), the recovery-latency
percentile gauges, and the ticket-cache gauges — all read through a
real registry scrape of a finished run, not hand-fed counters.
"""

import pytest

from repro.fleet.scenario import run_failover

SEED = 77


@pytest.fixture(scope="module")
def result():
    return run_failover(sessions=8, shards=2, requests_per_session=3,
                        seed=SEED)


@pytest.fixture(scope="module")
def scrape(result):
    return {(name, key): value
            for name, key, value
            in result.telemetry.registry.samples()}


def _shard_key(name):
    return (("shard", name),)


class TestShardCollectors:
    def test_every_shard_labelled(self, result, scrape):
        names = [shard.name for shard in result.fleet.shards]
        assert names == ["shard-00", "shard-01"]
        for metric in ("repro_fleet_shard_alive",
                       "repro_fleet_shard_sessions",
                       "repro_fleet_shard_crashes",
                       "repro_fleet_checkpoints_written",
                       "repro_fleet_journal_bytes",
                       "repro_fleet_journal_evictions",
                       "repro_fleet_journal_torn_records",
                       "repro_fleet_shard_served",
                       "repro_fleet_shard_degraded",
                       "repro_fleet_shard_shed",
                       "repro_fleet_shard_energy_mj"):
            for name in names:
                assert (metric, _shard_key(name)) in scrape, metric

    def test_answer_ledger_sums_across_incarnations(self, result, scrape):
        for shard in result.fleet.shards:
            ledgers = list(shard.retired_stats) + [shard.runtime.stats]
            assert len(ledgers) >= 2  # the sweep killed every shard
            assert scrape[("repro_fleet_shard_served",
                           _shard_key(shard.name))] == float(
                sum(ledger.served for ledger in ledgers))
            assert scrape[("repro_fleet_shard_energy_mj",
                           _shard_key(shard.name))] == pytest.approx(
                sum(ledger.energy_mj for ledger in ledgers))

    def test_totals_match_fleet_ledger(self, result, scrape):
        totals = result.fleet.runtime_totals()
        served = sum(scrape[("repro_fleet_shard_served", _shard_key(s.name))]
                     for s in result.fleet.shards)
        assert served == totals["served"]

    def test_crash_counts_exported(self, result, scrape):
        crashes = sum(
            scrape[("repro_fleet_shard_crashes", _shard_key(s.name))]
            for s in result.fleet.shards)
        assert crashes == float(result.stats.crashes) > 0


class TestRecoveryGauges:
    def test_percentile_gauges_present_and_ordered(self, result, scrape):
        p50 = scrape[("repro_fleet_recovery_p50_s", ())]
        p95 = scrape[("repro_fleet_recovery_p95_s", ())]
        assert 0.0 < p50 <= p95
        assert p50 == pytest.approx(result.stats.recovery_p50_s())
        assert p95 == pytest.approx(result.stats.recovery_p95_s())

    def test_ticket_cache_gauges(self, result, scrape):
        cache = result.fleet.ticket_cache
        assert scrape[("repro_fleet_ticket_cache_entries", ())] == float(
            len(cache))
        assert scrape[("repro_fleet_ticket_cache_evictions", ())] == float(
            cache.evictions)
        assert scrape[("repro_fleet_ticket_cache_expired", ())] == float(
            cache.expired)


class TestFleetLedger:
    def test_supervisor_counters_exported(self, result, scrape):
        stats = result.stats
        for field, value in (
                ("crashes", stats.crashes),
                ("migrations_warm", stats.migrations_warm),
                ("migrations_cold_resume", stats.migrations_cold_resume),
                ("migrations_cold_full", stats.migrations_cold_full),
                ("shed_recovering", stats.shed_recovering),
                ("recovery_energy_mj", stats.recovery_energy_mj)):
            assert scrape[(f"repro_fleet_{field}", ())] == pytest.approx(
                float(value))

    def test_scrape_deterministic(self, result):
        first = result.telemetry.registry.samples()
        second = result.telemetry.registry.samples()
        assert first == second
