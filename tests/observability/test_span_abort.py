"""Span-stack hygiene when a shard dies mid-span (satellite 2).

A crash is the one event that may close spans out of stack order: the
telemetry layer provides ``abort_span`` / ``abort_where`` to force-
close an open subtree with ``aborted=true``, and ``end_span`` must
then tolerate the owning ``with`` block unwinding over the corpse —
without loosening the strict-discipline error for genuine misuse.
"""

import pytest

from repro.observability.spans import Telemetry


class TestAbortSpan:
    def test_abort_closes_span_and_children(self):
        telemetry = Telemetry()
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                aborted = telemetry.abort_span(outer, reason="crash")
        assert [span.name for span in aborted] == ["inner", "outer"]
        for span in (outer, inner):
            assert span.end_s is not None
            assert span.attrs["aborted"] is True
        assert outer.attrs["reason"] == "crash"

    def test_with_block_unwinds_over_aborted_span(self):
        telemetry = Telemetry()
        # The context managers above already exercised this; assert the
        # stack really is clean and new spans still work.
        with telemetry.span("a") as a:
            telemetry.abort_span(a)
        with telemetry.span("b"):
            pass
        assert telemetry.spans[-1].name == "b"
        assert telemetry.spans[-1].end_s is not None

    def test_abort_requires_open_span(self):
        telemetry = Telemetry()
        with telemetry.span("done") as span:
            pass
        with pytest.raises(RuntimeError):
            telemetry.abort_span(span)

    def test_strict_discipline_still_enforced(self):
        telemetry = Telemetry()
        span = telemetry.start_span("open")
        other = telemetry.start_span("inner")
        with pytest.raises(RuntimeError):
            telemetry.end_span(span)  # not innermost, not aborted
        telemetry.end_span(other)
        telemetry.end_span(span)

    def test_abort_where_outermost_match(self):
        telemetry = Telemetry()
        with telemetry.span("keep"):
            with telemetry.span("shard.work", shard="shard-01") as work:
                with telemetry.span("nested") as nested:
                    aborted = telemetry.abort_where(
                        lambda s: s.attrs.get("shard") == "shard-01",
                        abort_reason="shard-crash")
                assert {s.name for s in aborted} == {"shard.work", "nested"}
                assert work.attrs["abort_reason"] == "shard-crash"
                assert nested.attrs["aborted"] is True
        # The unmatched outer span closed normally.
        keep = telemetry.spans[0]
        assert keep.name == "keep"
        assert "aborted" not in keep.attrs

    def test_abort_where_no_match_is_noop(self):
        telemetry = Telemetry()
        with telemetry.span("a"):
            assert telemetry.abort_where(lambda s: False) == []

    def test_aborted_spans_keep_energy(self):
        telemetry = Telemetry()
        with telemetry.span("charged") as span:
            telemetry.add_energy_mj(1.5, kind="radio")
            telemetry.abort_span(span)
        assert span.energy_mj == pytest.approx(1.5)
