"""Wall-clock guard for the telemetry probe seam.

Same philosophy (and budget) as ``tests/crypto/test_timing_guard.py``:
a deliberately generous tripwire, not a benchmark.  The workload below
finishes in well under a second when the disabled probe points cost
their contracted single ``if`` — but blows the budget if a probe
regresses to allocating spans, formatting attributes, or touching the
registry while telemetry is off.
``benchmarks/bench_telemetry_overhead.py`` measures the actual
percentages.
"""

import time

from repro.observability import probe
from repro.observability.spans import Telemetry
from repro.protocols.ciphersuites import RSA_WITH_AES_SHA
from repro.protocols.kdf import KeyBlock
from repro.protocols.records import CONTENT_APPLICATION, make_record_pair

BUDGET_SECONDS = 8.0


def _record_pair():
    suite = RSA_WITH_AES_SHA

    def material(tag, count):
        return bytes((tag + i) % 256 for i in range(count))

    keys = KeyBlock(
        client_mac_key=material(1, suite.mac_key_bytes),
        server_mac_key=material(2, suite.mac_key_bytes),
        client_cipher_key=material(3, suite.cipher_key_bytes),
        server_cipher_key=material(4, suite.cipher_key_bytes),
        client_iv=material(5, suite.iv_bytes),
        server_iv=material(6, suite.iv_bytes),
    )
    encoder, _ = make_record_pair(suite, keys, is_client=True)
    _, decoder = make_record_pair(suite, keys, is_client=False)
    return encoder, decoder


def test_disabled_probes_within_budget():
    assert probe.active is None
    encoder, decoder = _record_pair()
    payload = b"\xA5" * 256

    start = time.perf_counter()
    for _ in range(2000):
        decoder.decode(encoder.encode(CONTENT_APPLICATION, payload))
    # The cool-path conveniences must also be near-free when disabled.
    for _ in range(100_000):
        probe.span("arq.retransmit", endpoint="a", window=4)
        probe.event("gateway.breaker", origin="x")
    elapsed = time.perf_counter() - start

    assert elapsed < BUDGET_SECONDS, (
        f"disabled-telemetry workload took {elapsed:.1f}s (budget "
        f"{BUDGET_SECONDS}s); a probe point has likely regressed to "
        "doing real work while telemetry is off")


def test_disabled_probe_fleet_path_within_budget():
    """The fleet scenario with the probe seam dark must stay cheap:
    the tracing / checkpoint-context plumbing added for fleetwatch is
    behind the same single-``if`` contract as every other probe
    point, so a dark failover run has the same generous budget."""
    from repro.fleet.scenario import run_failover

    assert probe.active is None
    start = time.perf_counter()
    result = run_failover(sessions=12, shards=3, requests_per_session=4,
                          seed=11, probe_enabled=False)
    elapsed = time.perf_counter() - start

    assert result.telemetry.spans == []
    assert elapsed < BUDGET_SECONDS, (
        f"dark fleet run took {elapsed:.1f}s (budget {BUDGET_SECONDS}s); "
        "the fleet instrumentation has likely regressed to doing real "
        "work while telemetry is off")


def test_disabled_record_path_records_nothing():
    encoder, decoder = _record_pair()
    record = encoder.encode(CONTENT_APPLICATION, b"quiet")
    decoder.decode(record)
    assert probe.active is None  # nothing installed, nothing leaked


def test_enabled_then_disabled_leaves_no_residue():
    encoder, decoder = _record_pair()
    telemetry = Telemetry()
    with probe.activate(telemetry):
        decoder.decode(encoder.encode(CONTENT_APPLICATION, b"loud"))
    spans_after = len(telemetry.spans)
    assert spans_after >= 2  # encode + decode landed in the trace
    # Back to disabled: further traffic must not grow the trace.
    decoder.decode(encoder.encode(CONTENT_APPLICATION, b"quiet"))
    assert len(telemetry.spans) == spans_after
