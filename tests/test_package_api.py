"""Public API surface: every exported name exists and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.crypto",
    "repro.protocols",
    "repro.hardware",
    "repro.attacks",
    "repro.core",
    "repro.analysis",
    "repro.observability",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in package.__all__:
        assert hasattr(package, name), \
            f"{package_name}.__all__ exports missing name {name!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_documented(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__) > 40


@pytest.mark.parametrize("package_name", PACKAGES[1:])
def test_exports_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        item = getattr(package, name)
        if callable(item) and not getattr(item, "__doc__", None):
            undocumented.append(name)
    assert undocumented == []


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_no_accidental_stdlib_crypto_dependency():
    """The reproduction's crypto is from scratch: the *reference*
    modules must not import hashlib/hmac/secrets internally (test
    files may, for cross-checks).

    One deliberate exemption: ``fastpath.py`` delegates whole-message
    hashing to stdlib ``hashlib`` — it is the wall-clock accelerator,
    not the reproduction, and ``tests/crypto/test_fastpath.py`` pins
    it bit-for-bit against the from-scratch reference paths (which
    stay hashlib-free and carry all the instrumentation).
    """
    import pathlib

    crypto_dir = pathlib.Path(importlib.import_module(
        "repro.crypto").__file__).parent
    for path in crypto_dir.glob("*.py"):
        source = path.read_text()
        forbidden = ["import secrets", "import ssl"]
        if path.name != "fastpath.py":
            forbidden += ["import hashlib", "from hashlib"]
        for needle in forbidden:
            assert needle not in source, \
                f"{path.name} uses stdlib crypto ({needle})"
