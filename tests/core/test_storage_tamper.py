"""Secure storage (sealed flash) and tamper response (zeroization)."""

import pytest

from repro.core.keystore import KeyPolicy, KeyUsage, SecureKeyStore, World
from repro.core.secure_storage import (
    FlashDevice,
    SecureStorage,
    StorageTampered,
    theft_scenario,
)
from repro.core.tamper_response import (
    DEFAULT_SENSORS,
    EnvironmentEvent,
    ProbingAttacker,
    TamperMesh,
    TamperResponder,
    glitching_is_subthreshold,
)
from repro.crypto.rng import DeterministicDRBG


@pytest.fixture()
def storage():
    keystore = SecureKeyStore.provision("storage-test")
    return SecureStorage(
        flash=FlashDevice(), keystore=keystore,
        rng=DeterministicDRBG("storage-test"))


class TestSecureStorage:
    def test_roundtrip(self, storage):
        storage.store("certificate", b"device certificate bytes")
        assert storage.load("certificate") == b"device certificate bytes"

    def test_flash_never_holds_plaintext(self, storage):
        storage.store("pin", b"super secret PIN 9876")
        for blob in storage.flash.dump().values():
            assert b"9876" not in blob
            assert b"PIN" not in blob

    def test_records_encrypted_differently(self, storage):
        storage.store("a", b"same plaintext")
        storage.store("b", b"same plaintext")
        dump = storage.flash.dump()
        assert dump["a"] != dump["b"]  # fresh IVs

    def test_tamper_detected(self, storage):
        storage.store("pin", b"1234")
        blob = bytearray(storage.flash.read("pin"))
        blob[18] ^= 0x01
        storage.flash.program("pin", bytes(blob))
        with pytest.raises(StorageTampered, match="authentication"):
            storage.load("pin")

    def test_record_swap_detected(self, storage):
        """Moving a validly sealed blob under another name fails: the
        MAC binds the record name."""
        storage.store("pin", b"1234")
        storage.store("note", b"hello")
        blob = storage.flash.read("pin")
        storage.flash.program("note", blob)
        with pytest.raises(StorageTampered):
            storage.load("note")

    def test_rollback_detected(self, storage):
        storage.store("counter", b"\x03")
        old = storage.flash.read("counter")
        storage.store("counter", b"\x00")
        storage.flash.program("counter", old)
        with pytest.raises(StorageTampered, match="rolled back"):
            storage.load("counter")

    def test_missing_record(self, storage):
        storage.store("x", b"data")
        storage.flash.blobs.clear()
        with pytest.raises(StorageTampered, match="missing"):
            storage.load("x")

    def test_update_then_load_latest(self, storage):
        storage.store("cfg", b"v1")
        storage.store("cfg", b"v2")
        assert storage.load("cfg") == b"v2"

    def test_foreign_device_cannot_unseal(self):
        """Blobs sealed by one device are garbage to another (die-unique
        root keys) — stolen flash is useless in a donor board."""
        victim = SecureStorage(
            flash=FlashDevice(),
            keystore=SecureKeyStore.provision("victim"),
            rng=DeterministicDRBG("v"))
        victim.store("pin", b"1234")
        blob = victim.flash.read("pin")
        donor = SecureStorage(
            flash=FlashDevice(),
            keystore=SecureKeyStore.provision("donor"),
            rng=DeterministicDRBG("d"))
        donor.flash.program("pin", blob)
        donor._versions["pin"] = 1  # even knowing the version...
        with pytest.raises(StorageTampered):
            donor.load("pin")

    def test_theft_scenario(self):
        outcome = theft_scenario()
        assert outcome == {
            "plaintext_visible": False,
            "forge_accepted": False,
            "rollback_accepted": False,
        }


class TestTamperResponse:
    @pytest.fixture()
    def protected(self):
        keystore = SecureKeyStore.provision("tamper-test")
        keystore.install(
            "master", bytes(range(16)),
            KeyPolicy(usages=frozenset({KeyUsage.MAC})))
        responder = TamperResponder(mesh=TamperMesh(), keystore=keystore)
        return keystore, responder

    def test_normal_operation_no_trip(self, protected):
        keystore, responder = protected
        assert not responder.deliver(EnvironmentEvent("voltage", 0.05))
        assert not responder.zeroised
        keystore.mac("master", b"still works", World.SECURE)

    def test_probing_zeroises_keys(self, protected):
        keystore, responder = protected
        attacker = ProbingAttacker()
        outcome = attacker.run(responder, keystore)
        assert outcome["sensors_tripped"]  # mesh caught the campaign
        assert outcome["keys_recovered"] == []
        assert not outcome["root_key_intact"]
        assert responder.zeroised

    def test_unprotected_device_loses_keys(self, protected):
        keystore, _ = protected
        outcome = ProbingAttacker().run(None, keystore)
        assert outcome["keys_recovered"] == ["master"]
        assert outcome["root_key_intact"]

    def test_zeroised_keystore_denies_everything(self, protected):
        keystore, responder = protected
        responder.deliver(EnvironmentEvent("mesh", 1.0))
        from repro.core.keystore import AccessDenied

        with pytest.raises(AccessDenied):
            keystore.mac("master", b"x", World.SECURE)

    def test_big_glitch_caught_small_glitch_passes(self):
        """The layered-defence point: the mesh stops coarse glitching,
        sub-threshold glitches require the algorithmic countermeasure
        (CRT verification, tested in the fault suite)."""
        mesh = TamperMesh()
        assert not glitching_is_subthreshold(
            EnvironmentEvent("voltage", 0.5), mesh)
        assert glitching_is_subthreshold(
            EnvironmentEvent("voltage", 0.1), TamperMesh())

    def test_sensor_catalogue(self):
        kinds = {sensor.kind for sensor in DEFAULT_SENSORS}
        assert kinds == {"voltage", "clock", "temperature", "light", "mesh"}

    def test_response_logged(self, protected):
        _, responder = protected
        responder.deliver(EnvironmentEvent("light", 2.0))
        assert any("light" in entry for entry in responder.response_log)
