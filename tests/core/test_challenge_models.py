"""The §3 challenge models: gap surface, battery life, evolution,
concerns, layers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.battery_life import (
    battery_gap_series,
    figure4_report,
    simulate_transactions,
    transactions_until_empty,
)
from repro.core.concerns import (
    Concern,
    PROFILES,
    coverage_table,
    verify_mechanisms_importable,
)
from repro.core.evolution import (
    EVENTS,
    algorithm_introduction,
    cumulative_revisions,
    domain_cadence,
    events_for,
    mean_revision_interval,
    protocols,
    required_algorithms_by,
)
from repro.core.gap import (
    compute_surface,
    gap_factor,
    max_sustainable_rate_mbps,
    stronger_crypto_demand,
    widening_gap_series,
)
from repro.core.layers import (
    SecurityLayer,
    default_stack,
    dependency_edges,
    validate_stack,
)
from repro.hardware.energy import EnergyModel
from repro.hardware.processors import ARM7, PENTIUM4, STRONGARM_SA1100


class TestGapSurface:
    def test_anchor_point_in_surface(self):
        surface = compute_surface()
        demand = surface.demand(10.0, 1.0)
        # bulk 651.3 + 1 s handshake ~ 58 -> ~709 MIPS
        assert demand == pytest.approx(651.3 + 58.0, abs=1.0)

    def test_desktop_covers_most_embedded_almost_none(self):
        surface = compute_surface()
        assert surface.feasible_fraction(PENTIUM4) > 0.8
        assert surface.feasible_fraction(ARM7) < 0.05
        assert 0.0 < surface.feasible_fraction(STRONGARM_SA1100) < 0.5

    def test_infeasible_points_above_plane(self):
        surface = compute_surface()
        for point in surface.infeasible_for(STRONGARM_SA1100):
            assert point.demand_mips > STRONGARM_SA1100.mips

    def test_unknown_grid_point(self):
        with pytest.raises(KeyError):
            compute_surface().demand(123.0, 456.0)

    def test_sustainable_rate_frontier(self):
        rate = max_sustainable_rate_mbps(STRONGARM_SA1100, latency_s=1.0)
        assert 0.0 < rate < 10.0  # the paper's WLAN scenario is infeasible

    def test_handshake_can_consume_everything(self):
        assert max_sustainable_rate_mbps(ARM7, latency_s=0.1) == 0.0

    def test_gap_factor_above_one_in_wlan_scenario(self):
        assert gap_factor(STRONGARM_SA1100, 10.0, 0.5) > 1.0

    def test_crt_narrows_gap(self):
        plain = gap_factor(STRONGARM_SA1100, 1.0, 0.1, use_crt=False)
        crt = gap_factor(STRONGARM_SA1100, 1.0, 0.1, use_crt=True)
        assert crt < plain

    def test_widening_gap_is_monotone(self):
        """§3.2: data-rate growth outpaces embedded MIPS growth."""
        series = widening_gap_series()
        factors = [factor for _, factor in series]
        # Early years can dip (MIPS growth briefly beats the fixed
        # handshake term); once bulk traffic dominates the gap widens
        # monotonically and ends clearly worse than it started.
        assert factors[2:] == sorted(factors[2:])
        assert factors[-1] > 1.4 * factors[0]

    def test_stronger_crypto_widens_gap(self):
        demands = stronger_crypto_demand()
        values = [demand for _, demand in demands]
        assert values == sorted(values)
        assert values[-1] > 8 * values[0]  # 2048 vs 512 is cubic


class TestBatteryLife:
    def test_figure4_headline(self):
        report = figure4_report()
        assert report.plain_transactions == 726_256
        assert report.secure_transactions == 334_190
        assert report.less_than_half

    def test_simulation_matches_closed_form(self):
        model = EnergyModel()
        for secure in (False, True):
            closed = transactions_until_empty(model, 0.5, secure=secure)
            simulated = simulate_transactions(model, 0.5, secure=secure)
            assert simulated == closed

    def test_scaling_with_battery(self):
        model = EnergyModel()
        small = transactions_until_empty(model, 13.0, secure=True)
        large = transactions_until_empty(model, 26.0, secure=True)
        assert large == pytest.approx(2 * small, abs=1)

    def test_battery_gap_series_declines(self):
        """Demand growth (25 %/yr) beats capacity growth (6.5 %/yr)."""
        series = battery_gap_series()
        supported = [count for _, count in series]
        assert supported[-1] < supported[0]

    def test_battery_gap_closes_if_capacity_wins(self):
        series = battery_gap_series(capacity_growth=0.30,
                                    workload_growth=0.05)
        supported = [count for _, count in series]
        assert supported[-1] > supported[0]


class TestEvolution:
    def test_four_protocols_tracked(self):
        assert set(protocols()) == {"SSL/TLS", "IPSec", "WTLS", "MET"}

    def test_events_sorted(self):
        for protocol in protocols():
            years = [e.year for e in events_for(protocol)]
            assert years == sorted(years)

    def test_cumulative_revisions_monotone(self):
        for protocol in protocols():
            counts = [c for _, c in cumulative_revisions(protocol)]
            assert counts == sorted(counts)
            assert counts[-1] == len(events_for(protocol))

    def test_wireless_churns_faster(self):
        """§3.1: 'the evolutionary trend is much more pronounced ...
        in the wireless domain'."""
        cadence = domain_cadence()
        assert cadence["wireless"] < cadence["wired"]

    def test_aes_introduction_is_june_2002_tls(self):
        """Figure 2's called-out event."""
        event = algorithm_introduction("AES")
        assert event.protocol == "IPSec" or event.year <= 2002.5
        tls_aes = [e for e in events_for("SSL/TLS")
                   if "AES" in e.adds_algorithms]
        assert tls_aes and tls_aes[0].year == 2002.5

    def test_required_algorithms_grow(self):
        assert len(required_algorithms_by(1995.0)) < \
            len(required_algorithms_by(2002.9))
        # AES enters, RC2 is retired by WAP 2.0 (drops tracked too).
        assert "AES" in required_algorithms_by(2002.9)
        assert "RC2" not in required_algorithms_by(2002.9)

    def test_interval_none_for_single_event(self):
        assert mean_revision_interval("nonexistent") is None

    def test_event_domains_valid(self):
        assert all(e.domain in ("wired", "wireless") for e in EVENTS)


class TestConcerns:
    def test_all_seven_profiled(self):
        assert set(PROFILES) == set(Concern)

    def test_every_concern_has_threats_and_mechanism(self):
        for profile in PROFILES.values():
            assert profile.threats
            assert profile.mechanism_modules

    def test_mechanisms_exist(self):
        assert verify_mechanisms_importable() == []

    def test_coverage_table_shape(self):
        rows = coverage_table()
        assert len(rows) == 7
        assert all(len(row) == 3 for row in rows)


class TestLayers:
    def test_default_stack_sound(self):
        assert validate_stack(default_stack()) == []

    def test_dependency_edges_all_resolved(self):
        for _, _, provider in dependency_edges(default_stack()):
            assert provider != "<unsatisfied>"

    def test_reordered_stack_violates(self):
        stack = default_stack()
        reordered = [stack[-1]] + stack[:-1]
        assert validate_stack(reordered)

    def test_missing_layer_detected(self):
        stack = default_stack()
        del stack[1]  # remove the crypto foundation
        violations = validate_stack(stack)
        assert any("crypto-primitives" in v for v in violations)

    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(range(5)))
    def test_property_hardware_must_be_first(self, order):
        """Any permutation that displaces the hardware layer from the
        bottom violates the foundation property."""
        stack = default_stack()
        shuffled = [stack[i] for i in order]
        violations = validate_stack(shuffled)
        if order[0] != 0 or list(order) != sorted(order):
            # Either hardware is not first, or some layer precedes its
            # prerequisites.  Hardware-not-first always violates because
            # every other layer transitively needs it.
            if order[0] != 0:
                assert violations
        else:
            assert violations == []
