"""Keystore, secure boot, and the secure execution environment."""

import pytest

from repro.core.keystore import (
    AccessDenied,
    KeyPolicy,
    KeyUsage,
    SecureKeyStore,
    World,
)
from repro.core.secure_boot import (
    BootStage,
    SecureBootROM,
    VendorSigner,
    expected_measurement,
    reference_chain,
)
from repro.core.secure_execution import (
    InvocationBudgetExceeded,
    MeasurementMismatch,
    SecureExecutionEnvironment,
    SecurityViolation,
    TrustedApplication,
    sign_application,
)
from repro.crypto.rng import DeterministicDRBG
from repro.crypto.rsa import generate_keypair


@pytest.fixture(scope="module")
def vendor():
    return VendorSigner.create(seed=3)


@pytest.fixture()
def keystore(rsa_512):
    store = SecureKeyStore.provision("unit-test-device")
    store.install(
        "identity", rsa_512,
        KeyPolicy(usages=frozenset({KeyUsage.SIGN, KeyUsage.DECRYPT})))
    store.install(
        "session-master", bytes(range(16)),
        KeyPolicy(usages=frozenset({KeyUsage.MAC, KeyUsage.DECRYPT,
                                    KeyUsage.WRAP}),
                  exportable=True))
    return store


@pytest.fixture()
def environment(keystore, vendor):
    return SecureExecutionEnvironment(
        keystore=keystore, installer_key=vendor.public_key,
        invocation_budget=50)


class TestKeyStore:
    def test_secure_world_can_sign(self, keystore, rsa_512):
        signature = keystore.sign("identity", b"msg", World.SECURE)
        rsa_512.public.verify(b"msg", signature)

    def test_normal_world_denied(self, keystore):
        with pytest.raises(AccessDenied):
            keystore.sign("identity", b"msg", World.NORMAL)
        assert keystore.denied_accesses == 1

    def test_usage_policy_enforced(self, keystore):
        with pytest.raises(AccessDenied):
            keystore.mac("identity", b"msg", World.SECURE)  # RSA key, MAC use

    def test_unknown_key(self, keystore):
        with pytest.raises(AccessDenied):
            keystore.sign("ghost", b"msg", World.SECURE)

    def test_mac_operation(self, keystore):
        tag = keystore.mac("session-master", b"data", World.SECURE)
        assert len(tag) == 20

    def test_session_key_derivation_stable(self, keystore):
        a = keystore.unwrap_symmetric("session-master", World.SECURE, "tls")
        b = keystore.unwrap_symmetric("session-master", World.SECURE, "tls")
        c = keystore.unwrap_symmetric("session-master", World.SECURE, "wep")
        assert a == b
        assert a != c

    def test_wrapped_export_import(self, keystore):
        blob = keystore.export_wrapped("session-master", World.SECURE)
        assert blob != bytes(range(16))  # encrypted, not plaintext
        keystore.import_wrapped(
            "restored", blob,
            KeyPolicy(usages=frozenset({KeyUsage.MAC})), World.SECURE)
        assert keystore.mac("restored", b"x", World.SECURE) == \
            keystore.mac("session-master", b"x", World.SECURE)

    def test_non_exportable_key_stays(self, keystore, rsa_512):
        keystore.install(
            "locked", bytes(16),
            KeyPolicy(usages=frozenset({KeyUsage.WRAP}), exportable=False))
        with pytest.raises(AccessDenied):
            keystore.export_wrapped("locked", World.SECURE)

    def test_import_needs_secure_world(self, keystore):
        blob = keystore.export_wrapped("session-master", World.SECURE)
        with pytest.raises(AccessDenied):
            keystore.import_wrapped(
                "x", blob, KeyPolicy(usages=frozenset()), World.NORMAL)

    def test_root_key_device_unique(self):
        a = SecureKeyStore.provision("device-a")
        b = SecureKeyStore.provision("device-b")
        assert a.root_key != b.root_key


class TestSecureBoot:
    def test_genuine_chain_boots(self, vendor):
        rom = SecureBootROM(vendor_key=vendor.public_key)
        report = rom.boot(reference_chain(vendor))
        assert report.succeeded
        assert report.stages_verified == ["bootloader", "os-kernel",
                                          "baseband"]

    def test_measurement_is_deterministic(self, vendor):
        chain = reference_chain(vendor)
        rom = SecureBootROM(vendor_key=vendor.public_key)
        report = rom.boot(chain)
        assert report.measurement == expected_measurement(chain)

    def test_tampered_image_halts(self, vendor):
        chain = reference_chain(vendor)
        bad = BootStage(chain[1].name, chain[1].image + b"!",
                        chain[1].signature)
        rom = SecureBootROM(vendor_key=vendor.public_key)
        report = rom.boot([chain[0], bad, chain[2]])
        assert not report.succeeded
        assert report.stages_verified == ["bootloader"]
        assert "os-kernel" in report.failure

    def test_foreign_signature_rejected(self, vendor):
        impostor = VendorSigner.create(seed=99)
        foreign_stage = impostor.sign_stage("bootloader", b"evil loader")
        rom = SecureBootROM(vendor_key=vendor.public_key)
        assert not rom.boot([foreign_stage]).succeeded

    def test_measurement_distinguishes_chains(self, vendor):
        chain = reference_chain(vendor)
        variant = [chain[0],
                   vendor.sign_stage("os-kernel", b"KRN v2"),
                   chain[2]]
        assert expected_measurement(chain) != expected_measurement(variant)

    def test_reordered_chain_changes_measurement(self, vendor):
        chain = reference_chain(vendor)
        reordered = [chain[1], chain[0], chain[2]]
        assert expected_measurement(chain) != \
            expected_measurement(reordered)


class TestSecureExecution:
    def test_normal_app_runs(self, environment):
        app = TrustedApplication("game", b"tetris", lambda api: "score")
        environment.install(app)
        assert environment.invoke("game") == "score"

    def test_normal_app_cannot_touch_keys(self, environment):
        app = TrustedApplication(
            "sneaky", b"sneaky", lambda api: api.sign("identity", b"x"))
        environment.install(app)
        with pytest.raises(SecurityViolation):
            environment.invoke("sneaky")
        assert environment.violations_by("sneaky")

    def test_signed_app_in_secure_world_uses_keys(self, environment, vendor,
                                                  rsa_512):
        app = sign_application(
            vendor.key, "wallet", b"wallet v1",
            lambda api: api.sign("identity", b"pay"))
        environment.install(app, world=World.SECURE)
        signature = environment.invoke("wallet")
        rsa_512.public.verify(b"pay", signature)

    def test_unsigned_secure_install_rejected(self, environment):
        rogue = TrustedApplication("rogue", b"rogue", lambda api: None,
                                   signature=b"\x00" * 64)
        with pytest.raises(SecurityViolation):
            environment.install(rogue, world=World.SECURE)

    def test_patched_app_refused(self, environment, vendor):
        app = sign_application(vendor.key, "bank", b"bank v1",
                               lambda api: "ok")
        environment.install(app, world=World.SECURE)
        app.payload = b"bank v1 PATCHED"
        with pytest.raises(MeasurementMismatch):
            environment.invoke("bank")

    def test_invocation_budget(self, environment):
        app = TrustedApplication("spinner", b"spin", lambda api: None)
        environment.install(app)
        for _ in range(environment.invocation_budget):
            environment.invoke("spinner")
        with pytest.raises(InvocationBudgetExceeded):
            environment.invoke("spinner")

    def test_unknown_app(self, environment):
        with pytest.raises(SecurityViolation):
            environment.invoke("ghost")

    def test_session_key_service(self, environment, vendor):
        app = sign_application(
            vendor.key, "vpn", b"vpn v1",
            lambda api: api.session_key("session-master", "esp"))
        environment.install(app, world=World.SECURE)
        key = environment.invoke("vpn")
        assert len(key) == 16

    def test_world_introspection(self, environment, vendor):
        environment.install(TrustedApplication("n", b"n", lambda api: None))
        app = sign_application(vendor.key, "s", b"s", lambda api: None)
        environment.install(app, world=World.SECURE)
        assert environment.world_of("n") is World.NORMAL
        assert environment.world_of("s") is World.SECURE
