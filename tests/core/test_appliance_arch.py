"""The composed appliance and the Figure 6 base architecture."""

import pytest

from repro.core.appliance import (
    ApplianceLocked,
    provision_appliance,
)
from repro.core.base_architecture import (
    SecureMemory,
    reference_architecture,
)
from repro.core.keystore import World
from repro.core.secure_boot import BootStage
from repro.hardware.workloads import BulkWorkload, HandshakeWorkload


class TestBaseArchitecture:
    def test_engine_used_when_capable(self):
        architecture = reference_architecture(with_engine=True)
        architecture.execute(BulkWorkload(cipher="3DES"))
        assert architecture.engine_executions == 1
        assert architecture.software_executions == 0

    def test_software_fallback_for_unknown_cipher(self):
        # RC2 is not in the reference accelerator's algorithm set, so
        # the §3.1 flexibility fallback must route it to software.
        architecture = reference_architecture(with_engine=True)
        architecture.execute(BulkWorkload(cipher="RC2"))
        assert architecture.software_executions == 1
        assert architecture.engine_executions == 0

    def test_engine_beats_software(self):
        with_engine = reference_architecture(with_engine=True)
        software_only = reference_architecture(with_engine=False)
        workload = BulkWorkload(kilobytes=64.0, packets=50)
        assert with_engine.execute(workload).time_s < \
            software_only.execute(workload).time_s

    def test_firmware_api_services(self):
        architecture = reference_architecture()
        assert len(architecture.api.random_bytes(16)) == 16
        report = architecture.api.run_handshake(HandshakeWorkload())
        assert report.time_s > 0

    def test_secure_memory_world_enforcement(self):
        memory = SecureMemory()
        memory.write(0, b"key material", World.SECURE)
        assert memory.read(0, World.SECURE) == b"key material"
        with pytest.raises(PermissionError):
            memory.read(0, World.NORMAL)
        with pytest.raises(PermissionError):
            memory.write(4, b"x", World.NORMAL)
        assert memory.violations == 2

    def test_secure_memory_bounds(self):
        memory = SecureMemory(size_bytes=8)
        with pytest.raises(ValueError):
            memory.write(5, b"too much data", World.SECURE)


class TestApplianceLifecycle:
    def test_provision_boot_unlock(self):
        device = provision_appliance(seed=21)
        report = device.boot()
        assert report.succeeded
        assert device.unlock("owner",
                             device._finger_simulator.read("owner"))

    def test_services_locked_before_boot(self):
        device = provision_appliance(seed=22)
        with pytest.raises(ApplianceLocked):
            device.unlock("owner", device._finger_simulator.read("owner"))
        with pytest.raises(ApplianceLocked):
            device.run_secure_transaction()

    def test_services_locked_before_unlock(self):
        device = provision_appliance(seed=23)
        device.boot()
        with pytest.raises(ApplianceLocked):
            device.run_secure_transaction()

    def test_impostor_cannot_unlock(self):
        device = provision_appliance(seed=24)
        device.boot()
        assert not device.unlock(
            "owner", device._finger_simulator.read("intruder"))
        with pytest.raises(ApplianceLocked):
            device.run_secure_transaction()

    def test_tampered_firmware_bricks_secure_services(self):
        device = provision_appliance(seed=25)
        stage = device.boot_chain[1]
        device.boot_chain[1] = BootStage(
            stage.name, stage.image + b"rootkit", stage.signature)
        report = device.boot()
        assert not report.succeeded
        with pytest.raises(ApplianceLocked):
            device.unlock("owner", device._finger_simulator.read("owner"))

    def test_transaction_drains_battery(self, appliance):
        before = appliance.platform.battery.remaining_j
        report = appliance.run_secure_transaction(kilobytes=5.0, packets=4)
        assert report.time_s > 0
        assert appliance.platform.battery.remaining_j < before

    def test_layer_stack_sound(self, appliance):
        assert appliance.layer_stack_violations() == []

    def test_tls_config_requires_unlock(self, ca):
        device = provision_appliance(seed=26, ca=ca)
        device.boot()
        with pytest.raises(ApplianceLocked):
            device.tls_client_config(ca)

    def test_end_to_end_secure_session(self, ca, server_credentials):
        """The appliance opens a real mini-TLS session to a server."""
        from repro.protocols.handshake import ServerConfig
        from repro.protocols.tls import connect
        from repro.crypto.rng import DeterministicDRBG

        device = provision_appliance(seed=27, ca=ca)
        device.boot()
        device.unlock("owner", device._finger_simulator.read("owner"))
        key, cert = server_credentials
        server = ServerConfig(rng=DeterministicDRBG("appl-srv"),
                              certificate=cert, private_key=key)
        client_cfg = device.tls_client_config(
            ca, expected_server="server.example")
        conn_c, conn_s = connect(client_cfg, server)
        conn_c.send(b"buy 1 ringtone")
        assert conn_s.receive() == b"buy 1 ringtone"

    def test_device_certificate_issued(self, ca):
        device = provision_appliance(seed=28, ca=ca)
        assert device.certificate is not None
        ca.validate(device.certificate, now=0,
                    expected_subject="handset-0001")

    def test_keystore_populated(self, appliance):
        assert "device-identity-key" in appliance.keystore
        assert "drm-device-key" in appliance.keystore
