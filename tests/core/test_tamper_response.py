"""Tamper-response boundaries: sensor thresholds, attacker outcomes.

Dedicated coverage for :mod:`repro.core.tamper_response` — the exact
sensor-envelope boundary semantics (a sensor trips on ``>`` its
threshold, never ``==``), the :class:`ProbingAttacker` payoff with and
without a responder, and zeroise idempotence — complementing the
storage-centric tests in ``test_storage_tamper.py``.
"""

from __future__ import annotations

import pytest

from repro.core.keystore import KeyPolicy, KeyUsage, SecureKeyStore
from repro.core.tamper_response import (
    DEFAULT_SENSORS,
    EnvironmentEvent,
    ProbingAttacker,
    TamperMesh,
    TamperResponder,
    glitching_is_subthreshold,
)


def _armed_responder():
    keystore = SecureKeyStore.provision("boundary-test")
    keystore.install(
        "k1", bytes(range(16)),
        KeyPolicy(usages=frozenset({KeyUsage.MAC})))
    return keystore, TamperResponder(mesh=TamperMesh(), keystore=keystore)


# -- threshold boundaries ----------------------------------------------------


@pytest.mark.parametrize("sensor", DEFAULT_SENSORS,
                         ids=[s.kind for s in DEFAULT_SENSORS])
def test_exactly_at_threshold_does_not_trip(sensor):
    """The envelope is exclusive: magnitude == threshold stays inside
    (the comparison is strict ``>``), so the most aggressive *safe*
    glitch rides exactly on the threshold."""
    mesh = TamperMesh()
    event = EnvironmentEvent(sensor.kind, sensor.threshold)
    assert not mesh.evaluate(event)
    assert mesh.trips == []
    assert glitching_is_subthreshold(event, TamperMesh())


@pytest.mark.parametrize("sensor", DEFAULT_SENSORS,
                         ids=[s.kind for s in DEFAULT_SENSORS])
def test_just_above_threshold_trips(sensor):
    mesh = TamperMesh()
    event = EnvironmentEvent(sensor.kind, sensor.threshold + 1e-9)
    assert mesh.evaluate(event)
    assert mesh.trips == [event]
    assert not glitching_is_subthreshold(event, TamperMesh())


def test_negative_excursions_trip_on_absolute_magnitude():
    mesh = TamperMesh()
    assert mesh.evaluate(EnvironmentEvent("voltage", -0.4))  # |-0.4| > 0.3
    assert not TamperMesh().evaluate(EnvironmentEvent("voltage", -0.2))


def test_unknown_event_kind_never_trips():
    mesh = TamperMesh()
    assert not mesh.evaluate(EnvironmentEvent("cosmic-ray", 1e9))
    assert mesh.trips == []


def test_mesh_sensor_has_zero_tolerance():
    """The active shield is binary: any continuity break (> 0) trips."""
    assert TamperMesh().evaluate(EnvironmentEvent("mesh", 1e-12))
    assert not TamperMesh().evaluate(EnvironmentEvent("mesh", 0.0))


# -- attacker vs responder ---------------------------------------------------


def test_probing_attacker_against_meshed_device_gets_nothing():
    keystore, responder = _armed_responder()
    outcome = ProbingAttacker().run(responder, keystore)
    # Decapsulation tripped sensors before the probe landed:
    assert outcome["sensors_tripped"] == ["temperature", "light", "mesh"]
    assert outcome["keys_recovered"] == []
    assert not outcome["root_key_intact"]
    assert responder.zeroised


def test_probing_attacker_against_bare_device_recovers_keys():
    keystore, _ = _armed_responder()
    outcome = ProbingAttacker().run(None, keystore)
    assert outcome["keys_recovered"] == ["k1"]
    assert outcome["root_key_intact"]


def test_subthreshold_campaign_never_triggers_response():
    keystore, responder = _armed_responder()
    quiet = ProbingAttacker(campaign=(
        EnvironmentEvent("temperature", 60.0),   # exactly at threshold
        EnvironmentEvent("voltage", 0.3),        # exactly at threshold
        EnvironmentEvent("clock", 0.49),         # just inside
    ))
    outcome = quiet.run(responder, keystore)
    assert outcome["sensors_tripped"] == []
    assert outcome["keys_recovered"] == ["k1"]   # nothing zeroised...
    assert not responder.zeroised                # ...the mesh saw nothing


def test_zeroise_is_idempotent_and_always_logged():
    keystore, responder = _armed_responder()
    assert responder.deliver(EnvironmentEvent("light", 2.0))
    root_after_first = bytes(keystore.root_key)
    assert responder.deliver(EnvironmentEvent("light", 3.0))
    assert keystore.root_key == root_after_first  # still all-zero
    assert not any(keystore.root_key)
    assert len(responder.response_log) == 2      # every trip logged
    assert len(responder.mesh.trips) == 2
