"""The appliance's integrated defence subsystems (storage, tamper)."""

import pytest

from repro.core.appliance import provision_appliance
from repro.core.keystore import AccessDenied, World
from repro.core.secure_storage import StorageTampered
from repro.core.tamper_response import EnvironmentEvent, ProbingAttacker


class TestApplianceStorage:
    def test_provisioned_with_storage(self, appliance):
        assert appliance.storage is not None
        appliance.storage.store("wallpaper-setting", b"beach.jpg")
        assert appliance.storage.load("wallpaper-setting") == b"beach.jpg"

    def test_flash_dump_reveals_nothing(self, appliance):
        appliance.storage.store("owner-pin", b"PIN:2468")
        for blob in appliance.storage.flash.dump().values():
            assert b"2468" not in blob

    def test_flash_tamper_detected(self, appliance):
        appliance.storage.store("settings", b"v1 settings")
        blob = bytearray(appliance.storage.flash.read("settings"))
        blob[25] ^= 0x80
        appliance.storage.flash.program("settings", bytes(blob))
        with pytest.raises(StorageTampered):
            appliance.storage.load("settings")


class TestApplianceTamperResponse:
    def test_probing_bricked_device(self):
        device = provision_appliance(seed=71)
        device.boot()
        outcome = ProbingAttacker().run(device.tamper, device.keystore)
        # Every provisioned key is gone before the probe lands.
        assert outcome["keys_recovered"] == []
        with pytest.raises(AccessDenied):
            device.keystore.sign("device-identity-key", b"x", World.SECURE)

    def test_benign_environment_keeps_keys(self):
        device = provision_appliance(seed=72)
        device.boot()
        device.tamper.deliver(EnvironmentEvent("temperature", 20.0))
        assert not device.tamper.zeroised
        assert "device-identity-key" in device.keystore

    def test_zeroization_kills_sealed_storage_too(self):
        """Zeroising the root key makes every sealed record unreadable —
        defence in depth for stolen-then-probed devices."""
        device = provision_appliance(seed=73)
        device.boot()
        device.storage.store("secret", b"mission data")
        device.tamper.deliver(EnvironmentEvent("mesh", 1.0))
        # The storage keys were derived from the (now zeroed) root at
        # provisioning; a *fresh* storage instance on the zeroed
        # keystore cannot unseal old records.
        from repro.core.secure_storage import SecureStorage
        from repro.crypto.rng import DeterministicDRBG

        post_attack = SecureStorage(
            flash=device.storage.flash, keystore=device.keystore,
            rng=DeterministicDRBG("post"))
        post_attack._versions["secret"] = 1
        with pytest.raises(StorageTampered):
            post_attack.load("secret")
