"""Battery-aware adaptation and the malware filter."""

import pytest

from repro.core.battery_aware import (
    BALANCED,
    ECONOMY,
    FULL_STRENGTH,
    BatteryAwarePolicy,
    MissionSimulator,
    compare_policies,
)
from repro.core.keystore import SecureKeyStore, World
from repro.core.malware_filter import (
    DEFAULT_SIGNATURES,
    MalwareDetected,
    MalwareFilter,
    Signature,
    install_with_scan,
)
from repro.core.secure_boot import VendorSigner
from repro.core.secure_execution import (
    SecureExecutionEnvironment,
    TrustedApplication,
)
from repro.hardware.accelerators import CryptoAccelerator
from repro.hardware.battery import Battery
from repro.hardware.processors import ARM7


class TestBatteryAwarePolicy:
    def test_full_strength_when_fresh(self):
        policy = BatteryAwarePolicy()
        assert policy.choose_suite(1.0) == FULL_STRENGTH

    def test_steps_down_with_charge(self):
        policy = BatteryAwarePolicy()
        assert policy.choose_suite(0.4) == BALANCED
        assert policy.choose_suite(0.1) == ECONOMY

    def test_minimum_strength_floor(self):
        policy = BatteryAwarePolicy(minimum_strength_bits=100)
        # ECONOMY (64-bit) is below the floor; the policy must hold at
        # a stronger suite even when nearly empty.
        choice = policy.choose_suite(0.05)
        assert choice.strength_bits >= 100

    def test_mission_uses_ladder(self):
        simulator = MissionSimulator(battery=Battery(100.0))
        report = simulator.run(BatteryAwarePolicy())
        assert len(report.suites_used) >= 2  # stepped down at least once
        assert report.transactions_completed > 0

    def test_resumption_reduces_handshakes(self):
        per_transaction = BatteryAwarePolicy(
            resume_sessions=False, transactions_per_session=1)
        amortised = BatteryAwarePolicy(
            resume_sessions=True, transactions_per_session=20)
        no_resume = MissionSimulator(battery=Battery(100.0)).run(
            per_transaction)
        with_resume = MissionSimulator(battery=Battery(100.0)).run(
            amortised)
        assert with_resume.handshakes_performed < \
            no_resume.handshakes_performed
        assert with_resume.transactions_completed > \
            no_resume.transactions_completed

    def test_policy_comparison_dominance(self):
        outcomes = compare_policies(battery_kj=0.1)
        naive = outcomes["naive (full handshake per transaction)"]
        resumption = outcomes["resumption only"]
        adaptive = outcomes["battery-aware (resumption + suite adaptation)"]
        assert naive < resumption <= adaptive
        assert adaptive > 2 * naive  # integer-factor lifetime gain

    def test_accelerator_extends_mission(self):
        software = MissionSimulator(battery=Battery(50.0))
        accelerated = MissionSimulator(
            battery=Battery(50.0), accelerator=CryptoAccelerator(ARM7))
        policy = BatteryAwarePolicy()
        assert accelerated.run(policy).transactions_completed > \
            software.run(policy).transactions_completed


class TestMalwareFilter:
    @pytest.fixture()
    def environment(self):
        vendor = VendorSigner.create(seed=60)
        return SecureExecutionEnvironment(
            keystore=SecureKeyStore.provision("mf-device"),
            installer_key=vendor.public_key)

    def test_clean_app_installs(self, environment):
        scanner = MalwareFilter()
        app = TrustedApplication("calc", b"harmless calculator",
                                 lambda api: 42)
        verdict = install_with_scan(environment, scanner, app)
        assert verdict.clean
        assert environment.invoke("calc") == 42

    def test_signature_match_refused(self, environment):
        scanner = MalwareFilter()
        worm = TrustedApplication(
            "free-game", b"fun game \xde\xadCABIR spreading code",
            lambda api: None)
        with pytest.raises(MalwareDetected, match="Cabir"):
            install_with_scan(environment, scanner, worm)
        assert ("free-game", scanner.quarantine[0][1]) == \
            scanner.quarantine[0]

    def test_heuristics_catch_keystore_probe(self, environment):
        scanner = MalwareFilter()
        trojan = TrustedApplication(
            "wallpaper", b"pretty pictures + read device-identity-key",
            lambda api: None)
        with pytest.raises(MalwareDetected, match="heuristics"):
            install_with_scan(environment, scanner, trojan)

    def test_single_weak_heuristic_passes(self, environment):
        """One low-score trigger stays under the threshold (precision:
        we do not block every app that mentions a busy loop)."""
        scanner = MalwareFilter()
        app = TrustedApplication(
            "game-loop", b"renders in a busy loop each frame",
            lambda api: "ok")
        verdict = install_with_scan(environment, scanner, app)
        assert verdict.clean
        assert verdict.heuristic_score == 1

    def test_signature_update_path(self, environment):
        scanner = MalwareFilter()
        new_family = b"\x99NEWWORM\x99"
        app = TrustedApplication("carrier", b"data " + new_family,
                                 lambda api: None)
        # Before the update the sample passes...
        assert scanner.scan(app.payload).clean
        scanner.add_signature(Signature("NewWorm", new_family))
        # ...after it, the same sample is refused.
        with pytest.raises(MalwareDetected):
            install_with_scan(environment, scanner, app)

    def test_quarantined_app_not_installed(self, environment):
        scanner = MalwareFilter()
        worm = TrustedApplication("w", DEFAULT_SIGNATURES[0].pattern,
                                  lambda api: None)
        with pytest.raises(MalwareDetected):
            install_with_scan(environment, scanner, worm)
        from repro.core.secure_execution import SecurityViolation

        with pytest.raises(SecurityViolation):
            environment.invoke("w")

    def test_scan_counter(self):
        scanner = MalwareFilter()
        scanner.scan(b"a")
        scanner.scan(b"b")
        assert scanner.scans == 2
