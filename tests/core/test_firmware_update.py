"""OTA firmware updates: authenticity, anti-rollback, atomicity."""

import pytest

from repro.core.firmware_update import (
    FirmwarePackage,
    UpdateAgent,
    UpdateRejected,
    build_package,
)
from repro.core.secure_boot import (
    SecureBootROM,
    VendorSigner,
    reference_chain,
)
from repro.crypto.registry import default_registry
from repro.protocols.ciphersuites import suites_for_registry


@pytest.fixture()
def vendor():
    return VendorSigner.create(seed=44)


@pytest.fixture()
def device(vendor):
    chain = reference_chain(vendor)
    registry = default_registry()
    agent = UpdateAgent(vendor_public=vendor.public_key,
                        boot_chain=chain, registry=registry)
    rom = SecureBootROM(vendor_key=vendor.public_key)
    return agent, rom, registry


class TestFirmwareUpdate:
    def test_update_applies_and_boots(self, vendor, device):
        agent, rom, _ = device
        package = build_package(
            vendor, version=2,
            stage_images=[("os-kernel", b"KRN v2: now with AES")],
            enables_algorithms=("AES",))
        agent.apply(package)
        assert agent.installed_version == 2
        report = rom.boot(agent.boot_chain)
        assert report.succeeded  # re-signed stages pass measured boot
        assert any(stage.image == b"KRN v2: now with AES"
                   for stage in agent.boot_chain)

    def test_update_unlocks_aes_negotiation(self, vendor, device):
        """The Figure 2 story end to end: ship without AES, update,
        negotiate AES."""
        agent, _, registry = device
        before = {suite.name for suite in suites_for_registry(registry)}
        assert "RSA_WITH_AES_128_CBC_SHA" not in before
        agent.apply(build_package(
            vendor, version=2,
            stage_images=[("os-kernel", b"KRN v2")],
            enables_algorithms=("AES",)))
        after = {suite.name for suite in suites_for_registry(registry)}
        assert "RSA_WITH_AES_128_CBC_SHA" in after

    def test_foreign_vendor_rejected(self, device):
        agent, _, _ = device
        impostor = VendorSigner.create(seed=99)
        package = build_package(
            impostor, version=2,
            stage_images=[("os-kernel", b"evil kernel")])
        with pytest.raises(UpdateRejected, match="signature"):
            agent.apply(package)
        assert agent.installed_version == 1

    def test_rollback_rejected(self, vendor, device):
        agent, _, _ = device
        agent.apply(build_package(
            vendor, version=3, stage_images=[("os-kernel", b"KRN v3")]))
        old = build_package(
            vendor, version=2, stage_images=[("os-kernel", b"KRN v2")])
        with pytest.raises(UpdateRejected, match="rollback"):
            agent.apply(old)
        assert agent.installed_version == 3

    def test_same_version_rejected(self, vendor, device):
        agent, _, _ = device
        package = build_package(
            vendor, version=1, stage_images=[("os-kernel", b"KRN v1b")])
        with pytest.raises(UpdateRejected, match="rollback"):
            agent.apply(package)

    def test_tampered_manifest_rejected(self, vendor, device):
        agent, _, _ = device
        good = build_package(
            vendor, version=2, stage_images=[("os-kernel", b"KRN v2")])
        tampered = FirmwarePackage(
            version=5,  # attacker bumps the version field
            stage_images=good.stage_images,
            enables_algorithms=good.enables_algorithms,
            stage_signatures=good.stage_signatures,
            package_signature=good.package_signature)
        with pytest.raises(UpdateRejected, match="signature"):
            agent.apply(tampered)

    def test_tampered_stage_rejected_atomically(self, vendor, device):
        """A package whose second stage is corrupt must not apply its
        first stage either."""
        agent, _, _ = device
        good = build_package(
            vendor, version=2,
            stage_images=[("bootloader", b"BL v2"),
                          ("os-kernel", b"KRN v2")])
        images = list(good.stage_images)
        images[1] = ("os-kernel", b"KRN v2 CORRUPTED")
        tampered = FirmwarePackage(
            version=2, stage_images=tuple(images),
            enables_algorithms=(), stage_signatures=good.stage_signatures,
            package_signature=good.package_signature)
        original_chain = [stage.image for stage in agent.boot_chain]
        with pytest.raises(UpdateRejected):
            agent.apply(tampered)
        assert [stage.image for stage in agent.boot_chain] == \
            original_chain

    def test_unknown_stage_rejected(self, vendor, device):
        agent, _, _ = device
        package = build_package(
            vendor, version=2,
            stage_images=[("nonexistent-stage", b"???")])
        with pytest.raises(UpdateRejected, match="unknown stage"):
            agent.apply(package)

    def test_history_recorded(self, vendor, device):
        agent, _, _ = device
        agent.apply(build_package(
            vendor, version=2, stage_images=[("os-kernel", b"v2")]))
        agent.apply(build_package(
            vendor, version=3, stage_images=[("os-kernel", b"v3")]))
        assert agent.history == [2, 3]
