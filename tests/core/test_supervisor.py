"""Appliance fault supervisor: ladder walk, brownouts, tamper recovery.

The supervisor must convert the three §3.3–§3.4 hardware failure
classes (engine death, battery sag, confirmed tamper) into *recorded*
degraded modes — never uncaught exceptions — and restore capability
when faults clear.  Every schedule here is seeded/scheduled, so the
:class:`~repro.core.supervisor.DegradationReport` contents are exact.
"""

from __future__ import annotations

import pytest

from repro.core.appliance import provision_appliance
from repro.core.battery_aware import (
    BALANCED,
    ECONOMY,
    FULL_STRENGTH,
    BatteryAwarePolicy,
)
from repro.core.supervisor import (
    ApplianceSupervisor,
    DegradationReport,
    SupervisorGaveUp,
    supervise_appliance,
)
from repro.core.tamper_response import EnvironmentEvent
from repro.hardware.accelerators import (
    SoftwareEngine,
    architecture_ladder,
)
from repro.hardware.battery import Battery
from repro.hardware.faults import (
    AcceleratorFailure,
    BatteryBrownout,
    FaultPlan,
    FlakyEngine,
    GlitchCampaign,
    wrap_engines,
)
from repro.hardware.processors import ARM7
from repro.hardware.workloads import BulkWorkload
from repro.protocols.reliable import VirtualClock

WORKLOAD = BulkWorkload(kilobytes=1.0, cipher="AES", mac="SHA1")


def _flaky_supervisor(fail_at_s, recover_at_s=None, probe_interval_s=1.0,
                      **kwargs):
    clock = VirtualClock()
    engines = wrap_engines(
        list(reversed(architecture_ladder(ARM7))), clock,
        fail_at_s=fail_at_s, recover_at_s=recover_at_s, seed=0)
    return ApplianceSupervisor(
        engines, clock=clock, probe_interval_s=probe_interval_s,
        **kwargs), clock


# -- engine dispatch ---------------------------------------------------------


def test_healthy_ladder_uses_most_capable_engine():
    supervisor, _ = _flaky_supervisor(fail_at_s=None)
    report = supervisor.execute(WORKLOAD)
    assert report.engine == "protocol-engine"
    assert supervisor.report.engine_fallbacks == 0


def test_accelerator_death_walks_down_to_software():
    supervisor, clock = _flaky_supervisor(fail_at_s=1.0)
    clock.advance_to(2.0)
    report = supervisor.execute(WORKLOAD)
    assert report.engine == "software"
    # Every hardware rung failed once on the way down.
    assert supervisor.report.engine_fallbacks == 3
    assert supervisor.report.actions() == ["engine-fallback"] * 3


def test_dead_engine_not_retried_before_probe_interval():
    supervisor, clock = _flaky_supervisor(
        fail_at_s=1.0, probe_interval_s=5.0)
    clock.advance_to(2.0)
    supervisor.execute(WORKLOAD)
    fallbacks = supervisor.report.engine_fallbacks
    clock.advance_to(3.0)                       # < died_at + 5
    report = supervisor.execute(WORKLOAD)
    assert report.engine == "software"
    assert supervisor.report.engine_fallbacks == fallbacks  # no re-touch


def test_recovered_engine_is_restored_after_probe():
    supervisor, clock = _flaky_supervisor(
        fail_at_s=1.0, recover_at_s=4.0, probe_interval_s=1.0)
    clock.advance_to(2.0)
    assert supervisor.execute(WORKLOAD).engine == "software"
    clock.advance_to(6.0)                       # outage over, probe due
    report = supervisor.execute(WORKLOAD)
    assert report.engine == "protocol-engine"
    assert supervisor.report.engine_restorations == 1
    assert supervisor.report.actions()[-1] == "engine-restored"
    assert supervisor.active_engine.name == "flaky(protocol-engine)"


def test_gives_up_only_when_software_also_fails():
    clock = VirtualClock()
    # Even the software rung is flaky here: all-dead is a hard stop.
    engines = [FlakyEngine(SoftwareEngine(ARM7), clock, fail_at_s=0.0)]
    supervisor = ApplianceSupervisor(engines, clock=clock)
    with pytest.raises(SupervisorGaveUp):
        supervisor.execute(WORKLOAD)


def test_transient_failures_are_seeded_deterministic():
    def run():
        clock = VirtualClock()
        engine = FlakyEngine(
            SoftwareEngine(ARM7), clock, transient_rate=0.5, seed=42)
        outcomes = []
        for _ in range(16):
            try:
                engine.execute(WORKLOAD)
                outcomes.append("ok")
            except AcceleratorFailure:
                outcomes.append("fail")
        return outcomes, engine.transient_failures

    assert run() == run()
    outcomes, failures = run()
    assert "fail" in outcomes and "ok" in outcomes
    assert failures == outcomes.count("fail")


# -- battery management ------------------------------------------------------


def test_suite_steps_down_and_back_up_with_charge():
    battery = Battery(capacity_j=100.0)
    supervisor = ApplianceSupervisor(
        [SoftwareEngine(ARM7)], battery=battery)
    assert supervisor.choose_suite() == FULL_STRENGTH
    battery.remaining_j = 40.0                  # below 0.5 threshold
    assert supervisor.choose_suite() == BALANCED
    battery.remaining_j = 10.0                  # below 0.2 threshold
    assert supervisor.choose_suite() == ECONOMY
    assert supervisor.report.suite_downgrades == 2
    battery.recharge()
    assert supervisor.choose_suite() == FULL_STRENGTH
    assert supervisor.report.suite_restorations == 1
    assert supervisor.report.actions() == [
        "suite-downgrade", "suite-downgrade", "suite-restored"]


def test_guarded_drain_refuses_cleanly_and_downgrades():
    battery = Battery(capacity_j=0.001)         # 1 mJ
    supervisor = ApplianceSupervisor(
        [SoftwareEngine(ARM7)], battery=battery)
    before = battery.remaining_j
    assert supervisor.guarded_drain(0.5)        # fits
    assert not supervisor.guarded_drain(10.0)   # refused, no exception
    assert battery.remaining_j == pytest.approx(before - 0.0005)
    assert supervisor.report.brownout_refusals == 1
    refusal = [e for e in supervisor.report.events
               if e.action == "brownout-refusal"][0]
    assert "requested 10.000 mJ" in refusal.detail


def test_guarded_drain_without_battery_is_a_noop():
    supervisor = ApplianceSupervisor([SoftwareEngine(ARM7)])
    assert supervisor.guarded_drain(1e9)
    assert supervisor.report.brownout_refusals == 0


# -- tamper response ---------------------------------------------------------


def test_subthreshold_glitch_does_not_zeroise():
    appliance = provision_appliance(seed=5)
    supervisor = supervise_appliance(appliance)
    assert not supervisor.deliver_environment(
        EnvironmentEvent("voltage", 0.1))
    assert supervisor.report.tamper_zeroizations == 0
    assert not appliance.tamper.zeroised


def test_confirmed_tamper_zeroises_and_reprovisions():
    appliance = provision_appliance(seed=5)
    replacements = []

    def factory():
        replacement = provision_appliance(seed=6)
        replacements.append(replacement)
        return replacement

    supervisor = supervise_appliance(appliance, reprovision=factory)
    assert supervisor.deliver_environment(EnvironmentEvent("clock", 2.0))
    assert appliance.tamper.zeroised
    assert not any(appliance.keystore.root_key)   # keys actually gone
    assert supervisor.report.tamper_zeroizations == 1
    assert supervisor.report.reprovisions == 1
    assert supervisor.reprovisioned == replacements
    # The supervisor now watches the replacement's tamper domain.
    assert supervisor.responder is replacements[0].tamper
    assert any(replacements[0].keystore.root_key)  # fresh keys live


def test_fault_plan_drives_poll_end_to_end():
    appliance = provision_appliance(seed=7)
    clock = VirtualClock()
    plan = FaultPlan()
    plan.add_brownout(BatteryBrownout(
        appliance.platform.battery, at_s=2.0, to_fraction=0.01))
    plan.add_campaign(GlitchCampaign.seeded(
        seed=3, count=6, start_s=1.0, period_s=1.0, p_super=0.5))
    supervisor = supervise_appliance(appliance, clock=clock,
                                     fault_plan=plan)
    for tick in range(1, 9):
        supervisor.poll(float(tick))
    # The campaign had super-threshold events (p_super=0.5, 6 draws):
    # at least one zeroise; the brownout forced a suite downgrade.
    assert supervisor.report.tamper_zeroizations >= 1
    assert supervisor.report.suite_downgrades >= 1
    assert "battery-brownout" in plan.log.kinds()
    assert "glitch" in plan.log.kinds()


def test_degradation_report_ledger_shape():
    report = DegradationReport()
    report.record(1.5, "engine-fallback", "detail")
    report.record(2.0, "suite-downgrade")
    assert report.actions() == ["engine-fallback", "suite-downgrade"]
    assert report.events[0].time_s == 1.5
    assert report.events[0].detail == "detail"


def test_supervisor_requires_engines():
    with pytest.raises(ValueError):
        ApplianceSupervisor([])


def test_poll_is_deterministic():
    def run():
        appliance = provision_appliance(seed=9)
        clock = VirtualClock()
        plan = FaultPlan()
        plan.add_campaign(GlitchCampaign.seeded(seed=9, count=8))
        supervisor = supervise_appliance(appliance, clock=clock,
                                         fault_plan=plan)
        for tick in range(1, 12):
            supervisor.poll(tick * 0.8)
        return supervisor.report.actions(), plan.log.entries

    assert run() == run()
