"""Biometrics (user identification) and DRM (content security)."""

import pytest

from repro.core.biometrics import (
    BiometricMatcher,
    FingerSimulator,
    distance,
    equal_error_rate,
    evaluate_matcher,
    roc_sweep,
)
from repro.core.drm import (
    ContentProvider,
    DRMAgent,
    License,
    LicenseInvalid,
    RightsViolation,
    UsageRules,
)
from repro.core.keystore import SecureKeyStore
from repro.crypto.rng import DeterministicDRBG
from repro.crypto.rsa import generate_keypair


class TestBiometrics:
    @pytest.fixture()
    def enrolled(self):
        simulator = FingerSimulator(seed=1)
        matcher = BiometricMatcher(threshold=2.5)
        matcher.enroll("alice", [simulator.read("alice") for _ in range(5)])
        return simulator, matcher

    def test_genuine_user_accepted(self, enrolled):
        simulator, matcher = enrolled
        accepted = sum(
            matcher.verify("alice", simulator.read("alice"))
            for _ in range(50))
        assert accepted >= 48  # FRR low at the default threshold

    def test_impostor_rejected(self, enrolled):
        simulator, matcher = enrolled
        accepted = sum(
            matcher.verify("alice", simulator.read(f"mallory-{i}"))
            for i in range(50))
        assert accepted == 0  # identities are far apart vs. noise

    def test_unenrolled_subject_rejected(self, enrolled):
        simulator, matcher = enrolled
        assert not matcher.verify("nobody", simulator.read("nobody"))

    def test_counters(self, enrolled):
        simulator, matcher = enrolled
        matcher.verify("alice", simulator.read("alice"))
        matcher.verify("alice", simulator.read("mallory-0"))
        assert matcher.attempts == 2
        assert matcher.rejections >= 1

    def test_far_frr_tradeoff(self):
        """Loose thresholds accept impostors; tight ones reject genuine
        users — the designer's trade-off curve."""
        simulator = FingerSimulator(seed=2)
        tight = evaluate_matcher(simulator, threshold=0.5,
                                 genuine_trials=60, impostor_trials=60)
        loose = evaluate_matcher(simulator, threshold=6.0,
                                 genuine_trials=60, impostor_trials=60)
        assert tight.frr > loose.frr
        assert loose.far > tight.far

    def test_roc_sweep_and_eer(self):
        simulator = FingerSimulator(seed=3)
        curve = roc_sweep(simulator,
                          thresholds=[0.5, 1.0, 1.5, 2.0, 3.0, 4.5])
        eer = equal_error_rate(curve)
        assert eer in curve
        fars = [point.far for point in curve]
        assert fars == sorted(fars)  # FAR grows with threshold

    def test_enrollment_requires_samples(self):
        with pytest.raises(ValueError):
            BiometricMatcher().enroll("x", [])

    def test_distance_zero_for_identical(self):
        assert distance((1.0, 2.0), (1.0, 2.0)) == 0.0

    def test_readings_deterministic_per_seed(self):
        a = FingerSimulator(seed=4).read("bob")
        b = FingerSimulator(seed=4).read("bob")
        assert a == b


class TestDRM:
    @pytest.fixture()
    def world(self):
        rng = DeterministicDRBG("drm-world")
        provider_key = generate_keypair(512, DeterministicDRBG("provider"))
        provider = ContentProvider(signing_key=provider_key, rng=rng)
        device_key = generate_keypair(512, DeterministicDRBG("device"))
        keystore = SecureKeyStore.provision("drm-device")
        DRMAgent.provision_device_key(keystore, device_key)
        agent = DRMAgent(device_id="handset-7", keystore=keystore,
                         provider_public=provider_key.public)
        content = provider.package("song-1", b"MP3 bytes " * 40)
        return provider, agent, content, device_key

    def test_play_with_valid_license(self, world):
        provider, agent, content, device_key = world
        license_ = provider.issue_license(
            "song-1", "handset-7", device_key.public,
            UsageRules(max_plays=3))
        assert agent.play(content, license_) == b"MP3 bytes " * 40

    def test_play_count_enforced(self, world):
        provider, agent, content, device_key = world
        license_ = provider.issue_license(
            "song-1", "handset-7", device_key.public,
            UsageRules(max_plays=2))
        agent.play(content, license_)
        agent.play(content, license_)
        assert agent.plays_remaining(license_) == 0
        with pytest.raises(RightsViolation):
            agent.play(content, license_)

    def test_expiry_enforced(self, world):
        provider, agent, content, device_key = world
        license_ = provider.issue_license(
            "song-1", "handset-7", device_key.public,
            UsageRules(expires_at=10))
        agent.clock = 11
        with pytest.raises(RightsViolation):
            agent.play(content, license_)

    def test_no_copy_enforced(self, world):
        provider, agent, content, device_key = world
        license_ = provider.issue_license(
            "song-1", "handset-7", device_key.public,
            UsageRules(max_plays=None, allow_export=False))
        with pytest.raises(RightsViolation):
            agent.export_copy(content, license_)

    def test_export_allowed_when_licensed(self, world):
        provider, agent, content, device_key = world
        license_ = provider.issue_license(
            "song-1", "handset-7", device_key.public,
            UsageRules(allow_export=True))
        assert agent.export_copy(content, license_) == b"MP3 bytes " * 40

    def test_license_bound_to_device(self, world):
        provider, agent, content, device_key = world
        other_device = generate_keypair(512, DeterministicDRBG("other"))
        foreign = provider.issue_license(
            "song-1", "handset-8", other_device.public,
            UsageRules(max_plays=1))
        with pytest.raises(LicenseInvalid):
            agent.play(content, foreign)

    def test_tampered_rules_rejected(self, world):
        """Attacker upgrades max_plays in a signed license."""
        provider, agent, content, device_key = world
        license_ = provider.issue_license(
            "song-1", "handset-7", device_key.public,
            UsageRules(max_plays=1))
        tampered = License(
            content_id=license_.content_id,
            device_id=license_.device_id,
            wrapped_content_key=license_.wrapped_content_key,
            rules=UsageRules(max_plays=1_000_000),
            signature=license_.signature,
        )
        with pytest.raises(LicenseInvalid):
            agent.play(content, tampered)

    def test_wrong_content_rejected(self, world):
        provider, agent, content, device_key = world
        provider.package("song-2", b"other")
        license_2 = provider.issue_license(
            "song-2", "handset-7", device_key.public, UsageRules())
        with pytest.raises(LicenseInvalid):
            agent.play(content, license_2)

    def test_unlimited_plays(self, world):
        provider, agent, content, device_key = world
        license_ = provider.issue_license(
            "song-1", "handset-7", device_key.public,
            UsageRules(max_plays=None))
        for _ in range(5):
            agent.play(content, license_)
        assert agent.plays_remaining(license_) is None

    def test_content_key_never_in_distribution(self, world):
        """The protected file and the license never expose the content
        key or plaintext."""
        provider, agent, content, device_key = world
        license_ = provider.issue_license(
            "song-1", "handset-7", device_key.public, UsageRules())
        raw_key = provider._content_keys["song-1"]
        assert raw_key not in content.ciphertext
        assert raw_key not in license_.wrapped_content_key
        assert b"MP3 bytes" not in content.ciphertext
