"""Cross-package integration scenarios — the paper's stories end to end."""

import pytest

from repro.core.appliance import provision_appliance
from repro.core.keystore import KeyPolicy, KeyUsage, World
from repro.crypto.registry import aes_rollout, default_registry
from repro.crypto.rng import DeterministicDRBG
from repro.protocols.ciphersuites import suites_for_registry
from repro.protocols.handshake import ClientConfig, ServerConfig
from repro.protocols.tls import connect
from repro.protocols.transport import DuplexChannel
from repro.protocols.wap import build_wap_world


class TestMCommerceScenario:
    """§1's m-commerce vision: an unlocked handset transacts securely
    while the whole energy/battery story stays consistent."""

    def test_full_purchase_flow(self, ca, server_credentials):
        device = provision_appliance(seed=31, ca=ca)
        assert device.boot().succeeded
        assert device.unlock("owner", device._finger_simulator.read("owner"))

        key, cert = server_credentials
        server = ServerConfig(rng=DeterministicDRBG("shop"),
                              certificate=cert, private_key=key)
        channel = DuplexChannel()
        conn_c, conn_s = connect(
            device.tls_client_config(ca, expected_server="server.example"),
            server, channel)
        conn_c.send(b"PURCHASE item=42 price=9.99")
        assert conn_s.receive() == b"PURCHASE item=42 price=9.99"
        conn_s.send(b"CONFIRMED order=777")
        assert conn_c.receive() == b"CONFIRMED order=777"

        # The energy model charged the workload.
        report = device.run_secure_transaction(kilobytes=2.0, packets=3)
        assert report.energy_mj > 0
        assert device.platform.battery.fraction_remaining < 1.0

        # Nothing sensitive appeared on the air interface.
        for _, frame in channel.log:
            assert b"9.99" not in frame

    def test_signature_from_keystore_via_secure_app(self, ca):
        """Non-repudiation (§2): the payment receipt is signed by a key
        that never leaves the secure world."""
        from repro.core.secure_execution import sign_application

        device = provision_appliance(seed=32, ca=ca)
        device.boot()
        vendor = device._vendor
        app = sign_application(
            vendor.key, "receipt-signer", b"receipt signer v1",
            lambda api, payload: api.sign("device-identity-key", payload))
        device.environment.install(app, world=World.SECURE)
        receipt = b"order 777 delivered"
        signature = device.environment.invoke("receipt-signer", receipt)
        device._device_key.public.verify(receipt, signature)


class TestFlexibilityScenario:
    """§3.1: a 2001-era handset adopts AES after the June 2002 TLS
    revision via a registry update — no silicon change."""

    def test_aes_rollout_unlocks_suite(self, ca, server_credentials):
        registry = default_registry()
        key, cert = server_credentials

        def available_suites():
            return suites_for_registry(registry)

        before = {suite.name for suite in available_suites()}
        assert "RSA_WITH_AES_128_CBC_SHA" not in before

        # Firmware update (the Figure 2 event), then negotiate AES.
        aes_rollout(registry)
        client = ClientConfig(
            rng=DeterministicDRBG("flex"), ca=ca,
            suites=[s for s in available_suites()
                    if s.name == "RSA_WITH_AES_128_CBC_SHA"])
        server = ServerConfig(rng=DeterministicDRBG("flex-s"),
                              certificate=cert, private_key=key)
        conn_c, conn_s = connect(client, server)
        assert conn_c.suite_name == "RSA_WITH_AES_128_CBC_SHA"
        conn_c.send(b"post-rollout traffic")
        assert conn_s.receive() == b"post-rollout traffic"


class TestWAPGapScenario:
    """§2: bearer/transport security alone is not end-to-end — the WAP
    gateway sees plaintext, motivating application-layer security."""

    def test_gateway_sees_everything_unless_app_layer_encrypts(self):
        handset, gateway, _ = build_wap_world(seed=40)
        handset.send(b"account=123 balance-query")
        gateway.forward("origin.example")
        handset.receive()
        assert any(b"account=123" in item for item in gateway.plaintext_log)

    def test_application_layer_closes_the_gap(self):
        """Encrypting inside the WTLS payload (SET-style, §2) hides the
        content even from the gateway."""
        from repro.crypto.aes import AES
        from repro.crypto.modes import CBC

        end_to_end_key = bytes(range(16))

        def app_encrypt(data):
            return CBC(AES(end_to_end_key), bytes(16)).encrypt(data)

        def app_decrypt(blob):
            return CBC(AES(end_to_end_key), bytes(16)).decrypt(blob)

        handset, gateway, _ = build_wap_world(
            seed=41, handler=lambda request: request)  # echo origin
        secret = b"account=123 PIN=9876"
        handset.send(app_encrypt(secret))
        gateway.forward("origin.example")
        reply = app_decrypt(handset.receive())
        assert reply == secret
        assert all(secret not in item for item in gateway.plaintext_log)


class TestLayeredDefenseScenario:
    """Figure 5's layering exercised end to end: break the bottom layer
    and everything above collapses."""

    def test_boot_failure_cascades(self, ca):
        from repro.core.secure_boot import BootStage

        device = provision_appliance(seed=42, ca=ca)
        stage = device.boot_chain[0]
        device.boot_chain[0] = BootStage(
            stage.name, b"malicious bootloader", stage.signature)
        assert not device.boot().succeeded
        from repro.core.appliance import ApplianceLocked

        with pytest.raises(ApplianceLocked):
            device.tls_client_config(ca)

    def test_keystore_is_the_root_of_protocol_identity(self, ca):
        """The device certificate's key lives in the keystore; normal
        world cannot extract or use it."""
        from repro.core.keystore import AccessDenied

        device = provision_appliance(seed=43, ca=ca)
        with pytest.raises(AccessDenied):
            device.keystore.sign("device-identity-key", b"x", World.NORMAL)


class TestBatteryDrivenDegradation:
    """§3.3: security halves transaction budget; a dying battery stops
    secure service."""

    def test_secure_mode_halves_transactions(self):
        from repro.core.battery_life import figure4_report

        report = figure4_report()
        assert report.less_than_half

    def test_appliance_dies_mid_campaign(self, ca):
        from repro.hardware.battery import Battery, BatteryEmpty
        from repro.hardware.platform_builder import phone_platform

        platform = phone_platform()
        platform.battery = Battery(capacity_j=0.5)
        platform.__post_init__()
        device = provision_appliance(seed=44, ca=ca, platform=platform)
        device.boot()
        device.unlock("owner", device._finger_simulator.read("owner"))
        completed = 0
        with pytest.raises(BatteryEmpty):
            for _ in range(100_000):
                device.run_secure_transaction(kilobytes=1.0)
                completed += 1
        assert completed > 0
