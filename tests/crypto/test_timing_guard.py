"""Wall-clock guard for the fast-path kernels.

A deliberately generous budget: the workload below completes in well
under a second on the fast paths but takes tens of seconds if the
precomputed-table kernels silently regress to the reference loops
(e.g. a gating bug re-routing everything through the per-bit
``permute_bits`` path).  This is a tripwire, not a benchmark —
``benchmarks/bench_fastpath.py`` measures the actual speedups.
"""

import time

import pytest

from repro.crypto import fastpath
from repro.crypto.aes import AES
from repro.crypto.des import DES
from repro.crypto.md5 import md5
from repro.crypto.modes import CBC, ECB
from repro.crypto.sha1 import sha1
from repro.crypto.tdes import TripleDES

BUDGET_SECONDS = 8.0


@pytest.mark.skipif(not fastpath.enabled(),
                    reason="fast paths disabled via REPRO_FASTPATH")
def test_representative_crypto_workload_within_budget():
    start = time.perf_counter()

    CBC(AES(bytes(range(16))), bytes(16)).encrypt(b"\xA5" * (64 * 1024))
    ECB(DES(bytes(range(8)))).encrypt(b"\x3C" * (32 * 1024))
    ECB(TripleDES(bytes(range(24)))).encrypt(b"\x96" * (8 * 1024))
    sha1(b"\x5A" * (512 * 1024))
    md5(b"\xC3" * (512 * 1024))

    elapsed = time.perf_counter() - start
    assert elapsed < BUDGET_SECONDS, (
        f"crypto workload took {elapsed:.1f}s (budget {BUDGET_SECONDS}s); "
        "the fast-path kernels have likely regressed to reference loops"
    )
