"""AES: FIPS 197 known answers, S-box structure, instrumentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX, key_expansion
from repro.crypto.errors import InvalidBlockSize, InvalidKeyLength
from repro.crypto.trace import TraceRecorder

FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestKnownAnswers:
    """FIPS 197 Appendix C vectors for all three key sizes."""

    def test_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ct = AES(key).encrypt_block(FIPS_PT)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        ct = AES(key).encrypt_block(FIPS_PT)
        assert ct.hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f")
        ct = AES(key).encrypt_block(FIPS_PT)
        assert ct.hex() == "8ea2b7ca516745bfeafc49904b496089"

    def test_appendix_b_vector(self):
        # FIPS 197 Appendix B worked example.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert AES(key).encrypt_block(pt).hex() == \
            "3925841d02dc09fbdc118597196a0b32"

    @pytest.mark.parametrize("size", [16, 24, 32])
    def test_decrypt_inverts(self, size):
        key = bytes(range(size))
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(FIPS_PT)) == FIPS_PT


class TestSBox:
    def test_known_entries(self):
        # Spot values straight from the FIPS 197 table.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_bijection(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_consistency(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_no_fixed_points(self):
        # AES S-box has no fixed points and no 'anti-fixed' points.
        assert all(SBOX[v] != v for v in range(256))
        assert all(SBOX[v] != (v ^ 0xFF) for v in range(256))


class TestKeyExpansion:
    def test_round_counts(self):
        assert len(key_expansion(bytes(16))) == 11
        assert len(key_expansion(bytes(24))) == 13
        assert len(key_expansion(bytes(32))) == 15

    def test_fips_first_expanded_word(self):
        # FIPS 197 A.1: key 2b7e1516... -> w[4] = a0fafe17.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        rounds = key_expansion(key)
        assert rounds[1][0] == 0xA0FAFE17

    def test_invalid_key_length(self):
        with pytest.raises(InvalidKeyLength):
            key_expansion(bytes(15))


class TestErrors:
    def test_bad_block_size(self):
        with pytest.raises(InvalidBlockSize):
            AES(bytes(16)).encrypt_block(bytes(15))
        with pytest.raises(InvalidBlockSize):
            AES(bytes(16)).decrypt_block(bytes(17))


class TestInstrumentation:
    def test_probe_labels_and_counts(self):
        recorder = TraceRecorder()
        AES(bytes(16), recorder).encrypt_block(bytes(16))
        by_label = recorder.by_label()
        assert len(by_label["aes.sbox_out"]) == 16        # round 1 only
        assert len(by_label["aes.round_out"]) == 9        # rounds 1..9

    def test_probe_indices_cover_state(self):
        recorder = TraceRecorder()
        AES(bytes(16), recorder).encrypt_block(bytes(16))
        indices = {s.index for s in recorder.by_label()["aes.sbox_out"]}
        assert indices == set(range(16))


@settings(max_examples=30, deadline=None)
@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=16, max_size=16))
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=10, deadline=None)
@given(key=st.binary(min_size=32, max_size=32),
       block=st.binary(min_size=16, max_size=16))
def test_roundtrip_property_256(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
