"""Regression guard for the TraceRecorder fast-path bookkeeping.

The recorder now maintains ``total_power`` and the per-label index
incrementally at record time.  These tests pin the invariants the
incremental path must preserve against the naive full-scan semantics —
and the original opt-in contract: a cipher with **no** recorder
attached must record nothing and take the precomputed-table fast path.
"""

import pytest

from repro.crypto import fastpath
from repro.crypto.aes import AES
from repro.crypto.des import DES
from repro.crypto.trace import TraceRecorder, TraceSample


class TestIncrementalBookkeeping:
    def test_total_power_matches_full_scan(self):
        recorder = TraceRecorder(noise_sigma=0.5, seed=3)
        for index, value in enumerate((0xFF, 0x0F, 0x01, 0x00)):
            recorder.record("p", index, value)
        assert recorder.total_power() == pytest.approx(
            sum(s.power for s in recorder.samples))

    def test_powers_and_values_by_label_match_filtering(self):
        recorder = TraceRecorder()
        recorder.record("a", 0, 0b111)
        recorder.record("b", 0, 0b1)
        recorder.record("a", 1, 0b11)
        assert recorder.powers("a") == [
            s.power for s in recorder.samples if s.label == "a"]
        assert recorder.values("b") == [
            s.value for s in recorder.samples if s.label == "b"]
        assert recorder.powers("missing") == []
        assert recorder.values("missing") == []
        assert recorder.powers() == [s.power for s in recorder.samples]

    def test_label_filter_keeps_index_consistent(self):
        recorder = TraceRecorder(enabled_labels=frozenset({"keep"}))
        recorder.record("keep", 0, 0b11)
        recorder.record("drop", 0, 0xFF)
        assert recorder.total_power() == 2.0
        assert set(recorder.by_label()) == {"keep"}
        assert recorder.powers("drop") == []

    def test_clear_resets_all_three_stores(self):
        recorder = TraceRecorder()
        recorder.record("x", 0, 0xFF)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total_power() == 0.0
        assert recorder.by_label() == {}
        recorder.record("x", 1, 0b1)
        assert recorder.total_power() == 1.0

    def test_preseeded_samples_are_indexed(self):
        seeded = [TraceSample("pre", 0, 0b11, 2.0),
                  TraceSample("pre", 1, 0b1, 1.0)]
        recorder = TraceRecorder(samples=list(seeded))
        assert recorder.total_power() == 3.0
        assert recorder.powers("pre") == [2.0, 1.0]

    def test_by_label_returns_copies(self):
        recorder = TraceRecorder()
        recorder.record("a", 0, 1)
        recorder.by_label()["a"].clear()   # mutate the copy
        assert recorder.powers("a") == [1.0]


class TestUnattachedRecorderContract:
    """A cipher with ``recorder=None`` must add no samples anywhere and
    keep using the fast path (the zero-overhead opt-in contract the
    telemetry plane inherits)."""

    def test_aes_without_recorder_adds_no_samples(self):
        bystander = TraceRecorder()      # exists, but never attached
        AES(bytes(range(16))).encrypt_block(b"\x00" * 16)
        assert len(bystander) == 0

    def test_des_without_recorder_adds_no_samples(self):
        bystander = TraceRecorder()
        DES(bytes(range(8))).encrypt_block(b"\x00" * 8)
        assert len(bystander) == 0

    def test_attached_recorder_still_collects(self):
        recorder = TraceRecorder()
        AES(bytes(range(16)), recorder=recorder).encrypt_block(b"\x00" * 16)
        assert len(recorder) > 0
        assert recorder.total_power() == pytest.approx(
            sum(s.power for s in recorder.samples))

    def test_dispatch_path_prefers_fast_without_recorder(self):
        assert fastpath.dispatch_path(None) == (
            "fast" if fastpath.enabled() else "reference")
        assert fastpath.dispatch_path(TraceRecorder()) == "reference"

    def test_recorder_forces_reference_path_same_ciphertext(self):
        key = bytes(range(16))
        block = bytes(range(16))
        plain = AES(key).encrypt_block(block)
        probed = AES(key, recorder=TraceRecorder()).encrypt_block(block)
        assert plain == probed
