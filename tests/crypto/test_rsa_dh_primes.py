"""RSA, Diffie–Hellman, and primality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.dh import DHGroup, DHParty
from repro.crypto.errors import (
    DecryptionError,
    ParameterError,
    SignatureError,
)
from repro.crypto.primes import generate_prime, generate_safe_prime, is_prime
from repro.crypto.rng import DeterministicDRBG
from repro.crypto.rsa import RSAPublicKey, generate_keypair


class TestPrimes:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 97, 7919, 104729,
                                   2**31 - 1, 2**61 - 1])
    def test_known_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [0, 1, 4, 100, 7917, 2**31, 2**61 - 2,
                                   3215031751])  # strong pseudoprime base 2..7
    def test_known_composites(self, n):
        assert not is_prime(n)

    def test_carmichael_numbers_rejected(self):
        for carmichael in (561, 1105, 1729, 2465, 41041, 825265):
            assert not is_prime(carmichael)

    def test_generate_prime_properties(self):
        rng = DeterministicDRBG(1)
        p = generate_prime(64, rng)
        assert p.bit_length() == 64
        assert p % 2 == 1
        assert is_prime(p)

    def test_generate_prime_deterministic(self):
        assert generate_prime(48, DeterministicDRBG(9)) == \
            generate_prime(48, DeterministicDRBG(9))

    def test_generate_prime_too_small(self):
        with pytest.raises(ValueError):
            generate_prime(4, DeterministicDRBG(0))

    def test_safe_prime(self):
        p = generate_safe_prime(40, DeterministicDRBG(2))
        assert is_prime(p)
        assert is_prime((p - 1) // 2)


class TestRSAKeygen:
    def test_modulus_exact_bits(self, rsa_512):
        assert rsa_512.n.bit_length() == 512

    def test_key_equation(self, rsa_512):
        phi = (rsa_512.p - 1) * (rsa_512.q - 1)
        assert (rsa_512.e * rsa_512.d) % phi == 1

    def test_factors_multiply(self, rsa_512):
        assert rsa_512.p * rsa_512.q == rsa_512.n

    def test_too_small_rejected(self):
        with pytest.raises(ParameterError):
            generate_keypair(32, DeterministicDRBG(0))


class TestRSAEncryption:
    def test_roundtrip(self, rsa_512, drbg):
        ct = rsa_512.public.encrypt(b"secret", drbg)
        assert rsa_512.decrypt(ct) == b"secret"

    def test_randomised_padding(self, rsa_512, drbg):
        a = rsa_512.public.encrypt(b"same message", drbg)
        b = rsa_512.public.encrypt(b"same message", drbg)
        assert a != b
        assert rsa_512.decrypt(a) == rsa_512.decrypt(b)

    def test_max_length_enforced(self, rsa_512, drbg):
        too_long = bytes(rsa_512.byte_length - 10)
        with pytest.raises(ParameterError):
            rsa_512.public.encrypt(too_long, drbg)

    def test_tampered_ciphertext_fails(self, rsa_512, drbg):
        ct = bytearray(rsa_512.public.encrypt(b"secret", drbg))
        ct[-1] ^= 0x55
        with pytest.raises(DecryptionError):
            rsa_512.decrypt(bytes(ct))

    def test_wrong_length_ciphertext(self, rsa_512):
        with pytest.raises(DecryptionError):
            rsa_512.decrypt(b"short")

    def test_raw_range_check(self, rsa_512):
        with pytest.raises(ParameterError):
            rsa_512.public.encrypt_raw(rsa_512.n)
        with pytest.raises(ParameterError):
            rsa_512.decrypt_raw(rsa_512.n + 1)


class TestRSASignatures:
    def test_sign_verify(self, rsa_512):
        signature = rsa_512.sign(b"document")
        rsa_512.public.verify(b"document", signature)

    def test_wrong_message_rejected(self, rsa_512):
        signature = rsa_512.sign(b"document")
        with pytest.raises(SignatureError):
            rsa_512.public.verify(b"other document", signature)

    def test_tampered_signature_rejected(self, rsa_512):
        signature = bytearray(rsa_512.sign(b"document"))
        signature[3] ^= 1
        with pytest.raises(SignatureError):
            rsa_512.public.verify(b"document", bytes(signature))

    def test_wrong_key_rejected(self, rsa_512, rsa_384):
        signature = rsa_512.sign(b"document")
        with pytest.raises(SignatureError):
            RSAPublicKey(rsa_384.n, rsa_384.e).verify(
                b"document"[:10], signature[:rsa_384.byte_length])

    def test_crt_and_plain_signatures_agree(self, rsa_512):
        assert rsa_512.sign(b"msg", use_crt=True) == \
            rsa_512.sign(b"msg", use_crt=False)


class TestDH:
    def test_oakley_group_valid(self):
        DHGroup.oakley1().validate()

    def test_shared_secret_agreement(self):
        group = DHGroup.oakley1()
        alice = DHParty(group, DeterministicDRBG(1))
        bob = DHParty(group, DeterministicDRBG(2))
        assert alice.shared_secret(bob.public) == \
            bob.shared_secret(alice.public)

    def test_shared_key_length(self):
        group = DHGroup.oakley1()
        alice = DHParty(group, DeterministicDRBG(1))
        bob = DHParty(group, DeterministicDRBG(2))
        assert len(alice.shared_key(bob.public, 24)) == 24

    @pytest.mark.parametrize("degenerate", [0, 1])
    def test_degenerate_public_rejected(self, degenerate):
        group = DHGroup.oakley1()
        alice = DHParty(group, DeterministicDRBG(1))
        with pytest.raises(ParameterError):
            alice.shared_secret(degenerate)

    def test_p_minus_one_rejected(self):
        group = DHGroup.oakley1()
        alice = DHParty(group, DeterministicDRBG(1))
        with pytest.raises(ParameterError):
            alice.shared_secret(group.p - 1)

    def test_generated_group(self):
        group = DHGroup.generate(48, DeterministicDRBG(3))
        group.validate()
        alice = DHParty(group, DeterministicDRBG(4))
        bob = DHParty(group, DeterministicDRBG(5))
        assert alice.shared_secret(bob.public) == \
            bob.shared_secret(alice.public)

    def test_invalid_group_rejected(self):
        with pytest.raises(ParameterError):
            DHGroup(p=100, g=2).validate()


@settings(max_examples=15, deadline=None)
@given(message=st.binary(min_size=1, max_size=37))
def test_rsa_roundtrip_property(rsa_512, message):
    rng = DeterministicDRBG(message)
    assert rsa_512.decrypt(rsa_512.public.encrypt(message, rng)) == message


@settings(max_examples=10, deadline=None)
@given(message=st.binary(min_size=0, max_size=120))
def test_rsa_signature_property(rsa_512, message):
    rsa_512.public.verify(message, rsa_512.sign(message))
