"""Modular arithmetic: Euclid, CRT, Montgomery, exponentiation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import ParameterError
from repro.crypto.modmath import (
    MontgomeryContext,
    OperationTimer,
    crt_combine,
    egcd,
    invmod,
    modexp,
    modexp_ladder,
    modexp_sqm,
)

ODD_MODULI = st.integers(min_value=3, max_value=10**12).map(
    lambda n: n | 1)


class TestEuclid:
    def test_egcd_identity(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    def test_invmod_basic(self):
        assert invmod(3, 11) == 4
        assert (17 * invmod(17, 3120)) % 3120 == 1

    def test_invmod_not_invertible(self):
        with pytest.raises(ParameterError):
            invmod(6, 9)

    def test_crt_combine(self):
        # x = 2 mod 3, 3 mod 5, 2 mod 7 -> 23 (Sunzi's classic).
        assert crt_combine([2, 3, 2], [3, 5, 7]) == 23

    def test_crt_mismatched_lengths(self):
        with pytest.raises(ValueError):
            crt_combine([1, 2], [3])


class TestMontgomery:
    def test_rejects_even_modulus(self):
        with pytest.raises(ParameterError):
            MontgomeryContext(10)

    def test_round_trip(self):
        ctx = MontgomeryContext(101)
        for value in (0, 1, 5, 42, 100):
            assert ctx.from_mont(ctx.to_mont(value)) == value

    def test_multiplication_correct(self):
        ctx = MontgomeryContext(2**61 - 1)
        a, b = 123456789, 987654321
        product = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)))
        assert product == (a * b) % (2**61 - 1)

    def test_timer_counts_operations(self):
        timer = OperationTimer()
        ctx = MontgomeryContext(10007, timer)
        ctx.mul(123, 456)
        assert len(timer.per_operation) == 1
        assert timer.total >= timer.mul_cost

    def test_timer_reset(self):
        timer = OperationTimer()
        ctx = MontgomeryContext(10007, timer)
        ctx.mul(1, 2)
        timer.reset()
        assert timer.total == 0
        assert timer.per_operation == []
        assert timer.extra_reductions == 0


class TestModexp:
    @pytest.mark.parametrize("func", [modexp_sqm, modexp_ladder])
    def test_agrees_with_pow(self, func):
        for base, exp, mod in [(2, 10, 1000), (7, 13, 101),
                               (123456, 654321, 10**9 + 7)]:
            assert func(base, exp, mod | 1) == pow(base, exp, mod | 1)

    def test_modulus_one(self):
        assert modexp_sqm(5, 3, 1) == 0
        assert modexp_ladder(5, 3, 1) == 0

    def test_ladder_operation_count_independent_of_weight(self):
        # Same bit length, different Hamming weight -> identical op count.
        mod = 10007
        timer_dense = OperationTimer()
        modexp_ladder(5, 0b1111111, mod, timer_dense)
        timer_sparse = OperationTimer()
        modexp_ladder(5, 0b1000001, mod, timer_sparse)
        assert len(timer_dense.per_operation) == len(timer_sparse.per_operation)

    def test_sqm_operation_count_leaks_weight(self):
        mod = 10007
        timer_dense = OperationTimer()
        modexp_sqm(5, 0b1111111, mod, timer_dense)
        timer_sparse = OperationTimer()
        modexp_sqm(5, 0b1000001, mod, timer_sparse)
        assert len(timer_dense.per_operation) > len(timer_sparse.per_operation)

    def test_modexp_wrapper(self):
        assert modexp(3, 100, 7) == pow(3, 100, 7)


@settings(max_examples=50, deadline=None)
@given(base=st.integers(min_value=0, max_value=10**9),
       exp=st.integers(min_value=1, max_value=10**6),
       mod=ODD_MODULI)
def test_sqm_property(base, exp, mod):
    assert modexp_sqm(base, exp, mod) == pow(base, exp, mod)


@settings(max_examples=50, deadline=None)
@given(base=st.integers(min_value=0, max_value=10**9),
       exp=st.integers(min_value=1, max_value=10**6),
       mod=ODD_MODULI)
def test_ladder_property(base, exp, mod):
    assert modexp_ladder(base, exp, mod) == pow(base, exp, mod)


@settings(max_examples=50, deadline=None)
@given(a=st.integers(min_value=0, max_value=10**12),
       b=st.integers(min_value=0, max_value=10**12),
       mod=ODD_MODULI)
def test_montgomery_mul_property(a, b, mod):
    ctx = MontgomeryContext(mod)
    result = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)))
    assert result == (a * b) % mod


@settings(max_examples=40, deadline=None)
@given(a=st.integers(min_value=1, max_value=10**9),
       mod=st.integers(min_value=2, max_value=10**9))
def test_invmod_property(a, mod):
    import math

    if math.gcd(a, mod) == 1:
        assert (a * invmod(a, mod)) % mod == 1
    else:
        with pytest.raises(ParameterError):
            invmod(a, mod)
