"""The lightweight stream-cipher family: A5/1, Grain v1, Trivium.

Four layers of assurance, matching the conformance plane's policy:

* the published A5/1 pedagogical vector (Briceno/Goldberg/Wagner) on
  both dispatch paths (the corpus files themselves run through
  ``tests/conformance/test_vectors.py``);
* a dual-implementation cross-check — the spec-indexed bit-list
  implementations inside ``tools/gen_stream_vectors.py`` (the corpus
  generator) against the packed-integer production ciphers, on fresh
  inputs the frozen pins never saw;
* hypothesis properties: round-trip identity, fast/reference state
  equality under arbitrary read-length schedules, save/restore
  mid-stream, and corruption visibility;
* interface contracts the record layers rely on (memoryview inputs,
  key-blob splitting, invalid key lengths).
"""

import importlib.util
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import fastpath
from repro.crypto.a51 import A51
from repro.crypto.errors import InvalidKeyLength
from repro.crypto.grain import Grain
from repro.crypto.trivium import Trivium

_TOOL = pathlib.Path(__file__).resolve().parents[2] / "tools" / \
    "gen_stream_vectors.py"
_spec = importlib.util.spec_from_file_location("gen_stream_vectors", _TOOL)
gen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen)

CIPHERS = [
    pytest.param(A51, 8, 3, id="a51"),
    pytest.param(Grain, 10, 8, id="grain"),
    pytest.param(Trivium, 10, 10, id="trivium"),
]


def _blob(factory, key_bytes, iv_bytes, fill=0x5C):
    key = bytes((fill + i) % 256 for i in range(key_bytes))
    iv = bytes((fill ^ i) % 256 for i in range(iv_bytes))
    return key, iv


class TestPublishedVector:
    """The one citable byte-level anchor: the BGW A5/1 vector."""

    KEY = bytes.fromhex("1223456789abcdef")

    @pytest.mark.parametrize("path", ["fast", "reference"])
    def test_bgw_burst(self, path):
        with fastpath.force(path == "fast"):
            a_to_b, b_to_a = A51.burst(self.KEY, 0x134)
        assert a_to_b.hex() == "534eaa582fe8151ab6e1855a728c00"
        assert b_to_a.hex() == "24fd35a35d5fb6526d32f906df1ac0"

    def test_continuous_keystream_extends_the_burst(self):
        """The record-layer keystream starts exactly where the GSM
        A→B burst starts — the published vector anchors both forms."""
        blob = self.KEY + (0x134).to_bytes(3, "big")
        a_to_b, _ = A51.burst(self.KEY, 0x134)
        assert A51(blob).keystream(14) == a_to_b[:14]


class TestDualImplementation:
    """Production vs the generator's bit-list implementations, on
    inputs distinct from every frozen corpus pin."""

    @pytest.mark.parametrize("path", ["fast", "reference"])
    def test_a51(self, path):
        key = bytes.fromhex("fedcba9876543210")
        frame = 0x2AAAAA
        want = gen.independent_a51_keystream(key, frame, 64)
        with fastpath.force(path == "fast"):
            got = A51(key + frame.to_bytes(3, "big")).keystream(64)
        assert got == want

    @pytest.mark.parametrize("path", ["fast", "reference"])
    def test_trivium(self, path):
        key = bytes(range(0x30, 0x3A))
        iv = bytes(range(0xF6, 0x100))
        want = gen.independent_trivium(key, iv, 64)
        with fastpath.force(path == "fast"):
            got = Trivium(key + iv).keystream(64)
        assert got == want

    @pytest.mark.parametrize("path", ["fast", "reference"])
    def test_grain(self, path):
        key = bytes(range(0x30, 0x3A))
        iv = bytes(range(0xA0, 0xA8))
        want = gen.independent_grain(key, iv, 64)
        with fastpath.force(path == "fast"):
            got = Grain(key + iv).keystream(64)
        assert got == want


class TestProperties:
    @pytest.mark.parametrize("factory,key_bytes,iv_bytes", CIPHERS)
    @settings(max_examples=15, deadline=None)
    @given(data=st.binary(min_size=0, max_size=300), seed=st.integers(0, 255))
    def test_round_trip_identity(self, factory, key_bytes, iv_bytes, data,
                                 seed):
        key, iv = _blob(factory, key_bytes, iv_bytes, seed)
        assert factory(key + iv).process(
            factory(key + iv).process(data)) == data

    @pytest.mark.parametrize("factory,key_bytes,iv_bytes", CIPHERS)
    @settings(max_examples=10, deadline=None)
    @given(lengths=st.lists(st.integers(0, 65), min_size=1, max_size=6),
           flips=st.lists(st.booleans(), min_size=6, max_size=6))
    def test_paths_agree_under_any_read_schedule(self, factory, key_bytes,
                                                 iv_bytes, lengths, flips):
        """Fast and reference keystreams — and their saved states —
        must agree after an arbitrary sequence of read lengths, even
        when the dispatch switch flips between reads (a traced cipher
        mid-connection must not lose its keystream position)."""
        key, iv = _blob(factory, key_bytes, iv_bytes)
        with fastpath.force(True):
            fast = factory(key + iv)
        with fastpath.force(False):
            reference = factory(key + iv)
        mixed = factory(key + iv)
        for i, length in enumerate(lengths):
            with fastpath.force(True):
                chunk_fast = fast.keystream(length)
            with fastpath.force(False):
                chunk_ref = reference.keystream(length)
            with fastpath.force(flips[i % len(flips)]):
                chunk_mixed = mixed.keystream(length)
            assert chunk_fast == chunk_ref == chunk_mixed
        assert fast.save_state() == reference.save_state() == \
            mixed.save_state()

    @pytest.mark.parametrize("factory,key_bytes,iv_bytes", CIPHERS)
    @settings(max_examples=10, deadline=None)
    @given(prefix=st.integers(0, 100), replay=st.integers(1, 80))
    def test_save_restore_replays_exactly(self, factory, key_bytes,
                                          iv_bytes, prefix, replay):
        key, iv = _blob(factory, key_bytes, iv_bytes)
        cipher = factory(key + iv)
        cipher.keystream(prefix)
        snapshot = cipher.save_state()
        first = cipher.keystream(replay)
        cipher.restore_state(snapshot)
        assert cipher.keystream(replay) == first

    @pytest.mark.parametrize("factory,key_bytes,iv_bytes", CIPHERS)
    @settings(max_examples=10, deadline=None)
    @given(data=st.binary(min_size=1, max_size=120),
           bit=st.integers(0, 7))
    def test_corruption_is_visible(self, factory, key_bytes, iv_bytes,
                                   data, bit):
        """Stream ciphers provide no integrity: flipping a ciphertext
        bit flips exactly that plaintext bit — the property the record
        layer's MAC exists to catch."""
        key, iv = _blob(factory, key_bytes, iv_bytes)
        ciphertext = bytearray(factory(key + iv).process(data))
        ciphertext[0] ^= 1 << bit
        garbled = factory(key + iv).process(bytes(ciphertext))
        assert garbled[0] == data[0] ^ (1 << bit)
        assert garbled[1:] == data[1:]


class TestInterface:
    @pytest.mark.parametrize("factory,key_bytes,iv_bytes", CIPHERS)
    def test_short_blob_means_zero_iv(self, factory, key_bytes, iv_bytes):
        key, _ = _blob(factory, key_bytes, iv_bytes)
        assert factory(key).keystream(24) == \
            factory(key + bytes(iv_bytes)).keystream(24)

    @pytest.mark.parametrize("factory,key_bytes,iv_bytes", CIPHERS)
    def test_invalid_key_length_rejected(self, factory, key_bytes, iv_bytes):
        with pytest.raises(InvalidKeyLength):
            factory(bytes(key_bytes + iv_bytes + 1))

    @pytest.mark.parametrize("factory,key_bytes,iv_bytes", CIPHERS)
    def test_memoryview_process(self, factory, key_bytes, iv_bytes):
        """The zero-copy record plane hands ciphers memoryviews."""
        key, iv = _blob(factory, key_bytes, iv_bytes)
        data = bytes(range(64))
        assert factory(key + iv).process(memoryview(data)) == \
            factory(key + iv).process(data)

    @pytest.mark.parametrize("factory,key_bytes,iv_bytes", CIPHERS)
    def test_distinct_ivs_give_distinct_streams(self, factory, key_bytes,
                                                iv_bytes):
        """The WTLS per-record rekey (key XOR sequence) lands in the
        IV/frame bytes; it must actually change the keystream."""
        key, iv = _blob(factory, key_bytes, iv_bytes)
        other = bytes(iv[:-1]) + bytes([iv[-1] ^ 1])
        assert factory(key + iv).keystream(24) != \
            factory(key + other).keystream(24)

    def test_a51_burst_requires_raw_key(self):
        with pytest.raises(InvalidKeyLength):
            A51.burst(bytes(11), 0)
