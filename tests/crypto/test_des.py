"""DES: FIPS 46-3 known answers, structure, and instrumentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import (
    DES,
    expand_key,
    expansion,
    feistel,
    initial_permutation,
    sbox_lookup,
)
from repro.crypto.errors import InvalidBlockSize, InvalidKeyLength
from repro.crypto.trace import TraceRecorder

CLASSIC_KEY = bytes.fromhex("133457799BBCDFF1")
CLASSIC_PT = bytes.fromhex("0123456789ABCDEF")
CLASSIC_CT = bytes.fromhex("85E813540F0AB405")

# Additional published known-answer vectors (key, plaintext, ciphertext).
KNOWN_ANSWERS = [
    ("10316E028C8F3B4A", "0000000000000000", "82DCBAFBDEAB6602"),
    ("0101010101010101", "8000000000000000", "95F8A5E5DD31D900"),
    ("0101010101010101", "4000000000000000", "DD7F121CA5015619"),
    ("0101010101010101", "2000000000000000", "2E8653104F3834EA"),
    ("8001010101010101", "0000000000000000", "95A8D72813DAA94D"),
    ("7CA110454A1A6E57", "01A1D6D039776742", "690F5B0D9A26939B"),
    ("0131D9619DC1376E", "5CD54CA83DEF57DA", "7A389D10354BD271"),
]


class TestKnownAnswers:
    def test_classic_vector_encrypt(self):
        assert DES(CLASSIC_KEY).encrypt_block(CLASSIC_PT) == CLASSIC_CT

    def test_classic_vector_decrypt(self):
        assert DES(CLASSIC_KEY).decrypt_block(CLASSIC_CT) == CLASSIC_PT

    @pytest.mark.parametrize("key,pt,ct", KNOWN_ANSWERS)
    def test_published_vectors(self, key, pt, ct):
        cipher = DES(bytes.fromhex(key))
        assert cipher.encrypt_block(bytes.fromhex(pt)).hex().upper() == ct
        assert cipher.decrypt_block(bytes.fromhex(ct)).hex().upper() == pt


class TestStructure:
    def test_sixteen_round_keys(self):
        assert len(expand_key(CLASSIC_KEY)) == 16

    def test_round_keys_are_48_bit(self):
        for round_key in expand_key(CLASSIC_KEY):
            assert 0 <= round_key < (1 << 48)

    def test_parity_bits_ignored(self):
        # Flipping parity bits (LSB of each byte) must not change keys.
        flipped = bytes(b ^ 1 for b in CLASSIC_KEY)
        assert expand_key(CLASSIC_KEY) == expand_key(flipped)

    def test_weak_key_all_round_keys_equal(self):
        # The all-zero (parity-adjusted) key is a classic DES weak key.
        round_keys = expand_key(bytes(8))
        assert len(set(round_keys)) == 1

    def test_complementation_property(self):
        # DES(~K, ~P) == ~DES(K, P) — the classic complementation identity.
        key = CLASSIC_KEY
        pt = CLASSIC_PT
        ct = DES(key).encrypt_block(pt)
        comp_key = bytes(b ^ 0xFF for b in key)
        comp_pt = bytes(b ^ 0xFF for b in pt)
        comp_ct = DES(comp_key).encrypt_block(comp_pt)
        assert comp_ct == bytes(b ^ 0xFF for b in ct)

    def test_ip_fp_inverse(self):
        from repro.crypto.bitops import permute_bits
        from repro.crypto.des import _FP  # noqa: SLF001 - structural test

        value = 0x0123456789ABCDEF
        assert permute_bits(initial_permutation(value), _FP, 64) == value

    def test_sbox_lookup_range(self):
        for box in range(8):
            outputs = {sbox_lookup(box, i) for i in range(64)}
            assert outputs == set(range(16))  # each S-box is 4-to-1 onto

    def test_expansion_width(self):
        assert expansion(0xFFFFFFFF) == (1 << 48) - 1

    def test_feistel_deterministic(self):
        round_keys = expand_key(CLASSIC_KEY)
        assert feistel(0x12345678, round_keys[0]) == feistel(
            0x12345678, round_keys[0])


class TestErrors:
    def test_wrong_key_length(self):
        with pytest.raises(InvalidKeyLength):
            DES(b"short")

    def test_wrong_block_length_encrypt(self):
        with pytest.raises(InvalidBlockSize):
            DES(CLASSIC_KEY).encrypt_block(b"tiny")

    def test_wrong_block_length_decrypt(self):
        with pytest.raises(InvalidBlockSize):
            DES(CLASSIC_KEY).decrypt_block(b"way too long for a block")


class TestInstrumentation:
    def test_probe_counts(self):
        recorder = TraceRecorder()
        DES(CLASSIC_KEY, recorder).encrypt_block(CLASSIC_PT)
        by_label = recorder.by_label()
        assert len(by_label["des.sbox_out"]) == 16 * 8
        assert len(by_label["des.round_out"]) == 16

    def test_no_recorder_no_overhead_difference_in_output(self):
        with_rec = DES(CLASSIC_KEY, TraceRecorder()).encrypt_block(CLASSIC_PT)
        without = DES(CLASSIC_KEY).encrypt_block(CLASSIC_PT)
        assert with_rec == without


@settings(max_examples=40, deadline=None)
@given(key=st.binary(min_size=8, max_size=8),
       block=st.binary(min_size=8, max_size=8))
def test_roundtrip_property(key, block):
    cipher = DES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=20, deadline=None)
@given(key=st.binary(min_size=8, max_size=8),
       block=st.binary(min_size=8, max_size=8))
def test_encryption_is_permutation(key, block):
    # Distinct plaintexts map to distinct ciphertexts under one key.
    other = bytes(8) if block != bytes(8) else b"\x01" * 8
    cipher = DES(key)
    assert cipher.encrypt_block(block) != cipher.encrypt_block(other)
