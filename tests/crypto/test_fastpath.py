"""Fast-path ≡ reference equivalence: KATs, differentials, fallback.

Every known-answer vector runs through *both* the precomputed-table
fast path and the readable reference loops, and a randomized
differential sweep pins the two bit-for-bit.  The TraceRecorder
fallback rule (probed ciphers always take the reference path) is
asserted explicitly — it is what keeps the DPA/timing simulators
honest.
"""

import random

import pytest

from repro.crypto import fastpath
from repro.crypto.aes import AES
from repro.crypto.bitops import bytes_to_int, int_to_bytes, permute_bits, xor_bytes
from repro.crypto.des import (
    DES,
    _E,
    _FP,
    _IP,
    _P,
    _PC1,
    _PC2,
    expand_key,
)
from repro.crypto.hmac import hmac
from repro.crypto.md5 import MD5, md5
from repro.crypto.modes import CBC, CTR, ECB
from repro.crypto.sha1 import SHA1, sha1
from repro.crypto.tdes import TripleDES
from repro.crypto.trace import TraceRecorder

FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")


@pytest.fixture(params=["reference", "fast"])
def path(request):
    """Run the decorated test once per implementation path."""
    with fastpath.force(request.param == "fast"):
        yield request.param


class TestAESKnownAnswers:
    """FIPS 197 Appendix C, all three key sizes, both paths."""

    VECTORS = [
        ("000102030405060708090a0b0c0d0e0f",
         "69c4e0d86a7b0430d8cdb78070b4c55a"),
        ("000102030405060708090a0b0c0d0e0f1011121314151617",
         "dda97ca4864cdfe06eaf70a0ec0d7191"),
        ("000102030405060708090a0b0c0d0e0f"
         "101112131415161718191a1b1c1d1e1f",
         "8ea2b7ca516745bfeafc49904b496089"),
    ]

    @pytest.mark.parametrize("key_hex,ct_hex", VECTORS)
    def test_encrypt(self, path, key_hex, ct_hex):
        assert AES(bytes.fromhex(key_hex)).encrypt_block(FIPS_PT).hex() == ct_hex

    @pytest.mark.parametrize("key_hex,ct_hex", VECTORS)
    def test_decrypt(self, path, key_hex, ct_hex):
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.decrypt_block(bytes.fromhex(ct_hex)) == FIPS_PT


class TestDESKnownAnswers:
    def test_fips_46_3_vector(self, path):
        cipher = DES(bytes.fromhex("133457799BBCDFF1"))
        ct = cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        assert ct.hex().upper() == "85E813540F0AB405"
        assert cipher.decrypt_block(ct).hex().upper() == "0123456789ABCDEF"

    def test_3des_degenerate_single_des(self, path):
        block = bytes(range(8))
        key = bytes.fromhex("133457799BBCDFF1")
        assert TripleDES(key).encrypt_block(block) == DES(key).encrypt_block(block)


class TestHashKnownAnswers:
    def test_sha1(self, path):
        assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_md5(self, path):
        assert md5(b"abc").hex() == "900150983cd24fb0d6963f7d28e17f72"


class TestHMACRFC2202:
    """RFC 2202 vectors through both hash paths."""

    SHA1_VECTORS = [
        (b"\x0b" * 20, b"Hi There",
         "b617318655057264e28bc0b6fb378c8ef146be00"),
        (b"Jefe", b"what do ya want for nothing?",
         "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
        (b"\xaa" * 20, b"\xdd" * 50,
         "125d7342b9ac11cd91a39af48aa17b4f63f175d3"),
        (b"\xaa" * 80, b"Test Using Larger Than Block-Size Key - Hash Key First",
         "aa4ae5e15272d00e95705637ce8a3b55ed402112"),
    ]

    MD5_VECTORS = [
        (b"\x0b" * 16, b"Hi There", "9294727a3638bb1c13f48ef8158bfc9d"),
        (b"Jefe", b"what do ya want for nothing?",
         "750c783e6ab0b503eaa86e310a5db738"),
        (b"\xaa" * 16, b"\xdd" * 50, "56be34521d144c88dbb8c733f0e8b3f6"),
        (b"\xaa" * 80, b"Test Using Larger Than Block-Size Key - Hash Key First",
         "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd"),
    ]

    @pytest.mark.parametrize("key,message,tag", SHA1_VECTORS)
    def test_hmac_sha1(self, path, key, message, tag):
        assert hmac(key, message, SHA1).hex() == tag

    @pytest.mark.parametrize("key,message,tag", MD5_VECTORS)
    def test_hmac_md5(self, path, key, message, tag):
        assert hmac(key, message, MD5).hex() == tag


class TestDifferential:
    """Randomized reference ≡ fast-path sweeps (fixed seed)."""

    def test_aes_blocks(self):
        rng = random.Random(0xA15)
        for key_size in (16, 24, 32):
            for _ in range(8):
                key = bytes(rng.randrange(256) for _ in range(key_size))
                block = bytes(rng.randrange(256) for _ in range(16))
                with fastpath.force(False):
                    ref_ct = AES(key).encrypt_block(block)
                    ref_pt = AES(key).decrypt_block(block)
                with fastpath.force(True):
                    assert AES(key).encrypt_block(block) == ref_ct
                    assert AES(key).decrypt_block(block) == ref_pt

    def test_des_and_3des_blocks(self):
        rng = random.Random(0xDE5)
        for _ in range(12):
            key = bytes(rng.randrange(256) for _ in range(8))
            key24 = bytes(rng.randrange(256) for _ in range(24))
            block = bytes(rng.randrange(256) for _ in range(8))
            with fastpath.force(False):
                ref = (DES(key).encrypt_block(block),
                       DES(key).decrypt_block(block),
                       TripleDES(key24).encrypt_block(block),
                       TripleDES(key24).decrypt_block(block),
                       expand_key(key))
            with fastpath.force(True):
                assert DES(key).encrypt_block(block) == ref[0]
                assert DES(key).decrypt_block(block) == ref[1]
                assert TripleDES(key24).encrypt_block(block) == ref[2]
                assert TripleDES(key24).decrypt_block(block) == ref[3]
                assert expand_key(key) == ref[4]

    def test_hashes_and_hmac(self):
        rng = random.Random(0x5A1)
        for length in (0, 1, 55, 56, 63, 64, 65, 127, 500):
            data = bytes(rng.randrange(256) for _ in range(length))
            key = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 100)))
            with fastpath.force(False):
                ref = (sha1(data), md5(data), hmac(key, data, SHA1),
                       hmac(key, data, MD5))
            with fastpath.force(True):
                assert sha1(data) == ref[0]
                assert md5(data) == ref[1]
                assert hmac(key, data, SHA1) == ref[2]
                assert hmac(key, data, MD5) == ref[3]

    def test_incremental_hash_copy_semantics(self, path):
        hasher = SHA1(b"prefix")
        clone = hasher.copy()
        hasher.update(b"-suffix")
        assert clone.digest() == sha1(b"prefix")
        assert hasher.digest() == sha1(b"prefix-suffix")

    def test_modes_roundtrip_both_paths(self):
        rng = random.Random(0xC8C)
        key = bytes(rng.randrange(256) for _ in range(16))
        iv = bytes(rng.randrange(256) for _ in range(16))
        data = bytes(rng.randrange(256) for _ in range(100))
        with fastpath.force(False):
            ref_cbc = CBC(AES(key), iv).encrypt(data)
            ref_ecb = ECB(AES(key)).encrypt(bytes(32))
            ref_ctr = CTR(AES(key), iv).process(data)
        with fastpath.force(True):
            assert CBC(AES(key), iv).encrypt(data) == ref_cbc
            assert CBC(AES(key), iv).decrypt(ref_cbc) == data
            assert ECB(AES(key)).encrypt(bytes(32)) == ref_ecb
            assert CTR(AES(key), iv).process(data) == ref_ctr


class TestDESTableFusion:
    """The per-byte tables are exactly the FIPS permutations."""

    @pytest.mark.parametrize("table,width", [
        (_IP, 64), (_FP, 64), (_E, 32), (_PC1, 64), (_PC2, 56),
        (_P, 32),
    ])
    def test_byte_tables_match_permute_bits(self, table, width):
        lookup = fastpath.byte_permutation_tables(table, width)
        rng = random.Random(width)
        values = [0, (1 << width) - 1] + [rng.getrandbits(width) for _ in range(50)]
        for value in values:
            expected = permute_bits(value, table, width)
            got = 0
            for i, chunk in enumerate(lookup):
                got |= chunk[(value >> (width - 8 * (i + 1))) & 255]
            assert got == expected

    def test_rejects_partial_bytes(self):
        with pytest.raises(ValueError):
            fastpath.byte_permutation_tables(_E, 31)


class TestTraceRecorderFallback:
    """Probed ciphers must take the reference path (true intermediates)."""

    def test_aes_probes_present_and_ciphertext_identical(self):
        key, block = bytes(range(16)), bytes(range(16))
        recorder = TraceRecorder()
        with fastpath.force(True):
            probed_ct = AES(key, recorder).encrypt_block(block)
            plain_ct = AES(key).encrypt_block(block)
        by_label = recorder.by_label()
        assert len(by_label["aes.sbox_out"]) == 16
        assert len(by_label["aes.round_out"]) == 9
        assert probed_ct == plain_ct

    def test_des_probes_present_and_ciphertext_identical(self):
        key, block = bytes(range(8)), bytes(range(8))
        recorder = TraceRecorder()
        with fastpath.force(True):
            probed_ct = DES(key, recorder).encrypt_block(block)
            plain_ct = DES(key).encrypt_block(block)
        assert len(recorder.by_label()["des.sbox_out"]) == 16 * 8
        assert probed_ct == plain_ct


class TestSwitch:
    def test_force_restores_prior_state(self):
        before = fastpath.enabled()
        with fastpath.force(not before):
            assert fastpath.enabled() is (not before)
        assert fastpath.enabled() is before

    def test_force_restores_on_exception(self):
        before = fastpath.enabled()
        with pytest.raises(RuntimeError):
            with fastpath.force(not before):
                raise RuntimeError("boom")
        assert fastpath.enabled() is before

    def test_enable_disable(self):
        before = fastpath.enabled()
        try:
            fastpath.disable()
            assert not fastpath.enabled()
            fastpath.enable()
            assert fastpath.enabled()
        finally:
            (fastpath.enable if before else fastpath.disable)()


class TestKeyScheduleCaching:
    def test_aes_fast_schedules_cached(self):
        with fastpath.force(True):
            cipher = AES(bytes(16))
            cipher.encrypt_block(bytes(16))
            enc_schedule = cipher._fast_enc
            cipher.encrypt_block(bytes(16))
            assert cipher._fast_enc is enc_schedule
            cipher.decrypt_block(bytes(16))
            dec_schedule = cipher._fast_dec
            cipher.decrypt_block(bytes(16))
            assert cipher._fast_dec is dec_schedule

    def test_des_reverse_schedule_cached(self):
        cipher = DES(bytes(8))
        assert cipher._round_keys_dec == list(reversed(cipher._round_keys))
        first = cipher._round_keys_dec
        cipher.decrypt_block(bytes(8))
        assert cipher._round_keys_dec is first

    def test_int_xor_bytes_matches_loop(self):
        rng = random.Random(7)
        for length in (0, 1, 7, 16, 100):
            a = bytes(rng.randrange(256) for _ in range(length))
            b = bytes(rng.randrange(256) for _ in range(length))
            assert xor_bytes(a, b) == bytes(x ^ y for x, y in zip(a, b))
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")


def test_des_crypt_block_int_api():
    # The int-level kernel used by 3DES fusion round-trips directly.
    key = bytes.fromhex("133457799BBCDFF1")
    keys = expand_key(key)
    block = 0x0123456789ABCDEF
    ct = fastpath.des_crypt_block(block, keys)
    assert int_to_bytes(ct, 8).hex().upper() == "85E813540F0AB405"
    assert fastpath.des_crypt_block(ct, list(reversed(keys))) == block
    assert bytes_to_int(int_to_bytes(ct, 8)) == ct
