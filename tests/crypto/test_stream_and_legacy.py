"""RC4, RC2, and 3DES: published vectors and behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import DES
from repro.crypto.errors import InvalidBlockSize, InvalidKeyLength
from repro.crypto.rc2 import RC2
from repro.crypto.rc4 import RC4
from repro.crypto.tdes import TripleDES


class TestRC4Vectors:
    """The de-facto RC4 test vectors (Wikipedia / original posting)."""

    @pytest.mark.parametrize("key,plaintext,expected", [
        (b"Key", b"Plaintext", "BBF316E8D940AF0AD3"),
        (b"Wiki", b"pedia", "1021BF0420"),
        (b"Secret", b"Attack at dawn", "45A01F645FC35B383552544B9BF5"),
    ])
    def test_known_answers(self, key, plaintext, expected):
        assert RC4(key).process(plaintext).hex().upper() == expected

    def test_keystream_continuation(self):
        # Two chunked calls equal one big call.
        whole = RC4(b"Key").keystream(32)
        chunked = RC4(b"Key")
        assert chunked.keystream(10) + chunked.keystream(22) == whole

    def test_symmetric(self):
        data = b"stream cipher round trip"
        assert RC4(b"k1").process(RC4(b"k1").process(data)) == data

    def test_key_length_limits(self):
        with pytest.raises(InvalidKeyLength):
            RC4(b"")
        with pytest.raises(InvalidKeyLength):
            RC4(bytes(257))

    def test_iterator_interface(self):
        stream = iter(RC4(b"Key"))
        first_two = [next(stream), next(stream)]
        assert first_two == list(RC4(b"Key").keystream(2))


class TestRC2Vectors:
    """RFC 2268 Section 5 test vectors (including effective-bits)."""

    @pytest.mark.parametrize("key,effective,pt,ct", [
        ("0000000000000000", 63, "0000000000000000", "ebb773f993278eff"),
        ("ffffffffffffffff", 64, "ffffffffffffffff", "278b27e42e2f0d49"),
        ("3000000000000000", 64, "1000000000000001", "30649edf9be7d2c2"),
        ("88", 64, "0000000000000000", "61a8a244adacccf0"),
        ("88bca90e90875a", 64, "0000000000000000", "6ccf4308974c267f"),
        ("88bca90e90875a7f0f79c384627bafb2", 64, "0000000000000000",
         "1a807d272bbe5db1"),
        ("88bca90e90875a7f0f79c384627bafb2", 128, "0000000000000000",
         "2269552ab0f85ca6"),
    ])
    def test_known_answers(self, key, effective, pt, ct):
        cipher = RC2(bytes.fromhex(key), effective)
        assert cipher.encrypt_block(bytes.fromhex(pt)).hex() == ct
        assert cipher.decrypt_block(bytes.fromhex(ct)).hex() == pt

    def test_default_effective_bits(self):
        assert RC2(bytes(16)).effective_bits == 128

    def test_effective_bits_matter(self):
        strong = RC2(bytes(16), 128).encrypt_block(bytes(8))
        export = RC2(bytes(16), 40).encrypt_block(bytes(8))
        assert strong != export

    def test_key_length_limits(self):
        with pytest.raises(InvalidKeyLength):
            RC2(b"")
        with pytest.raises(InvalidKeyLength):
            RC2(bytes(129))

    def test_block_size_enforced(self):
        with pytest.raises(InvalidBlockSize):
            RC2(bytes(16)).encrypt_block(bytes(7))


class TestTripleDES:
    def test_degenerate_single_key_equals_des(self):
        key = bytes.fromhex("133457799BBCDFF1")
        block = bytes.fromhex("0123456789ABCDEF")
        assert TripleDES(key).encrypt_block(block) == \
            DES(key).encrypt_block(block)

    def test_two_key_form(self):
        key16 = bytes(range(16))
        key24 = key16 + key16[:8]  # K3 = K1
        block = b"ABCDEFGH"
        assert TripleDES(key16).encrypt_block(block) == \
            TripleDES(key24).encrypt_block(block)

    def test_three_key_roundtrip(self):
        cipher = TripleDES(bytes(range(24)))
        assert cipher.decrypt_block(cipher.encrypt_block(b"12345678")) == \
            b"12345678"

    def test_distinct_keys_change_output(self):
        block = b"payloads"
        a = TripleDES(bytes(24)).encrypt_block(block)
        # Flip a non-parity key bit (bit 0 of each byte is parity in DES).
        b = TripleDES(bytes([2]) + bytes(23)).encrypt_block(block)
        assert a != b

    def test_invalid_key_length(self):
        with pytest.raises(InvalidKeyLength):
            TripleDES(bytes(12))


@settings(max_examples=30, deadline=None)
@given(key=st.binary(min_size=1, max_size=64),
       data=st.binary(max_size=200))
def test_rc4_roundtrip_property(key, data):
    assert RC4(key).process(RC4(key).process(data)) == data


@settings(max_examples=30, deadline=None)
@given(key=st.binary(min_size=1, max_size=32),
       block=st.binary(min_size=8, max_size=8))
def test_rc2_roundtrip_property(key, block):
    cipher = RC2(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=20, deadline=None)
@given(key=st.binary(min_size=24, max_size=24),
       block=st.binary(min_size=8, max_size=8))
def test_tdes_roundtrip_property(key, block):
    cipher = TripleDES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
