"""KEA dual Diffie-Hellman key exchange."""

import pytest

from repro.crypto.dh import DHGroup
from repro.crypto.errors import ParameterError
from repro.crypto.kea import KEAKeyPair, KEAParty
from repro.crypto.rng import DeterministicDRBG


@pytest.fixture(scope="module")
def group():
    return DHGroup.oakley1()


@pytest.fixture()
def parties(group):
    alice = KEAParty(group, DeterministicDRBG("kea-alice"))
    bob = KEAParty(group, DeterministicDRBG("kea-bob"))
    return alice, bob


class TestKEA:
    def test_agreement(self, parties):
        alice, bob = parties
        alice_secret = alice.shared_secret(bob.static.public,
                                           bob.ephemeral.public)
        bob_secret = bob.shared_secret(alice.static.public,
                                       alice.ephemeral.public)
        assert alice_secret == bob_secret

    def test_shared_key_derivation(self, parties):
        alice, bob = parties
        assert alice.shared_key(bob.static.public, bob.ephemeral.public,
                                24) == \
            bob.shared_key(alice.static.public, alice.ephemeral.public, 24)

    def test_ephemeral_refresh_changes_key(self, parties):
        alice, bob = parties
        first = alice.shared_key(bob.static.public, bob.ephemeral.public)
        bob_new_public = bob.new_exchange()
        alice.new_exchange()
        second = alice.shared_key(bob.static.public, bob_new_public)
        assert first != second  # freshness from the ephemeral half

    def test_static_half_authenticates(self, group, parties):
        """A MITM substituting its own static key changes the secret —
        the property that lets certificates authenticate the exchange."""
        alice, bob = parties
        mallory = KEAParty(group, DeterministicDRBG("kea-mallory"))
        legit = alice.shared_secret(bob.static.public, bob.ephemeral.public)
        spoofed = alice.shared_secret(mallory.static.public,
                                      bob.ephemeral.public)
        assert legit != spoofed

    @pytest.mark.parametrize("degenerate", [0, 1])
    def test_degenerate_static_rejected(self, parties, degenerate):
        alice, bob = parties
        with pytest.raises(ParameterError):
            alice.shared_secret(degenerate, bob.ephemeral.public)

    def test_degenerate_ephemeral_rejected(self, group, parties):
        alice, bob = parties
        with pytest.raises(ParameterError):
            alice.shared_secret(bob.static.public, group.p - 1)

    def test_keypair_generation_in_range(self, group):
        pair = KEAKeyPair.generate(group, DeterministicDRBG("kp"))
        assert 0 < pair.public < group.p
        assert 2 <= pair.private <= group.p - 2

    def test_deterministic_from_seed(self, group):
        a = KEAParty(group, DeterministicDRBG("same-seed"))
        b = KEAParty(group, DeterministicDRBG("same-seed"))
        assert a.static.public == b.static.public
