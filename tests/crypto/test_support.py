"""Bitops, CRC-32, padding, modes, RNG, registry, trace recorder."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.bitops import (
    bytes_to_int,
    constant_time_compare,
    hamming_distance,
    hamming_weight,
    int_to_bytes,
    iter_bits_msb,
    permute_bits,
    rotl16,
    rotl32,
    rotr16,
    rotr32,
    split_blocks,
    xor_bytes,
)
from repro.crypto.crc import crc32, crc32_bytes, crc32_combine_xor
from repro.crypto.des import DES
from repro.crypto.errors import PaddingError, ParameterError, RandomnessError
from repro.crypto.modes import CBC, CTR, ECB
from repro.crypto.padding import esp_pad, esp_unpad, pkcs7_pad, pkcs7_unpad
from repro.crypto.registry import (
    UnknownAlgorithm,
    aes_rollout,
    default_registry,
)
from repro.crypto.rng import DeterministicDRBG, HardwareTRNG
from repro.crypto.trace import TraceRecorder


class TestBitops:
    def test_rotations(self):
        assert rotl32(0x80000000, 1) == 1
        assert rotr32(1, 1) == 0x80000000
        assert rotl32(0x12345678, 0) == 0x12345678
        assert rotl16(0x8000, 1) == 1
        assert rotr16(1, 1) == 0x8000

    def test_rotation_inverse(self):
        for amount in range(33):
            assert rotr32(rotl32(0xDEADBEEF, amount), amount) == 0xDEADBEEF

    def test_int_bytes_roundtrip(self):
        assert bytes_to_int(int_to_bytes(123456, 4)) == 123456

    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
        with pytest.raises(ValueError):
            xor_bytes(b"a", b"ab")

    def test_permute_identity(self):
        identity = tuple(range(1, 9))
        assert permute_bits(0xA5, identity, 8) == 0xA5

    def test_permute_reverse(self):
        reverse = tuple(range(8, 0, -1))
        assert permute_bits(0b10000000, reverse, 8) == 0b00000001

    def test_hamming(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0xFF) == 8
        assert hamming_distance(0b1010, 0b0101) == 4

    def test_split_blocks(self):
        assert split_blocks(b"abcdefgh", 4) == [b"abcd", b"efgh"]
        with pytest.raises(ValueError):
            split_blocks(b"abcde", 4)

    def test_iter_bits_msb(self):
        assert list(iter_bits_msb(0b101, 3)) == [1, 0, 1]

    def test_constant_time_compare(self):
        assert constant_time_compare(b"same", b"same")
        assert not constant_time_compare(b"same", b"diff")
        assert not constant_time_compare(b"short", b"longer")


class TestCRC:
    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(max_size=300))
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_little_endian_encoding(self):
        assert crc32_bytes(b"x") == zlib.crc32(b"x").to_bytes(4, "little")

    @settings(max_examples=30, deadline=None)
    @given(a=st.binary(min_size=5, max_size=40))
    def test_linearity(self, a):
        b = bytes(len(a))  # same length zero message
        delta = bytes((x + 1) % 256 for x in a)
        xored = bytes(x ^ d for x, d in zip(a, delta))
        assert crc32(xored) == crc32_combine_xor(
            crc32(a), crc32(delta), crc32(b))


class TestPadding:
    @settings(max_examples=40, deadline=None)
    @given(data=st.binary(max_size=100),
           block=st.integers(min_value=1, max_value=32))
    def test_pkcs7_roundtrip(self, data, block):
        assert pkcs7_unpad(pkcs7_pad(data, block), block) == data

    def test_pkcs7_always_pads(self):
        assert len(pkcs7_pad(b"12345678", 8)) == 16

    def test_pkcs7_rejects_bad_padding(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"AAAAAAA\x05", 8)
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"AAAAAAA\x00", 8)
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"", 8)

    def test_pkcs7_block_size_limits(self):
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", 0)
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", 256)

    @settings(max_examples=40, deadline=None)
    @given(data=st.binary(max_size=100),
           block=st.integers(min_value=2, max_value=32))
    def test_esp_roundtrip(self, data, block):
        padded = esp_pad(data, block)
        assert len(padded) % block == 0
        assert esp_unpad(padded) == data

    def test_esp_rejects_tamper(self):
        padded = bytearray(esp_pad(b"payload", 8))
        if padded[-1] > 0:
            padded[-2] ^= 0xFF
            with pytest.raises(PaddingError):
                esp_unpad(bytes(padded))

    def test_esp_rejects_overlong_length(self):
        with pytest.raises(PaddingError):
            esp_unpad(b"\xff")


class TestModes:
    def test_ecb_known_structure(self):
        cipher = AES(bytes(16))
        double = ECB(cipher).encrypt(bytes(32))
        assert double[:16] == double[16:]  # ECB leaks equal blocks

    def test_cbc_hides_equal_blocks(self):
        cbc = CBC(AES(bytes(16)), bytes(16))
        ct = cbc.encrypt(bytes(32))
        assert ct[:16] != ct[16:32]

    def test_cbc_roundtrip_des(self):
        iv = bytes(range(8))
        data = b"some arbitrary-length plaintext.."
        ct = CBC(DES(bytes(8)), iv).encrypt(data)
        assert CBC(DES(bytes(8)), iv).decrypt(ct) == data

    def test_cbc_iv_length_enforced(self):
        with pytest.raises(ParameterError):
            CBC(AES(bytes(16)), bytes(8))

    def test_cbc_ciphertext_alignment_enforced(self):
        from repro.crypto.errors import InvalidBlockSize

        with pytest.raises(InvalidBlockSize):
            CBC(AES(bytes(16)), bytes(16)).decrypt(b"odd-length-data")

    def test_cbc_empty_ciphertext_is_padding_error(self):
        # Regression: used to raise a misleading InvalidBlockSize —
        # b"" *is* block-aligned; what's wrong is the missing padding.
        with pytest.raises(PaddingError, match="empty ciphertext"):
            CBC(AES(bytes(16)), bytes(16)).decrypt(b"")

    def test_cbc_empty_ciphertext_ok_without_padding(self):
        assert CBC(AES(bytes(16)), bytes(16)).decrypt(b"", pad=False) == b""

    def test_cbc_iv_reuse_warns(self):
        cbc = CBC(AES(bytes(16)), bytes(16))
        cbc.encrypt(b"first message...")
        with pytest.warns(RuntimeWarning, match="reusing the IV"):
            cbc.encrypt(b"second message..")

    def test_ctr_stream_roundtrip(self):
        data = b"counter mode handles ragged lengths"
        a = CTR(AES(bytes(16)), bytes(16))
        b = CTR(AES(bytes(16)), bytes(16))
        assert b.process(a.process(data)) == data

    def test_ctr_nonce_length_enforced(self):
        with pytest.raises(ParameterError):
            CTR(AES(bytes(16)), bytes(4))

    @settings(max_examples=25, deadline=None)
    @given(data=st.binary(max_size=200), key=st.binary(min_size=16,
                                                       max_size=16))
    def test_cbc_roundtrip_property(self, data, key):
        iv = bytes(16)
        assert CBC(AES(key), iv).decrypt(CBC(AES(key), iv).encrypt(data)) \
            == data


class TestDRBG:
    def test_deterministic(self):
        assert DeterministicDRBG(7).random_bytes(32) == \
            DeterministicDRBG(7).random_bytes(32)

    def test_seed_types(self):
        for seed in (42, b"bytes", "string"):
            assert len(DeterministicDRBG(seed).random_bytes(8)) == 8

    def test_randrange_bounds(self):
        rng = DeterministicDRBG(1)
        values = [rng.randrange(10, 20) for _ in range(200)]
        assert all(10 <= v < 20 for v in values)
        assert len(set(values)) > 5

    def test_randrange_empty(self):
        with pytest.raises(ValueError):
            DeterministicDRBG(1).randrange(5, 5)

    def test_getrandbits_width(self):
        rng = DeterministicDRBG(2)
        assert all(rng.getrandbits(13) < (1 << 13) for _ in range(100))
        assert rng.getrandbits(0) == 0

    def test_nonzero_bytes(self):
        data = DeterministicDRBG(3).nonzero_bytes(500)
        assert len(data) == 500
        assert 0 not in data

    def test_shuffle_permutes(self):
        rng = DeterministicDRBG(4)
        items = list(range(20))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items

    def test_gauss_moments(self):
        rng = DeterministicDRBG(5)
        samples = [rng.gauss(0.0, 1.0) for _ in range(2000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean) < 0.1
        assert 0.8 < var < 1.2


class TestTRNG:
    def test_healthy_source_produces(self):
        trng = HardwareTRNG(seed=1, bias=0.5)
        data = trng.random_bytes(64)
        assert len(data) == 64

    def test_output_not_obviously_biased(self):
        trng = HardwareTRNG(seed=2, bias=0.5)
        data = trng.random_bytes(512)
        ones = sum(bin(b).count("1") for b in data)
        assert 0.45 < ones / (8 * 512) < 0.55

    def test_debiasing_handles_moderate_bias(self):
        trng = HardwareTRNG(seed=3, bias=0.6)
        data = trng.random_bytes(256)
        ones = sum(bin(b).count("1") for b in data)
        assert 0.45 < ones / (8 * 256) < 0.55  # von Neumann removed bias

    def test_health_test_rejects_stuck_source(self):
        trng = HardwareTRNG(seed=4, bias=0.98)
        with pytest.raises(RandomnessError):
            trng.random_bytes(8)
        assert trng.health_failures == 1

    def test_bias_validation(self):
        with pytest.raises(ValueError):
            HardwareTRNG(bias=1.5)


class TestRegistry:
    def test_2003_baseline(self):
        registry = default_registry()
        assert "3DES" in registry
        assert "RC4" in registry
        assert "AES" not in registry

    def test_aes_rollout(self):
        registry = default_registry()
        aes_rollout(registry)
        info = registry.get("AES")
        assert info.year_introduced == 2001
        cipher = registry.instantiate("AES", bytes(16))
        assert cipher.encrypt_block(bytes(16))

    def test_unknown_algorithm(self):
        with pytest.raises(UnknownAlgorithm):
            default_registry().get("IDEA")

    def test_deprecate(self):
        registry = default_registry()
        registry.deprecate("RC4")
        assert registry.get("RC4").deprecated
        assert "RC4" not in registry.names("stream", include_deprecated=False)

    def test_deprecate_round_trips_every_field(self):
        # Regression: deprecate() used to rebuild AlgorithmInfo by
        # naming fields explicitly, silently dropping any field added
        # later (notes, and whatever comes next).
        import dataclasses

        registry = default_registry()
        before = registry.get("3DES")
        assert before.notes  # the baseline entry carries real metadata
        registry.deprecate("3DES")
        after = registry.get("3DES")
        assert after.deprecated
        for fld in dataclasses.fields(after):
            if fld.name == "deprecated":
                continue
            assert getattr(after, fld.name) == getattr(before, fld.name), fld.name

    def test_kind_filter(self):
        registry = default_registry()
        assert registry.names("hash") == ["MD5", "SHA1"]

    def test_instantiate_hash(self):
        registry = default_registry()
        hasher = registry.instantiate("SHA1")
        assert hasher.update(b"abc").digest().hex().startswith("a9993e36")


class TestTraceRecorder:
    def test_noiseless_power_is_hamming_weight(self):
        recorder = TraceRecorder()
        recorder.record("probe", 0, 0xFF)
        assert recorder.samples[0].power == 8.0

    def test_noise_reproducible(self):
        a = TraceRecorder(noise_sigma=1.0, seed=9)
        b = TraceRecorder(noise_sigma=1.0, seed=9)
        for recorder in (a, b):
            recorder.record("p", 0, 0x0F)
        assert a.samples[0].power == b.samples[0].power

    def test_label_filter(self):
        recorder = TraceRecorder(enabled_labels=frozenset({"keep"}))
        recorder.record("keep", 0, 1)
        recorder.record("drop", 0, 1)
        assert len(recorder) == 1

    def test_grouping_and_totals(self):
        recorder = TraceRecorder()
        recorder.record("a", 0, 0b11)
        recorder.record("b", 0, 0b1)
        assert recorder.total_power() == 3.0
        assert set(recorder.by_label()) == {"a", "b"}
        recorder.clear()
        assert len(recorder) == 0
