"""SHA-1 (FIPS 180-1), MD5 (RFC 1321), HMAC (RFC 2202) vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac import HMAC, hmac, hmac_verify
from repro.crypto.errors import IntegrityError
from repro.crypto.md5 import MD5, md5
from repro.crypto.sha1 import SHA1, sha1


class TestSHA1Vectors:
    @pytest.mark.parametrize("message,digest", [
        (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
        (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
        (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
         "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
        (b"The quick brown fox jumps over the lazy dog",
         "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"),
    ])
    def test_known_answers(self, message, digest):
        assert sha1(message).hex() == digest

    def test_million_a(self):
        assert sha1(b"a" * 1_000_000).hex() == \
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"

    def test_incremental_matches_oneshot(self):
        message = b"incremental hashing across block boundaries " * 7
        hasher = SHA1()
        for offset in range(0, len(message), 13):
            hasher.update(message[offset:offset + 13])
        assert hasher.digest() == sha1(message)

    def test_digest_non_destructive(self):
        hasher = SHA1(b"abc")
        first = hasher.digest()
        assert hasher.digest() == first
        hasher.update(b"def")
        assert hasher.digest() == sha1(b"abcdef")

    def test_copy_independence(self):
        hasher = SHA1(b"abc")
        clone = hasher.copy()
        hasher.update(b"XYZ")
        assert clone.digest() == sha1(b"abc")

    def test_padding_boundary_lengths(self):
        # 55, 56, 63, 64 bytes straddle the length-field boundary.
        for length in (55, 56, 63, 64, 119, 120):
            message = b"Q" * length
            hasher = SHA1()
            hasher.update(message[:30])
            hasher.update(message[30:])
            assert hasher.digest() == sha1(message)


class TestMD5Vectors:
    @pytest.mark.parametrize("message,digest", [
        (b"", "d41d8cd98f00b204e9800998ecf8427e"),
        (b"a", "0cc175b9c0f1b6a831c399e269772661"),
        (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
        (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
        (b"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
        (b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
         "d174ab98d277d9f5a5611c2c9f419d9f"),
        (b"1234567890" * 8,
         "57edf4a22be3c955ac49da2e2107b67a"),
    ])
    def test_rfc1321_suite(self, message, digest):
        assert md5(message).hex() == digest

    def test_incremental_matches_oneshot(self):
        message = bytes(range(256)) * 3
        hasher = MD5()
        for offset in range(0, len(message), 17):
            hasher.update(message[offset:offset + 17])
        assert hasher.digest() == md5(message)

    def test_copy_independence(self):
        hasher = MD5(b"abc")
        clone = hasher.copy()
        hasher.update(b"XYZ")
        assert clone.digest() == md5(b"abc")


class TestHMACVectors:
    """RFC 2202 test cases."""

    def test_sha1_case1(self):
        assert hmac(b"\x0b" * 20, b"Hi There").hex() == \
            "b617318655057264e28bc0b6fb378c8ef146be00"

    def test_sha1_case2(self):
        assert hmac(b"Jefe", b"what do ya want for nothing?").hex() == \
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"

    def test_sha1_case3(self):
        assert hmac(b"\xaa" * 20, b"\xdd" * 50).hex() == \
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"

    def test_sha1_long_key(self):
        assert hmac(
            b"\xaa" * 80,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        ).hex() == "aa4ae5e15272d00e95705637ce8a3b55ed402112"

    def test_md5_case1(self):
        assert hmac(b"\x0b" * 16, b"Hi There", MD5).hex() == \
            "9294727a3638bb1c13f48ef8158bfc9d"

    def test_md5_case2(self):
        assert hmac(b"Jefe", b"what do ya want for nothing?", MD5).hex() == \
            "750c783e6ab0b503eaa86e310a5db738"

    def test_incremental_interface(self):
        mac = HMAC(b"key").update(b"part one ").update(b"part two")
        assert mac.digest() == hmac(b"key", b"part one part two")

    def test_verify_accepts_valid(self):
        tag = hmac(b"key", b"message")
        hmac_verify(b"key", b"message", tag)  # should not raise

    def test_verify_rejects_tamper(self):
        tag = bytearray(hmac(b"key", b"message"))
        tag[0] ^= 1
        with pytest.raises(IntegrityError):
            hmac_verify(b"key", b"message", bytes(tag))

    def test_verify_rejects_wrong_length(self):
        with pytest.raises(IntegrityError):
            hmac_verify(b"key", b"message", b"short")


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=300))
def test_sha1_matches_hashlib(data):
    import hashlib

    assert sha1(data) == hashlib.sha1(data).digest()


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=300))
def test_md5_matches_hashlib(data):
    import hashlib

    assert md5(data) == hashlib.md5(data).digest()


@settings(max_examples=25, deadline=None)
@given(key=st.binary(max_size=100), data=st.binary(max_size=200))
def test_hmac_matches_stdlib(key, data):
    import hashlib
    import hmac as stdlib_hmac

    assert hmac(key, data) == stdlib_hmac.new(
        key, data, hashlib.sha1).digest()
