"""RFC 6229 (RC4) and RFC 2268 (RC2) official vectors as parametrized
cases, driven from the shared JSON corpus in ``tests/vectors/``.

The conformance runner executes the whole corpus too; these targeted
cases keep the two 2003-era wireless workhorses (WEP's RC4, the export
profile's RC2) visible as individual test IDs in this suite, on both
dispatch paths.
"""

import pytest

from repro.conformance.vectors import PATHS, check_vector, load_corpus
from repro.crypto import fastpath
from repro.crypto.rc2 import RC2
from repro.crypto.rc4 import RC4


def _cases(file_name):
    file = load_corpus().files[file_name]
    return [pytest.param(file, vector, path,
                         id=f"{vector['id']}:{path}")
            for vector in file.vectors for path in PATHS]


@pytest.mark.parametrize("file,vector,path", _cases("rc4_rfc6229"))
def test_rc4_rfc6229(file, vector, path):
    result = check_vector(file, vector, path)
    assert result.ok, result.detail


@pytest.mark.parametrize("file,vector,path", _cases("rc2_rfc2268"))
def test_rc2_rfc2268(file, vector, path):
    result = check_vector(file, vector, path)
    assert result.ok, result.detail


def test_rfc6229_keystream_offsets_are_honoured():
    """The RFC gives keystream windows at offsets deep into the
    stream; make sure the corpus actually encodes non-zero offsets
    (guards against a harness that only ever checks offset 0)."""
    file = load_corpus().files["rc4_rfc6229"]
    offsets = {v.get("offset", 0) for v in file.vectors if "keystream" in v}
    assert 0 in offsets
    assert any(offset >= 240 for offset in offsets)


def test_rfc2268_effective_bits_are_exercised():
    """RFC 2268's vectors vary the effective key length — the corpus
    must cover more than one setting, and the parameter must matter."""
    file = load_corpus().files["rc2_rfc2268"]
    bits = {v["effective_bits"] for v in file.vectors}
    assert len(bits) > 1
    key = bytes.fromhex("88bca90e90875a7f0f79c384627bafb2")
    strong = RC2(key, effective_bits=128).encrypt_block(bytes(8))
    weak = RC2(key, effective_bits=64).encrypt_block(bytes(8))
    assert strong != weak


def test_rc4_paths_agree_on_long_keystream():
    key = bytes.fromhex("0102030405060708090a0b0c0d0e0f10")
    with fastpath.force(True):
        fast = RC4(key).keystream(4112)
    with fastpath.force(False):
        reference = RC4(key).keystream(4112)
    assert fast == reference
