"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction a front door:

* ``figures``        — regenerate every paper figure's data;
* ``figure N``       — one figure only;
* ``attacks``        — run the §3.4 attack/countermeasure suite;
* ``gap``            — the Figure 3 feasibility explorer;
* ``battery``        — the Figure 4 report + battery-gap projection;
* ``appliance``      — provision/boot/unlock/transact walkthrough;
* ``telemetry-report`` — seeded gateway chaos run with the telemetry
  plane on: span-tree roll-up, per-phase energy attribution, metrics
  dump, optional deterministic JSONL / flamegraph exports.
* ``conformance``    — the full conformance plane: official vectors on
  both dispatch paths, differential oracles, the handshake
  state-machine check, the seeded wire-format fuzzer, and replay of
  the committed regression corpus.  Deterministic: same seed, byte-
  identical report.
* ``survivability``  — mixed benign/attack load on one virtual clock:
  four seeded adversary classes against the gateway, exported as a
  byte-stable JSON survivability report (goodput, shed, breaker
  transitions, alerts, attacker-vs-user energy).
* ``failover``       — the sharded gateway fleet under a seeded crash
  sweep that kills every shard at least once: durable checkpoint
  restores, resumption / re-handshake cold recovery, structured
  ``recovering`` sheds, exact energy reconciliation, byte-stable
  JSON report (the CI two-run ``cmp`` gate).
* ``mcommerce``      — the §2 m-commerce workload over a healthy
  fleet: battery-class handsets negotiating the lightweight stream
  suites, heavy-tailed browse/authenticate/purchase traffic, SET
  dual-signature purchases, and millijoules-per-transaction by suite
  and battery class, energy-reconciled and byte-stable.
* ``fleetwatch``     — the same failover run with the fleet
  observability plane riding along: cross-shard journey traces
  stitched through crash/re-home/restore, windowed goodput/latency/
  energy series, and SLO burn-rate alerting — one byte-stable ops
  report, plus optional fleet-scope JSONL / Prometheus / folded
  flamegraph exports.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_figures(args: argparse.Namespace) -> int:
    from .analysis.figures import all_figures

    wanted = getattr(args, "number", None)
    for name, data in all_figures():
        if wanted is not None and name != f"Figure {wanted}":
            continue
        print("=" * 24, name, "=" * 24)
        print(data)
        print()
    return 0


def _cmd_attacks(args: argparse.Namespace) -> int:
    from .attacks.countermeasures import verified_crt_sign
    from .attacks.fault import FaultInjector, bellcore_attack
    from .attacks.power import (
        MaskedAES,
        acquire_aes_traces,
        cpa_attack_aes,
    )
    from .crypto.errors import SignatureError
    from .crypto.rng import DeterministicDRBG
    from .crypto.rsa import generate_keypair

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    print("CPA vs AES:", end=" ")
    result = cpa_attack_aes(acquire_aes_traces(key, 150, seed=1))
    print("key recovered" if result.key == key else "failed")
    print("CPA vs masked AES:", end=" ")
    masked = cpa_attack_aes(
        acquire_aes_traces(key, 150, seed=1, cipher_factory=MaskedAES))
    print("defeated (masking)" if masked.key != key else "BROKEN")

    rsa = generate_keypair(512, DeterministicDRBG("cli-rsa"))
    message = b"cli attack demo"
    faulty = rsa.sign(message, use_crt=True,
                      fault_hook=FaultInjector(seed=1))
    factors = bellcore_attack(rsa.public, message, faulty)
    print("Bellcore fault attack:",
          "modulus factored" if factors else "failed")
    try:
        verified_crt_sign(rsa, message, fault_hook=FaultInjector(seed=2))
        print("CRT verification: BROKEN (faulty signature released)")
    except SignatureError:
        print("CRT verification: faulty signature withheld")
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    from .analysis.report import format_table
    from .core.gap import compute_surface, max_sustainable_rate_mbps
    from .hardware.processors import CATALOG

    surface = compute_surface()
    rows = []
    for processor in CATALOG.values():
        rows.append((
            processor.name, processor.mips,
            f"{surface.feasible_fraction(processor):.0%}",
            f"{max_sustainable_rate_mbps(processor, 0.5):.2f}",
        ))
    print(format_table(
        ("processor", "MIPS", "feasible fraction",
         "max Mbps @0.5s"), rows))
    return 0


def _cmd_battery(args: argparse.Namespace) -> int:
    from .analysis.figures import figure4_data
    from .analysis.report import format_series
    from .core.battery_life import battery_gap_series

    print(figure4_data())
    series = [(year, int(count))
              for year, count in battery_gap_series(years=8)]
    print(format_series("battery gap projection", series,
                        "year", "secure transactions/charge"))
    return 0


def _cmd_appliance(args: argparse.Namespace) -> int:
    from .core.appliance import provision_appliance

    device = provision_appliance(seed=args.seed)
    report = device.boot()
    print(f"boot: {'ok' if report.succeeded else 'FAILED'} "
          f"({', '.join(report.stages_verified)})")
    sample = device._finger_simulator.read("owner")
    print(f"unlock: {device.unlock('owner', sample)}")
    execution = device.run_secure_transaction(kilobytes=1.0)
    print(f"secure transaction: {execution.time_s * 1000:.2f} ms on "
          f"{execution.engine}, battery at "
          f"{device.platform.battery.fraction_remaining:.4%}")
    return 0


def _cmd_telemetry_report(args: argparse.Namespace) -> int:
    from .observability.attribution import phase_energy_mj
    from .observability.export import (
        flamegraph_folds,
        prometheus_text,
        rollup_table,
        span_tree,
        write_jsonl,
    )
    from .observability.scenario import run_gateway_chaos

    result = run_gateway_chaos(
        sessions=args.sessions,
        requests_per_session=args.requests,
        interarrival_s=args.interarrival,
        fault_rate=args.fault_rate,
        seed=args.seed,
    )
    telemetry = result.telemetry

    print("=" * 24, "telemetry report", "=" * 24)
    print(f"trace id: {telemetry.trace_id}  "
          f"(seed {args.seed}, {args.sessions} sessions x "
          f"{args.requests} requests, fault rate {args.fault_rate})")
    print(f"replies: {result.counts}")
    print()

    print("-- span tree (truncated) " + "-" * 37)
    print(span_tree(telemetry, max_spans=args.max_spans))
    print()

    print("-- energy/cycle roll-up " + "-" * 38)
    print(rollup_table(telemetry))
    print()

    print("-- per-phase energy (mJ) " + "-" * 37)
    for phase, mj in sorted(phase_energy_mj(telemetry).items(),
                            key=lambda item: (-item[1], item[0])):
        print(f"  {phase:<24} {mj:.6f}")
    recon = result.reconciliation
    print(f"  attributed {recon.attributed_mj:.6f} mJ vs battery drain "
          f"{recon.battery_drain_mj:.6f} mJ "
          f"(delta {recon.delta_mj:.3e}) -> "
          f"{'reconciled' if recon.ok else 'MISMATCH'}")
    print()

    if args.metrics:
        print("-- metrics " + "-" * 51)
        print(prometheus_text(telemetry))
        print()

    if args.jsonl:
        write_jsonl(telemetry, args.jsonl)
        print(f"wrote deterministic trace to {args.jsonl}")
    if args.folded:
        with open(args.folded, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(flamegraph_folds(telemetry))
        print(f"wrote flamegraph folds to {args.folded}")
    return 0 if recon.ok else 1


def _cmd_conformance(args: argparse.Namespace) -> int:
    from .conformance.runner import format_report, run_conformance

    report = run_conformance(
        seed=args.seed,
        fuzz_iterations=args.fuzz_iterations,
        statemachine_depth=args.depth,
    )
    text = format_report(report)
    print(text, end="")
    if args.report:
        with open(args.report, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(text)
    return 0 if report.ok else 1


def _cmd_survivability(args: argparse.Namespace) -> int:
    from .adversary import run_survivability
    from .analysis.survivability import build_report, format_report

    result = run_survivability(
        sessions=args.sessions,
        requests_per_session=args.requests,
        interarrival_s=args.interarrival,
        attacker_fraction=args.attacker_fraction,
        fault_rate=args.fault_rate,
        seed=args.seed,
    )
    text = format_report(build_report(result))
    print(text, end="")
    if args.report:
        with open(args.report, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(text)
    return 0 if result.reconciliation.ok else 1


def _cmd_failover(args: argparse.Namespace) -> int:
    from .analysis.failover import build_report, format_report
    from .fleet import run_failover

    result = run_failover(
        sessions=args.sessions,
        shards=args.shards,
        requests_per_session=args.requests,
        interarrival_s=args.interarrival,
        seed=args.seed,
    )
    text = format_report(build_report(result))
    print(text, end="")
    if args.report:
        with open(args.report, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(text)
    return 0 if result.reconciliation.ok else 1


def _cmd_mcommerce(args: argparse.Namespace) -> int:
    from .analysis.mcommerce import build_report, format_report
    from .workloads import run_mcommerce

    result = run_mcommerce(
        sessions=args.sessions,
        shards=args.shards,
        seed=args.seed,
        duration_s=args.duration,
    )
    text = format_report(build_report(result))
    print(text, end="")
    if args.report:
        with open(args.report, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(text)
    ok = (result.reconciliation.ok
          and all(p["binding_holds"] for p in result.payments))
    return 0 if ok else 1


def _cmd_fleetwatch(args: argparse.Namespace) -> int:
    from .analysis.fleetwatch import build_report, format_report
    from .observability.export import (
        fleet_flamegraph_folds,
        fleet_jsonl,
        prometheus_text,
    )
    from .observability.fleetwatch import run_fleetwatch

    result = run_fleetwatch(
        sessions=args.sessions,
        shards=args.shards,
        requests_per_session=args.requests,
        interarrival_s=args.interarrival,
        seed=args.seed,
    )
    text = format_report(build_report(result))
    print(text, end="")
    telemetry = result.failover.telemetry
    if args.report:
        with open(args.report, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(text)
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(fleet_jsonl(telemetry, result.store))
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(prometheus_text(telemetry))
    if args.folded:
        with open(args.folded, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(fleet_flamegraph_folds(telemetry, result.store))
    return 0 if result.failover.reconciliation.ok else 1


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Securing Mobile Appliances (DATE 2003) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="regenerate all paper figures")
    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("number", type=int, choices=range(1, 7))
    sub.add_parser("attacks", help="run the attack/countermeasure demos")
    sub.add_parser("gap", help="Figure 3 feasibility explorer")
    sub.add_parser("battery", help="Figure 4 + battery-gap projection")
    appliance = sub.add_parser("appliance",
                               help="provision/boot/transact walkthrough")
    appliance.add_argument("--seed", type=int, default=0)
    telemetry = sub.add_parser(
        "telemetry-report",
        help="gateway chaos run with the telemetry plane on")
    telemetry.add_argument("--sessions", type=int, default=32)
    telemetry.add_argument("--requests", type=int, default=4)
    telemetry.add_argument("--interarrival", type=float, default=0.1)
    telemetry.add_argument("--fault-rate", type=float, default=0.2)
    telemetry.add_argument("--seed", type=int, default=0)
    telemetry.add_argument("--max-spans", type=int, default=60,
                           help="span-tree rows to print")
    telemetry.add_argument("--metrics", action="store_true",
                           help="also dump the Prometheus text format")
    telemetry.add_argument("--jsonl", metavar="PATH", default=None,
                           help="write the deterministic JSONL trace here")
    telemetry.add_argument("--folded", metavar="PATH", default=None,
                           help="write flamegraph-style folded stacks here")
    conformance = sub.add_parser(
        "conformance",
        help="vectors + oracles + state machine + fuzzing, one report")
    conformance.add_argument("--seed", type=int, default=2003)
    conformance.add_argument("--fuzz-iterations", type=int, default=150,
                             help="mutations per fuzz target")
    conformance.add_argument("--depth", type=int, default=4,
                             help="state-machine enumeration depth")
    conformance.add_argument("--report", metavar="PATH", default=None,
                             help="also write the report text here")
    survivability = sub.add_parser(
        "survivability",
        help="mixed benign/attack load -> byte-stable JSON report")
    survivability.add_argument("--sessions", type=int, default=32)
    survivability.add_argument("--requests", type=int, default=4)
    survivability.add_argument("--interarrival", type=float, default=0.1)
    survivability.add_argument("--attacker-fraction", type=float,
                               default=0.5,
                               help="attacker share of total traffic")
    survivability.add_argument("--fault-rate", type=float, default=0.0,
                               help="wired-leg fault probability")
    survivability.add_argument("--seed", type=int, default=2003)
    survivability.add_argument("--report", metavar="PATH", default=None,
                               help="also write the JSON report here")
    failover = sub.add_parser(
        "failover",
        help="sharded-fleet crash sweep -> byte-stable JSON report")
    failover.add_argument("--sessions", type=int, default=24)
    failover.add_argument("--shards", type=int, default=4)
    failover.add_argument("--requests", type=int, default=6)
    failover.add_argument("--interarrival", type=float, default=0.35)
    failover.add_argument("--seed", type=int, default=2003)
    failover.add_argument("--report", metavar="PATH", default=None,
                          help="also write the JSON report here")

    mcommerce = sub.add_parser(
        "mcommerce",
        help="m-commerce workload over the fleet -> byte-stable report")
    mcommerce.add_argument("--sessions", type=int, default=18)
    mcommerce.add_argument("--shards", type=int, default=3)
    mcommerce.add_argument("--duration", type=float, default=1.2,
                           help="virtual arrival window in seconds")
    mcommerce.add_argument("--seed", type=int, default=2003)
    mcommerce.add_argument("--report", metavar="PATH", default=None,
                           help="also write the JSON report here")

    fleetwatch = sub.add_parser(
        "fleetwatch",
        help="watched failover run: traces + windows + SLO burn alerts")
    fleetwatch.add_argument("--sessions", type=int, default=24)
    fleetwatch.add_argument("--shards", type=int, default=4)
    fleetwatch.add_argument("--requests", type=int, default=6)
    fleetwatch.add_argument("--interarrival", type=float, default=0.35)
    fleetwatch.add_argument("--seed", type=int, default=2003)
    fleetwatch.add_argument("--report", metavar="PATH", default=None,
                            help="also write the JSON ops report here")
    fleetwatch.add_argument("--jsonl", metavar="PATH", default=None,
                            help="write the fleet-scope JSONL trace log")
    fleetwatch.add_argument("--metrics", metavar="PATH", default=None,
                            help="write the final Prometheus scrape")
    fleetwatch.add_argument("--folded", metavar="PATH", default=None,
                            help="write shard-rooted folded flame stacks")

    args = parser.parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "figure": _cmd_figures,
        "attacks": _cmd_attacks,
        "gap": _cmd_gap,
        "battery": _cmd_battery,
        "appliance": _cmd_appliance,
        "telemetry-report": _cmd_telemetry_report,
        "conformance": _cmd_conformance,
        "survivability": _cmd_survivability,
        "failover": _cmd_failover,
        "mcommerce": _cmd_mcommerce,
        "fleetwatch": _cmd_fleetwatch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
