"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction a front door:

* ``figures``        — regenerate every paper figure's data;
* ``figure N``       — one figure only;
* ``attacks``        — run the §3.4 attack/countermeasure suite;
* ``gap``            — the Figure 3 feasibility explorer;
* ``battery``        — the Figure 4 report + battery-gap projection;
* ``appliance``      — provision/boot/unlock/transact walkthrough.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_figures(args: argparse.Namespace) -> int:
    from .analysis.figures import all_figures

    wanted = getattr(args, "number", None)
    for name, data in all_figures():
        if wanted is not None and name != f"Figure {wanted}":
            continue
        print("=" * 24, name, "=" * 24)
        print(data)
        print()
    return 0


def _cmd_attacks(args: argparse.Namespace) -> int:
    from .attacks.countermeasures import verified_crt_sign
    from .attacks.fault import FaultInjector, bellcore_attack
    from .attacks.power import (
        MaskedAES,
        acquire_aes_traces,
        cpa_attack_aes,
    )
    from .crypto.errors import SignatureError
    from .crypto.rng import DeterministicDRBG
    from .crypto.rsa import generate_keypair

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    print("CPA vs AES:", end=" ")
    result = cpa_attack_aes(acquire_aes_traces(key, 150, seed=1))
    print("key recovered" if result.key == key else "failed")
    print("CPA vs masked AES:", end=" ")
    masked = cpa_attack_aes(
        acquire_aes_traces(key, 150, seed=1, cipher_factory=MaskedAES))
    print("defeated (masking)" if masked.key != key else "BROKEN")

    rsa = generate_keypair(512, DeterministicDRBG("cli-rsa"))
    message = b"cli attack demo"
    faulty = rsa.sign(message, use_crt=True,
                      fault_hook=FaultInjector(seed=1))
    factors = bellcore_attack(rsa.public, message, faulty)
    print("Bellcore fault attack:",
          "modulus factored" if factors else "failed")
    try:
        verified_crt_sign(rsa, message, fault_hook=FaultInjector(seed=2))
        print("CRT verification: BROKEN (faulty signature released)")
    except SignatureError:
        print("CRT verification: faulty signature withheld")
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    from .analysis.report import format_table
    from .core.gap import compute_surface, max_sustainable_rate_mbps
    from .hardware.processors import CATALOG

    surface = compute_surface()
    rows = []
    for processor in CATALOG.values():
        rows.append((
            processor.name, processor.mips,
            f"{surface.feasible_fraction(processor):.0%}",
            f"{max_sustainable_rate_mbps(processor, 0.5):.2f}",
        ))
    print(format_table(
        ("processor", "MIPS", "feasible fraction",
         "max Mbps @0.5s"), rows))
    return 0


def _cmd_battery(args: argparse.Namespace) -> int:
    from .analysis.figures import figure4_data
    from .analysis.report import format_series
    from .core.battery_life import battery_gap_series

    print(figure4_data())
    series = [(year, int(count))
              for year, count in battery_gap_series(years=8)]
    print(format_series("battery gap projection", series,
                        "year", "secure transactions/charge"))
    return 0


def _cmd_appliance(args: argparse.Namespace) -> int:
    from .core.appliance import provision_appliance

    device = provision_appliance(seed=args.seed)
    report = device.boot()
    print(f"boot: {'ok' if report.succeeded else 'FAILED'} "
          f"({', '.join(report.stages_verified)})")
    sample = device._finger_simulator.read("owner")
    print(f"unlock: {device.unlock('owner', sample)}")
    execution = device.run_secure_transaction(kilobytes=1.0)
    print(f"secure transaction: {execution.time_s * 1000:.2f} ms on "
          f"{execution.engine}, battery at "
          f"{device.platform.battery.fraction_remaining:.4%}")
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Securing Mobile Appliances (DATE 2003) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="regenerate all paper figures")
    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("number", type=int, choices=range(1, 7))
    sub.add_parser("attacks", help="run the attack/countermeasure demos")
    sub.add_parser("gap", help="Figure 3 feasibility explorer")
    sub.add_parser("battery", help="Figure 4 + battery-gap projection")
    appliance = sub.add_parser("appliance",
                               help="provision/boot/transact walkthrough")
    appliance.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "figure": _cmd_figures,
        "attacks": _cmd_attacks,
        "gap": _cmd_gap,
        "battery": _cmd_battery,
        "appliance": _cmd_appliance,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
