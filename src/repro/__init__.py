"""repro — reproduction of "Securing Mobile Appliances: New Challenges
for the System Designer" (Raghunathan, Ravi, Hattangady, Quisquater;
DATE 2003).

The paper is a survey/position paper quantifying the challenges of
securing battery-powered mobile appliances.  This library builds every
system it describes — from-scratch cryptography, the 2003-era protocol
landscape (mini-TLS, WTLS, WEP, IPSec-ESP, GSM-style bearer security,
the WAP gateway), embedded hardware cost/energy models calibrated to
the paper's published numbers, the §3.4 attack simulators with their
countermeasures, and the §4 secure platform architecture — so that
every figure in the paper regenerates from first principles.

Subpackages
-----------
``repro.crypto``
    DES/3DES, AES, RC4, RC2, SHA-1, MD5, HMAC, RSA, DH, modes,
    randomness, the algorithm registry, side-channel instrumentation.
``repro.protocols``
    Record layers, handshakes, cipher-suite negotiation, WTLS, WEP,
    ESP, bearer security, the WAP gateway.
``repro.hardware``
    Processor catalog, instruction/energy cost models, batteries,
    radios, and the §4.2 security-processing architecture ladder.
``repro.attacks``
    Timing, SPA/DPA/CPA, fault induction, WEP breaks, software
    attacks; blinding/masking/verification countermeasures.
``repro.core``
    The figures' models (gap surface, battery life, protocol
    evolution), the concern taxonomy and layer hierarchy, secure
    boot, key storage, the secure execution environment, biometrics,
    DRM, and the composed :class:`~repro.core.appliance.MobileAppliance`.
``repro.analysis``
    Figure regeneration, table rendering, sweep harness.
``repro.observability``
    The unified telemetry plane: virtual-time spans, the metrics
    registry with ledger adapters, energy/cycle attribution, and the
    deterministic exports behind ``python -m repro telemetry-report``.
``repro.conformance``
    The conformance plane: official-vector registry, differential
    oracles, the handshake state-machine model checker, and the
    seeded wire-format fuzzer behind ``python -m repro conformance``.
``repro.fleet``
    The crash-fault-tolerance plane: the sharded gateway fleet on one
    batched scheduler, durable session checkpoints, crash injection,
    and deterministic failover behind ``python -m repro failover``.

Quickstart
----------
>>> from repro.core import provision_appliance
>>> appliance = provision_appliance()
>>> appliance.boot().succeeded
True
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    analysis,
    attacks,
    conformance,
    core,
    crypto,
    fleet,
    hardware,
    observability,
    protocols,
)

__all__ = [
    "crypto", "protocols", "hardware", "attacks", "core", "analysis",
    "observability", "conformance", "fleet", "__version__",
]
