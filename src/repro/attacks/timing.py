"""Timing attack on RSA exponentiation (paper §3.4, refs. [47, 48]).

"Another important class of attacks is the timing attack, which
exploits the observation that the computations performed in some of
the cryptographic algorithms often take different amounts of time on
different inputs."

The victim is :func:`repro.crypto.modmath.modexp_sqm` — left-to-right
square-and-multiply over Montgomery multiplication, whose conditional
final subtraction makes each operation's duration data-dependent.  The
attacker sees only *total* execution time per input (the realistic
observation model) and recovers the private exponent bit by bit, in
the Dhem et al. refinement of Kocher's attack:

1. choose random bases, measure the victim once per base;
2. *residualise* the measurements against the base's Montgomery
   representation (the per-sample bias: every multiply-by-base's
   extra-reduction probability scales with the base, so larger bases
   run systematically longer);
3. for each unknown bit, replay the already-recovered prefix, then
   predict the extra reduction of (a) the hypothesised multiply and
   the following square under bit=1 and (b) the following square under
   bit=0; the hypothesis whose predicted events actually correlate
   with the residual times wins;
4. keep per-bit decision margins; if the final exponent fails the
   attacker's verifier, flip the lowest-margin decisions one at a time
   and recompute downstream (the standard error-recovery step).

The module also demonstrates the SPA-style leak that the operation
*count* of square-and-multiply reveals the exponent's Hamming weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..crypto.modmath import MontgomeryContext, OperationTimer, modexp_sqm
from ..crypto.rng import DeterministicDRBG

TimingOracle = Callable[[int], float]


def measure_sqm(base: int, exponent: int, modulus: int) -> float:
    """A victim device: run the leaky exponentiation, return its time."""
    timer = OperationTimer()
    modexp_sqm(base, exponent, modulus, timer)
    return float(timer.total)


@dataclass
class TimingAttackResult:
    """Outcome of a timing-attack run."""

    recovered_exponent: Optional[int]
    bits_recovered: int
    samples_used: int
    retries_used: int
    margins: List[float]  # per-bit |score difference|, decision confidence

    @property
    def succeeded(self) -> bool:
        """True when the full exponent was recovered and verified."""
        return self.recovered_exponent is not None


class TimingAttack:
    """Recovers a secret exponent from total-time measurements.

    Parameters
    ----------
    modulus:
        The public RSA modulus (attacker knowledge).
    oracle:
        Callable mapping a chosen base to the victim's measured
        execution time for ``base ** d mod n``.
    verifier:
        Callable ``(candidate_exponent) -> bool`` confirming a full
        recovery — e.g. checking a captured plaintext/output pair
        against the public parameters, as a real adversary would.
    """

    def __init__(self, modulus: int, oracle: TimingOracle,
                 verifier: Callable[[int], bool]) -> None:
        self.modulus = modulus
        self.oracle = oracle
        self.verifier = verifier

    # -- public entry ---------------------------------------------------------

    def run(self, exponent_bits: int, samples: int = 800,
            seed: int = 1, max_retries: int = 12) -> TimingAttackResult:
        """Recover an exponent of known bit length."""
        rng = DeterministicDRBG(("timing-attack", seed).__repr__())
        bases = [rng.randrange(2, self.modulus - 1) for _ in range(samples)]
        times = [self.oracle(base) for base in bases]
        ctx = MontgomeryContext(self.modulus)
        base_monts = [ctx.to_mont(base) for base in bases]
        rtimes = _residualise(times, base_monts, ctx.n)
        initial_states = []
        for base_mont in base_monts:
            acc = ctx.to_mont(1)
            acc = ctx.mul(acc, acc)
            acc = ctx.mul(acc, base_mont)
            initial_states.append(acc)

        bits, margins, checkpoints = self._decide_bits(
            ctx, base_monts, rtimes, initial_states, exponent_bits - 2
        )
        candidate = self._finish(bits)
        if candidate is not None:
            return TimingAttackResult(candidate, exponent_bits, samples, 0, margins)

        # Error recovery: flip lowest-margin decisions, recompute onward.
        order = sorted(range(len(bits)), key=lambda i: margins[i])
        for retry, flip_at in enumerate(order[:max_retries], start=1):
            forced = bits[:flip_at] + [1 - bits[flip_at]]
            tail_states = [
                ctx.mul(s, s) for s in checkpoints[flip_at]
            ]
            if forced[-1]:
                tail_states = [
                    ctx.mul(s, bm) for s, bm in zip(tail_states, base_monts)
                ]
            more_bits, more_margins, _ = self._decide_bits(
                ctx, base_monts, rtimes, tail_states,
                exponent_bits - 2 - len(forced),
            )
            candidate = self._finish(forced + more_bits)
            if candidate is not None:
                return TimingAttackResult(
                    candidate, exponent_bits, samples, retry,
                    margins[:flip_at] + [0.0] + more_margins,
                )
        return TimingAttackResult(None, 0, samples, max_retries, margins)

    # -- internals --------------------------------------------------------------

    def _decide_bits(self, ctx: MontgomeryContext, base_monts: List[int],
                     rtimes: List[float], states: List[int], count: int):
        """Sequentially decide ``count`` bits from the given replay state.

        Returns (bits, margins, checkpoints) where ``checkpoints[i]`` is
        the per-sample state *before* bit i was applied.
        """
        bits: List[int] = []
        margins: List[float] = []
        checkpoints: List[List[int]] = []
        accs = states
        for _ in range(count):
            checkpoints.append(accs)
            pred_mult, pred_sq1, pred_sq0 = [], [], []
            squared, states1 = [], []
            for acc, base_mont in zip(accs, base_monts):
                acc_sq = ctx.mul(acc, acc)
                squared.append(acc_sq)
                state1 = ctx.mul(acc_sq, base_mont)
                states1.append(state1)
                pred_mult.append(_has_extra_reduction(ctx, acc_sq, base_mont))
                pred_sq1.append(_has_extra_reduction(ctx, state1, state1))
                pred_sq0.append(_has_extra_reduction(ctx, acc_sq, acc_sq))
            score1 = (
                _mean_difference(rtimes, pred_mult)
                + _mean_difference(rtimes, pred_sq1)
            ) / 2.0
            score0 = _mean_difference(rtimes, pred_sq0)
            bit = 1 if score1 > score0 else 0
            bits.append(bit)
            margins.append(abs(score1 - score0))
            accs = states1 if bit else squared
        return bits, margins, checkpoints

    def _finish(self, bits: List[int]) -> Optional[int]:
        """Append the final (timing-blind) bit and verify."""
        exponent = 1
        for bit in bits:
            exponent = (exponent << 1) | bit
        for last_bit in (1, 0):
            candidate = (exponent << 1) | last_bit
            if self.verifier(candidate):
                return candidate
        return None


def _residualise(times: List[float], base_monts: List[int],
                 modulus: int) -> List[float]:
    """Remove the linear dependence of total time on the base size."""
    xs = [bm / modulus for bm in base_monts]
    mean_x = sum(xs) / len(xs)
    mean_t = sum(times) / len(times)
    covariance = sum((x - mean_x) * (t - mean_t) for x, t in zip(xs, times))
    variance = sum((x - mean_x) ** 2 for x in xs)
    slope = covariance / variance if variance else 0.0
    return [t - mean_t - slope * (x - mean_x) for x, t in zip(xs, times)]


def _mean_difference(times: List[float], predictions: List[bool]) -> float:
    """Mean time of predicted-event samples minus the others."""
    group1 = [t for t, p in zip(times, predictions) if p]
    group0 = [t for t, p in zip(times, predictions) if not p]
    if not group1 or not group0:
        return 0.0
    return sum(group1) / len(group1) - sum(group0) / len(group0)


def _has_extra_reduction(ctx: MontgomeryContext, a: int, b: int) -> bool:
    """Would ``mont_mul(a, b)`` take the conditional final subtraction?"""
    t = a * b
    m = (t * ctx.n_prime) & ctx.r_mask
    return (t + m * ctx.n) >> ctx.k >= ctx.n


def exponent_hamming_weight_from_trace(per_operation: List[float],
                                       exponent_bits: int) -> int:
    """The SPA-style leak: operation *count* reveals the exponent's
    Hamming weight.

    ``modexp_sqm`` executes ``bits`` squarings + ``weight`` multiplies
    + 3 Montgomery conversions, so an attacker counting operations in a
    single power trace learns ``weight`` exactly.
    """
    return len(per_operation) - exponent_bits - 3


def rsa_verifier(public_n: int, public_e: int,
                 probe: Tuple[int, int]) -> Callable[[int], bool]:
    """Build a verifier from one known (plaintext, victim-output) pair."""
    plaintext, observed = probe

    def verify(candidate_d: int) -> bool:
        return pow(plaintext, candidate_d, public_n) == observed

    return verify
