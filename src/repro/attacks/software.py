"""Software attacks against the secure execution environment (§3.4).

"Software attacks are based on malicious software being run on the
mobile appliance ... The likelihood of software attacks tends to be
high in systems such as mobile terminals, where application software
is frequently down-loaded from the Internet."  The paper's taxonomy:

* **privacy attacks** — disclosure of confidential information (the
  trojan trying to steal keys from the key store);
* **integrity attacks** — manipulation of sensitive data or processes
  (patching an installed application, tampering a boot stage);
* **availability attacks** — denial of access to system resources
  (invocation flooding).

Each attack here is a genuine malicious payload run *through* the
environment's enforcement path (:mod:`repro.core.secure_execution`),
so the outcome — blocked, detected, or contained — is computed, not
asserted.  Results feed the T-benches and the software-attack tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.secure_boot import BootStage, SecureBootROM
from ..core.secure_execution import (
    InvocationBudgetExceeded,
    MeasurementMismatch,
    SecureExecutionEnvironment,
    SecurityViolation,
    TrustedApplication,
)


@dataclass
class AttackOutcome:
    """What happened when the attack ran."""

    attack: str
    category: str           # privacy / integrity / availability
    blocked: bool
    detail: str
    loot: Optional[bytes] = None  # anything the attacker exfiltrated


def trojan_key_theft(env: SecureExecutionEnvironment,
                     key_name: str) -> AttackOutcome:
    """Privacy attack: a downloaded app tries to use a protected key.

    The trojan installs itself (unsigned, hence NORMAL world) and asks
    the API to sign with the victim key — the §3.4 "trojan horse
    applications trying to steal data (e.g., cryptographic keys) from
    a security application".
    """
    stolen: List[bytes] = []

    def payload(api):
        stolen.append(api.sign(key_name, b"attacker-controlled"))

    trojan = TrustedApplication(
        name="free-ringtones", payload=b"totally legitimate app",
        entry=payload,
    )
    env.install(trojan)  # normal world: no signature needed
    try:
        env.invoke("free-ringtones")
    except SecurityViolation as exc:
        return AttackOutcome(
            attack="trojan key theft", category="privacy", blocked=True,
            detail=str(exc),
        )
    return AttackOutcome(
        attack="trojan key theft", category="privacy", blocked=False,
        detail="trojan obtained a signature with the protected key",
        loot=stolen[0] if stolen else None,
    )


def application_patching(env: SecureExecutionEnvironment,
                         vendor_key, key_name: str) -> AttackOutcome:
    """Integrity attack: patch a trusted app after installation.

    A legitimate signed banking app is installed into the secure
    world; the attacker then modifies its payload in storage (flash
    rewrite).  Run-time re-measurement must refuse to execute it.
    """
    from ..core.secure_execution import sign_application

    def payload(api):
        return api.sign(key_name, b"pay merchant 10.00")

    app = sign_application(
        vendor_key, "banking", b"signed banking app v1.0", payload)
    from ..core.keystore import World

    env.install(app, world=World.SECURE)
    # The attack: patch the stored payload (code bytes) in place.
    app.payload = b"signed banking app v1.0 + skimmer"
    try:
        env.invoke("banking")
    except MeasurementMismatch as exc:
        return AttackOutcome(
            attack="application patching", category="integrity",
            blocked=True, detail=str(exc),
        )
    return AttackOutcome(
        attack="application patching", category="integrity", blocked=False,
        detail="patched application executed in the secure world",
    )


def invocation_flood(env: SecureExecutionEnvironment,
                     flood_size: int = 10_000) -> AttackOutcome:
    """Availability attack: exhaust a service by invoke flooding.

    The watchdog budget must contain the flood (and log it) rather
    than letting the app starve the device.
    """
    calls = {"count": 0}

    def payload(api):
        calls["count"] += 1

    flooder = TrustedApplication(
        name="flooder", payload=b"busy loop", entry=payload)
    env.install(flooder)
    try:
        for _ in range(flood_size):
            env.invoke("flooder")
    except InvocationBudgetExceeded as exc:
        return AttackOutcome(
            attack="invocation flood", category="availability", blocked=True,
            detail=f"contained after {calls['count']} calls: {exc}",
        )
    return AttackOutcome(
        attack="invocation flood", category="availability", blocked=False,
        detail=f"all {calls['count']} calls executed unchecked",
    )


def firmware_tampering(boot_rom: SecureBootROM,
                       chain: List[BootStage]) -> AttackOutcome:
    """Integrity attack on the boot chain: flip one bit of the kernel.

    Secure boot must refuse to bring the device up.
    """
    tampered = list(chain)
    victim = tampered[1]
    patched_image = bytes([victim.image[0] ^ 0x01]) + victim.image[1:]
    tampered[1] = BootStage(
        name=victim.name, image=patched_image, signature=victim.signature)
    report = boot_rom.boot(tampered)
    if not report.succeeded:
        return AttackOutcome(
            attack="firmware tampering", category="integrity", blocked=True,
            detail=report.failure or "boot refused",
        )
    return AttackOutcome(
        attack="firmware tampering", category="integrity", blocked=False,
        detail="tampered kernel booted",
    )


def unsigned_secure_install(env: SecureExecutionEnvironment) -> AttackOutcome:
    """Privilege escalation: install unsigned code into the secure world."""
    from ..core.keystore import World

    rogue = TrustedApplication(
        name="rogue-tee-app", payload=b"give me the keys",
        entry=lambda api: None, signature=b"\x00" * 64,
    )
    try:
        env.install(rogue, world=World.SECURE)
    except SecurityViolation as exc:
        return AttackOutcome(
            attack="unsigned secure install", category="integrity",
            blocked=True, detail=str(exc),
        )
    return AttackOutcome(
        attack="unsigned secure install", category="integrity",
        blocked=False, detail="unsigned code admitted to the secure world",
    )


def run_standard_campaign(env: SecureExecutionEnvironment, vendor_key,
                          boot_rom: SecureBootROM, chain: List[BootStage],
                          key_name: str) -> List[AttackOutcome]:
    """The full §3.4 software-attack campaign; all must come back blocked."""
    return [
        trojan_key_theft(env, key_name),
        application_patching(env, vendor_key, key_name),
        invocation_flood(env),
        firmware_tampering(boot_rom, chain),
        unsigned_secure_install(env),
    ]
