"""Attack simulators and countermeasures for §3.4's threat taxonomy.

Physical/side-channel attacks (timing, SPA/DPA/CPA, fault induction)
run against the *instrumented implementations* in :mod:`repro.crypto`;
protocol attacks run against our own WEP stack; software attacks run
through the enforcement paths of :mod:`repro.core.secure_execution`.
Every attack's success or failure is computed by doing it, and each
has a paired countermeasure demonstrated to defeat it.
"""

from .countermeasures import (
    BlindedRSA,
    constant_time_decrypt_raw,
    verified_crt_sign,
)
from .fault import (
    FaultInjector,
    bellcore_attack,
    differential_fault_attack,
    recover_private_key,
)
from .padding_oracle import (
    OracleStats,
    decrypt_block,
    make_wtls_oracle,
    recover_plaintext,
)
from .power import (
    CPAResult,
    DPAResult,
    MaskedAES,
    acquire_aes_traces,
    acquire_des_traces,
    cpa_attack_aes,
    dpa_attack_des,
)
from .software import (
    AttackOutcome,
    application_patching,
    firmware_tampering,
    invocation_flood,
    run_standard_campaign,
    trojan_key_theft,
    unsigned_secure_install,
)
from .timing import (
    TimingAttack,
    TimingAttackResult,
    exponent_hamming_weight_from_trace,
    measure_sqm,
    rsa_verifier,
)
from .wep_attacks import (
    IVCollisionExperiment,
    KeystreamHarvester,
    bitflip_forgery,
    run_iv_collision_experiment,
)

__all__ = [
    "TimingAttack", "TimingAttackResult", "measure_sqm", "rsa_verifier",
    "exponent_hamming_weight_from_trace",
    "DPAResult", "CPAResult", "MaskedAES",
    "acquire_des_traces", "acquire_aes_traces",
    "dpa_attack_des", "cpa_attack_aes",
    "FaultInjector", "bellcore_attack", "differential_fault_attack",
    "recover_private_key",
    "KeystreamHarvester", "bitflip_forgery", "IVCollisionExperiment",
    "run_iv_collision_experiment",
    "AttackOutcome", "trojan_key_theft", "application_patching",
    "invocation_flood", "firmware_tampering", "unsigned_secure_install",
    "run_standard_campaign",
    "BlindedRSA", "constant_time_decrypt_raw", "verified_crt_sign",
    "decrypt_block", "recover_plaintext", "make_wtls_oracle", "OracleStats",
]
