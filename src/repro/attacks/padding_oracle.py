"""Vaudenay's CBC padding-oracle attack — the WTLS break of 2002.

Period-perfect for this paper: Vaudenay's "Security Flaws Induced by
CBC Padding" (EUROCRYPT 2002) demonstrated the attack against WTLS,
whose early versions raised *distinguishable* alerts for bad padding
vs. bad MAC.  An attacker who can submit crafted records and observe
which error comes back decrypts traffic byte by byte without ever
touching a key — a pure protocol-level side channel, complementing the
physical channels of §3.4.

The attack here runs against our own WTLS record layer with
``distinguishable_errors=True`` and is defeated by the unified-error
default (the countermeasure real TLS stacks adopted).

The oracle answers one question per query: *did the padding check
pass?*  Recovery of a 16-byte block costs ~4k queries — the numbers
the tests assert on, matching the attack's published complexity
(128 expected queries per byte).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..crypto.bitops import split_blocks, xor_bytes

PaddingOracle = Callable[[bytes], bool]


@dataclass
class OracleStats:
    """Query accounting for the attack's complexity claims."""

    queries: int = 0


def decrypt_block(oracle: PaddingOracle, target: bytes, block_size: int,
                  stats: Optional[OracleStats] = None) -> bytes:
    """Recover ``D(target)`` — the raw block-cipher preimage.

    Submits two-block messages ``r || target`` with chosen ``r``; the
    CBC decryption of the second block is ``D(target) XOR r``, so the
    padding check leaks ``D(target)`` one byte at a time, last byte
    first (the classic pad-length laddering).

    The true plaintext is ``D(target) XOR previous_ciphertext_block``,
    which the caller computes (:func:`recover_plaintext`).
    """
    stats = stats or OracleStats()
    known = bytearray(block_size)  # D(target), filled from the right

    def query(r: bytes) -> bool:
        stats.queries += 1
        return oracle(r + target)

    for pad in range(1, block_size + 1):
        index = block_size - pad
        r = bytearray(block_size)
        # Force the already-recovered tail to decrypt to the pad value.
        for j in range(index + 1, block_size):
            r[j] = known[j] ^ pad
        found = False
        for guess in range(256):
            r[index] = guess
            if not query(bytes(r)):
                continue
            if pad == 1 and index > 0:
                # Valid could mean ...02 02 etc.; flipping the byte to
                # the left only matters in that case.
                r[index - 1] ^= 0xFF
                still_valid = query(bytes(r))
                r[index - 1] ^= 0xFF
                if not still_valid:
                    continue
            if pad >= 2:
                # Degeneracy check: for pad >= 2 exactly one last-byte
                # value yields valid padding.  A second 'valid' answer
                # means the oracle is not distinguishing (unified-error
                # countermeasure active) and the attack cannot work.
                r[index] = (guess + 1) % 256
                if query(bytes(r)):
                    raise RuntimeError(
                        "oracle accepts contradictory paddings — "
                        "unified-error countermeasure is active"
                    )
                r[index] = guess
            known[index] = guess ^ pad
            found = True
            break
        if not found:
            raise RuntimeError(
                f"padding oracle gave no valid guess at byte {index} — "
                "oracle is not distinguishable (countermeasure active?)"
            )
    return bytes(known)


def recover_plaintext(oracle: PaddingOracle, ciphertext: bytes,
                      block_size: int,
                      stats: Optional[OracleStats] = None) -> bytes:
    """Decrypt every block after the first of a captured CBC body.

    The first block needs the record IV (session-secret in WTLS), so
    the attack yields plaintext from block 2 onward — which for
    MAC-then-encrypt records is nearly the whole payload.
    """
    blocks = split_blocks(ciphertext, block_size)
    recovered: List[bytes] = []
    for previous, current in zip(blocks, blocks[1:]):
        preimage = decrypt_block(oracle, current, block_size, stats)
        recovered.append(xor_bytes(preimage, previous))
    return b"".join(recovered)


def make_wtls_oracle(decoder, sequence_start: int = 1_000_000) -> PaddingOracle:
    """Build a padding oracle from a WTLS decoder instance.

    Each probe is framed as a fresh-sequence record (replay protection
    never triggers: probes fail before being marked seen).  Returns
    True when the decoder's error reveals the padding was VALID (i.e.
    the failure, if any, happened later, at the MAC check).
    """
    from ..crypto.errors import PaddingError
    from ..protocols.alerts import BadRecordMAC

    state = {"sequence": sequence_start}

    def oracle(body: bytes) -> bool:
        state["sequence"] += 1
        record = (
            state["sequence"].to_bytes(4, "big")
            + len(body).to_bytes(2, "big")
            + body
        )
        try:
            decoder.decode(record)
            return True      # decoded fully (possible but unlikely)
        except PaddingError:
            return False     # padding rejected: invalid
        except BadRecordMAC:
            return True      # padding passed, MAC failed: valid padding

    return oracle
