"""Side-channel countermeasures (the defensive half of §3.4).

The paper argues tamper resistance must be *built in*; these are the
standard algorithm-level defences for the attacks this package mounts:

* **base blinding** for RSA — randomise the input so per-input timing
  statistics decorrelate (Kocher's own recommendation);
* **constant-sequence exponentiation** — the Montgomery ladder of
  :func:`repro.crypto.modmath.modexp_ladder`, removing the
  key-dependent operation *sequence* (also kills the Hamming-weight
  SPA leak);
* **CRT result verification** — re-encrypt before releasing a
  signature, defeating the Bellcore fault attack
  (:mod:`repro.attacks.fault`);
* **first-order masking** for symmetric ciphers — randomise the
  intermediate values DPA correlates on
  (:class:`~repro.attacks.power.MaskedAES`).
"""

from __future__ import annotations

from typing import Optional

from ..crypto.errors import ParameterError
from ..crypto.modmath import (
    OperationTimer,
    invmod,
    modexp,
    modexp_ladder,
    modexp_sqm,
)
from ..crypto.rng import DeterministicDRBG
from ..crypto.rsa import RSAPrivateKey


class BlindedRSA:
    """RSA private operations with Kocher-style base blinding.

    For ciphertext ``c``: pick random ``r``, compute
    ``(c * r^e)^d * r^{-1} mod n``.  The exponentiation input is then
    uniformly random and independent of ``c``, so an attacker timing
    chosen ciphertexts learns nothing about ``d`` — the per-input
    extra-reduction pattern changes on every call.
    """

    def __init__(self, key: RSAPrivateKey, rng: DeterministicDRBG) -> None:
        self._key = key
        self._rng = rng

    def decrypt_raw(self, ciphertext: int,
                    timer: Optional[OperationTimer] = None,
                    leaky: bool = True) -> int:
        """Blinded c^d mod n (optionally still on the leaky multiplier).

        Even with the *leaky* square-and-multiply underneath, blinding
        destroys the attacker's ability to predict extra reductions,
        because the effective base is secret and fresh per call.
        """
        n, e, d = self._key.n, self._key.e, self._key.d
        while True:
            r = self._rng.randrange(2, n - 1)
            try:
                r_inv = invmod(r, n)
            except ParameterError:
                continue  # gcd(r, n) != 1: astronomically rare, retry
            break
        blinded = (ciphertext * modexp(r, e, n)) % n
        if timer is None:
            result = modexp(blinded, d, n)
        elif leaky:
            result = modexp_sqm(blinded, d, n, timer)
        else:
            result = modexp_ladder(blinded, d, n, timer)
        return (result * r_inv) % n


def constant_time_decrypt_raw(key: RSAPrivateKey, ciphertext: int,
                              timer: Optional[OperationTimer] = None) -> int:
    """RSA private op via the Montgomery ladder (fixed op sequence)."""
    return modexp_ladder(ciphertext, key.d, key.n, timer)


def verified_crt_sign(key: RSAPrivateKey, message: bytes,
                      fault_hook=None) -> bytes:
    """CRT signing with the re-encryption self-check.

    Raises :class:`~repro.crypto.errors.SignatureError` instead of
    releasing a faulty signature — the §3.4 fault-attack countermeasure.
    """
    return key.sign(message, use_crt=True, fault_hook=fault_hook,
                    verify_result=True)
