"""Fault-induction attacks (§3.4, paper refs. [42, 43]).

"Fault induction techniques manipulate the environmental conditions of
the system (voltage, clock, temperature, radiation, light, eddy
current, etc.) to generate faults and to observe the related
behavior."  The paper's own RSA-CRT example is the Bellcore attack
(Boneh–DeMillo–Lipton [42]): a single fault in one of the two CRT
half-exponentiations lets the attacker factor the modulus from the
faulty output alone.

:class:`FaultInjector` plugs into
:meth:`repro.crypto.rsa.RSAPrivateKey.decrypt_raw`'s ``fault_hook`` —
our substitution for a glitching bench — and supports bit-flip,
stuck-at and random-value fault models.  :func:`bellcore_attack`
performs the factorisation; the countermeasure
(:func:`repro.attacks.countermeasures.verified_crt_sign`) suppresses
the faulty output and defeats it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..crypto.bitops import bytes_to_int
from ..crypto.rng import DeterministicDRBG
from ..crypto.rsa import RSAPrivateKey, RSAPublicKey
from ..crypto.sha1 import sha1


@dataclass
class FaultInjector:
    """A configurable fault model for the CRT half-exponentiations.

    Parameters
    ----------
    target:
        Which CRT branch to corrupt: ``"p"`` or ``"q"``.
    model:
        ``"bitflip"`` (XOR one random bit), ``"stuck"`` (replace with a
        fixed value) or ``"random"`` (replace with a random value) —
        the standard glitch outcome taxonomy.
    """

    target: str = "p"
    model: str = "bitflip"
    seed: int = 0
    stuck_value: int = 1
    injections: int = 0

    def __post_init__(self) -> None:
        if self.target not in ("p", "q"):
            raise ValueError("fault target must be 'p' or 'q'")
        if self.model not in ("bitflip", "stuck", "random"):
            raise ValueError(f"unknown fault model {self.model!r}")
        self._rng = DeterministicDRBG(("fault", self.seed).__repr__())

    def __call__(self, which: str, value: int) -> int:
        """The ``fault_hook`` interface: corrupt the targeted branch."""
        if which != self.target:
            return value
        self.injections += 1
        if self.model == "bitflip":
            bit = self._rng.randrange(max(value.bit_length(), 8))
            return value ^ (1 << bit)
        if self.model == "stuck":
            return self.stuck_value
        return self._rng.getrandbits(max(value.bit_length(), 16))


def bellcore_attack(public: RSAPublicKey, message: bytes,
                    faulty_signature: bytes) -> Optional[Tuple[int, int]]:
    """Factor the modulus from ONE faulty CRT signature.

    With a fault confined to the mod-p branch, the faulty signature
    ``s'`` is still correct mod q but wrong mod p, hence
    ``gcd(s'^e - H(m) mod n, n) = q``.  Returns ``(p, q)`` or ``None``
    if the signature does not expose a factor (e.g. it was correct).
    """
    s = bytes_to_int(faulty_signature)
    # Reconstruct the signed representative: PKCS#1 v1.5 over SHA-1.
    from ..crypto.rsa import DIGESTINFO_SHA1, _emsa_pkcs1

    k = public.byte_length
    representative = bytes_to_int(
        _emsa_pkcs1(DIGESTINFO_SHA1 + sha1(message), k)
    )
    candidate = math.gcd(
        (pow(s, public.e, public.n) - representative) % public.n, public.n
    )
    if 1 < candidate < public.n:
        return (public.n // candidate, candidate)
    return None


def differential_fault_attack(public: RSAPublicKey, correct_signature: bytes,
                              faulty_signature: bytes
                              ) -> Optional[Tuple[int, int]]:
    """Factor from a correct/faulty signature *pair* (message unknown).

    ``gcd(s - s', n)`` exposes the untouched CRT factor without the
    attacker ever knowing what was signed — the variant that works
    against blinded paddings.
    """
    s = bytes_to_int(correct_signature)
    s_prime = bytes_to_int(faulty_signature)
    candidate = math.gcd((s - s_prime) % public.n, public.n)
    if 1 < candidate < public.n:
        return (public.n // candidate, candidate)
    return None


def recover_private_key(public: RSAPublicKey,
                        factors: Tuple[int, int]) -> RSAPrivateKey:
    """Rebuild the full private key from the recovered factorisation."""
    from ..crypto.modmath import invmod

    p, q = factors
    if p * q != public.n:
        raise ValueError("factors do not multiply to the modulus")
    d = invmod(public.e, (p - 1) * (q - 1))
    return RSAPrivateKey(n=public.n, e=public.e, d=d, p=p, q=q)
