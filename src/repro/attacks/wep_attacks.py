"""Attacks on WEP (§2, paper refs. [21]-[23]).

The paper cites the WEP break literature as evidence that bearer-level
wireless security "can be easily broken or compromised by serious
hackers".  These attacks run against our own
:class:`~repro.protocols.wep.WEPStation` implementation and need *no*
knowledge of the shared key:

* **keystream harvesting / IV reuse** — WEP's per-frame key is
  ``IV || key`` with a 24-bit public IV; any frame with known
  plaintext yields that IV's keystream, which decrypts *every* other
  frame using the same IV (guaranteed recurrence by counter wrap or
  birthday collision);
* **bit-flip forgery** — the CRC-32 ICV is linear:
  ``crc(a xor d) = crc(a) xor crc(d) xor crc(0)``, so an attacker can
  flip chosen plaintext bits in a captured frame and patch the
  encrypted ICV so the forgery still verifies;
* **IV-collision statistics** — quantifies how quickly a busy network
  reuses IVs in both counter and random modes (the Figure-style
  series for the T6 bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..crypto.bitops import xor_bytes
from ..crypto.crc import crc32, crc32_bytes
from ..protocols.wep import ICV_BYTES, WEPFrame


@dataclass
class KeystreamHarvester:
    """Passive attacker building an IV -> keystream dictionary."""

    keystreams: Dict[bytes, bytes] = field(default_factory=dict)
    frames_seen: int = 0
    collisions_seen: int = 0

    def observe(self, frame: WEPFrame,
                known_plaintext: Optional[bytes] = None) -> None:
        """Record a sniffed frame; with known plaintext, learn keystream.

        Known plaintext is realistic: DHCP, ARP and LLC headers give
        every WLAN frame predictable prefixes.
        """
        self.frames_seen += 1
        if frame.iv in self.keystreams:
            self.collisions_seen += 1
        if known_plaintext is not None:
            body = known_plaintext + crc32_bytes(known_plaintext)
            if len(body) > len(frame.ciphertext):
                body = body[: len(frame.ciphertext)]
            keystream = xor_bytes(frame.ciphertext[: len(body)], body)
            existing = self.keystreams.get(frame.iv, b"")
            if len(keystream) > len(existing):
                self.keystreams[frame.iv] = keystream

    def decrypt(self, frame: WEPFrame) -> Optional[bytes]:
        """Decrypt a frame whose IV's keystream has been harvested."""
        keystream = self.keystreams.get(frame.iv)
        if keystream is None or len(keystream) < len(frame.ciphertext):
            return None
        body = xor_bytes(
            frame.ciphertext, keystream[: len(frame.ciphertext)]
        )
        plaintext, icv = body[:-ICV_BYTES], body[-ICV_BYTES:]
        if crc32_bytes(plaintext) != icv:
            return None
        return plaintext

    def xor_of_plaintexts(self, frame_a: WEPFrame,
                          frame_b: WEPFrame) -> Optional[bytes]:
        """For two same-IV frames, the XOR of their plaintext bodies.

        Needs no keystream at all: ``c1 xor c2 = p1 xor p2`` when the
        IV (hence keystream) repeats — the raw confidentiality loss.
        """
        if frame_a.iv != frame_b.iv:
            return None
        length = min(len(frame_a.ciphertext), len(frame_b.ciphertext))
        return xor_bytes(
            frame_a.ciphertext[:length], frame_b.ciphertext[:length]
        )


def bitflip_forgery(frame: WEPFrame, delta: bytes) -> WEPFrame:
    """Forge a valid frame flipping plaintext bits chosen by ``delta``.

    ``delta`` is XORed into the (unknown) plaintext; the encrypted ICV
    is patched through CRC linearity so the receiver's check passes.
    ``delta`` must not be longer than the frame's plaintext body.
    """
    body_length = len(frame.ciphertext) - ICV_BYTES
    if len(delta) > body_length:
        raise ValueError("delta longer than frame plaintext")
    delta = delta + bytes(body_length - len(delta))
    # crc(p ^ delta) = crc(p) ^ crc(delta) ^ crc(0) over equal lengths.
    icv_patch = (
        crc32(delta) ^ crc32(bytes(body_length))
    ).to_bytes(4, "little")
    new_cipher = bytearray(frame.ciphertext)
    for i, d in enumerate(delta):
        new_cipher[i] ^= d
    for i, patch_byte in enumerate(icv_patch):
        new_cipher[body_length + i] ^= patch_byte
    return WEPFrame(iv=frame.iv, key_id=frame.key_id,
                    ciphertext=bytes(new_cipher))


@dataclass
class IVCollisionExperiment:
    """Measures IV reuse for the T6 bench: frames until first collision
    and total collisions over a campaign, per IV mode."""

    frames: int
    first_collision: Optional[int]
    total_collisions: int
    mode: str


def run_iv_collision_experiment(station_factory, frames: int,
                                mode: str) -> IVCollisionExperiment:
    """Send ``frames`` frames from a fresh station, counting IV reuse."""
    station = station_factory()
    seen: set = set()
    first: Optional[int] = None
    collisions = 0
    for index in range(frames):
        frame = station.encrypt(b"X")
        if frame.iv in seen:
            collisions += 1
            if first is None:
                first = index + 1
        seen.add(frame.iv)
    return IVCollisionExperiment(
        frames=frames, first_collision=first,
        total_collisions=collisions, mode=mode,
    )
