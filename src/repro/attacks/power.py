"""Power analysis: SPA/DPA/CPA on the instrumented ciphers (§3.4).

"The most common form of this attack involves analyzing the power
consumption of the system" (paper refs. [44, 45]).  Our measurement
bench substitution is the Hamming-weight trace model of
:class:`repro.crypto.trace.TraceRecorder`: each recorded intermediate
contributes a power sample equal to its Hamming weight plus optional
Gaussian noise.  The attacks below consume only ``(input, trace)``
pairs — never the key — and perform the standard statistics:

* **DPA (difference of means)** against DES round 1: for each S-box,
  partition traces by one predicted output bit under each of the 64
  subkey guesses; the true guess maximises the difference of means.
  The 48 recovered round-key bits are mapped back through PC-2/PC-1
  and the remaining 8 key bits brute-forced — yielding the *full* DES
  key.
* **CPA (Pearson correlation)** against AES round 1: correlate each
  byte position's measured S-box-output power with the predicted
  Hamming weight under each of the 256 key-byte guesses.
* **Masking countermeasure**: :class:`MaskedAES` randomises the
  probed S-box outputs with a fresh boolean mask per block (a
  first-order masked datapath); CPA's correlations collapse to noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..crypto.aes import AES, SBOX
from ..crypto.bitops import hamming_weight
from ..crypto.des import (
    DES,
    expansion,
    initial_permutation,
    sbox_lookup,
)
from ..crypto.rng import DeterministicDRBG
from ..crypto.trace import TraceRecorder

# ---------------------------------------------------------------------------
# Trace acquisition
# ---------------------------------------------------------------------------


def acquire_des_traces(key: bytes, count: int, seed: int = 0,
                       noise_sigma: float = 0.0
                       ) -> List[Tuple[bytes, List[float]]]:
    """Collect (plaintext, round-1 S-box power samples) pairs.

    Each trace holds the 8 first-round S-box output samples, the
    points of interest a real DPA would locate by inspecting full
    traces.
    """
    rng = DeterministicDRBG(("des-traces", seed).__repr__())
    traces = []
    for _ in range(count):
        plaintext = rng.random_bytes(8)
        recorder = TraceRecorder(
            noise_sigma=noise_sigma, seed=rng.getrandbits(32),
            enabled_labels=frozenset({"des.sbox_out"}),
        )
        DES(key, recorder).encrypt_block(plaintext)
        round1 = [s.power for s in recorder.samples[:8]]
        traces.append((plaintext, round1))
    return traces


def acquire_aes_traces(key: bytes, count: int, seed: int = 0,
                       noise_sigma: float = 0.0,
                       cipher_factory: Optional[Callable] = None
                       ) -> List[Tuple[bytes, List[float]]]:
    """Collect (plaintext, round-1 S-box power samples) pairs for AES.

    ``cipher_factory(key, recorder)`` lets callers swap in
    :class:`MaskedAES` to evaluate the countermeasure under an
    identical acquisition campaign.
    """
    factory = cipher_factory or AES
    rng = DeterministicDRBG(("aes-traces", seed).__repr__())
    # One cipher instance for the whole campaign: a real target device
    # keeps its state (and, for MaskedAES, its mask generator) across
    # encryptions — re-instantiating would freeze the masks.
    cipher = factory(key, None)
    traces = []
    for _ in range(count):
        plaintext = rng.random_bytes(16)
        recorder = TraceRecorder(
            noise_sigma=noise_sigma, seed=rng.getrandbits(32),
            enabled_labels=frozenset({"aes.sbox_out"}),
        )
        cipher.recorder = recorder
        cipher.encrypt_block(plaintext)
        samples = {s.index: s.power for s in recorder.samples}
        traces.append((plaintext, [samples[i] for i in range(16)]))
    return traces


# ---------------------------------------------------------------------------
# DPA against DES
# ---------------------------------------------------------------------------


@dataclass
class DPAResult:
    """Outcome of the DES DPA."""

    round_key: int                 # recovered 48-bit round-1 key
    full_key: Optional[bytes]      # 64-bit key (parity zeroed), if completed
    peak_ratios: List[float]       # per-S-box: best diff / runner-up diff

    @property
    def succeeded(self) -> bool:
        """True when the full key was reconstructed and validated."""
        return self.full_key is not None


def _des_first_round_sbox_input(plaintext: bytes, box: int, guess: int) -> int:
    """Predicted 6-bit input of S-box ``box`` in round 1 under a guess."""
    state = initial_permutation(int.from_bytes(plaintext, "big"))
    right = state & 0xFFFFFFFF
    expanded = expansion(right)
    chunk = (expanded >> (42 - 6 * box)) & 0x3F
    return chunk ^ guess


def dpa_attack_des(traces: Sequence[Tuple[bytes, List[float]]],
                   known_pair: Optional[Tuple[bytes, bytes]] = None,
                   statistic: str = "cpa") -> DPAResult:
    """Power analysis recovering the DES round-1 key.

    ``statistic`` selects the distinguisher: ``"cpa"`` correlates the
    predicted S-box-output Hamming weight with the measured power
    (robust — the correct guess reaches |r| = 1 on noiseless traces),
    while ``"dom"`` is Kocher's original single-bit difference of
    means, kept to demonstrate its ghost-peak weakness (some S-boxes
    have near-linear approximations that let wrong guesses peak).

    ``known_pair`` (plaintext, ciphertext) enables the final 8-bit
    brute force to a validated full key.
    """
    if statistic not in ("cpa", "dom"):
        raise ValueError(f"unknown statistic {statistic!r}")
    round_key = 0
    peak_ratios = []
    for box in range(8):
        best_guess, best_score, runner_up = 0, -1.0, 0.0
        measured = [samples[box] for _, samples in traces]
        for guess in range(64):
            outputs = [
                sbox_lookup(box, _des_first_round_sbox_input(pt, box, guess))
                for pt, _ in traces
            ]
            if statistic == "cpa":
                predicted = [float(hamming_weight(out)) for out in outputs]
                score = abs(_pearson(predicted, measured))
            else:
                ones = [m for m, out in zip(measured, outputs) if out & 1]
                zeros = [m for m, out in zip(measured, outputs) if not out & 1]
                if not ones or not zeros:
                    continue
                score = abs(sum(ones) / len(ones) - sum(zeros) / len(zeros))
            if score > best_score:
                best_guess, runner_up, best_score = guess, best_score, score
            elif score > runner_up:
                runner_up = score
        round_key = (round_key << 6) | best_guess
        peak_ratios.append(best_score / runner_up if runner_up else float("inf"))
    full_key = None
    if known_pair is not None:
        full_key = _reconstruct_des_key(round_key, known_pair)
    return DPAResult(round_key=round_key, full_key=full_key,
                     peak_ratios=peak_ratios)


# PC-1: key bit (1-64) feeding each CD_0 position (1-56).
_PC1 = (
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
)
# PC-2: CD position (1-56) feeding each round-key bit (1-48).
_PC2 = (
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
)


def _reconstruct_des_key(round_key: int,
                         known_pair: Tuple[bytes, bytes]) -> Optional[bytes]:
    """Map the 48 recovered round-1 key bits back to key bits and
    brute-force the 8 missing ones against a known pair."""
    known_bits = {}  # key bit position (1-64) -> bit value
    for rk_position in range(48):
        bit = (round_key >> (47 - rk_position)) & 1
        cd1_position = _PC2[rk_position]
        # Round 1 rotates each 28-bit half left by one:
        # CD_1[p] = CD_0[p+1] (wrapping inside the half).
        if cd1_position <= 28:
            cd0_position = cd1_position % 28 + 1
        else:
            cd0_position = (cd1_position - 28) % 28 + 29
        key_position = _PC1[cd0_position - 1]
        known_bits[key_position] = bit
    # The 8 key positions PC-2 drops (plus parity bits) are unknown.
    parity_positions = set(range(8, 65, 8))
    unknown = [
        pos for pos in range(1, 65)
        if pos not in known_bits and pos not in parity_positions
    ]
    plaintext, expected = known_pair
    for candidate_bits in range(1 << len(unknown)):
        key_int = 0
        for position in range(1, 65):
            if position in known_bits:
                bit = known_bits[position]
            elif position in parity_positions:
                bit = 0
            else:
                index = unknown.index(position)
                bit = (candidate_bits >> index) & 1
            key_int = (key_int << 1) | bit
        candidate = key_int.to_bytes(8, "big")
        if DES(candidate).encrypt_block(plaintext) == expected:
            return candidate
    return None


# ---------------------------------------------------------------------------
# CPA against AES
# ---------------------------------------------------------------------------


@dataclass
class CPAResult:
    """Outcome of the AES CPA."""

    key: bytes
    correlations: List[float]  # winning |Pearson r| per byte

    def margin_over_noise(self, threshold: float = 0.5) -> bool:
        """Whether every byte's winning correlation clears a threshold."""
        return all(c >= threshold for c in self.correlations)


def _pearson(xs: List[float], ys: List[float]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def cpa_attack_aes(traces: Sequence[Tuple[bytes, List[float]]]) -> CPAResult:
    """Correlation power analysis recovering all 16 AES-128 key bytes.

    The probe order of :class:`~repro.crypto.aes.AES` records S-box
    outputs column-major (index ``4*col + row``), which equals the
    plaintext/key byte index — so sample ``i`` aligns with byte ``i``.
    """
    key = bytearray(16)
    winners = []
    for byte_index in range(16):
        measured = [samples[byte_index] for _, samples in traces]
        best_guess, best_corr = 0, -1.0
        for guess in range(256):
            predicted = [
                float(hamming_weight(SBOX[plaintext[byte_index] ^ guess]))
                for plaintext, _ in traces
            ]
            corr = abs(_pearson(predicted, measured))
            if corr > best_corr:
                best_guess, best_corr = guess, corr
        key[byte_index] = best_guess
        winners.append(best_corr)
    return CPAResult(key=bytes(key), correlations=winners)


# ---------------------------------------------------------------------------
# Masking countermeasure
# ---------------------------------------------------------------------------


class MaskedAES(AES):
    """AES with first-order boolean masking of the probed datapath.

    Functionally identical to :class:`~repro.crypto.aes.AES` (the
    tests assert bit-exact ciphertexts); the difference is the leakage
    model: every probed S-box output is recorded XOR a fresh random
    mask, as it would appear on the bus of a masked implementation.
    First-order DPA/CPA statistics on such traces are uncorrelated
    with the key — demonstrated by running the identical
    :func:`cpa_attack_aes` campaign against it.
    """

    _mask_rng = None  # class-level default; instances create their own

    def __init__(self, key: bytes, recorder=None,
                 mask_seed: int = 0xDA7A) -> None:
        super().__init__(key, recorder)
        self._mask_rng = DeterministicDRBG(("aes-mask", mask_seed).__repr__())

    def _sub_bytes(self, state, probe: bool) -> None:
        if not probe or self.recorder is None:
            super()._sub_bytes(state, probe)
            return
        mask = self._mask_rng.random_bytes(16)
        for row in range(4):
            for col in range(4):
                out = SBOX[state[row][col]]
                self.recorder.record(
                    "aes.sbox_out", 4 * col + row, out ^ mask[4 * col + row]
                )
                state[row][col] = out
