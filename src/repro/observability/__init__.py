"""Unified telemetry plane: spans, metrics, attribution, export.

Only :mod:`~repro.observability.probe` — the zero-overhead seam every
instrumented layer consults — is imported eagerly.  Everything else
loads lazily (PEP 562): instrumented modules deep in the stack (e.g.
:mod:`repro.hardware.battery`) import ``observability.probe`` at module
load, and an eager import of :mod:`~repro.observability.scenario` from
here would cycle straight back through the protocol stack.
"""

from __future__ import annotations

from . import probe

__all__ = [
    "probe",
    "Telemetry",
    "Span",
    "SpanEvent",
    "derive_trace_id",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "attach_ledger",
    "record_cycles",
    "handshake_cycles",
    "modexp_cycles",
    "span_rollup",
    "phase_energy_mj",
    "reconcile_energy",
    "EnergyReconciliation",
    "to_jsonl",
    "write_jsonl",
    "prometheus_text",
    "span_tree",
    "flamegraph_folds",
    "fleet_jsonl",
    "fleet_flamegraph_folds",
    "rollup_table",
    "run_gateway_chaos",
    "ChaosTelemetryResult",
    "TraceContext",
    "FleetTraceStore",
    "Journey",
    "WindowedSeries",
    "QuantileSketch",
    "register_series",
    "SloSpec",
    "SloEngine",
    "BurnRatePolicy",
    "Alert",
    "FleetWatch",
    "FleetWatchConfig",
    "FleetwatchResult",
    "run_fleetwatch",
]

_LAZY = {
    "Telemetry": "spans",
    "Span": "spans",
    "SpanEvent": "spans",
    "derive_trace_id": "spans",
    "MetricsRegistry": "metrics",
    "Counter": "metrics",
    "Gauge": "metrics",
    "Histogram": "metrics",
    "REGISTRY": "metrics",
    "attach_ledger": "metrics",
    "record_cycles": "attribution",
    "handshake_cycles": "attribution",
    "modexp_cycles": "attribution",
    "span_rollup": "attribution",
    "phase_energy_mj": "attribution",
    "reconcile_energy": "attribution",
    "EnergyReconciliation": "attribution",
    "to_jsonl": "export",
    "write_jsonl": "export",
    "prometheus_text": "export",
    "span_tree": "export",
    "flamegraph_folds": "export",
    "fleet_jsonl": "export",
    "fleet_flamegraph_folds": "export",
    "rollup_table": "export",
    "run_gateway_chaos": "scenario",
    "ChaosTelemetryResult": "scenario",
    "TraceContext": "tracecontext",
    "FleetTraceStore": "tracecontext",
    "Journey": "tracecontext",
    "WindowedSeries": "timeseries",
    "QuantileSketch": "timeseries",
    "register_series": "timeseries",
    "SloSpec": "slo",
    "SloEngine": "slo",
    "BurnRatePolicy": "slo",
    "Alert": "slo",
    "FleetWatch": "fleetwatch",
    "FleetWatchConfig": "fleetwatch",
    "FleetwatchResult": "fleetwatch",
    "run_fleetwatch": "fleetwatch",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
