"""Energy/cycle attribution: the bridge between spans and the §3.2/§4.1
cost models.

Instrumented layers call the ``*_cycles`` helpers to price their work
with the calibrated :mod:`repro.hardware.cycles` model and charge it to
the innermost open span; ``Battery.drain_mj`` charges real battery
withdrawals the same way.  The roll-up helpers then answer the paper's
measurement questions from a finished trace:

* :func:`span_rollup` — per-span-name self/inclusive totals (the
  flamegraph aggregation behind ``python -m repro telemetry-report``);
* :func:`phase_energy_mj` — "which protocol phase burned the battery",
  the live-run regeneration of the Fig. 4 breakdown;
* :func:`reconcile_energy` — the acceptance check that everything the
  batteries lost is attributed somewhere in the trace.

Reconciliation holds *by construction*: the battery probe fires only
after a successful withdrawal, so refused
:class:`~repro.hardware.battery.BatteryEmpty` drains are never
attributed, and the sum over spans (plus the unattributed bucket)
equals ``capacity - remaining`` summed over batteries, up to float
summation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..hardware.cycles import bulk_ipb, handshake_cost, modmult_instructions
from .spans import Span, Telemetry


# ---------------------------------------------------------------------------
# Pricing helpers (called from instrumented layers while a span is open)
# ---------------------------------------------------------------------------

def record_cycles(cipher: str, mac: str, n_bytes: int) -> float:
    """Modelled instruction count for protecting one record's payload."""
    return bulk_ipb(cipher, mac) * n_bytes


def handshake_cycles(rsa_bits: int = 1024, use_crt: bool = False,
                     resumed: bool = False) -> float:
    """Modelled instruction count for one full/resumed handshake."""
    return handshake_cost(rsa_bits, use_crt, resumed=resumed).total_mi * 1e6


def modexp_cycles(exponent: int, mod_bits: int) -> float:
    """Square-and-multiply cost: one modular multiply per exponent bit
    plus one per set bit (same convention as
    :func:`~repro.hardware.cycles.rsa_public_instructions`)."""
    if exponent <= 0:
        return 0.0
    mults = exponent.bit_length() + bin(exponent).count("1") - 1
    return mults * modmult_instructions(mod_bits)


# ---------------------------------------------------------------------------
# Roll-ups over a finished trace
# ---------------------------------------------------------------------------

@dataclass
class RollupRow:
    """Aggregate over every span sharing one name."""

    name: str
    count: int = 0
    self_mj: float = 0.0
    self_cycles: float = 0.0
    inclusive_mj: float = 0.0
    inclusive_cycles: float = 0.0
    duration_s: float = 0.0


def _inclusive(span: Span, children: Dict[Optional[int], List[Span]],
               cache: Dict[int, tuple]) -> tuple:
    cached = cache.get(span.span_id)
    if cached is not None:
        return cached
    mj = span.energy_mj
    cycles = span.cycles
    for child in children.get(span.span_id, ()):
        child_mj, child_cycles = _inclusive(child, children, cache)
        mj += child_mj
        cycles += child_cycles
    cache[span.span_id] = (mj, cycles)
    return mj, cycles


def span_rollup(telemetry: Telemetry) -> List[RollupRow]:
    """Per-name aggregation with self and inclusive energy/cycles,
    sorted by inclusive energy (heaviest first), ties by name."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in telemetry.spans:
        children.setdefault(span.parent_id, []).append(span)
    cache: Dict[int, tuple] = {}
    rows: Dict[str, RollupRow] = {}
    for span in telemetry.spans:
        row = rows.setdefault(span.name, RollupRow(span.name))
        row.count += 1
        row.self_mj += span.energy_mj
        row.self_cycles += span.cycles
        inc_mj, inc_cycles = _inclusive(span, children, cache)
        row.inclusive_mj += inc_mj
        row.inclusive_cycles += inc_cycles
        row.duration_s += span.duration_s
    return sorted(rows.values(),
                  key=lambda r: (-r.inclusive_mj, r.name))


def phase_energy_mj(telemetry: Telemetry,
                    phases: Sequence[str] = ("handshake", "record.encode",
                                             "record.decode", "arq.retransmit",
                                             "gateway.admit", "gateway.serve",
                                             "gateway.wired-leg")) -> Dict[str, float]:
    """The Fig. 4 question answered from a live trace: inclusive mJ per
    protocol phase (plus ``other`` and ``unattributed`` buckets so the
    totals always account for every millijoule)."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in telemetry.spans:
        children.setdefault(span.parent_id, []).append(span)
    cache: Dict[int, tuple] = {}
    by_id = {span.span_id: span for span in telemetry.spans}

    def covered_by_phase(span: Span) -> bool:
        node: Optional[Span] = span
        while node is not None:
            if node.name in phases:
                return True
            node = by_id.get(node.parent_id) if node.parent_id else None
        return False

    out: Dict[str, float] = {name: 0.0 for name in phases}
    other = 0.0
    for span in telemetry.spans:
        if span.name in phases:
            # Only count at the outermost phase boundary: a phase span
            # nested under another phase span is already included.
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is not None and covered_by_phase(parent):
                continue
            mj, _ = _inclusive(span, children, cache)
            out[span.name] += mj
        elif not covered_by_phase(span):
            other += span.energy_mj
    out["other"] = other
    out["unattributed"] = telemetry.unattributed_mj
    return out


def adversary_energy_mj(telemetry: Telemetry) -> Dict[str, float]:
    """Inclusive millijoules per adversary class, from ``adversary.fire``
    spans (the adversary plane wraps every attack event in one).

    The survivability report uses this to split "energy the attackers
    spent" by class; benign/user energy is whatever the batteries lost
    outside these spans."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in telemetry.spans:
        children.setdefault(span.parent_id, []).append(span)
    cache: Dict[int, tuple] = {}
    out: Dict[str, float] = {}
    for span in telemetry.spans:
        if span.name != "adversary.fire":
            continue
        kind = str(span.attrs.get("adversary", "unknown"))
        mj, _ = _inclusive(span, children, cache)
        out[kind] = out.get(kind, 0.0) + mj
    return out


@dataclass
class EnergyReconciliation:
    """Result of checking the trace against the batteries themselves."""

    attributed_mj: float
    battery_drain_mj: float
    tolerance_mj: float
    per_phase_mj: Dict[str, float] = field(default_factory=dict)

    @property
    def delta_mj(self) -> float:
        return self.attributed_mj - self.battery_drain_mj

    @property
    def ok(self) -> bool:
        return abs(self.delta_mj) <= self.tolerance_mj


def reconcile_energy(telemetry: Telemetry, batteries,
                     rel_tolerance: float = 1e-9) -> EnergyReconciliation:
    """Check that span-attributed battery energy equals the total the
    batteries actually lost (``capacity - remaining`` summed).

    Only ``kind="battery"`` attribution counts — modelled radio energy
    charged to the gateway (which has no battery) is tracked separately
    by the metrics registry and must not inflate this total.  The
    telemetry side therefore reads the registry's per-kind counter.
    """
    attributed = 0.0
    for name, key, value in telemetry.registry.samples():
        if name != "repro_telemetry_energy_mj_total":
            continue
        if ("kind", "battery") in key:
            attributed += value
    drained = sum((b.capacity_j - b.remaining_j) * 1000.0 for b in batteries)
    tolerance = max(1e-6, rel_tolerance * max(abs(attributed), abs(drained)))
    return EnergyReconciliation(
        attributed_mj=attributed,
        battery_drain_mj=drained,
        tolerance_mj=tolerance,
        per_phase_mj=phase_energy_mj(telemetry),
    )
