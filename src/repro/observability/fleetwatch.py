"""The fleet watchtower: tracing + windows + SLOs over one chaos run.

This is the tentpole assembly of the fleet observability plane.  A
:class:`FleetWatch` rides the failover scenario through the
``instrument`` seam of :func:`~repro.fleet.scenario.run_failover`:

* a recurring sampler on the shared
  :class:`~repro.fleet.scheduler.EventScheduler` scrapes the ordinary
  metrics registry (the per-shard answer-ledger collectors from
  :func:`~repro.observability.metrics.export_fleet`) and converts
  cumulative counters into **windowed deltas** — per-window goodput,
  shed mix, serve-vs-recovery energy split, recovery-tier counts —
  per shard and fleet-wide;
* served latencies and crash-to-migrated recovery latencies feed
  quantile-sketched :class:`~repro.observability.timeseries.WindowedSeries`
  (p50/p95/p99 per window, sketches mergeable across shards);
* every closed tumbling window is fed to an
  :class:`~repro.observability.slo.SloEngine` evaluating the default
  availability / latency-quantile / energy-budget objectives with
  fast+slow burn-rate policies, latching alerts into the ledger.

Scheduling the sampler is **behaviour-neutral**: a recurring control
event only advances the virtual clock to times the run would cross
anyway — serve outcomes depend on arrival and service times, never on
which intermediate instants the clock visited — and recurring events
do not count against scheduler quiescence.  Same seed, same report
bytes, with or without a watcher is *not* claimed (the watcher adds
spans of its own); what is guaranteed is that two same-seed *watched*
runs are byte-identical, and that the underlying failover ledger is
unchanged by watching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .slo import BurnRatePolicy, SloEngine, SloSpec
from .spans import Telemetry
from .timeseries import QuantileSketch, WindowedSeries, register_series

_EPS = 1e-9

#: Fleet-ledger counters mirrored into windowed series (metric name in
#: the registry scrape -> series key).
_FLEET_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("repro_fleet_migrations_warm", "tier_warm"),
    ("repro_fleet_migrations_cold_resume", "tier_cold_resume"),
    ("repro_fleet_migrations_cold_full", "tier_cold_full"),
    ("repro_fleet_shed_recovering", "shed_recovering"),
    ("repro_fleet_recovery_energy_mj", "recovery_mj"),
)


@dataclass(frozen=True)
class FleetWatchConfig:
    """Window geometry, sampling cadence, and SLO thresholds.

    Defaults are sized for the canonical seed-2003 failover run
    (~18.5 virtual seconds): one-second tumbling windows sliding by
    half, sampled four times per window.
    """

    window_s: float = 1.0
    slide_s: float = 0.5
    sample_interval_s: float = 0.25
    availability_objective: float = 0.95
    latency_objective: float = 0.95
    latency_threshold_s: float = 0.25
    #: Sustainable airlink spend (serve + recovery) per served
    #: request, in mJ.  The healthy fleet runs well under 2 mJ; crash
    #: windows blow through it — which is the point.
    energy_budget_mj: float = 2.0


def default_slos(config: FleetWatchConfig) -> List[SloSpec]:
    """The stock objective set for a watched failover run."""
    return [
        SloSpec(name="availability", kind="availability",
                objective=config.availability_objective,
                description="answered requests actually served"),
        SloSpec(name="latency", kind="latency_quantile",
                objective=config.latency_objective,
                threshold=config.latency_threshold_s,
                description="served latency under the bound"),
        SloSpec(name="energy", kind="energy_budget",
                threshold=config.energy_budget_mj,
                description="airlink mJ per served request"),
    ]


def default_policies() -> List[BurnRatePolicy]:
    """Fast-page plus slow-ticket, the two-policy SRE shape."""
    return [
        BurnRatePolicy(name="page", fast_windows=1, slow_windows=4,
                       fast_burn=10.0, slow_burn=2.0, severity="page"),
        BurnRatePolicy(name="ticket", fast_windows=2, slow_windows=6,
                       fast_burn=3.0, slow_burn=1.0, severity="ticket"),
    ]


class FleetWatch:
    """Windowed metrics + SLO evaluation riding one fleet run.

    Construct it inside :func:`~repro.fleet.scenario.run_failover`'s
    ``instrument`` hook (the fleet exists, no session has attached
    yet); its :meth:`finish` is the finisher the hook returns.
    """

    def __init__(self, fleet, telemetry: Telemetry,
                 config: Optional[FleetWatchConfig] = None,
                 specs: Optional[List[SloSpec]] = None,
                 policies: Optional[List[BurnRatePolicy]] = None) -> None:
        self.fleet = fleet
        self.telemetry = telemetry
        self.config = config or FleetWatchConfig()
        cfg = self.config

        def counter(name: str) -> WindowedSeries:
            return WindowedSeries(name, cfg.window_s, cfg.slide_s)

        def quantiled(name: str) -> WindowedSeries:
            return WindowedSeries(name, cfg.window_s, cfg.slide_s,
                                  track_quantiles=True)

        self.fleet_series: Dict[str, WindowedSeries] = {
            "served": counter("fleet.served"),
            "shed": counter("fleet.shed"),
            "shed_recovering": counter("fleet.shed_recovering"),
            "serve_mj": counter("fleet.serve_mj"),
            "recovery_mj": counter("fleet.recovery_mj"),
            "tier_warm": counter("fleet.tier_warm"),
            "tier_cold_resume": counter("fleet.tier_cold_resume"),
            "tier_cold_full": counter("fleet.tier_cold_full"),
            "latency": quantiled("fleet.latency_s"),
            "recovery_latency": quantiled("fleet.recovery_latency_s"),
        }
        self.shard_series: Dict[str, Dict[str, WindowedSeries]] = {}
        for shard in fleet.shards:
            self.shard_series[shard.name] = {
                "served": counter(f"{shard.name}.served"),
                "shed": counter(f"{shard.name}.shed"),
                "energy_mj": counter(f"{shard.name}.energy_mj"),
                "latency": quantiled(f"{shard.name}.latency_s"),
            }
        self.engine = SloEngine(
            specs if specs is not None else default_slos(cfg),
            policies if policies is not None else default_policies())
        #: Scrape cursor: last seen cumulative value per (name, key).
        self._cursor: Dict[Tuple[str, Tuple], float] = {}
        #: Per-shard read position into the incarnation ledger list
        #: (ledger index, offset) — restarts append retired ledgers,
        #: so positions stay monotone across crashes.
        self._latency_pos: Dict[str, Tuple[int, int]] = {}
        self._recovery_pos = 0
        self._fed_until = 0.0
        self.samples_taken = 0
        register_series(telemetry.registry,
                        list(self.fleet_series.values()))
        self._ticker = fleet.scheduler.every(
            cfg.sample_interval_s, self.sample, label="fleetwatch")

    # -- sampling ------------------------------------------------------------

    def _delta(self, scrape: Dict[Tuple[str, Tuple], float],
               name: str, key: Tuple = ()) -> float:
        value = scrape.get((name, key), 0.0)
        previous = self._cursor.get((name, key), 0.0)
        self._cursor[(name, key)] = value
        return value - previous

    def _new_latencies(self, shard) -> List[float]:
        """Served latencies recorded since the last sample, across
        shard incarnations (restarts swap the live stats object)."""
        ledgers = list(shard.retired_stats) + [shard.runtime.stats]
        index, offset = self._latency_pos.get(shard.name, (0, 0))
        fresh: List[float] = []
        while index < len(ledgers):
            latencies = ledgers[index].latencies
            fresh.extend(latencies[offset:])
            if index == len(ledgers) - 1:
                offset = len(latencies)
                break
            index += 1
            offset = 0
        self._latency_pos[shard.name] = (index, offset)
        return fresh

    def sample(self, now: float) -> None:
        """One sampler tick: scrape the registry, bank the deltas."""
        scrape = {(name, key): value
                  for name, key, value in self.telemetry.registry.samples()}
        fleet_series = self.fleet_series
        for shard in self.fleet.shards:
            key = (("shard", shard.name),)
            mine = self.shard_series[shard.name]
            served = (
                self._delta(scrape, "repro_fleet_shard_served", key)
                + self._delta(scrape, "repro_fleet_shard_degraded", key))
            shed = self._delta(scrape, "repro_fleet_shard_shed", key)
            energy = self._delta(scrape, "repro_fleet_shard_energy_mj", key)
            mine["served"].inc(now, served)
            mine["shed"].inc(now, shed)
            mine["energy_mj"].inc(now, energy)
            fleet_series["served"].inc(now, served)
            fleet_series["shed"].inc(now, shed)
            fleet_series["serve_mj"].inc(now, energy)
            for value in self._new_latencies(shard):
                mine["latency"].observe(now, value)
                fleet_series["latency"].observe(now, value)
        for metric, series in _FLEET_COUNTERS:
            fleet_series[series].inc(now, self._delta(scrape, metric))
        recovery = self.fleet.stats.recovery_latencies
        while self._recovery_pos < len(recovery):
            fleet_series["recovery_latency"].observe(
                now, recovery[self._recovery_pos])
            self._recovery_pos += 1
        self.samples_taken += 1
        self._feed_closed_windows(now)

    def finish(self) -> None:
        """Final flush: one last sample at the run's end time, the
        trailing partial window fed, the sampler cancelled."""
        now = self.fleet.clock.now
        self.sample(now)
        self._feed_closed_windows(now, final=True)
        self._ticker.cancel()

    # -- SLO feeding ---------------------------------------------------------

    def _feed_closed_windows(self, now: float, final: bool = False) -> None:
        width = self.config.window_s
        limit = now if final \
            else math.floor((now + _EPS) / width) * width
        start = self._fed_until
        while start + width <= limit + _EPS:
            self._feed_window(start, start + width)
            start += width
        self._fed_until = start
        if final and now > start + _EPS:
            # The trailing partial window still counts for the ledger.
            self._feed_window(start, start + width)
            self._fed_until = start + width

    def _feed_window(self, start: float, end: float) -> None:
        engine = self.engine
        fs = self.fleet_series
        served = fs["served"].window(start).sum
        shed = (fs["shed"].window(start).sum
                + fs["shed_recovering"].window(start).sum)
        if "availability" in engine.specs:
            engine.record_window("availability", start, end,
                                 good=served, total=served + shed)
        if "latency" in engine.specs:
            sketch = fs["latency"].window(start).sketch
            total = sketch.total if sketch is not None else 0
            good = (sketch.count_le(self.config.latency_threshold_s)
                    if sketch is not None else 0)
            engine.record_window("latency", start, end,
                                 good=good, total=total)
        if "energy" in engine.specs:
            consumed = (fs["serve_mj"].window(start).sum
                        + fs["recovery_mj"].window(start).sum)
            engine.record_budget_window("energy", start, end,
                                        consumed=consumed, served=served)

    # -- reading -------------------------------------------------------------

    def _window_starts(self) -> List[float]:
        width = self.config.window_s
        out = []
        start = 0.0
        while start + _EPS < self._fed_until:
            out.append(start)
            start += width
        return out

    def fleet_windows(self) -> List[Dict[str, object]]:
        """The fleet-wide per-window table (JSON-ready, rounded)."""
        fs = self.fleet_series
        rows: List[Dict[str, object]] = []
        for start in self._window_starts():
            served = fs["served"].window(start).sum
            shed = fs["shed"].window(start).sum
            recovering = fs["shed_recovering"].window(start).sum
            answered = served + shed + recovering
            row: Dict[str, object] = {
                "start_s": round(start, 6),
                "end_s": round(start + self.config.window_s, 6),
                "served": round(served, 6),
                "shed": round(shed, 6),
                "shed_recovering": round(recovering, 6),
                "goodput": (round(served / answered, 6)
                            if answered else 1.0),
                "tiers": {
                    "warm": round(fs["tier_warm"].window(start).sum, 6),
                    "cold_resume": round(
                        fs["tier_cold_resume"].window(start).sum, 6),
                    "cold_full": round(
                        fs["tier_cold_full"].window(start).sum, 6),
                },
                "energy_mj": {
                    "serve": round(fs["serve_mj"].window(start).sum, 6),
                    "recovery": round(
                        fs["recovery_mj"].window(start).sum, 6),
                },
            }
            for label, series in (("latency", fs["latency"]),
                                  ("recovery_latency",
                                   fs["recovery_latency"])):
                sketch = series.window(start).sketch
                if sketch is not None and sketch.total:
                    row[label] = {
                        "p50": round(sketch.quantile(0.50), 6),
                        "p95": round(sketch.quantile(0.95), 6),
                        "p99": round(sketch.quantile(0.99), 6),
                    }
            rows.append(row)
        return rows

    def shard_windows(self) -> Dict[str, object]:
        """Per-shard window tables plus whole-run merged percentiles
        (window sketches folded with :meth:`QuantileSketch.merge` —
        the mergeability the fleet-wide view is built on)."""
        out: Dict[str, object] = {}
        for name in sorted(self.shard_series):
            series = self.shard_series[name]
            rows = []
            for start in self._window_starts():
                row = {
                    "start_s": round(start, 6),
                    "served": round(series["served"].window(start).sum, 6),
                    "shed": round(series["shed"].window(start).sum, 6),
                    "energy_mj": round(
                        series["energy_mj"].window(start).sum, 6),
                }
                sketch = series["latency"].window(start).sketch
                if sketch is not None and sketch.total:
                    row["p95"] = round(sketch.quantile(0.95), 6)
                rows.append(row)
            merged = QuantileSketch(series["latency"].bounds)
            for window in series["latency"].tumbling():
                if window.sketch is not None:
                    merged.merge(window.sketch)
            entry: Dict[str, object] = {"windows": rows}
            if merged.total:
                entry["latency"] = {
                    "count": merged.total,
                    "p50": round(merged.quantile(0.50), 6),
                    "p95": round(merged.quantile(0.95), 6),
                    "p99": round(merged.quantile(0.99), 6),
                }
            out[name] = entry
        return out

    def overall_latency(self) -> Dict[str, object]:
        """Whole-run fleet latency percentiles from merged window
        sketches (empty dict when nothing was served)."""
        merged = QuantileSketch(self.fleet_series["latency"].bounds)
        for window in self.fleet_series["latency"].tumbling():
            if window.sketch is not None:
                merged.merge(window.sketch)
        if not merged.total:
            return {}
        return {
            "count": merged.total,
            "p50": round(merged.quantile(0.50), 6),
            "p95": round(merged.quantile(0.95), 6),
            "p99": round(merged.quantile(0.99), 6),
        }


# ---------------------------------------------------------------------------
# The one-call scenario
# ---------------------------------------------------------------------------


@dataclass
class FleetwatchResult:
    """Everything one watched failover run produced."""

    failover: object          # FailoverResult (fleet, telemetry, ...)
    watch: FleetWatch
    store: object             # FleetTraceStore over the run's spans
    config: FleetWatchConfig


def run_fleetwatch(sessions: int = 24, shards: int = 4,
                   requests_per_session: int = 6,
                   interarrival_s: float = 0.35,
                   seed: int = 2003,
                   config: Optional[FleetWatchConfig] = None,
                   **failover_kwargs) -> FleetwatchResult:
    """One seeded failover chaos run with the watchtower riding along.

    Reuses :func:`~repro.fleet.scenario.run_failover` verbatim through
    its ``instrument`` seam — same fleet, same crash plan, same
    answers — and returns the watcher plus a
    :class:`~repro.observability.tracecontext.FleetTraceStore`
    partitioned from the run's single telemetry stream.
    """
    from ..fleet.scenario import run_failover
    from .tracecontext import FleetTraceStore

    watch_config = config or FleetWatchConfig()
    holder: Dict[str, FleetWatch] = {}

    def instrument(fleet, telemetry):
        watch = FleetWatch(fleet, telemetry, config=watch_config)
        holder["watch"] = watch
        return watch.finish

    failover = run_failover(
        sessions=sessions, shards=shards,
        requests_per_session=requests_per_session,
        interarrival_s=interarrival_s, seed=seed,
        instrument=instrument, **failover_kwargs)
    store = FleetTraceStore.partition(failover.telemetry, key="shard")
    return FleetwatchResult(failover=failover, watch=holder["watch"],
                            store=store, config=watch_config)
