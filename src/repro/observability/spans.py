"""Virtual-time hierarchical spans with deterministic identities.

A :class:`Telemetry` context owns one trace: a tree of :class:`Span`
objects stamped from a virtual clock (anything with a ``.now``
attribute — normally the
:class:`~repro.protocols.reliable.VirtualClock` the gateway runtime
schedules on), never the wall clock.  Identities are reproducible by
construction:

* the **trace id** is an FNV-1a hash of the run's seed material, so the
  same seeded scenario always produces the same id;
* **span ids** are a sequential counter in creation order;
* timestamps are virtual seconds.

Every span accumulates the energy (mJ) and cycles charged while it was
innermost — :mod:`repro.observability.attribution` feeds these from
``Battery.drain_mj`` and the calibrated §3.2 cycle model — so a
roll-up over the finished tree answers the paper's Fig. 3/4 question:
*which protocol phase burned the battery?*
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .metrics import MetricsRegistry

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a — deterministic ids with no crypto dependency."""
    acc = _FNV_OFFSET
    for byte in data:
        acc ^= byte
        acc = (acc * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return acc


def derive_trace_id(*seed_material) -> str:
    """A 16-hex-digit trace id derived from seed material, not wall
    clock: same seeds, same id, every run."""
    blob = "\x1f".join(repr(part) for part in seed_material).encode("utf-8")
    return f"{fnv1a_64(blob):016x}"


class _WallbackClock:
    """A fallback clock for clock-less use: counts invocations, so
    timestamps stay deterministic (0, 1, 2, ...) rather than wall time."""

    def __init__(self) -> None:
        self._ticks = 0

    @property
    def now(self) -> float:
        tick = self._ticks
        self._ticks += 1
        return float(tick)


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span."""

    time_s: float
    name: str
    attrs: Dict[str, object] = field(default_factory=dict)


@dataclass
class Span:
    """One node of the trace tree.

    ``energy_mj`` / ``cycles`` are the amounts charged while this span
    was the *innermost* open span (self cost); roll-ups add descendants
    back in for inclusive totals.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    energy_mj: float = 0.0
    cycles: float = 0.0

    def set(self, **attrs) -> "Span":
        """Attach or overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_s(self) -> float:
        """Virtual duration (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s


class Telemetry:
    """One trace: a span stack, an event log, and a metrics registry.

    ``clock`` may be any object with a ``.now`` attribute (virtual
    seconds); omit it for a deterministic tick counter.  ``seed``
    feeds :func:`derive_trace_id` so the trace id is a pure function of
    the run's seed material.
    """

    def __init__(self, seed=0, clock=None,
                 registry: Optional[MetricsRegistry] = None,
                 label: str = "repro") -> None:
        self.clock = clock if clock is not None else _WallbackClock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.label = label
        self.trace_id = derive_trace_id(label, seed)
        self.spans: List[Span] = []
        self.events: List[SpanEvent] = []
        self._stack: List[Span] = []
        self._next_id = 1
        #: Energy/cycles charged while no span was open.
        self.unattributed_mj = 0.0
        self.unattributed_cycles = 0.0

    # -- span lifecycle ------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, **attrs) -> Span:
        """Open a span as a child of the current one (explicit form)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(span_id=self._next_id, parent_id=parent, name=name,
                    start_s=float(self.clock.now), attrs=dict(attrs))
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span``; enforces strict stack discipline.

        A span already force-closed by :meth:`abort_span` is a silent
        no-op — the owning ``with`` block may still unwind after a
        crash handler aborted the stack out from under it.
        """
        if span.end_s is not None and span.attrs.get("aborted") \
                and span not in self._stack:
            return
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span")
        self._stack.pop()
        span.end_s = float(self.clock.now)

    def abort_span(self, span: Span, **attrs) -> List[Span]:
        """Force-close ``span`` and everything nested inside it.

        The crash-hygiene primitive: a shard killed mid-span cannot
        unwind its own ``with`` blocks, and leaving its spans on the
        stack would make the *next* shard's spans nest under a dead
        owner.  Every popped span is stamped ``aborted=True`` (plus
        any extra ``attrs``) and closed at the current virtual time.
        Returns the aborted spans, outermost last.
        """
        if span not in self._stack:
            raise RuntimeError(f"span {span.name!r} is not open")
        aborted: List[Span] = []
        while self._stack:
            top = self._stack.pop()
            top.end_s = float(self.clock.now)
            top.set(aborted=True, **attrs)
            aborted.append(top)
            if top is span:
                break
        return aborted

    def abort_where(self, predicate, **attrs) -> List[Span]:
        """Abort the outermost open span matching ``predicate`` (and
        everything nested inside it); returns ``[]`` if none match."""
        for span in self._stack:
            if predicate(span):
                return self.abort_span(span, **attrs)
        return []

    @contextlib.contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """The usual form: ``with telemetry.span("handshake") as sp:``."""
        span = self.start_span(name, **attrs)
        try:
            yield span
        finally:
            self.end_span(span)

    def event(self, name: str, **attrs) -> SpanEvent:
        """A point event, attached to the current span (or the trace)."""
        event = SpanEvent(float(self.clock.now), name, dict(attrs))
        current = self._stack[-1] if self._stack else None
        if current is not None:
            current.events.append(event)
        else:
            self.events.append(event)
        return event

    # -- attribution sinks ---------------------------------------------------

    def add_energy_mj(self, millijoules: float, kind: str = "battery") -> None:
        """Charge ``millijoules`` to the innermost open span."""
        current = self._stack[-1] if self._stack else None
        if current is not None:
            current.energy_mj += millijoules
        else:
            self.unattributed_mj += millijoules
        self.registry.counter(
            "repro_telemetry_energy_mj_total",
            "energy attributed through the telemetry plane",
        ).inc(millijoules, kind=kind,
              span=current.name if current is not None else "<none>")

    def add_cycles(self, cycles: float, kind: str = "model") -> None:
        """Charge modelled instruction cycles to the innermost span."""
        current = self._stack[-1] if self._stack else None
        if current is not None:
            current.cycles += cycles
        else:
            self.unattributed_cycles += cycles
        self.registry.counter(
            "repro_telemetry_cycles_total",
            "cycles attributed through the telemetry plane",
        ).inc(cycles, kind=kind,
              span=current.name if current is not None else "<none>")

    # -- whole-trace queries -------------------------------------------------

    def open_spans(self) -> List[Span]:
        """Spans still open (should be empty after a clean run)."""
        return list(self._stack)

    def total_energy_mj(self) -> float:
        """Everything attributed, spans plus unattributed bucket."""
        return sum(s.energy_mj for s in self.spans) + self.unattributed_mj

    def total_cycles(self) -> float:
        """Everything attributed, spans plus unattributed bucket."""
        return sum(s.cycles for s in self.spans) + self.unattributed_cycles

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, in creation order."""
        return [s for s in self.spans if s.name == name]

    def children(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in creation order."""
        return [s for s in self.spans if s.parent_id == span.span_id]
