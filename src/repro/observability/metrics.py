"""Process-wide metrics registry: counters, gauges, histograms, adapters.

The stack grew one ad-hoc ledger per subsystem —
:class:`~repro.protocols.faults.FaultStats`,
:class:`~repro.core.supervisor.DegradationReport`,
:class:`~repro.protocols.gateway_runtime.RuntimeStats`, raw ``int``
attributes on :class:`~repro.protocols.wap.WAPGateway` — none of which
could be correlated in one place.  This module is the unification:

* first-class :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  metrics with label sets, owned by a :class:`MetricsRegistry`;
* **ledger adapters** (:func:`attach_ledger` and the ``export_*``
  helpers) that re-export the existing ledgers *live*: the ledger
  attributes stay the authoritative store the old code keeps mutating,
  and every scrape reads through them at collection time — so one
  :meth:`MetricsRegistry.render` sees gateway traffic, channel faults,
  supervisor degradations and battery state together without changing
  a single existing call site.

Everything renders deterministically (families sorted by name, series
by label tuple), because telemetry exports must be byte-identical
across same-seed runs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets (virtual seconds / generic magnitudes).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, float("inf"))

#: Finer-grained buckets for request/recovery latencies: the quantile
#: interpolation below is only as sharp as the bucket grid, and the
#: gateway's virtual-time latencies cluster between 5 ms and a few
#: seconds of failover delay.
LATENCY_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75,
                   1.0, 1.5, 2.5, 5.0, 10.0, float("inf"))


def interpolate_quantile(bounds: Sequence[float], counts: Sequence[int],
                         q: float) -> float:
    """The quantile of a fixed-bucket histogram, Prometheus-style.

    Walks cumulative bucket counts to the bucket containing rank
    ``q * total`` and linearly interpolates within it (lower edge of
    the first bucket is 0.0).  An answer landing in the ``+Inf``
    bucket clamps to the highest finite bound — the distribution's
    tail is unknowable beyond the grid.  Deterministic: pure integer
    walk plus one division, no sampling.
    """
    q = min(1.0, max(0.0, q))
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    lower = 0.0
    for bound, count in zip(bounds, counts):
        if count > 0 and cumulative + count >= target:
            if bound == float("inf"):
                return lower
            fraction = (target - cumulative) / count
            return lower + (bound - lower) * min(1.0, max(0.0, fraction))
        cumulative += count
        if bound != float("inf"):
            lower = bound
    return lower


def quantile_of(values: Sequence[float], q: float,
                buckets: Sequence[float] = LATENCY_BUCKETS) -> float:
    """One-shot bucketed quantile of a raw value list (the shared
    implementation behind the failover/survivability percentile
    fields — no more ad-hoc sorted-index math per ledger)."""
    bounds = tuple(buckets)
    counts = [0] * len(bounds)
    for value in values:
        for index, bound in enumerate(bounds):
            if value <= bound:
                counts[index] += 1
                break
    return interpolate_quantile(bounds, counts, q)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable, sorted form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class _Series:
    """One labelled series of a counter or gauge."""

    __slots__ = ("_store", "_key")

    def __init__(self, store: Dict[LabelKey, float], key: LabelKey) -> None:
        self._store = store
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (counters must only ever go up)."""
        self._store[self._key] = self._store.get(self._key, 0.0) + amount

    def set(self, value: float) -> None:
        """Set the series to an absolute value (gauges)."""
        self._store[self._key] = float(value)

    @property
    def value(self) -> float:
        """Current value of this series."""
        return self._store.get(self._key, 0.0)


class Counter:
    """A monotonically increasing metric with optional labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelKey, float] = {}

    def labels(self, **labels) -> _Series:
        """The series for one label set (created on first touch)."""
        return _Series(self._values, _label_key(labels))

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Increment (the unlabelled series unless labels are given)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.labels(**labels).inc(amount)

    def value(self, **labels) -> float:
        """Read one series' current value."""
        return self.labels(**labels).value

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        """All series, deterministically ordered."""
        return [(self.name, key, self._values[key])
                for key in sorted(self._values)]


class Gauge(Counter):
    """A metric that can go up and down (or be set outright)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative for gauges)."""
        self.labels(**labels).inc(amount)

    def set(self, value: float, **labels) -> None:
        """Set the (labelled) gauge to an absolute value."""
        self.labels(**labels).set(value)


class Histogram:
    """A bucketed distribution with Prometheus-style exposition.

    Exports ``name_bucket{le=...}`` (cumulative), ``name_sum`` and
    ``name_count`` per label set.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help_text = help_text
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation."""
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels) -> int:
        """Total observations for one label set."""
        return sum(self._counts.get(_label_key(labels), ()))

    def sum(self, **labels) -> float:
        """Sum of observations for one label set."""
        return self._sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels) -> float:
        """Deterministic quantile estimate for one label set: linear
        interpolation within the fixed buckets (see
        :func:`interpolate_quantile` for the clamping rules)."""
        counts = self._counts.get(_label_key(labels))
        if counts is None:
            return 0.0
        return interpolate_quantile(self.buckets, counts, q)

    def percentiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99),
                    **labels) -> Dict[str, float]:
        """A ``{"p50": ..., "p95": ...}`` map for one label set."""
        out: Dict[str, float] = {}
        for q in qs:
            label = f"p{q * 100:g}".replace(".", "_")
            out[label] = self.quantile(q, **labels)
        return out

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        """Bucket/sum/count series, deterministically ordered."""
        out: List[Tuple[str, LabelKey, float]] = []
        for key in sorted(self._counts):
            cumulative = 0
            for bound, count in zip(self.buckets, self._counts[key]):
                cumulative += count
                le = "+Inf" if bound == float("inf") else repr(bound)
                out.append((f"{self.name}_bucket",
                            key + (("le", le),), float(cumulative)))
            out.append((f"{self.name}_sum", key, self._sums[key]))
            out.append((f"{self.name}_count", key, float(cumulative)))
        return out


#: A collector returns live samples: (name, help, labels, value).
Collector = Callable[[], Iterable[Tuple[str, str, Dict[str, object], float]]]


class MetricsRegistry:
    """Owns a namespace of metrics plus live read-through collectors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._collectors: List[Collector] = []

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}")
            return existing
        metric = cls(name, help_text, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get-or-create a counter."""
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get-or-create a gauge."""
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get-or-create a histogram."""
        return self._get_or_create(Histogram, name, help_text,
                                   buckets=buckets)

    def register_collector(self, collector: Collector) -> None:
        """Add a live collector consulted at every scrape."""
        self._collectors.append(collector)

    # -- scraping ------------------------------------------------------------

    def samples(self) -> List[Tuple[str, LabelKey, float]]:
        """Every series — stored metrics plus collector read-throughs —
        as ``(name, label_key, value)``, deterministically ordered."""
        out: List[Tuple[str, LabelKey, float]] = []
        for name in sorted(self._metrics):
            out.extend(self._metrics[name].samples())
        collected: List[Tuple[str, LabelKey, float]] = []
        for collector in self._collectors:
            for name, _help, labels, value in collector():
                collected.append((name, _label_key(labels), float(value)))
        out.extend(sorted(collected))
        return out

    def value(self, name: str, **labels) -> float:
        """Scrape-time read of one series (collectors included)."""
        key = _label_key(labels)
        for sample_name, sample_key, sample_value in self.samples():
            if sample_name == name and sample_key == key:
                return sample_value
        raise KeyError(f"no series {name!r} with labels {labels!r}")

    def render(self) -> str:
        """Prometheus-style text exposition, byte-deterministic."""
        lines: List[str] = []
        helps: Dict[str, Tuple[str, str]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            helps[name] = (metric.kind, metric.help_text)
        families: Dict[str, List[Tuple[LabelKey, float]]] = {}
        for name, key, value in self.samples():
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in helps:
                    family = name[: -len(suffix)]
                    break
            families.setdefault(family, []).append((key, value))
            families[family].sort()
        for family in sorted(families):
            kind, help_text = helps.get(family, ("gauge", ""))
            if help_text:
                lines.append(f"# HELP {family} {help_text}")
            lines.append(f"# TYPE {family} {kind}")
            for key, value in families[family]:
                rendered = repr(value) if value != int(value) else str(int(value))
                lines.append(f"{family}{_format_labels(key)} {rendered}")
        return "\n".join(lines) + "\n"


#: The default process-wide registry (a fresh one per run is usually
#: better for determinism — :class:`~repro.observability.spans.Telemetry`
#: creates its own unless told otherwise).
REGISTRY = MetricsRegistry()


# ---------------------------------------------------------------------------
# Ledger adapters: the old counter idioms, unified behind one scrape
# ---------------------------------------------------------------------------

def _numeric_fields(obj) -> List[str]:
    if dataclasses.is_dataclass(obj):
        names = [f.name for f in dataclasses.fields(obj)]
    else:
        names = [n for n in vars(obj) if not n.startswith("_")]
    out = []
    for name in names:
        value = getattr(obj, name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out.append(name)
    return out


def attach_ledger(registry: MetricsRegistry, prefix: str, obj,
                  fields: Optional[Sequence[str]] = None,
                  labels: Optional[Dict[str, object]] = None,
                  help_text: str = "") -> None:
    """Re-export a ledger object's numeric attributes as live gauges.

    ``obj``'s attributes remain the authoritative store (existing code
    keeps doing ``ledger.field += 1``); every scrape reads the current
    values through ``getattr``.  ``fields`` defaults to the object's
    numeric dataclass fields / instance attributes and may name
    properties too (e.g. ``FaultStats.total_drops``).
    """
    chosen = list(fields) if fields is not None else _numeric_fields(obj)
    fixed = dict(labels or {})
    note = help_text or f"live read-through of {type(obj).__name__}"

    def collect():
        out = []
        for field in chosen:
            value = getattr(obj, field)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out.append((f"{prefix}_{field}", note, fixed, float(value)))
        return out

    registry.register_collector(collect)


def export_fault_stats(registry: MetricsRegistry, stats,
                       channel: str = "radio") -> None:
    """Adapter for :class:`~repro.protocols.faults.FaultStats`."""
    attach_ledger(registry, "repro_channel_faults", stats,
                  fields=["drops", "burst_drops", "duplicates", "corruptions",
                          "reorders", "delivered", "bad_state_frames",
                          "total_drops"],
                  labels={"channel": channel},
                  help_text="channel fault-injection ledger")


def export_dos_responder(registry: MetricsRegistry, responder,
                         role: str = "gateway") -> None:
    """Adapter for :class:`~repro.protocols.dos.CookieProtectedResponder`:
    the cookie-gate accounting, including the bounded pending table
    (``pending_cookies`` is a property — read through live) and its
    flood-pressure evictions."""
    attach_ledger(registry, "repro_dos_responder", responder,
                  fields=["pending_cookies", "cookies_issued",
                          "cookies_verified", "cookies_rejected",
                          "cookies_grace_accepted", "cookies_unmatched",
                          "evicted", "secret_rotations",
                          "handshakes_started", "work_spent_mi"],
                  labels={"role": role},
                  help_text="stateless-cookie DoS gate ledger")


def export_adversary_population(registry: MetricsRegistry,
                                population) -> None:
    """Adapter for :class:`~repro.adversary.population.AdversaryPopulation`:
    one labelled sample series per adversary, read live from each
    adversary's ``snapshot()`` ledger."""

    def collect():
        out = []
        for adversary in population.adversaries:
            labels = {"adversary": adversary.kind, "name": adversary.name}
            for key, value in adversary.snapshot().items():
                if isinstance(value, bool):
                    value = int(value)
                if not isinstance(value, (int, float)):
                    continue
                out.append((f"repro_adversary_{key}",
                            "adversary population ledger", labels,
                            float(value)))
        return out

    registry.register_collector(collect)


def export_degradation_report(registry: MetricsRegistry, report,
                              device: str = "appliance") -> None:
    """Adapter for :class:`~repro.core.supervisor.DegradationReport`."""
    attach_ledger(registry, "repro_supervisor", report,
                  fields=["engine_fallbacks", "engine_restorations",
                          "suite_downgrades", "suite_restorations",
                          "brownout_refusals", "tamper_zeroizations",
                          "reprovisions"],
                  labels={"device": device},
                  help_text="appliance supervisor degradation ledger")


def export_reliable_stats(registry: MetricsRegistry, stats,
                          endpoint: str) -> None:
    """Adapter for :class:`~repro.protocols.reliable.ReliableStats`."""
    attach_ledger(registry, "repro_arq", stats,
                  labels={"endpoint": endpoint},
                  help_text="go-back-N ARQ endpoint ledger")


def export_recovery_report(registry: MetricsRegistry, report,
                           session: str = "session") -> None:
    """Adapter for :class:`~repro.protocols.recovery.RecoveryReport`."""
    attach_ledger(registry, "repro_recovery", report,
                  labels={"session": session},
                  help_text="session recovery ledger")


def export_battery(registry: MetricsRegistry, battery,
                   device: str = "appliance") -> None:
    """Live gauges for a :class:`~repro.hardware.battery.Battery`."""
    labels = {"device": device}

    def collect():
        drained_mj = (battery.capacity_j - battery.remaining_j) * 1000.0
        return [
            ("repro_battery_capacity_j", "battery capacity", labels,
             battery.capacity_j),
            ("repro_battery_remaining_j", "battery charge remaining", labels,
             battery.remaining_j),
            ("repro_battery_drained_mj", "energy withdrawn so far", labels,
             drained_mj),
            ("repro_battery_fraction_remaining", "charge fraction", labels,
             battery.fraction_remaining),
        ]

    registry.register_collector(collect)


def export_gateway(registry: MetricsRegistry, gateway) -> None:
    """Adapter for the raw ``int`` counters on
    :class:`~repro.protocols.wap.WAPGateway` (plus the WAP-gap
    plaintext exposure, which is a *security* metric)."""
    attach_ledger(registry, "repro_gateway", gateway,
                  fields=["wired_leg_failures", "handler_failures",
                          "degraded_responses"],
                  help_text="WAP gateway proxy ledger")

    def collect():
        return [("repro_gateway_plaintext_records",
                 "records exposed in gateway memory (the WAP gap)", {},
                 float(len(gateway.plaintext_log)))]

    registry.register_collector(collect)


def export_runtime(registry: MetricsRegistry, runtime) -> None:
    """One call wiring a whole
    :class:`~repro.protocols.gateway_runtime.GatewayRuntime` world:
    runtime stats, the gateway's raw counters, per-origin breaker
    state, and every attached session battery."""
    attach_ledger(registry, "repro_gateway_runtime", runtime.stats,
                  fields=["submitted", "admitted", "served", "degraded",
                          "shed_rate_limited", "shed_queue_full",
                          "shed_deadline", "shed_malformed",
                          "malformed_discarded", "breaker_fast_fails",
                          "wired_failures", "handler_failures",
                          "battery_refusals", "energy_mj", "shed",
                          "answered"],
                  help_text="gateway runtime answer ledger")
    export_gateway(registry, runtime.gateway)

    def collect_breakers():
        out = []
        for origin in sorted(runtime.breakers):
            breaker = runtime.breakers[origin]
            out.append(("repro_gateway_breaker_fast_fails",
                        "requests fast-failed by an open breaker",
                        {"origin": origin}, float(breaker.fast_fails)))
            out.append(("repro_gateway_breaker_transitions",
                        "breaker state transitions",
                        {"origin": origin}, float(len(breaker.transitions))))
        return out

    registry.register_collector(collect_breakers)
    for session_id in sorted(runtime.sessions):
        battery = runtime.sessions[session_id].battery
        if battery is not None:
            export_battery(registry, battery, device=session_id)


def export_fleet(registry: MetricsRegistry, fleet) -> None:
    """Adapter for a :class:`~repro.fleet.runtime.ShardedFleet`: the
    supervisor's crash/recovery ledger plus live per-shard collectors
    (checkpoints written, journal health, liveness, session counts)
    and the recovery-latency distribution."""
    attach_ledger(registry, "repro_fleet", fleet.stats,
                  fields=["crashes", "detections", "restarts",
                          "heartbeat_misses", "sessions_migrated",
                          "migrations_warm", "migrations_cold_resume",
                          "migrations_cold_full", "checkpoints_restored",
                          "shed_recovering", "requests_while_down",
                          "black_holed_frames", "flushed_replies",
                          "migration_deferrals", "battery_refusals",
                          "recovery_energy_mj", "journal_bytes_torn"],
                  help_text="sharded fleet crash/recovery ledger")

    def collect_shards():
        out = []
        for shard in fleet.shards:
            labels = {"shard": shard.name}
            journal = shard.journal
            out.append(("repro_fleet_shard_alive",
                        "1 when the shard is live", labels,
                        1.0 if shard.alive else 0.0))
            out.append(("repro_fleet_shard_sessions",
                        "sessions currently owned", labels,
                        float(len(shard.runtime.sessions))))
            out.append(("repro_fleet_shard_crashes",
                        "times this shard died", labels,
                        float(shard.crash_count)))
            out.append(("repro_fleet_checkpoints_written",
                        "checkpoint frames durably appended", labels,
                        float(journal.checkpoints_written)))
            out.append(("repro_fleet_journal_bytes",
                        "journal bytes on stable storage", labels,
                        float(len(journal))))
            out.append(("repro_fleet_journal_evictions",
                        "journal index evictions (bounded state)", labels,
                        float(journal.evictions)))
            out.append(("repro_fleet_journal_torn_records",
                        "torn frames seen during recovery", labels,
                        float(journal.torn_records)))
            # Answer ledger summed across incarnations (restarts swap
            # the live stats object; the retired ones still count).
            ledgers = list(shard.retired_stats) + [shard.runtime.stats]
            for field_name, help_text in (
                    ("served", "requests served across incarnations"),
                    ("degraded", "degraded answers across incarnations"),
                    ("shed", "requests shed across incarnations"),
                    ("energy_mj",
                     "airlink energy charged across incarnations (mJ)")):
                total = sum(getattr(stats, field_name)
                            for stats in ledgers)
                out.append((f"repro_fleet_shard_{field_name}",
                            help_text, labels, float(total)))
        return out

    def collect_recovery():
        stats = fleet.stats
        cache = fleet.ticket_cache
        return [
            ("repro_fleet_recovery_p50_s",
             "median crash-to-migrated virtual latency", {},
             stats.recovery_p50_s()),
            ("repro_fleet_recovery_p95_s",
             "p95 crash-to-migrated virtual latency", {},
             stats.recovery_p95_s()),
            ("repro_fleet_ticket_cache_entries",
             "resumable tickets currently cached", {},
             float(len(cache))),
            ("repro_fleet_ticket_cache_evictions",
             "tickets evicted by the bounded cache", {},
             float(cache.evictions)),
            ("repro_fleet_ticket_cache_expired",
             "tickets expired by rotation GC", {},
             float(cache.expired)),
        ]

    registry.register_collector(collect_shards)
    registry.register_collector(collect_recovery)
