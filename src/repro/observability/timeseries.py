"""Windowed time-series metrics on the virtual clock.

The metrics registry answers "what is the total now"; a fleet operator
asks "what happened *per window* — goodput this second, p95 latency
during the failover storm, energy split while the attacker fired".
This module adds the windowed layer, deterministic by construction:

* :class:`QuantileSketch` — a mergeable fixed-bucket sketch sharing
  the :func:`~repro.observability.metrics.interpolate_quantile`
  estimator with :class:`~repro.observability.metrics.Histogram`.
  Merging is element-wise count addition, so per-shard window sketches
  combine into fleet-wide ones without re-observing anything;
* :class:`WindowedSeries` — fixed-width tumbling sub-buckets in a
  bounded ring (deterministic eviction: lowest index first), with
  sliding windows derived by merging ``width / slide`` adjacent
  sub-buckets.  All timestamps are virtual seconds from the shared
  :class:`~repro.protocols.reliable.VirtualClock`; nothing here reads
  wall time.

Feed path: :func:`series_collector` adapts a
:class:`~repro.observability.metrics.MetricsRegistry` ``register_collector``
hook so the latest finalized window of every series shows up in the
ordinary scrape (``<name>_window`` gauges) alongside the cumulative
metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import LATENCY_BUCKETS, MetricsRegistry, interpolate_quantile


class QuantileSketch:
    """A mergeable fixed-bucket quantile sketch.

    Same estimator as :meth:`Histogram.quantile`, but a free-standing
    value (one per window) that supports :meth:`merge` — the property
    windowed aggregation needs and a labelled histogram cannot give.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        cleaned = sorted(float(b) for b in bounds)
        if not cleaned or cleaned[-1] != float("inf"):
            cleaned.append(float("inf"))
        self.bounds: Tuple[float, ...] = tuple(cleaned)
        self.counts: List[int] = [0] * len(self.bounds)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        self.total += 1
        self.sum += value

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch in (bucket grids must match)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge sketches with different buckets")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum
        return self

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch(self.bounds)
        clone.counts = list(self.counts)
        clone.total = self.total
        clone.sum = self.sum
        return clone

    def quantile(self, q: float) -> float:
        """Deterministic interpolated quantile (0.0 when empty)."""
        return interpolate_quantile(self.bounds, self.counts, q)

    def count_le(self, threshold: float) -> int:
        """Observations known to be <= ``threshold`` (bucket-rounded
        *down*: only buckets entirely below the threshold count, so
        SLO good-event counting errs on the strict side)."""
        good = 0
        for bound, count in zip(self.bounds, self.counts):
            if bound <= threshold:
                good += count
        return good


@dataclass
class Window:
    """One finalized (or still-filling) window of a series."""

    start_s: float
    end_s: float
    count: float = 0.0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    sketch: Optional[QuantileSketch] = None

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self, digits: int = 6) -> Dict[str, object]:
        """JSON-ready form (floats rounded for byte stability)."""
        out: Dict[str, object] = {
            "start_s": round(self.start_s, digits),
            "end_s": round(self.end_s, digits),
            "count": round(self.count, digits),
            "sum": round(self.sum, digits),
        }
        if self.count:
            out["min"] = round(self.min, digits)
            out["max"] = round(self.max, digits)
        if self.sketch is not None and self.sketch.total:
            out["p50"] = round(self.sketch.quantile(0.50), digits)
            out["p95"] = round(self.sketch.quantile(0.95), digits)
            out["p99"] = round(self.sketch.quantile(0.99), digits)
        return out


class WindowedSeries:
    """One named series of fixed-width windows on the virtual clock.

    ``width_s`` is the tumbling window width; ``slide_s`` (defaulting
    to ``width_s``) must divide it, and sliding windows are produced by
    merging ``width_s / slide_s`` adjacent sub-buckets of width
    ``slide_s`` — so one deterministic ring of sub-buckets backs both
    views.  The ring holds at most ``capacity`` sub-buckets; older
    ones are evicted lowest-index-first and counted in
    ``evicted_buckets`` (no silent truncation).
    """

    def __init__(self, name: str, width_s: float,
                 slide_s: Optional[float] = None,
                 track_quantiles: bool = False,
                 bounds: Sequence[float] = LATENCY_BUCKETS,
                 capacity: int = 4096) -> None:
        if width_s <= 0:
            raise ValueError("window width must be positive")
        slide_s = width_s if slide_s is None else slide_s
        if slide_s <= 0 or slide_s > width_s:
            raise ValueError("slide must be in (0, width]")
        steps = width_s / slide_s
        if abs(steps - round(steps)) > 1e-9:
            raise ValueError("slide must divide the window width")
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.name = name
        self.width_s = float(width_s)
        self.slide_s = float(slide_s)
        self.steps = int(round(steps))
        self.track_quantiles = track_quantiles
        self.bounds = tuple(bounds)
        self.capacity = capacity
        #: ``{bucket_index: Window}`` — the deterministic ring.
        self._buckets: Dict[int, Window] = {}
        self.evicted_buckets = 0
        self.observations = 0

    # -- writing -------------------------------------------------------------

    def _bucket_index(self, t: float) -> int:
        # Guard the float edge: an observation at exactly a boundary
        # belongs to the *starting* window.
        return int(math.floor((t + 1e-12) / self.slide_s))

    def _bucket(self, t: float) -> Window:
        index = self._bucket_index(t)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = Window(start_s=index * self.slide_s,
                            end_s=(index + 1) * self.slide_s,
                            sketch=(QuantileSketch(self.bounds)
                                    if self.track_quantiles else None))
            self._buckets[index] = bucket
            while len(self._buckets) > self.capacity:
                self._buckets.pop(min(self._buckets))
                self.evicted_buckets += 1
        return bucket

    def observe(self, t: float, value: float) -> None:
        """Record one observation at virtual time ``t``."""
        bucket = self._bucket(t)
        bucket.count += 1
        bucket.sum += value
        bucket.min = min(bucket.min, value)
        bucket.max = max(bucket.max, value)
        if bucket.sketch is not None:
            bucket.sketch.observe(value)
        self.observations += 1

    def inc(self, t: float, amount: float = 1.0) -> None:
        """Counter semantics: add ``amount`` to the window's sum (and
        one logical event to its count)."""
        if amount == 0:
            return
        bucket = self._bucket(t)
        bucket.count += 1
        bucket.sum += amount
        bucket.min = min(bucket.min, amount)
        bucket.max = max(bucket.max, amount)
        if bucket.sketch is not None:
            bucket.sketch.observe(amount)
        self.observations += 1

    # -- reading -------------------------------------------------------------

    def _merge_range(self, start_index: int) -> Window:
        merged = Window(start_s=start_index * self.slide_s,
                        end_s=start_index * self.slide_s + self.width_s,
                        sketch=(QuantileSketch(self.bounds)
                                if self.track_quantiles else None))
        for offset in range(self.steps):
            bucket = self._buckets.get(start_index + offset)
            if bucket is None:
                continue
            merged.count += bucket.count
            merged.sum += bucket.sum
            merged.min = min(merged.min, bucket.min)
            merged.max = max(merged.max, bucket.max)
            if merged.sketch is not None and bucket.sketch is not None:
                merged.sketch.merge(bucket.sketch)
        return merged

    def window(self, start_s: float) -> Window:
        """The single tumbling window starting at ``start_s`` (which
        must be width-aligned) — the SLO engine's per-window read."""
        index = self._bucket_index(start_s)
        if index % self.steps:
            raise ValueError(f"{start_s!r} is not width-aligned")
        return self._merge_range(index)

    def tumbling(self, until_s: Optional[float] = None) -> List[Window]:
        """Aligned non-overlapping windows covering every retained
        sub-bucket (empty gaps included — a silent window is data)."""
        if not self._buckets:
            return []
        first = min(self._buckets)
        last = max(self._buckets)
        if until_s is not None:
            last = max(last, self._bucket_index(until_s) - 1)
        start = (first // self.steps) * self.steps
        out = []
        for index in range(start, last + 1, self.steps):
            out.append(self._merge_range(index))
        return out

    def sliding(self) -> List[Window]:
        """Overlapping windows advancing by ``slide_s`` (equal to
        :meth:`tumbling` when slide == width)."""
        if not self._buckets:
            return []
        first = min(self._buckets)
        last = max(self._buckets)
        return [self._merge_range(index)
                for index in range(first, last + 1)]

    def latest(self) -> Optional[Window]:
        """The most recent (possibly still-filling) tumbling window."""
        windows = self.tumbling()
        return windows[-1] if windows else None


def series_collector(series_list: Iterable[WindowedSeries]):
    """A ``register_collector`` adapter: the latest tumbling window of
    each series as ``<name>_window_{count,sum}`` gauges, labelled with
    the window start — the registry feed the ISSUE names, so one
    scrape shows cumulative totals *and* the freshest window."""
    frozen = list(series_list)

    def collect():
        out = []
        for series in frozen:
            window = series.latest()
            if window is None:
                continue
            labels = {"series": series.name,
                      "window_start_s": f"{window.start_s:.6f}"}
            out.append((f"repro_window_count",
                        "events in the latest window", labels,
                        float(window.count)))
            out.append((f"repro_window_sum",
                        "value sum in the latest window", labels,
                        float(window.sum)))
        return out

    return collect


def register_series(registry: MetricsRegistry,
                    series_list: Iterable[WindowedSeries]) -> None:
    """Wire windowed series into a registry's live scrape."""
    registry.register_collector(series_collector(series_list))
