"""The zero-overhead probe seam every instrumented layer shares.

This module is deliberately tiny and imports nothing from the rest of
``repro`` at runtime: any module — crypto, protocols, hardware, core —
can consult it without creating an import cycle.  It holds exactly one
piece of state, :data:`active`, the currently installed
:class:`~repro.observability.spans.Telemetry` context (or ``None``).

The contract mirrors :class:`~repro.crypto.trace.TraceRecorder`: when
no telemetry is installed, an instrumented hot path pays **one
attribute read and one ``if``** per probe point and behaves
identically.  Cool paths may use the :func:`span` / :func:`event`
conveniences, which fold the check into one call.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spans import Span, Telemetry

#: The installed telemetry context; ``None`` means telemetry is off and
#: every probe point is a single dead ``if``.
active: Optional["Telemetry"] = None

# ``contextlib.nullcontext`` is reentrant and stateless, so one shared
# instance serves every disabled probe without an allocation.
_NULL = contextlib.nullcontext()


def install(telemetry: "Telemetry") -> "Telemetry":
    """Install a telemetry context globally; returns it for chaining."""
    global active
    active = telemetry
    return telemetry


def uninstall() -> None:
    """Remove the installed telemetry context (probes go dead again)."""
    global active
    active = None


@contextlib.contextmanager
def activate(telemetry: "Telemetry") -> Iterator["Telemetry"]:
    """Install ``telemetry`` for the duration of a ``with`` block.

    Restores whatever was installed before (usually ``None``), so
    nested activations and test fixtures compose safely.
    """
    global active
    previous = active
    active = telemetry
    try:
        yield telemetry
    finally:
        active = previous


def span(name: str, **attrs):
    """A span context manager, or a shared null context when disabled.

    For cool paths only (handshakes, recovery actions, supervisor
    dispatch): the disabled cost is one call and no allocation.  Hot
    paths (the record layer) should read :data:`active` once and branch
    explicitly.  ``with probe.span(...) as sp:`` binds ``sp`` to the
    live :class:`~repro.observability.spans.Span` — or ``None`` when
    telemetry is off, so attribute enrichment can be guarded.
    """
    telemetry = active
    if telemetry is None:
        return _NULL
    return telemetry.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record a point event on the active telemetry, if any."""
    telemetry = active
    if telemetry is not None:
        telemetry.event(name, **attrs)
