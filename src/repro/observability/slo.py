"""Declarative SLOs with multi-window burn-rate alerting.

The SRE shape, on the virtual clock: an :class:`SloSpec` declares an
objective (availability, a latency quantile, or an
energy-per-served-request budget); the :class:`SloEngine` consumes one
ratio per evaluation window and converts it to a **burn rate** — how
many times faster than sustainable the error budget is being spent:

* availability / latency: ``burn = bad_fraction / (1 - objective)``
  (burn 1.0 = exactly on budget, 20.0 = a window that alone would eat
  5% of the budget at objective 0.95);
* energy budget: ``burn = consumed_mj / (budget_mj_per_request *
  served)`` — spend rate over sustainable rate.

Alerting is multi-window (the fast/slow pattern): a policy fires only
when *both* the short-window average (paging on real, current pain)
and the long-window average (suppressing one-window blips) exceed
their thresholds.  Alerts land in a **latched ledger**: firings and
clears are appended, never rewritten, so the report shows every alert
the run ever raised even if the burn subsided before the end — an ops
report that forgets the incident is worse than none.

Everything is deterministic: pure arithmetic over window ratios, no
wall clock, no sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Cap on a single window's burn rate: a window with served == 0 but
#: nonzero spend would otherwise divide by zero, and "infinitely over
#: budget" renders poorly in a byte-stable report.
BURN_CAP = 1000.0

VALID_KINDS = ("availability", "latency_quantile", "energy_budget")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective.

    ``objective`` is the good-event fraction target for ratio SLOs
    (0.95 = 95% of requests good); ``threshold`` carries the latency
    bound (seconds) for ``latency_quantile`` or the per-served-request
    energy budget (mJ) for ``energy_budget``.
    """

    name: str
    kind: str
    objective: float = 0.95
    threshold: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind != "energy_budget" and not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be a fraction in (0, 1)")
        if self.kind in ("latency_quantile", "energy_budget") \
                and self.threshold <= 0.0:
            raise ValueError(f"{self.kind} needs a positive threshold")

    @property
    def error_budget(self) -> float:
        """Tolerable bad-event fraction (ratio SLOs)."""
        return 1.0 - self.objective

    def burn(self, good: float, total: float) -> float:
        """One window's burn rate from a good/total event ratio."""
        if total <= 0:
            return 0.0
        bad_fraction = max(0.0, (total - good) / total)
        return min(BURN_CAP, bad_fraction / self.error_budget)

    def burn_budget(self, consumed: float, served: float) -> float:
        """One window's burn rate from an energy spend
        (``energy_budget`` specs only)."""
        if self.kind != "energy_budget":
            raise ValueError("burn_budget is for energy_budget specs")
        allowed = self.threshold * served
        if allowed <= 0.0:
            return 0.0 if consumed <= 0.0 else BURN_CAP
        return min(BURN_CAP, consumed / allowed)


@dataclass(frozen=True)
class BurnRatePolicy:
    """One fast/slow multi-window alerting rule."""

    name: str = "page"
    fast_windows: int = 1      # windows averaged for the fast signal
    slow_windows: int = 4      # windows averaged for the slow signal
    fast_burn: float = 10.0    # both averages must exceed their
    slow_burn: float = 2.0     # threshold for the alert to fire
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ValueError("need 1 <= fast_windows <= slow_windows")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be positive")


@dataclass(frozen=True)
class Alert:
    """One latched ledger entry (a firing or a clear)."""

    at_s: float
    slo: str
    policy: str
    severity: str
    state: str          # "firing" | "cleared"
    burn_fast: float
    burn_slow: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_s": round(self.at_s, 6),
            "slo": self.slo,
            "policy": self.policy,
            "severity": self.severity,
            "state": self.state,
            "burn_fast": round(self.burn_fast, 6),
            "burn_slow": round(self.burn_slow, 6),
        }


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


class SloEngine:
    """Evaluates specs window by window; owns the latched ledger."""

    def __init__(self, specs: List[SloSpec],
                 policies: Optional[List[BurnRatePolicy]] = None) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("SLO names must be unique")
        self.specs: Dict[str, SloSpec] = {spec.name: spec for spec in specs}
        self.policies = policies if policies is not None \
            else [BurnRatePolicy()]
        #: Per-spec window history: (start_s, end_s, burn, good, total).
        self._history: Dict[str, List[Tuple[float, float, float,
                                            float, float]]] = {
            name: [] for name in self.specs}
        #: The latched ledger (firings and clears, append-only).
        self.alerts: List[Alert] = []
        self._firing: Dict[Tuple[str, str], bool] = {}

    # -- feeding -------------------------------------------------------------

    def record_window(self, name: str, start_s: float, end_s: float,
                      good: float, total: float) -> float:
        """Feed one window's good/total ratio; returns its burn rate."""
        spec = self.specs[name]
        burn = spec.burn(good, total)
        self._append(spec, start_s, end_s, burn, good, total)
        return burn

    def record_budget_window(self, name: str, start_s: float, end_s: float,
                             consumed: float, served: float) -> float:
        """Feed one window's energy spend (``energy_budget`` specs)."""
        spec = self.specs[name]
        burn = spec.burn_budget(consumed, served)
        self._append(spec, start_s, end_s, burn, served, served)
        return burn

    def _append(self, spec: SloSpec, start_s: float, end_s: float,
                burn: float, good: float, total: float) -> None:
        history = self._history[spec.name]
        history.append((start_s, end_s, burn, good, total))
        burns = [row[2] for row in history]
        for policy in self.policies:
            fast = _mean(burns[-policy.fast_windows:])
            slow = _mean(burns[-policy.slow_windows:])
            firing = fast > policy.fast_burn and slow > policy.slow_burn
            key = (spec.name, policy.name)
            was_firing = self._firing.get(key, False)
            if firing and not was_firing:
                self.alerts.append(Alert(
                    at_s=end_s, slo=spec.name, policy=policy.name,
                    severity=policy.severity, state="firing",
                    burn_fast=fast, burn_slow=slow))
            elif not firing and was_firing:
                self.alerts.append(Alert(
                    at_s=end_s, slo=spec.name, policy=policy.name,
                    severity=policy.severity, state="cleared",
                    burn_fast=fast, burn_slow=slow))
            self._firing[key] = firing

    # -- reading -------------------------------------------------------------

    def ever_fired(self, name: str) -> bool:
        """Whether any policy ever fired for this spec (latched)."""
        return any(alert.slo == name and alert.state == "firing"
                   for alert in self.alerts)

    def summary(self) -> Dict[str, object]:
        """JSON-ready per-spec summary plus the full alert ledger."""
        specs: Dict[str, object] = {}
        for name in sorted(self.specs):
            spec = self.specs[name]
            history = self._history[name]
            burns = [row[2] for row in history]
            good = sum(row[3] for row in history)
            total = sum(row[4] for row in history)
            specs[name] = {
                "kind": spec.kind,
                "objective": spec.objective,
                "threshold": spec.threshold,
                "windows": len(history),
                "good": round(good, 6),
                "total": round(total, 6),
                "attainment": round(good / total, 6) if total else 1.0,
                "max_burn": round(max(burns), 6) if burns else 0.0,
                "mean_burn": round(_mean(burns), 6),
                "ever_fired": self.ever_fired(name),
            }
        return {
            "specs": specs,
            "policies": [{
                "name": policy.name,
                "fast_windows": policy.fast_windows,
                "slow_windows": policy.slow_windows,
                "fast_burn": policy.fast_burn,
                "slow_burn": policy.slow_burn,
                "severity": policy.severity,
            } for policy in self.policies],
            "alerts": [alert.as_dict() for alert in self.alerts],
        }
