"""Deterministic exports: JSONL event log, Prometheus text, flamegraph.

Every export here is **byte-identical across same-seed reruns**: spans
carry sequential ids and virtual timestamps, JSON is serialised with
sorted keys and fixed separators, and metric families render in sorted
order.  The CI smoke job leans on this by diffing two same-seed runs
with ``cmp``.

JSONL schema (one object per line):

* ``{"type": "trace", "trace_id", "label", "spans", "events",
  "energy_mj", "cycles", "unattributed_mj", "unattributed_cycles"}``
  — exactly one, first line;
* ``{"type": "span", "id", "parent", "name", "start_s", "end_s",
  "attrs", "events", "energy_mj", "cycles"}`` — one per span, in
  creation (= id) order;
* ``{"type": "event", "name", "time_s", "attrs"}`` — trace-level
  events (span-level events ride inside their span line);
* ``{"type": "metric", "name", "labels", "value"}`` — one per series
  of the final scrape.

``tools/check_telemetry_schema.py`` validates this shape.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .attribution import span_rollup
from .spans import Span, SpanEvent, Telemetry


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _event_dict(event: SpanEvent) -> Dict[str, object]:
    return {"name": event.name, "time_s": event.time_s,
            "attrs": {str(k): _scalar(v) for k, v in event.attrs.items()}}


def _scalar(value):
    """Coerce attribute values to JSON-stable scalars."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def to_jsonl(telemetry: Telemetry) -> str:
    """The whole trace + final metrics scrape as deterministic JSONL."""
    lines: List[str] = []
    lines.append(_dumps({
        "type": "trace",
        "trace_id": telemetry.trace_id,
        "label": telemetry.label,
        "spans": len(telemetry.spans),
        "events": len(telemetry.events),
        "energy_mj": telemetry.total_energy_mj(),
        "cycles": telemetry.total_cycles(),
        "unattributed_mj": telemetry.unattributed_mj,
        "unattributed_cycles": telemetry.unattributed_cycles,
    }))
    for span in telemetry.spans:
        lines.append(_dumps({
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start_s": span.start_s,
            "end_s": span.end_s,
            "attrs": {str(k): _scalar(v) for k, v in span.attrs.items()},
            "events": [_event_dict(e) for e in span.events],
            "energy_mj": span.energy_mj,
            "cycles": span.cycles,
        }))
    for event in telemetry.events:
        payload = _event_dict(event)
        payload["type"] = "event"
        lines.append(_dumps(payload))
    for name, key, value in telemetry.registry.samples():
        lines.append(_dumps({
            "type": "metric",
            "name": name,
            "labels": {k: v for k, v in key},
            "value": value,
        }))
    return "\n".join(lines) + "\n"


def write_jsonl(telemetry: Telemetry, path) -> None:
    """Write :func:`to_jsonl` output, byte-stable (``\\n`` newlines)."""
    with open(path, "w", newline="\n", encoding="utf-8") as handle:
        handle.write(to_jsonl(telemetry))


def fleet_jsonl(telemetry: Telemetry, store) -> str:
    """Fleet-scope JSONL: spans in the merged per-shard-stream order.

    Same line schema as :func:`to_jsonl` except the header line is
    ``type: "fleet"`` (stream inventory included) and every span line
    carries its owning ``stream`` — spans appear in the
    :meth:`~repro.observability.tracecontext.FleetTraceStore.merged`
    ``(start_s, stream, span_id)`` order rather than creation order,
    so the log reads as one interleaved fleet timeline.
    """
    merged = store.merged()
    lines: List[str] = []
    lines.append(_dumps({
        "type": "fleet",
        "trace_id": telemetry.trace_id,
        "label": telemetry.label,
        "streams": store.streams(),
        "spans": len(merged),
        "events": len(telemetry.events),
        "energy_mj": telemetry.total_energy_mj(),
        "unattributed_mj": telemetry.unattributed_mj,
    }))
    for start_s, stream, span_id, span in merged:
        lines.append(_dumps({
            "type": "span",
            "id": span_id,
            "stream": stream,
            "parent": span.parent_id,
            "name": span.name,
            "start_s": start_s,
            "end_s": span.end_s,
            "attrs": {str(k): _scalar(v) for k, v in span.attrs.items()},
            "events": [_event_dict(e) for e in span.events],
            "energy_mj": span.energy_mj,
            "cycles": span.cycles,
        }))
    for event in telemetry.events:
        payload = _event_dict(event)
        payload["type"] = "event"
        lines.append(_dumps(payload))
    for name, key, value in telemetry.registry.samples():
        lines.append(_dumps({
            "type": "metric",
            "name": name,
            "labels": {k: v for k, v in key},
            "value": value,
        }))
    return "\n".join(lines) + "\n"


def prometheus_text(telemetry: Telemetry) -> str:
    """The final metrics scrape in Prometheus exposition format."""
    return telemetry.registry.render()


# ---------------------------------------------------------------------------
# Human-facing renderings for the CLI
# ---------------------------------------------------------------------------

def span_tree(telemetry: Telemetry, max_spans: int = 200) -> str:
    """An indented tree of the trace (truncated for huge runs)."""
    children: Dict[object, List[Span]] = {}
    for span in telemetry.spans:
        children.setdefault(span.parent_id, []).append(span)

    lines: List[str] = [f"trace {telemetry.trace_id} ({telemetry.label})"]
    emitted = 0

    def walk(parent_id, depth: int) -> None:
        nonlocal emitted
        for span in children.get(parent_id, ()):
            if emitted >= max_spans:
                return
            emitted += 1
            attrs = "".join(
                f" {k}={_scalar(v)}" for k, v in sorted(span.attrs.items()))
            cost = ""
            if span.energy_mj:
                cost += f" {span.energy_mj:.3f}mJ"
            if span.cycles:
                cost += f" {span.cycles / 1e6:.2f}Mi"
            lines.append(
                f"{'  ' * (depth + 1)}{span.name}"
                f" [{span.start_s:.3f}s..{(span.end_s or span.start_s):.3f}s]"
                f"{attrs}{cost}")
            walk(span.span_id, depth + 1)

    walk(None, 0)
    if emitted < len(telemetry.spans):
        lines.append(f"  ... {len(telemetry.spans) - emitted} more spans")
    return "\n".join(lines)


def flamegraph_folds(telemetry: Telemetry) -> str:
    """Brendan-Gregg-style folded stacks weighted by inclusive mJ
    (micro-joule resolution), suitable for any flamegraph renderer."""
    by_id = {span.span_id: span for span in telemetry.spans}
    weights: Dict[str, float] = {}
    for span in telemetry.spans:
        frames = [span.name]
        node = span
        while node.parent_id is not None:
            node = by_id[node.parent_id]
            frames.append(node.name)
        stack = ";".join(reversed(frames))
        weights[stack] = weights.get(stack, 0.0) + span.energy_mj
    lines = [f"{stack} {int(round(weights[stack] * 1000.0))}"
             for stack in sorted(weights) if weights[stack] > 0.0]
    return "\n".join(lines) + ("\n" if lines else "")


def fleet_flamegraph_folds(telemetry: Telemetry, store) -> str:
    """Folded stacks rooted at the owning shard stream.

    Same weighting as :func:`flamegraph_folds`, but every stack is
    prefixed with the stream the span belongs to in the fleet trace
    store — the flamegraph reads per-shard first, then per-path, so
    recovery energy shows up under the shard that paid for it.
    """
    by_id = {span.span_id: span for span in telemetry.spans}
    stream_of = {span_id: stream
                 for _start, stream, span_id, _span in store.merged()}
    weights: Dict[str, float] = {}
    for span in telemetry.spans:
        frames = [span.name]
        node = span
        while node.parent_id is not None:
            node = by_id[node.parent_id]
            frames.append(node.name)
        frames.append(stream_of.get(span.span_id, "fleet"))
        stack = ";".join(reversed(frames))
        weights[stack] = weights.get(stack, 0.0) + span.energy_mj
    lines = [f"{stack} {int(round(weights[stack] * 1000.0))}"
             for stack in sorted(weights) if weights[stack] > 0.0]
    return "\n".join(lines) + ("\n" if lines else "")


def rollup_table(telemetry: Telemetry) -> str:
    """The telemetry-report summary: per-span-name cost table."""
    rows = span_rollup(telemetry)
    header = (f"{'span':<24} {'count':>6} {'self mJ':>12} "
              f"{'incl mJ':>12} {'incl Mi':>12} {'dur s':>10}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<24} {row.count:>6} {row.self_mj:>12.3f} "
            f"{row.inclusive_mj:>12.3f} {row.inclusive_cycles / 1e6:>12.2f} "
            f"{row.duration_s:>10.3f}")
    lines.append(
        f"{'(unattributed)':<24} {'':>6} "
        f"{telemetry.unattributed_mj:>12.3f} {'':>12} "
        f"{telemetry.unattributed_cycles / 1e6:>12.2f} {'':>10}")
    return "\n".join(lines)
