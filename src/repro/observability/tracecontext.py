"""Propagatable trace context for fleet-wide distributed tracing.

A single-runtime trace (PR 4) is one tree under one
:class:`~repro.observability.spans.Telemetry`; a *fleet* trace is not:
one session's crash -> detect -> re-home -> restore journey crosses
shard boundaries, survives in a checkpoint while its owner is dead,
and resumes on a different shard.  The glue is a :class:`TraceContext`
— trace id, parent span id, and baggage (session id, handset class,
shard id) — that rides along three propagation paths:

* **span attributes**: :func:`attach` stamps the context onto a span
  (``ctx.trace`` / ``ctx.parent`` / ``bg.*`` keys), so any span of any
  shard's stream can be claimed by a journey;
* **checkpoints**: :meth:`TraceContext.to_bytes` is a versioned
  length-prefixed codec small enough to ride inside a
  :class:`~repro.fleet.snapshot.SessionSnapshot` — a *warm* restore
  genuinely reads its trace identity from the durable checkpoint, not
  from supervisor memory;
* **fleet memory**: the cold tiers (resumption / re-handshake) carry
  the context the way they carry tickets — via the supervisor.

:class:`FleetTraceStore` is the read side: it partitions spans into
per-shard streams and merges them by ``(virtual time, shard id, span
id)`` into one byte-stable ordering, then stitches per-trace-id
journey trees back out of the merged stream.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .spans import Span, Telemetry, derive_trace_id

#: Span-attribute keys the context rides on.  The ``ctx.`` / ``bg.``
#: prefixes keep them clear of ordinary instrumentation attributes.
CTX_TRACE = "ctx.trace"
CTX_PARENT = "ctx.parent"
BAGGAGE_PREFIX = "bg."

_CTX_VERSION = 1


@dataclass(frozen=True)
class TraceContext:
    """One propagatable trace identity: id, parent span, baggage."""

    trace_id: str
    parent_span: int = 0
    baggage: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def root(cls, *seed_material, **baggage) -> "TraceContext":
        """A fresh context whose trace id is a pure function of the
        seed material (same seeds, same journey id, every run)."""
        return cls(trace_id=derive_trace_id(*seed_material),
                   parent_span=0,
                   baggage=tuple(sorted((str(k), str(v))
                                        for k, v in baggage.items())))

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Read one baggage value."""
        for name, value in self.baggage:
            if name == key:
                return value
        return default

    def with_baggage(self, **updates) -> "TraceContext":
        """A copy with baggage keys added or replaced (baggage stays
        sorted, so the wire form is canonical)."""
        merged = {name: value for name, value in self.baggage}
        merged.update({str(k): str(v) for k, v in updates.items()})
        return TraceContext(self.trace_id, self.parent_span,
                            tuple(sorted(merged.items())))

    def child_of(self, span: Span) -> "TraceContext":
        """The context as seen below ``span`` (parent re-pointed)."""
        return TraceContext(self.trace_id, span.span_id, self.baggage)

    # -- wire form (rides inside SessionSnapshot) ---------------------------

    def to_bytes(self) -> bytes:
        """Versioned, length-prefixed binary form (no pickle —
        contexts cross the same trust boundary checkpoints do)."""
        out: List[bytes] = [bytes([_CTX_VERSION])]
        trace = self.trace_id.encode("ascii")
        out.append(struct.pack(">H", len(trace)))
        out.append(trace)
        out.append(struct.pack(">I", self.parent_span))
        out.append(struct.pack(">H", len(self.baggage)))
        for name, value in self.baggage:
            for blob in (name.encode("utf-8"), value.encode("utf-8")):
                if len(blob) > 0xFFFF:
                    raise ValueError("baggage field too long")
                out.append(struct.pack(">H", len(blob)))
                out.append(blob)
        return b"".join(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "TraceContext":
        """Decode one context; raises ``ValueError`` on damage."""
        if not raw:
            raise ValueError("empty trace context")
        if raw[0] != _CTX_VERSION:
            raise ValueError(f"unknown trace-context version {raw[0]}")
        pos = 1

        def take(count: int) -> bytes:
            nonlocal pos
            if pos + count > len(raw):
                raise ValueError("trace context truncated")
            blob = raw[pos:pos + count]
            pos += count
            return blob

        def take_str() -> str:
            (length,) = struct.unpack(">H", take(2))
            return take(length).decode("utf-8")

        trace_id = take_str()
        (parent_span,) = struct.unpack(">I", take(4))
        (pairs,) = struct.unpack(">H", take(2))
        baggage = tuple((take_str(), take_str()) for _ in range(pairs))
        if pos != len(raw):
            raise ValueError("trace context has trailing bytes")
        return cls(trace_id=trace_id, parent_span=parent_span,
                   baggage=baggage)


def attach(span: Span, ctx: TraceContext) -> Span:
    """Stamp a context onto a span (the span joins the journey)."""
    attrs: Dict[str, object] = {CTX_TRACE: ctx.trace_id,
                                CTX_PARENT: ctx.parent_span}
    for name, value in ctx.baggage:
        attrs[BAGGAGE_PREFIX + name] = value
    return span.set(**attrs)


def context_of(span: Span) -> Optional[TraceContext]:
    """Recover the context stamped on a span, if any."""
    trace_id = span.attrs.get(CTX_TRACE)
    if trace_id is None:
        return None
    baggage = tuple(sorted(
        (key[len(BAGGAGE_PREFIX):], str(value))
        for key, value in span.attrs.items()
        if key.startswith(BAGGAGE_PREFIX)))
    return TraceContext(trace_id=str(trace_id),
                        parent_span=int(span.attrs.get(CTX_PARENT, 0)),
                        baggage=baggage)


def baggage_attrs(ctx: TraceContext) -> Dict[str, object]:
    """The context as event attributes (events join journeys too)."""
    attrs: Dict[str, object] = {CTX_TRACE: ctx.trace_id}
    for name, value in ctx.baggage:
        attrs[BAGGAGE_PREFIX + name] = value
    return attrs


# ---------------------------------------------------------------------------
# The fleet-wide read side
# ---------------------------------------------------------------------------


@dataclass
class Journey:
    """One session's stitched cross-shard trace."""

    trace_id: str
    session: str
    #: ``(stream, span)`` roots in merged order; each root's subtree
    #: lives entirely within its stream.
    roots: List[Tuple[str, Span]]
    #: Recovery tiers seen along the journey (attribute ``tier``).
    tiers: List[str]
    #: Shards visited, in merged order, deduplicated.
    shards: List[str]

    @property
    def span_count(self) -> int:
        return len(self.roots)


class FleetTraceStore:
    """Merges per-shard span streams into one byte-stable ordering.

    Streams may come from one global :class:`Telemetry` partitioned by
    a shard attribute (:meth:`partition` — the fleetwatch path, where
    all shards share one scheduler and one trace), or from genuinely
    independent telemetry objects added one at a time
    (:meth:`add_stream` — the multi-process shape).  Either way the
    merged order is ``(start time, stream id, span id)``: virtual
    time first, then the shard name, then the per-stream sequential
    span id — a total order identical across same-seed runs.
    """

    def __init__(self) -> None:
        self._streams: Dict[str, List[Span]] = {}

    # -- building ------------------------------------------------------------

    def add_stream(self, stream_id: str, spans: Sequence[Span]) -> None:
        """Add (or extend) one shard's span stream."""
        self._streams.setdefault(stream_id, []).extend(spans)

    def add_telemetry(self, stream_id: str, telemetry: Telemetry) -> None:
        """Add a whole telemetry object as one stream."""
        self.add_stream(stream_id, telemetry.spans)

    @classmethod
    def partition(cls, telemetry: Telemetry, key: str = "shard",
                  default: str = "fleet") -> "FleetTraceStore":
        """Split one shared-scheduler trace into per-shard streams.

        A span belongs to the stream named by its ``key`` attribute,
        inherited from the nearest ancestor that has one (a handshake
        span nested under a ``fleet.recover`` span belongs to the
        recovering shard); spans with no shard anywhere above them
        (supervisor work) land in the ``default`` stream.
        """
        store = cls()
        by_id = {span.span_id: span for span in telemetry.spans}
        resolved: Dict[int, str] = {}

        def stream_of(span: Span) -> str:
            cached = resolved.get(span.span_id)
            if cached is not None:
                return cached
            value = span.attrs.get(key)
            if value is not None:
                stream = str(value)
            elif span.parent_id is not None and span.parent_id in by_id:
                stream = stream_of(by_id[span.parent_id])
            else:
                stream = default
            resolved[span.span_id] = stream
            return stream

        for span in telemetry.spans:
            store.add_stream(stream_of(span), [span])
        return store

    # -- the merged view -----------------------------------------------------

    def streams(self) -> List[str]:
        """Stream ids, sorted."""
        return sorted(self._streams)

    def merged(self) -> List[Tuple[float, str, int, Span]]:
        """Every span of every stream as ``(start_s, stream, span_id,
        span)``, in the canonical byte-stable order."""
        out: List[Tuple[float, str, int, Span]] = []
        for stream_id in sorted(self._streams):
            for span in self._streams[stream_id]:
                out.append((span.start_s, stream_id, span.span_id, span))
        out.sort(key=lambda row: (row[0], row[1], row[2]))
        return out

    # -- journeys ------------------------------------------------------------

    def journeys(self) -> Dict[str, Journey]:
        """Stitch the merged stream into per-trace-id journey trees.

        A journey's roots are the context-stamped spans (``ctx.trace``
        attribute) in merged order; milestones like the crash event
        ride inside those spans.  Returns ``{trace_id: Journey}``.
        """
        out: Dict[str, Journey] = {}
        for start_s, stream_id, span_id, span in self.merged():
            ctx = context_of(span)
            if ctx is None:
                continue
            journey = out.get(ctx.trace_id)
            if journey is None:
                journey = Journey(trace_id=ctx.trace_id,
                                  session=ctx.get("session", "?") or "?",
                                  roots=[], tiers=[], shards=[])
                out[ctx.trace_id] = journey
            journey.roots.append((stream_id, span))
            tier = span.attrs.get("tier")
            if tier is not None:
                journey.tiers.append(str(tier))
            if stream_id not in journey.shards:
                journey.shards.append(stream_id)
        return out

    def journey(self, trace_id: str) -> Optional[Journey]:
        """One stitched journey (or ``None``)."""
        return self.journeys().get(trace_id)

    def render_journey(self, journey: Journey,
                       children: Optional[Callable[[Span], List[Span]]]
                       = None) -> str:
        """A deterministic indented rendering of one journey tree."""
        lines = [f"journey {journey.trace_id} session={journey.session} "
                 f"shards={'>'.join(journey.shards)}"]
        for stream_id, span in journey.roots:
            tier = span.attrs.get("tier")
            extra = f" tier={tier}" if tier is not None else ""
            lines.append(f"  [{span.start_s:.3f}s] {stream_id}: "
                         f"{span.name}{extra}")
            if children is not None:
                for kid in children(span):
                    lines.append(f"    [{kid.start_s:.3f}s] {kid.name}")
        return "\n".join(lines)
