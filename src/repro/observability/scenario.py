"""The canonical telemetry scenario: a seeded gateway chaos run.

One call builds the full N-handset gateway world **with telemetry
active from the first handshake**, drives a chaos traffic pattern
(identical shape to :func:`repro.analysis.chaos.chaos_point`), and
returns the finished :class:`~repro.observability.spans.Telemetry`
alongside the usual served/degraded/shed ledger — everything
``python -m repro telemetry-report``, the CI smoke job, and the
acceptance tests need.

Determinism: the virtual clock is shared between the runtime and the
telemetry context, every RNG is a seeded
:class:`~repro.crypto.rng.DeterministicDRBG`, and the trace id derives
from the scenario parameters — so two same-seed runs export
byte-identical JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hardware.battery import Battery
from ..protocols.gateway_runtime import (
    RuntimeConfig,
    RuntimeStats,
    build_gateway_runtime_world,
)
from ..protocols.reliable import VirtualClock
from . import probe
from .attribution import EnergyReconciliation, reconcile_energy
from .metrics import export_runtime
from .spans import Telemetry

ORIGIN = "origin.example"


def classify_reply(reply: bytes) -> str:
    """``served`` / ``degraded`` / ``shed`` for one runtime reply."""
    from ..protocols.gateway_runtime import BUSY_PREFIX
    from ..protocols.wap import DEGRADED_PREFIX
    if reply.startswith(BUSY_PREFIX):
        return "shed"
    if reply.startswith(DEGRADED_PREFIX):
        return "degraded"
    return "served"


@dataclass
class ChaosTelemetryResult:
    """Everything one seeded chaos-with-telemetry run produced."""

    telemetry: Telemetry
    stats: RuntimeStats
    counts: Dict[str, int]
    batteries: Dict[str, Battery]
    reconciliation: EnergyReconciliation
    sessions: int = 0
    seed: int = 0
    params: Dict[str, object] = field(default_factory=dict)


def run_gateway_chaos(sessions: int = 32, requests_per_session: int = 4,
                      interarrival_s: float = 0.1, fault_rate: float = 0.2,
                      seed: int = 0, battery_capacity_j: float = 5.0,
                      config: Optional[RuntimeConfig] = None
                      ) -> ChaosTelemetryResult:
    """One seeded chaos run with the telemetry plane on.

    Telemetry is activated *before* the world is built so the session
    handshakes (and their kex/modexp descendants) land in the trace;
    the virtual clock is shared with the runtime so span timestamps
    and gateway scheduling live on one timeline.  Per-handset
    batteries back every radio charge, making the energy
    reconciliation (:func:`~repro.observability.attribution
    .reconcile_energy`) a real end-to-end check.
    """
    clock = VirtualClock()
    telemetry = Telemetry(
        seed=("gateway-chaos", sessions, requests_per_session,
              interarrival_s, fault_rate, seed),
        clock=clock, label="gateway-chaos")
    batteries = {
        f"handset-{index:02d}": Battery(capacity_j=battery_capacity_j)
        for index in range(sessions)
    }
    with probe.activate(telemetry):
        runtime, handsets, _ = build_gateway_runtime_world(
            sessions=sessions, seed=seed, config=config,
            batteries=batteries, clock=clock)
        if fault_rate > 0.0:
            runtime.set_fault_rate(ORIGIN, fault_rate, seed=seed)
        export_runtime(telemetry.registry, runtime)
        session_ids = sorted(handsets)
        for round_index in range(requests_per_session):
            for slot, session_id in enumerate(session_ids):
                handsets[session_id].send(
                    f"req-{session_id}-{round_index}".encode())
                runtime.submit(
                    session_id, ORIGIN,
                    arrival_offset_s=round_index * interarrival_s
                    + slot * interarrival_s / max(1, sessions))
        stats = runtime.run()
        replies: List[str] = []
        for session_id in session_ids:
            conn = handsets[session_id]
            while conn.endpoint.pending():
                replies.append(classify_reply(conn.receive()))
    counts = {kind: replies.count(kind)
              for kind in ("served", "degraded", "shed")}
    return ChaosTelemetryResult(
        telemetry=telemetry,
        stats=stats,
        counts=counts,
        batteries=batteries,
        reconciliation=reconcile_energy(telemetry, batteries.values()),
        sessions=sessions,
        seed=seed,
        params={
            "sessions": sessions,
            "requests_per_session": requests_per_session,
            "interarrival_s": interarrival_s,
            "fault_rate": fault_rate,
            "seed": seed,
            "battery_capacity_j": battery_capacity_j,
        },
    )
