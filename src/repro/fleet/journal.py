"""Write-ahead checkpoint journal with torn-tail crash semantics.

Each shard appends every session checkpoint to its own journal — the
stand-in for the cheap stable storage (flash, a log-structured NOR
partition) a 2003-era gateway box would journal to.  The format is the
classic WAL frame::

    u32 body-length | u32 crc32(body) | body

Appends are atomic *per frame* in the failure model: a crash may leave
the final frame half-written (the torn tail — :meth:`tear_tail`
models it by truncating seeded bytes off the buffer), and recovery
replays frames from the start, stopping at the first frame whose
length or CRC does not check out.  Everything before the torn frame is
durable; nothing after it exists.  Recovery therefore returns the
*latest fully-durable* checkpoint per session, and the supervisor
compensates for the possibly-stale tail with the restore-time sequence
skip (:func:`~repro.fleet.snapshot.restore_connection`).

The per-session index is bounded (the PR 3 pending-table discipline:
fleet state must not grow without limit).  Beyond ``index_limit``
sessions, a *seeded* eviction drops a random victim's index entry —
its frames stay in the log but recovery no longer trusts them, so the
victim falls back to the cold (resumption/re-handshake) path.  Seeded
eviction keeps two same-seed runs byte-identical while denying an
adversary a predictable victim.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple
from zlib import crc32

from ..crypto.rng import DeterministicDRBG
from .snapshot import SessionSnapshot

_FRAME_HEADER = struct.Struct(">II")


class CheckpointJournal:
    """Append-only framed checkpoint log for one shard."""

    def __init__(self, shard_name: str, seed: int = 0,
                 index_limit: int = 64) -> None:
        if index_limit < 1:
            raise ValueError("index limit must be at least 1")
        self.shard_name = shard_name
        self.index_limit = index_limit
        self._buffer = bytearray()
        # session_id -> mutation counter of its newest durable frame.
        self._index: Dict[str, int] = {}
        self._evict_rng = DeterministicDRBG(
            ("fleet-journal", shard_name, seed).__repr__())
        self.checkpoints_written = 0
        self.bytes_written = 0
        self.evictions = 0
        self.torn_records = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def tracked_sessions(self) -> int:
        """Sessions with a trusted (indexed) checkpoint."""
        return len(self._index)

    # -- writing -------------------------------------------------------------

    def append(self, snapshot: SessionSnapshot) -> None:
        """Durably append one checkpoint frame."""
        if snapshot.session_id not in self._index and \
                len(self._index) >= self.index_limit:
            victims = sorted(self._index)
            victim = victims[self._evict_rng.randrange(len(victims))]
            del self._index[victim]
            self.evictions += 1
        body = snapshot.to_bytes()
        self._buffer += _FRAME_HEADER.pack(len(body), crc32(body))
        self._buffer += body
        self._index[snapshot.session_id] = snapshot.mutation
        self.checkpoints_written += 1
        self.bytes_written = len(self._buffer)

    # -- the crash -----------------------------------------------------------

    def tear_tail(self, torn_bytes: int) -> int:
        """Model the crash tearing the final in-flight frame.

        Truncates up to ``torn_bytes`` off the end of the buffer — a
        write that never fully reached stable storage.  Returns how
        many bytes were actually lost.
        """
        if torn_bytes <= 0 or not self._buffer:
            return 0
        lost = min(torn_bytes, len(self._buffer))
        del self._buffer[len(self._buffer) - lost:]
        return lost

    # -- recovery ------------------------------------------------------------

    def recover(self) -> Tuple[Dict[str, SessionSnapshot], int]:
        """Replay the log: ``(latest durable snapshot per session,
        torn frames detected)``.

        Only sessions still in the bounded index are returned; an
        evicted session's frames are untrusted history.  The mutation
        counter guards against index/log divergence after a tear: if
        the indexed mutation outruns the newest durable frame, the
        durable frame still wins (it is the best state that exists).
        """
        recovered: Dict[str, SessionSnapshot] = {}
        torn = 0
        offset = 0
        buffer = self._buffer
        while offset < len(buffer):
            if offset + _FRAME_HEADER.size > len(buffer):
                torn += 1
                break
            length, checksum = _FRAME_HEADER.unpack_from(buffer, offset)
            body_start = offset + _FRAME_HEADER.size
            body = bytes(buffer[body_start:body_start + length])
            if len(body) != length or crc32(body) != checksum:
                torn += 1
                break
            try:
                snapshot = SessionSnapshot.from_bytes(body)
            except ValueError:
                torn += 1
                break
            if snapshot.session_id in self._index:
                previous = recovered.get(snapshot.session_id)
                if previous is None or snapshot.mutation >= previous.mutation:
                    recovered[snapshot.session_id] = snapshot
            offset = body_start + length
        self.torn_records += torn
        return recovered, torn

    def latest(self, session_id: str) -> Optional[SessionSnapshot]:
        """The newest durable checkpoint for one session, if trusted."""
        return self.recover()[0].get(session_id)

    def forget(self, session_id: str) -> None:
        """Drop a session from the index (it migrated elsewhere)."""
        self._index.pop(session_id, None)

    def reset(self) -> None:
        """Start a fresh log (the shard restarted with clean storage)."""
        self._buffer = bytearray()
        self._index = {}
        self.bytes_written = 0

    def frame_sizes(self) -> List[int]:
        """Sizes of the durable frames (diagnostics / seeded tearing)."""
        sizes: List[int] = []
        offset = 0
        while offset + _FRAME_HEADER.size <= len(self._buffer):
            length, _ = _FRAME_HEADER.unpack_from(self._buffer, offset)
            if offset + _FRAME_HEADER.size + length > len(self._buffer):
                break
            sizes.append(_FRAME_HEADER.size + length)
            offset += _FRAME_HEADER.size + length
        return sizes
