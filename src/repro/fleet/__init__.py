"""Crash-recoverable sharded gateway fleet.

The scaling-and-availability plane: N
:class:`~repro.protocols.gateway_runtime.GatewayRuntime` shards on one
batched discrete-event scheduler, durable per-session checkpoints in a
write-ahead journal, seeded crash injection with watchdog detection,
and deterministic failover (warm from checkpoint, cold via the
resumption / re-handshake paths).
"""

from .journal import CheckpointJournal
from .ring import ConsistentRing
from .runtime import (
    CrashPlan,
    FleetConfig,
    FleetStats,
    ShardCrash,
    ShardedFleet,
)
from .scenario import FailoverResult, run_failover
from .scheduler import Event, EventScheduler
from .snapshot import (
    SessionSnapshot,
    capture_connection,
    restore_connection,
)

__all__ = [
    "CheckpointJournal",
    "ConsistentRing",
    "CrashPlan",
    "Event",
    "EventScheduler",
    "FailoverResult",
    "FleetConfig",
    "FleetStats",
    "SessionSnapshot",
    "ShardCrash",
    "ShardedFleet",
    "capture_connection",
    "restore_connection",
    "run_failover",
]
