"""The canonical failover scenario: a seeded multi-shard chaos run.

One call builds a whole fleet with telemetry active, spreads handset
sessions across the shards, drives a steady request load, and kills
**every shard at least once** while the load is running.  What comes
back is the acceptance ledger for the crash-fault-tolerance plane:

* every benign request answered — served, degraded, or shed with a
  structured reason (``recovering`` during failover windows);
* every recovery action (checkpoint restores, resumption and
  re-handshake traffic, recovering sheds) charged to handset
  batteries, with the end-to-end energy reconciliation holding
  exactly;
* byte-identical behaviour on same-seed reruns (the CI ``cmp`` gate
  via :mod:`repro.analysis.failover`).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hardware.battery import Battery
from ..observability import probe
from ..observability.attribution import EnergyReconciliation, reconcile_energy
from ..observability.metrics import export_fleet
from ..observability.scenario import classify_reply
from ..observability.spans import Telemetry
from ..protocols.gateway_runtime import RuntimeStats
from ..protocols.reliable import VirtualClock
from .runtime import (
    ORIGIN_NAME,
    CrashPlan,
    FleetConfig,
    FleetStats,
    ShardedFleet,
)


@dataclass
class FailoverResult:
    """Everything one seeded failover chaos run produced."""

    fleet: ShardedFleet
    telemetry: Telemetry
    stats: FleetStats
    shard_stats: Dict[str, RuntimeStats]
    counts: Dict[str, int]
    shed_reasons: Dict[str, int]
    per_session_replies: Dict[str, int]
    batteries: Dict[str, Battery]
    reconciliation: EnergyReconciliation
    params: Dict[str, object] = field(default_factory=dict)


def classify_shed_reason(reply: bytes) -> Optional[str]:
    """The ``reason=`` token of a ``GW-BUSY:`` reply, else ``None``."""
    if classify_reply(reply) != "shed":
        return None
    for token in reply.decode("ascii", "replace").split():
        if token.startswith("reason="):
            return token.split("=", 1)[1]
    return "unknown"


def run_failover(sessions: int = 24, shards: int = 4,
                 requests_per_session: int = 6,
                 interarrival_s: float = 0.35,
                 crash_start_s: float = 0.4,
                 crash_spacing_s: Optional[float] = None,
                 seed: int = 2003,
                 battery_capacity_j: float = 5.0,
                 config: Optional[FleetConfig] = None,
                 instrument=None,
                 probe_enabled: bool = True) -> FailoverResult:
    """One seeded multi-shard crash run with telemetry on.

    The crash plan is a staggered sweep killing every shard exactly
    once (so migrations always have survivors) spread across the
    request window; shards restart between crashes, so later crashes
    migrate sessions onto earlier casualties.

    ``instrument`` is the observability seam: called with
    ``(fleet, telemetry)`` after the fleet is built but before any
    session attaches, it may return a finisher callable invoked after
    the run loop drains (still inside the probe activation) — the
    fleetwatch layer hooks its window sampler and final flush here
    without forking the scenario.  ``probe_enabled=False`` runs the
    identical scenario with the probe seam dark (no spans, no
    activation — the zero-overhead baseline the observability bench
    compares against); the returned reconciliation is then vacuous,
    since nothing attributes energy.
    """
    if config is None:
        # Size the bounded stores *below* the per-shard session count:
        # journal-index evictions force some sessions down the cold
        # (resumption) path and ticket-cache evictions force a few all
        # the way to the full re-handshake — the chaos run exercises
        # every recovery tier, not just the warm one.
        config = FleetConfig(
            shards=shards,
            journal_index_limit=max(2, (2 * sessions) // (3 * shards)),
            ticket_cache_limit=max(3, (2 * sessions) // 3))
    if config.shards != shards:
        raise ValueError("config.shards must match the shards argument")
    clock = VirtualClock()
    telemetry = Telemetry(
        seed=("fleet-failover", sessions, shards, requests_per_session,
              interarrival_s, seed),
        clock=clock, label="fleet-failover")
    batteries = {
        f"handset-{index:02d}": Battery(capacity_j=battery_capacity_j)
        for index in range(sessions)
    }
    horizon_s = requests_per_session * interarrival_s
    if crash_spacing_s is None:
        crash_spacing_s = max(
            horizon_s / max(1, shards),
            config.restart_delay_s + config.heartbeat_interval_s)
    activation = (probe.activate(telemetry) if probe_enabled
                  else contextlib.nullcontext())
    with activation:
        fleet = ShardedFleet(config=config, seed=seed, clock=clock)
        if probe_enabled:
            export_fleet(telemetry.registry, fleet)
        finisher = instrument(fleet, telemetry) if instrument else None
        session_ids = sorted(batteries)
        for session_id in session_ids:
            fleet.attach_session(session_id, battery=batteries[session_id])
        plan = CrashPlan.seeded_sweep(
            shards, start_s=crash_start_s, spacing_s=crash_spacing_s,
            seed=seed, jitter_s=config.heartbeat_interval_s / 2.0)
        fleet.apply_plan(plan)
        for round_index in range(requests_per_session):
            for slot, session_id in enumerate(session_ids):
                when = (round_index * interarrival_s
                        + slot * interarrival_s / max(1, sessions))
                fleet.submit_at(
                    when, session_id, ORIGIN_NAME,
                    f"req-{session_id}-{round_index}".encode())
        stats = fleet.run()
        if finisher is not None:
            finisher()
        counts = {"served": 0, "degraded": 0, "shed": 0}
        shed_reasons: Dict[str, int] = {}
        per_session: Dict[str, int] = {}
        for session_id in session_ids:
            replies = fleet.collect_replies(session_id)
            per_session[session_id] = len(replies)
            for reply in replies:
                counts[classify_reply(reply)] += 1
                reason = classify_shed_reason(reply)
                if reason is not None:
                    shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
    return FailoverResult(
        fleet=fleet,
        telemetry=telemetry,
        stats=stats,
        shard_stats={shard.name: shard.runtime.stats
                     for shard in fleet.shards},
        counts=counts,
        shed_reasons=shed_reasons,
        per_session_replies=per_session,
        batteries=batteries,
        reconciliation=reconcile_energy(telemetry, batteries.values()),
        params={
            "sessions": sessions,
            "shards": shards,
            "requests_per_session": requests_per_session,
            "interarrival_s": interarrival_s,
            "crash_start_s": crash_start_s,
            "crash_spacing_s": round(crash_spacing_s, 6),
            "seed": seed,
            "battery_capacity_j": battery_capacity_j,
        },
    )


def answered_total(result: FailoverResult) -> int:
    """Replies the handsets actually decoded, across all sessions."""
    return sum(result.per_session_replies.values())
