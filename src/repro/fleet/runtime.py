"""The crash-recoverable sharded gateway fleet.

ROADMAP's scaling question — one ``GatewayRuntime`` box toward a
fleet — changes the dominant failure mode: at fleet scale the thing
that dies mid-session is not a lossy link (PR 2) or a flaky engine
(PR 3) but a *whole gateway shard* with all its in-memory session
state.  :class:`ShardedFleet` supervises N
:class:`~repro.protocols.gateway_runtime.GatewayRuntime` shards on one
batched :class:`~repro.fleet.scheduler.EventScheduler` and makes that
failure survivable:

* handsets are placed on shards by consistent hashing
  (:class:`~repro.fleet.ring.ConsistentRing`), sticky after migration;
* every answered request atomically checkpoints the session's record
  layer state into the owner shard's write-ahead
  :class:`~repro.fleet.journal.CheckpointJournal` (within the same
  scheduler event as the reply — a crash between reply and checkpoint
  cannot exist in this failure model, only a torn final frame);
* a seeded :class:`CrashPlan` kills shards at planned virtual times;
  a watchdog heartbeat detects the silence, and recovery migrates the
  dead shard's sessions onto survivors — **warm** from the last
  durable checkpoint (with a sequence skip covering the torn tail),
  **cold** via the PR 2 resumption path when the checkpoint or ticket
  is gone, and **cold-full** re-handshake as the final fallback;
* every request the dead shard consumed or missed is answered with a
  structured ``GW-BUSY: reason=recovering`` shed, charged to the
  handset battery like any other airlink crossing, so the ledger
  "every request answered or shed, energy reconciled exactly" still
  closes over crashes.

Everything — crash times, tear sizes, eviction victims, migration
targets — is seeded, so two same-seed runs are byte-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..crypto.rng import DeterministicDRBG
from ..hardware.battery import Battery, BatteryEmpty
from ..hardware.energy import EnergyModel
from ..observability import probe
from ..observability.metrics import quantile_of
from ..observability.tracecontext import TraceContext, attach, baggage_attrs
from ..protocols.alerts import HandshakeFailure
from ..protocols.certificates import CertificateAuthority
from ..protocols.gateway_runtime import (
    GatewayRuntime,
    RuntimeConfig,
    busy_reply,
)
from ..protocols.handshake import (
    ClientConfig,
    ServerConfig,
    Session,
    run_handshake,
)
from ..protocols.kdf import derive_key_block, prf
from ..protocols.reliable import VirtualClock
from ..protocols.resumption import (
    CachedSession,
    SessionCache,
    cache_session,
    resume,
)
from ..protocols.transport import ChannelEmpty, DuplexChannel
from ..protocols.wap import OriginServer, WAPGateway
from ..protocols.wtls import (
    WTLSConnection,
    WTLSRecordDecoder,
    WTLSRecordEncoder,
)
from .journal import CheckpointJournal
from .ring import ConsistentRing
from .scheduler import Event, EventScheduler
from .snapshot import capture_connection, restore_connection

GATEWAY_NAME = "gateway.operator"
ORIGIN_NAME = "origin.example"


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-level tunables (per-shard tunables ride in ``runtime``)."""

    shards: int = 4
    vnodes: int = 8
    heartbeat_interval_s: float = 0.5
    heartbeat_miss_threshold: int = 2
    failover_delay_s: float = 0.25   # detection -> migration complete
    restart_delay_s: float = 4.0     # crash detection -> shard back up
    sequence_skip: int = 64          # torn-tail cover on warm restore
    journal_index_limit: int = 64
    ticket_cache_limit: int = 64
    ticket_generation_limit: int = 8
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("fleet needs at least one shard")
        if self.heartbeat_interval_s <= 0 or self.failover_delay_s < 0:
            raise ValueError("watchdog timings must be sensible")
        if self.heartbeat_miss_threshold < 1:
            raise ValueError("miss threshold must be at least 1")
        if self.sequence_skip < 1:
            raise ValueError("sequence skip must be at least 1")
        if self.runtime.reply_batch != 1:
            # A batched outbox is volatile state the checkpoint does not
            # cover; the fleet's atomicity story requires reply==durable.
            raise ValueError("fleet shards require reply_batch == 1")


@dataclass
class ShardCrash:
    """One planned shard death."""

    shard: int
    at_s: float


@dataclass
class CrashPlan:
    """Everything that will kill a shard, on one virtual timeline
    (the hardware plane's ``FaultPlan`` idiom, one layer up)."""

    crashes: List[ShardCrash] = field(default_factory=list)

    def kill_shard(self, shard: int, at_s: float) -> "CrashPlan":
        """Schedule one shard death."""
        self.crashes.append(ShardCrash(shard, at_s))
        return self

    @classmethod
    def seeded_sweep(cls, shards: int, start_s: float, spacing_s: float,
                     seed: int = 0, jitter_s: float = 0.0) -> "CrashPlan":
        """Kill every shard exactly once, staggered so survivors always
        exist to migrate onto, with seeded per-crash jitter."""
        rng = DeterministicDRBG(("crash-plan", shards, seed).__repr__())
        plan = cls()
        for index in range(shards):
            jitter = (rng.random() * jitter_s) if jitter_s > 0 else 0.0
            plan.kill_shard(index, start_s + index * spacing_s + jitter)
        return plan


@dataclass
class FleetStats:
    """The fleet supervisor's ledger (shard runtimes keep their own)."""

    crashes: int = 0
    detections: int = 0
    restarts: int = 0
    heartbeat_misses: int = 0
    sessions_migrated: int = 0
    migrations_warm: int = 0
    migrations_cold_resume: int = 0
    migrations_cold_full: int = 0
    checkpoints_restored: int = 0
    shed_recovering: int = 0
    requests_while_down: int = 0
    black_holed_frames: int = 0
    flushed_replies: int = 0
    migration_deferrals: int = 0
    battery_refusals: int = 0
    recovery_energy_mj: float = 0.0
    journal_bytes_torn: int = 0
    recovery_latencies: List[float] = field(default_factory=list)

    def recovery_p95_s(self) -> float:
        """p95 virtual-time session recovery latency (crash->migrated),
        via the shared fixed-bucket interpolation estimator."""
        return quantile_of(self.recovery_latencies, 0.95)

    def recovery_p50_s(self) -> float:
        """Median virtual-time session recovery latency."""
        return quantile_of(self.recovery_latencies, 0.5)


class _Shard:
    """One gateway shard: runtime + journal + liveness, and the
    scheduler work-source adapter (dead shards report idle)."""

    def __init__(self, index: int, name: str, gateway: WAPGateway,
                 runtime: GatewayRuntime, journal: CheckpointJournal) -> None:
        self.index = index
        self.name = name
        self.gateway = gateway
        self.runtime = runtime
        self.journal = journal
        self.alive = True
        self.detected = False
        self.misses = 0
        self.crash_time = 0.0
        self.detected_time = 0.0
        self.crash_count = 0
        self.heartbeat: Optional[Event] = None
        # Stats ledgers of previous incarnations (a restart replaces
        # the runtime; the history must still add up).
        self.retired_stats: List = []

    def next_event_time(self) -> Optional[float]:
        if not self.alive:
            return None
        return self.runtime.next_event_time()

    def step(self) -> bool:
        if not self.alive:
            return False
        return self.runtime.step()


class ShardedFleet:
    """Supervisor of N gateway shards with crash-fault tolerance."""

    def __init__(self, config: Optional[FleetConfig] = None, seed: int = 0,
                 clock: Optional[VirtualClock] = None,
                 handler: Optional[Callable[[bytes], bytes]] = None) -> None:
        self.config = config or FleetConfig()
        self.seed = seed
        self.clock = clock or VirtualClock()
        self.scheduler = EventScheduler(self.clock)
        self.stats = FleetStats()
        self.energy = EnergyModel()
        handler = handler or (lambda request: b"OK:" + request)

        self.ca = CertificateAuthority(
            "WAP-CA", DeterministicDRBG(("fleet-ca", seed).__repr__()))
        self._gw_key, self._gw_cert = self.ca.issue(
            GATEWAY_NAME, DeterministicDRBG(("fleet-gw", seed).__repr__()))
        origin_key, origin_cert = self.ca.issue(
            ORIGIN_NAME, DeterministicDRBG(("fleet-origin", seed).__repr__()))
        self.origin = OriginServer(
            name=ORIGIN_NAME, handler=handler,
            config=ServerConfig(
                rng=DeterministicDRBG(("fleet-origin-rng", seed).__repr__()),
                certificate=origin_cert, private_key=origin_key))

        self.shards: List[_Shard] = []
        for index in range(self.config.shards):
            self.shards.append(self._build_shard(index, restart_epoch=0))
        self.ring = ConsistentRing(
            [shard.name for shard in self.shards], vnodes=self.config.vnodes)
        self._by_name = {shard.name: shard for shard in self.shards}
        for shard in self.shards:
            self.scheduler.add_source(shard)
            shard.heartbeat = self.scheduler.every(
                self.config.heartbeat_interval_s,
                self._make_heartbeat(shard), label=f"hb-{shard.name}")

        # Fleet-shared resumption state: the bounded, seeded-eviction
        # ticket store every shard can reach (the replicated half of
        # the recovery story — session *tickets* survive any one crash).
        self.ticket_cache = SessionCache(
            capacity=self.config.ticket_cache_limit,
            eviction_rng=DeterministicDRBG(
                ("fleet-tickets", seed).__repr__()),
            generation_limit=self.config.ticket_generation_limit)

        self._crash_rng = DeterministicDRBG(("fleet-crash", seed).__repr__())
        self._ticket_rng = DeterministicDRBG(
            ("fleet-ticket-ids", seed).__repr__())

        # Per-session fleet state.
        self.placement: Dict[str, str] = {}
        self.channels: Dict[str, DuplexChannel] = {}
        self.handsets: Dict[str, WTLSConnection] = {}
        self.batteries: Dict[str, Optional[Battery]] = {}
        self.client_configs: Dict[str, ClientConfig] = {}
        self.client_caches: Dict[str, SessionCache] = {}
        self.tickets: Dict[str, bytes] = {}
        #: The per-session journey context (trace id + baggage); warm
        #: restores re-read it from the checkpoint, cold tiers from
        #: here — the fleet-memory propagation path.
        self.trace_contexts: Dict[str, TraceContext] = {}
        #: ``to_bytes()`` cache — contexts change only at attach and
        #: migration, so checkpoints reuse the serialized form instead
        #: of re-encoding on every answered request.
        self._ctx_bytes: Dict[str, bytes] = {}
        self.mutations: Dict[str, int] = {}
        self.unanswered: Dict[str, Deque[str]] = {}
        self.reply_buffer: Dict[str, List[bytes]] = {}
        self.submitted = 0

    # -- construction --------------------------------------------------------

    def _build_shard(self, index: int, restart_epoch: int) -> _Shard:
        name = f"shard-{index:02d}"
        gateway = WAPGateway(
            ca=self.ca,
            rng=DeterministicDRBG(
                ("fleet-gw-rng", index, restart_epoch,
                 self.seed).__repr__()),
            gateway_config=ServerConfig(
                rng=DeterministicDRBG(
                    ("fleet-gw-srv", index, restart_epoch,
                     self.seed).__repr__()),
                certificate=self._gw_cert, private_key=self._gw_key))
        gateway.register_origin(self.origin)
        runtime = GatewayRuntime(
            gateway, config=self.config.runtime, clock=self.clock)
        runtime.answer_hook = self._on_answer
        runtime.shard_label = name
        journal = CheckpointJournal(
            name, seed=self.seed,
            index_limit=self.config.journal_index_limit)
        return _Shard(index, name, gateway, runtime, journal)

    def alive_shards(self) -> List[str]:
        """Names of currently-live shards."""
        return [shard.name for shard in self.shards if shard.alive]

    # -- sessions ------------------------------------------------------------

    def attach_session(self, session_id: str,
                       battery: Optional[Battery] = None,
                       suites=None) -> WTLSConnection:
        """Handshake one handset onto its ring-placed shard; returns
        the handset-side connection (the fleet tracks replacements —
        prefer :meth:`handset` over holding this reference).

        ``suites`` overrides the handset's cipher-suite preference list
        (the m-commerce workload plane uses it to model battery-class
        suite policies); ``None`` keeps the stack default."""
        if session_id in self.placement:
            raise ValueError(f"session {session_id!r} already attached")
        owner = self._by_name[self.ring.owner(
            session_id, self.alive_shards())]
        channel = DuplexChannel()
        client = ClientConfig(
            rng=DeterministicDRBG((session_id, self.seed).__repr__()),
            ca=self.ca, expected_server=GATEWAY_NAME)
        if suites is not None:
            client = replace(client, suites=list(suites))
        handset_class = (f"{battery.capacity_j:g}J" if battery is not None
                         else "unpowered")
        ctx = TraceContext.root(
            "session-journey", session_id, self.seed,
            session=session_id, handset_class=handset_class,
            shard=owner.name)
        self.trace_contexts[session_id] = ctx
        self._ctx_bytes[session_id] = ctx.to_bytes()
        with probe.span("fleet.attach", shard=owner.name,
                        session=session_id) as span:
            if span is not None:
                attach(span, ctx)
            handset_conn, gateway_conn, client_session = _fleet_connect(
                client, owner.gateway.gateway_config, channel)
        owner.runtime.adopt_session(session_id, gateway_conn, battery)
        self.placement[session_id] = owner.name
        self.channels[session_id] = channel
        self.handsets[session_id] = handset_conn
        self.batteries[session_id] = battery
        self.client_configs[session_id] = client
        self.client_caches[session_id] = SessionCache(capacity=4)
        self.mutations[session_id] = 0
        self.unanswered[session_id] = deque()
        self.reply_buffer[session_id] = []
        ticket = cache_session(
            self.client_caches[session_id], client_session,
            self._ticket_rng)
        self.ticket_cache.store(CachedSession(
            session_id=ticket, suite_name=client_session.suite.name,
            master=client_session.master))
        self.tickets[session_id] = ticket
        self._checkpoint(session_id)
        return handset_conn

    def handset(self, session_id: str) -> WTLSConnection:
        """The session's *current* handset-side connection (cold
        recovery replaces it)."""
        return self.handsets[session_id]

    # -- traffic -------------------------------------------------------------

    def submit_at(self, when: float, session_id: str, destination: str,
                  payload: bytes) -> None:
        """Schedule one handset request at an absolute virtual time."""
        self.scheduler.at(
            when, lambda now: self._do_submit(session_id, destination,
                                              payload),
            label=f"req-{session_id}")

    def _do_submit(self, session_id: str, destination: str,
                   payload: bytes) -> None:
        self.handsets[session_id].send(payload)
        self.unanswered[session_id].append(destination)
        self.submitted += 1
        shard = self._by_name[self.placement[session_id]]
        if shard.alive and session_id in shard.runtime.sessions:
            shard.runtime.submit(session_id, destination, 0.0)
        else:
            # The owner is down: the frame sits on the bearer and the
            # fleet answers at migration time with a recovering shed.
            self.stats.requests_while_down += 1

    def _on_answer(self, session_id: str, payload: bytes) -> None:
        pending = self.unanswered.get(session_id)
        if pending:
            pending.popleft()
        self._checkpoint(session_id)

    # -- checkpointing -------------------------------------------------------

    def _checkpoint(self, session_id: str) -> None:
        shard = self._by_name[self.placement[session_id]]
        if not shard.alive:
            return
        conn = shard.runtime.sessions[session_id].conn
        battery = self.batteries[session_id]
        snapshot = capture_connection(
            session_id, conn, ticket=self.tickets[session_id],
            battery_remaining_mj=(
                battery.remaining_j * 1000.0 if battery else 0.0),
            mutation=self.mutations[session_id],
            trace_ctx=self._ctx_bytes.get(session_id, b""))
        self.mutations[session_id] += 1
        shard.journal.append(snapshot)

    # -- the crash injector --------------------------------------------------

    def apply_plan(self, plan: CrashPlan) -> None:
        """Schedule every planned shard death."""
        for crash in plan.crashes:
            shard = self.shards[crash.shard]
            self.scheduler.at(
                crash.at_s,
                lambda now, shard=shard: self._crash(shard, now),
                label=f"crash-{shard.name}")

    def _crash(self, shard: _Shard, now: float) -> None:
        if not shard.alive:
            return
        shard.alive = False
        shard.detected = False
        shard.misses = 0
        shard.crash_time = now
        shard.crash_count += 1
        self.stats.crashes += 1
        # The in-flight journal frame tears with seeded probability —
        # the write that was mid-flush when power dropped.
        sizes = shard.journal.frame_sizes()
        if sizes and self._crash_rng.random() < 0.5:
            torn = self._crash_rng.randrange(1, sizes[-1] + 1)
            self.stats.journal_bytes_torn += shard.journal.tear_tail(torn)
        # Span-stack hygiene: anything the dead shard left open must
        # not stay on the stack for the next shard's spans to nest
        # under — abort it (``aborted=true``) at the crash instant.
        telemetry = probe.active
        if telemetry is not None:
            telemetry.abort_where(
                lambda span: span.attrs.get("shard") == shard.name,
                abort_reason="shard-crash")
        probe.event("fleet.crash", shard=shard.name, at_s=round(now, 6),
                    sessions=len(shard.runtime.sessions))
        if telemetry is not None:
            # One orphan milestone per session, stamped with the
            # journey context so the crash joins the stitched trace.
            for session_id in sorted(
                    sid for sid, owner in self.placement.items()
                    if owner == shard.name):
                ctx = self.trace_contexts.get(session_id)
                attrs = baggage_attrs(ctx) if ctx is not None else {}
                attrs.update(session=session_id, shard=shard.name,
                             at_s=round(now, 6))
                telemetry.event("fleet.session_orphaned", **attrs)

    def _make_heartbeat(self, shard: _Shard) -> Callable[[float], None]:
        def beat(now: float) -> None:
            if shard.alive:
                shard.misses = 0
                return
            shard.misses += 1
            self.stats.heartbeat_misses += 1
            probe.event("fleet.heartbeat_miss", shard=shard.name,
                        misses=shard.misses)
            if shard.misses >= self.config.heartbeat_miss_threshold \
                    and not shard.detected:
                shard.detected = True
                shard.detected_time = now
                self.stats.detections += 1
                probe.event("fleet.crash_detected", shard=shard.name,
                            at_s=round(now, 6))
                self.scheduler.after(
                    self.config.failover_delay_s,
                    lambda when, shard=shard: self._migrate(shard, when),
                    label=f"migrate-{shard.name}")
                self.scheduler.after(
                    self.config.restart_delay_s,
                    lambda when, shard=shard: self._restart(shard, when),
                    label=f"restart-{shard.name}")
        return beat

    # -- failover ------------------------------------------------------------

    def _migrate(self, crashed: _Shard, now: float) -> None:
        survivors = [name for name in self.alive_shards()]
        if not survivors:
            # Nobody to migrate onto yet; try again next heartbeat.
            self.stats.migration_deferrals += 1
            self.scheduler.after(
                self.config.heartbeat_interval_s,
                lambda when, shard=crashed: self._migrate(shard, when),
                label=f"migrate-retry-{crashed.name}")
            return
        recovered, _torn = crashed.journal.recover()
        orphans = sorted(sid for sid, owner in self.placement.items()
                         if owner == crashed.name)
        with probe.span("fleet.failover", shard=crashed.name,
                        sessions=len(orphans)) as span:
            for session_id in orphans:
                target = self._by_name[self.ring.owner(
                    session_id, survivors)]
                self._migrate_session(session_id, crashed, target,
                                      recovered.get(session_id), now)
            if span is not None:
                span.set(warm=self.stats.migrations_warm,
                         shed=self.stats.shed_recovering)
        # The dead shard's in-memory sessions are gone; its journal no
        # longer owns the migrated sessions either.
        crashed.runtime.sessions.clear()
        for session_id in orphans:
            crashed.journal.forget(session_id)

    def _session_context(self, session_id: str, snapshot) -> TraceContext:
        """The journey context for a migrating session: a *warm*
        restore reads it from the durable checkpoint (the propagation
        path a real fleet would use — supervisor memory dies with the
        supervisor); the cold tiers fall back to fleet memory, the way
        they fall back to the shared ticket store."""
        if snapshot is not None and getattr(snapshot, "trace_ctx", b""):
            try:
                return TraceContext.from_bytes(snapshot.trace_ctx)
            except ValueError:
                pass
        return self.trace_contexts[session_id]

    def _migrate_session(self, session_id: str, crashed: _Shard,
                         target: _Shard, snapshot, now: float) -> None:
        channel = self.channels[session_id]
        battery = self.batteries[session_id]
        ctx = self._session_context(session_id, snapshot)
        with probe.span("fleet.recover", shard=target.name,
                        session=session_id, from_shard=crashed.name,
                        crashed_at_s=round(crashed.crash_time, 6),
                        detected_at_s=round(crashed.detected_time, 6)
                        ) as span:
            if span is not None:
                attach(span, ctx)
            if snapshot is not None:
                # Warm: rebuild from the durable checkpoint,
                # leapfrogging any reply sequence the dead shard may
                # have consumed after its last durable frame.
                self._black_hole_inbound(session_id, channel)
                conn = restore_connection(
                    snapshot, channel.endpoint_b(),
                    sequence_skip=self.config.sequence_skip)
                target.runtime.adopt_session(session_id, conn, battery)
                self.stats.migrations_warm += 1
                self.stats.checkpoints_restored += 1
                path = "warm"
            else:
                path = self._cold_recover(session_id, target, channel,
                                          battery)
            self.placement[session_id] = target.name
            moved = ctx.with_baggage(shard=target.name)
            self.trace_contexts[session_id] = moved
            self._ctx_bytes[session_id] = moved.to_bytes()
            self.stats.sessions_migrated += 1
            self.stats.recovery_latencies.append(now - crashed.crash_time)
            if span is not None:
                span.set(tier=path,
                         recovery_s=round(now - crashed.crash_time, 6))
            probe.event("fleet.session_migrated", session=session_id,
                        from_shard=crashed.name, to_shard=target.name,
                        path=path)
            # Everything the handset is still waiting on was lost with
            # the shard: answer each with a structured recovering shed
            # (charged like any reply) instead of leaving silence.
            pending = len(self.unanswered[session_id])
            for _ in range(pending):
                self.stats.shed_recovering += 1
                target.runtime.send_control_reply(
                    session_id,
                    busy_reply("recovering",
                               retry_after_s=self.config.failover_delay_s),
                    shed_reason="recovering")
            self._checkpoint(session_id)

    def _black_hole_inbound(self, session_id: str,
                            channel: DuplexChannel) -> None:
        """Discard bearer frames addressed to the dead shard: nobody
        holds the decode context mid-migration, and their requests are
        answered by the recovering shed instead."""
        endpoint = channel.endpoint_b()
        while True:
            try:
                endpoint.receive()
            except ChannelEmpty:
                break
            self.stats.black_holed_frames += 1

    def _flush_old_replies(self, session_id: str) -> None:
        """Deliver replies already in flight on the old bearer before
        the cold path replaces the handset's record keys."""
        conn = self.handsets[session_id]
        while True:
            try:
                payload = conn.receive_next(
                    max_skip=self.config.runtime.malformed_skip)
            except ChannelEmpty:
                break
            self.reply_buffer[session_id].append(payload)
            self.stats.flushed_replies += 1

    def _cold_recover(self, session_id: str, target: _Shard,
                      channel: DuplexChannel,
                      battery: Optional[Battery]) -> str:
        """No durable checkpoint: re-establish via resumption, else a
        full re-handshake.  Both are real protocol runs whose airlink
        bytes are charged to the handset battery."""
        self._flush_old_replies(session_id)
        self._black_hole_inbound(session_id, channel)
        bytes_before = _channel_bytes(channel)
        try:
            client_session, server_session = resume(
                self.client_configs[session_id],
                target.gateway.gateway_config,
                self.client_caches[session_id], self.ticket_cache,
                self.tickets[session_id],
                endpoints=(channel.endpoint_a(), channel.endpoint_b()))
            handset_conn, gateway_conn = _wtls_from_resumed(
                client_session, server_session, channel)
            self._charge_recovery(
                session_id, battery, _channel_bytes(channel) - bytes_before)
            self.stats.migrations_cold_resume += 1
            path = "cold-resume"
        except HandshakeFailure:
            # Ticket evicted/expired somewhere: last resort, a fresh
            # bearer and a full handshake (certificates and all).
            new_channel = DuplexChannel()
            client = self.client_configs[session_id]
            handset_conn, gateway_conn, client_session = _fleet_connect(
                client, target.gateway.gateway_config, new_channel)
            self.channels[session_id] = new_channel
            self._charge_recovery(
                session_id, battery, _channel_bytes(new_channel))
            # Re-ticket under the fresh master for the next crash.
            ticket = cache_session(
                self.client_caches[session_id], client_session,
                self._ticket_rng)
            self.ticket_cache.store(CachedSession(
                session_id=ticket,
                suite_name=client_session.suite.name,
                master=client_session.master))
            self.tickets[session_id] = ticket
            self.stats.migrations_cold_full += 1
            path = "cold-full"
        self.handsets[session_id] = handset_conn
        target.runtime.adopt_session(session_id, gateway_conn, battery)
        return path

    def _charge_recovery(self, session_id: str,
                         battery: Optional[Battery],
                         num_bytes: int) -> None:
        millijoules = self.energy.frame_receive_mj(num_bytes)
        self.stats.recovery_energy_mj += millijoules
        if battery is None:
            return
        try:
            battery.drain_mj(millijoules)
        except BatteryEmpty:
            self.stats.battery_refusals += 1

    # -- restart -------------------------------------------------------------

    def _restart(self, shard: _Shard, now: float) -> None:
        fresh = self._build_shard(shard.index,
                                  restart_epoch=shard.crash_count)
        shard.retired_stats.append(shard.runtime.stats)
        shard.gateway = fresh.gateway
        shard.runtime = fresh.runtime
        shard.journal.reset()
        shard.alive = True
        shard.detected = False
        shard.misses = 0
        self.stats.restarts += 1
        # A restart is a natural GC epoch for the shared ticket store:
        # tickets idle across ``ticket_generation_limit`` restarts age
        # out instead of accumulating forever.
        self.ticket_cache.rotate()
        probe.event("fleet.restart", shard=shard.name, at_s=round(now, 6))

    # -- the run loop --------------------------------------------------------

    def quiescent(self) -> bool:
        """Nothing left to do: every request answered, every shard
        live, no one-shot control events pending, all runtimes idle."""
        if any(self.unanswered.get(sid) for sid in self.unanswered):
            return False
        if not all(shard.alive for shard in self.shards):
            return False
        if self.scheduler.pending_oneshot() > 0:
            return False
        return all(shard.next_event_time() is None for shard in self.shards)

    def run(self) -> FleetStats:
        """Drive the fleet until quiescent; cancels the watchdogs."""
        self.scheduler.run(stop=self.quiescent)
        for shard in self.shards:
            if shard.alive:
                shard.runtime.flush_all_replies()
            if shard.heartbeat is not None:
                shard.heartbeat.cancel()
        return self.stats

    # -- roll-ups ------------------------------------------------------------

    def checkpoints_written(self) -> int:
        """Checkpoint frames durably appended across all journals."""
        return sum(shard.journal.checkpoints_written
                   for shard in self.shards)

    def journal_evictions(self) -> int:
        """Journal index evictions across all shards."""
        return sum(shard.journal.evictions for shard in self.shards)

    def journal_torn_records(self) -> int:
        """Torn frames detected during recovery across all shards."""
        return sum(shard.journal.torn_records for shard in self.shards)

    def runtime_totals(self) -> Dict[str, float]:
        """Summed answer ledger across every shard incarnation (live
        runtimes plus the ledgers retired by restarts)."""
        totals: Dict[str, float] = {
            "submitted": 0, "admitted": 0, "served": 0, "degraded": 0,
            "shed": 0, "shed_malformed": 0, "malformed_discarded": 0,
            "battery_refusals": 0, "energy_mj": 0.0,
        }
        for shard in self.shards:
            ledgers = list(shard.retired_stats) + [shard.runtime.stats]
            for stats in ledgers:
                for key in totals:
                    totals[key] += getattr(stats, key)
        totals["energy_mj"] = round(totals["energy_mj"], 9)
        return totals

    def collect_replies(self, session_id: str) -> List[bytes]:
        """Every reply the handset can see: flushed-at-migration ones
        plus whatever is pending on the current bearer."""
        replies = list(self.reply_buffer[session_id])
        self.reply_buffer[session_id] = []
        conn = self.handsets[session_id]
        while True:
            try:
                replies.append(conn.receive_next(
                    max_skip=self.config.runtime.malformed_skip))
            except ChannelEmpty:
                break
        return replies


# -- WTLS plumbing -----------------------------------------------------------


def _channel_bytes(channel: DuplexChannel) -> int:
    return sum(len(frame) for _, frame in channel.log)


def _wtls_pair(suite, keys, channel: DuplexChannel
               ) -> Tuple[WTLSConnection, WTLSConnection]:
    """Build the (handset, gateway) WTLS connection pair for one shared
    key block over one bearer."""
    handset = WTLSConnection(
        encoder=WTLSRecordEncoder(
            suite, keys.client_cipher_key, keys.client_mac_key,
            keys.client_iv),
        decoder=WTLSRecordDecoder(
            suite, keys.server_cipher_key, keys.server_mac_key,
            keys.server_iv),
        endpoint=channel.endpoint_a(), suite_name=suite.name)
    gateway = WTLSConnection(
        encoder=WTLSRecordEncoder(
            suite, keys.server_cipher_key, keys.server_mac_key,
            keys.server_iv),
        decoder=WTLSRecordDecoder(
            suite, keys.client_cipher_key, keys.client_mac_key,
            keys.client_iv),
        endpoint=channel.endpoint_b(), suite_name=suite.name)
    return handset, gateway


def _fleet_connect(client: ClientConfig, server: ServerConfig,
                   channel: DuplexChannel
                   ) -> Tuple[WTLSConnection, WTLSConnection, Session]:
    """Full handshake then WTLS records — ``wtls_connect`` that also
    surfaces the negotiated session (the fleet needs the master secret
    to mint resumption tickets)."""
    client_ep = channel.endpoint_a()
    server_ep = channel.endpoint_b()
    with probe.span("session", kind="wtls",
                    server=server.certificate.subject):
        client_session, _server_session = run_handshake(
            client, server, client_ep, server_ep)
    suite = client_session.suite
    keys = derive_key_block(
        client_session.master, b"wtls-client", b"wtls-server", suite)
    handset, gateway = _wtls_pair(suite, keys, channel)
    return handset, gateway, client_session


def _wtls_from_resumed(client_session: Session, server_session: Session,
                       channel: DuplexChannel
                       ) -> Tuple[WTLSConnection, WTLSConnection]:
    """Fresh WTLS record keys after an abbreviated failover resume.

    Deriving from the raw master would reproduce the *original*
    connection's keys — and with them every sequence number the
    handset has already seen.  Salting with the resume transcript
    digest (nonce-bound, identical on both sides) yields keys unique
    to this recovery, so both directions restart at sequence zero
    without any replay overlap.
    """
    suite = client_session.suite
    failover_master = prf(
        client_session.master, b"wtls failover",
        client_session.transcript_digest, 48)
    check = prf(
        server_session.master, b"wtls failover",
        server_session.transcript_digest, 48)
    if failover_master != check:
        raise HandshakeFailure("failover key derivation diverged")
    keys = derive_key_block(
        failover_master, b"wtls-client", b"wtls-server", suite)
    return _wtls_pair(suite, keys, channel)
