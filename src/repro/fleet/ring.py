"""Consistent-hash placement of handsets onto gateway shards.

The fleet places each handset session on a shard by hashing it onto a
ring of virtual nodes (SHA-1 — the period-correct hash, already the
workhorse of the WTLS PRF).  Consistent hashing gives the property the
failover plane needs: when a shard dies, only *its* sessions move, and
where they move is a pure function of the session id and the surviving
shard set — so two same-seed runs migrate identically without any
coordination state.

``owner`` walks clockwise from the key's point to the first virtual
node belonging to an *eligible* shard, which is exactly "my primary,
else my successor" — the standard rendezvous for crash failover.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import sha1
from typing import List, Optional, Sequence, Tuple


def _point(label: str) -> int:
    return int.from_bytes(sha1(label.encode("ascii")).digest()[:8], "big")


class ConsistentRing:
    """A fixed ring of ``vnodes`` virtual nodes per shard."""

    def __init__(self, shard_names: Sequence[str], vnodes: int = 8) -> None:
        if not shard_names:
            raise ValueError("ring needs at least one shard")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.shard_names = list(shard_names)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for name in self.shard_names:
            for replica in range(vnodes):
                points.append((_point(f"{name}#{replica}"), name))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [name for _, name in points]

    def owner(self, key: str,
              eligible: Optional[Sequence[str]] = None) -> str:
        """The shard owning ``key``, restricted to ``eligible`` shards.

        With no restriction this is the key's primary; during failover
        the caller passes the surviving shard set and gets the key's
        first eligible successor clockwise.
        """
        allowed = set(self.shard_names if eligible is None else eligible)
        if not allowed:
            raise ValueError("no eligible shard to own the key")
        start = bisect_right(self._points, _point(key))
        count = len(self._points)
        for step in range(count):
            name = self._owners[(start + step) % count]
            if name in allowed:
                return name
        raise AssertionError("unreachable: allowed is non-empty")

    def spread(self, keys: Sequence[str]) -> dict:
        """How many of ``keys`` each shard owns (diagnostics)."""
        counts = {name: 0 for name in self.shard_names}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
