"""Compact serializable WTLS session state for crash recovery.

A gateway shard's per-session state is small and explicit by
construction — the WTLS datagram record layer keeps an outbound
sequence counter, an inbound replay set, and the (fixed) key material
— so a :class:`SessionSnapshot` captures everything a *different*
shard needs to carry the session forward after the owner dies:

* suite name and both record-protection key sets (cipher/MAC/IV per
  direction);
* the encoder's next sequence number and the decoder's replay state
  (``_seen`` / ``highest_sequence`` / ``received``), which the
  transactional record layer only commits after a record fully
  verifies — a snapshot therefore never captures a half-applied
  record;
* the resumption ticket id (cold-recovery key into the fleet ticket
  cache) and the handset battery reading;
* a monotone ``mutation`` counter so journals can order checkpoints.

``to_bytes`` / ``from_bytes`` are a versioned, length-prefixed binary
codec (no pickle — snapshots cross trust boundaries in a real fleet).
Restoring constructs fresh compiled encode/decode pipelines from the
stored keys: the compiled closures capture key material at
construction, so key bytes must go through the constructor, while the
sequence/replay counters are live attributes set afterwards.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..protocols.ciphersuites import SUITES_BY_NAME
from ..protocols.transport import Endpoint
from ..protocols.wtls import (
    WTLSConnection,
    WTLSRecordDecoder,
    WTLSRecordEncoder,
)

#: v1 had no trace context; v2 appends one length-prefixed
#: ``trace_ctx`` field.  ``from_bytes`` accepts both, so journals
#: written before the observability plane still recover.
SNAPSHOT_VERSION = 2


def _pack_bytes(out: List[bytes], blob: bytes) -> None:
    if len(blob) > 0xFFFF:
        raise ValueError("snapshot field too long")
    out.append(struct.pack(">H", len(blob)))
    out.append(blob)


class _Reader:
    def __init__(self, raw: bytes) -> None:
        self.raw = raw
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.raw):
            raise ValueError("snapshot truncated")
        blob = self.raw[self.pos:self.pos + count]
        self.pos += count
        return blob

    def take_bytes(self) -> bytes:
        (length,) = struct.unpack(">H", self.take(2))
        return self.take(length)

    def take_u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def take_i64(self) -> int:
        return struct.unpack(">q", self.take(8))[0]


@dataclass(frozen=True)
class SessionSnapshot:
    """One checkpointed gateway-side WTLS session."""

    session_id: str
    suite_name: str
    # Outbound (gateway -> handset) record protection.
    enc_key: bytes
    enc_mac_key: bytes
    enc_iv: bytes
    enc_sequence: int
    # Inbound (handset -> gateway) record protection + replay state.
    dec_key: bytes
    dec_mac_key: bytes
    dec_iv: bytes
    dec_highest_sequence: int
    dec_received: int
    dec_seen: Tuple[int, ...]
    discarded: int
    ticket: bytes
    battery_remaining_uj: int
    mutation: int
    #: Serialized :class:`~repro.observability.tracecontext.TraceContext`
    #: (empty when tracing is off) — the checkpoint propagation path of
    #: the fleet-wide journey trace.
    trace_ctx: bytes = b""

    def to_bytes(self) -> bytes:
        """Versioned binary form (input to the checkpoint journal)."""
        out: List[bytes] = [bytes([SNAPSHOT_VERSION])]
        _pack_bytes(out, self.session_id.encode("ascii"))
        _pack_bytes(out, self.suite_name.encode("ascii"))
        for blob in (self.enc_key, self.enc_mac_key, self.enc_iv):
            _pack_bytes(out, blob)
        out.append(struct.pack(">I", self.enc_sequence))
        for blob in (self.dec_key, self.dec_mac_key, self.dec_iv):
            _pack_bytes(out, blob)
        out.append(struct.pack(">q", self.dec_highest_sequence))
        out.append(struct.pack(">I", self.dec_received))
        out.append(struct.pack(">I", len(self.dec_seen)))
        for sequence in sorted(self.dec_seen):
            out.append(struct.pack(">I", sequence))
        out.append(struct.pack(">I", self.discarded))
        _pack_bytes(out, self.ticket)
        out.append(struct.pack(">q", self.battery_remaining_uj))
        out.append(struct.pack(">I", self.mutation))
        _pack_bytes(out, self.trace_ctx)
        return b"".join(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SessionSnapshot":
        """Decode one snapshot; raises ``ValueError`` on damage."""
        reader = _Reader(raw)
        version = reader.take(1)[0]
        if version not in (1, SNAPSHOT_VERSION):
            raise ValueError(f"unknown snapshot version {version}")
        session_id = reader.take_bytes().decode("ascii")
        suite_name = reader.take_bytes().decode("ascii")
        enc_key = reader.take_bytes()
        enc_mac_key = reader.take_bytes()
        enc_iv = reader.take_bytes()
        enc_sequence = reader.take_u32()
        dec_key = reader.take_bytes()
        dec_mac_key = reader.take_bytes()
        dec_iv = reader.take_bytes()
        dec_highest = reader.take_i64()
        dec_received = reader.take_u32()
        seen_count = reader.take_u32()
        seen = tuple(reader.take_u32() for _ in range(seen_count))
        discarded = reader.take_u32()
        ticket = reader.take_bytes()
        battery_remaining_uj = reader.take_i64()
        mutation = reader.take_u32()
        trace_ctx = reader.take_bytes() if version >= 2 else b""
        if reader.pos != len(raw):
            raise ValueError("snapshot has trailing bytes")
        return cls(
            session_id=session_id, suite_name=suite_name,
            enc_key=enc_key, enc_mac_key=enc_mac_key, enc_iv=enc_iv,
            enc_sequence=enc_sequence,
            dec_key=dec_key, dec_mac_key=dec_mac_key, dec_iv=dec_iv,
            dec_highest_sequence=dec_highest, dec_received=dec_received,
            dec_seen=seen, discarded=discarded, ticket=ticket,
            battery_remaining_uj=battery_remaining_uj, mutation=mutation,
            trace_ctx=trace_ctx)


def capture_connection(session_id: str, conn: WTLSConnection,
                       ticket: bytes = b"",
                       battery_remaining_mj: float = 0.0,
                       mutation: int = 0,
                       trace_ctx: bytes = b"") -> SessionSnapshot:
    """Snapshot one gateway-side connection's transferable state."""
    encoder = conn.encoder
    decoder = conn.decoder
    return SessionSnapshot(
        session_id=session_id, suite_name=conn.suite_name,
        enc_key=encoder._key, enc_mac_key=encoder._mac_key,
        enc_iv=encoder._iv, enc_sequence=encoder._sequence,
        dec_key=decoder._key, dec_mac_key=decoder._mac_key,
        dec_iv=decoder._iv,
        dec_highest_sequence=decoder.highest_sequence,
        dec_received=decoder.received,
        dec_seen=tuple(sorted(decoder._seen)),
        discarded=conn.discarded, ticket=ticket,
        battery_remaining_uj=int(round(battery_remaining_mj * 1000.0)),
        mutation=mutation, trace_ctx=trace_ctx)


def restore_connection(snapshot: SessionSnapshot, endpoint: Endpoint,
                       sequence_skip: int = 0) -> WTLSConnection:
    """Rebuild a live gateway-side connection from a checkpoint.

    ``sequence_skip`` jumps the outbound sequence *forward* of the
    checkpointed value.  A checkpoint can be stale by however many
    replies the dead shard sent after its last durable frame (the torn
    tail); re-using those sequence numbers would make the handset's
    replay protection reject the new shard's replies.  Skipping is
    safe — the WTLS datagram layer tolerates gaps by design and only
    rejects *repeats* — so the restored encoder leapfrogs any sequence
    the dead shard could plausibly have consumed.
    """
    suite = SUITES_BY_NAME[snapshot.suite_name]
    encoder = WTLSRecordEncoder(
        suite, snapshot.enc_key, snapshot.enc_mac_key, snapshot.enc_iv)
    encoder._sequence = snapshot.enc_sequence + sequence_skip
    decoder = WTLSRecordDecoder(
        suite, snapshot.dec_key, snapshot.dec_mac_key, snapshot.dec_iv)
    decoder._seen = set(snapshot.dec_seen)
    decoder.highest_sequence = snapshot.dec_highest_sequence
    decoder.received = snapshot.dec_received
    return WTLSConnection(
        encoder=encoder, decoder=decoder, endpoint=endpoint,
        suite_name=snapshot.suite_name, discarded=snapshot.discarded)


def snapshot_equal_state(left: Optional[SessionSnapshot],
                         right: Optional[SessionSnapshot]) -> bool:
    """Whether two snapshots describe identical record-layer state
    (ignoring the battery reading, which other planes mutate)."""
    if left is None or right is None:
        return left is right
    return (left.session_id == right.session_id
            and left.suite_name == right.suite_name
            and left.enc_sequence == right.enc_sequence
            and left.dec_seen == right.dec_seen
            and left.dec_highest_sequence == right.dec_highest_sequence
            and left.dec_received == right.dec_received)
