"""Batched discrete-event scheduler for the sharded gateway fleet.

One :class:`~repro.protocols.reliable.VirtualClock` runs the whole
fleet, but a fleet has two very different kinds of work on it:

* **control events** — one-shot (a crash injection, a migration, a
  shard restart) or recurring (watchdog heartbeats) actions planned at
  absolute virtual times;
* **work sources** — the shards themselves.  A
  :class:`~repro.protocols.gateway_runtime.GatewayRuntime` exposes
  ``next_event_time()`` / ``step()``, and the scheduler interleaves N
  of them on the shared clock.

The seed-state runtime walked its own timers linearly inside a
monolithic ``run()`` loop; that cannot interleave with anything.  Here
control events live in one heap (a calendar queue of ``(when, seq)``),
and each batch advances the clock once to the earliest due time, fires
*every* control event due at that time in schedule order, then steps
every due work source once — same-tick batching, so K same-tick
events cost one clock advance instead of K timer walks.

Determinism: ties break on the monotone sequence number, sources step
in registration order, and nothing here consults wall time.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Protocol, Tuple

from ..protocols.reliable import VirtualClock


class WorkSource(Protocol):
    """Anything with its own event queue the scheduler can interleave."""

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next pending event, ``None`` if idle."""

    def step(self) -> bool:
        """Process exactly one event; ``False`` when idle."""


class Event:
    """One scheduled control action (cancellable, possibly recurring)."""

    __slots__ = ("when", "seq", "action", "label", "interval", "cancelled")

    def __init__(self, when: float, seq: int,
                 action: Callable[[float], None], label: str,
                 interval: Optional[float] = None) -> None:
        self.when = when
        self.seq = seq
        self.action = action
        self.label = label
        self.interval = interval
        self.cancelled = False

    def cancel(self) -> None:
        """Drop the event (lazy: it is skipped when popped)."""
        self.cancelled = True


class EventScheduler:
    """Heap-based calendar queue plus work-source interleaving."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock or VirtualClock()
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._sources: List[WorkSource] = []
        self.events_fired = 0
        self.batches = 0

    # -- scheduling ----------------------------------------------------------

    def at(self, when: float, action: Callable[[float], None],
           label: str = "") -> Event:
        """Schedule a one-shot action at absolute virtual time."""
        if when < self.clock.now:
            when = self.clock.now
        event = Event(when, self._seq, action, label)
        self._seq += 1
        heapq.heappush(self._heap, (event.when, event.seq, event))
        return event

    def after(self, delay: float, action: Callable[[float], None],
              label: str = "") -> Event:
        """Schedule a one-shot action ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        return self.at(self.clock.now + delay, action, label)

    def every(self, interval: float, action: Callable[[float], None],
              label: str = "") -> Event:
        """Schedule a recurring action; returns the (cancellable) event.

        The returned handle stays valid across firings: cancelling it
        stops the recurrence.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        event = Event(self.clock.now + interval, self._seq, action, label,
                      interval=interval)
        self._seq += 1
        heapq.heappush(self._heap, (event.when, event.seq, event))
        return event

    def add_source(self, source: WorkSource) -> None:
        """Register a work source (stepped in registration order)."""
        self._sources.append(source)

    # -- introspection -------------------------------------------------------

    def next_control_time(self) -> Optional[float]:
        """Earliest pending (non-cancelled) control event time."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pending_oneshot(self) -> int:
        """Live one-shot control events still queued (recurring events
        do not count: they alone never justify keeping the loop alive)."""
        return sum(1 for _, _, event in self._heap
                   if not event.cancelled and event.interval is None)

    def next_time(self) -> Optional[float]:
        """Earliest due time across control events and work sources."""
        candidates = []
        control = self.next_control_time()
        if control is not None:
            candidates.append(control)
        for source in self._sources:
            due = source.next_event_time()
            if due is not None:
                candidates.append(due)
        return min(candidates) if candidates else None

    # -- the batch loop ------------------------------------------------------

    def run_batch(self) -> bool:
        """Advance to the next due time and run everything due there.

        Fires all control events due at (or before) the selected time
        in schedule order — re-arming recurring ones — then steps each
        due work source once.  A source step may itself advance the
        shared clock (a serve completes); later sources in the same
        batch see the moved clock, which is deterministic because the
        source order is fixed.  Returns ``False`` when nothing is due.
        """
        when = self.next_time()
        if when is None:
            return False
        self.clock.advance_to(when)
        self.batches += 1
        while True:
            head = self.next_control_time()
            if head is None or head > self.clock.now:
                break
            _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.events_fired += 1
            event.action(self.clock.now)
            if event.interval is not None and not event.cancelled:
                event.when = self.clock.now + event.interval
                heapq.heappush(self._heap, (event.when, event.seq, event))
        for source in self._sources:
            due = source.next_event_time()
            if due is not None and due <= self.clock.now:
                source.step()
        return True

    def run(self, stop: Optional[Callable[[], bool]] = None) -> int:
        """Run batches until idle (or ``stop()`` turns true); returns
        the number of batches executed."""
        ran = 0
        while not (stop is not None and stop()):
            if not self.run_batch():
                break
            ran += 1
        return ran
