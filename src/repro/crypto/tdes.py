"""Triple DES (EDE) — the cipher behind the paper's 651.3-MIPS figure.

Section 3.2 quantifies the security processing gap using a protocol
that encrypts with 3DES; Section 3.1 lists 3-DES among the suites an
RSA-key-exchange SSL client must support.  We implement the standard
encrypt-decrypt-encrypt construction over :class:`repro.crypto.des.DES`
with 1-, 2-, and 3-key keying options (FIPS 46-3 keying options 3, 2
and 1 respectively).
"""

from __future__ import annotations

from typing import Optional

from . import fastpath
from .bitops import bytes_to_int, int_to_bytes
from .des import DES, BLOCK_SIZE
from .errors import InvalidBlockSize, InvalidKeyLength
from .trace import TraceRecorder


class TripleDES:
    """3DES-EDE block cipher.

    Accepts 8-byte (degenerate, equivalent to single DES), 16-byte
    (K1, K2, K1) or 24-byte (K1, K2, K3) keys.
    """

    name = "3DES"
    block_size = BLOCK_SIZE
    key_size = 24

    def __init__(self, key: bytes, recorder: Optional[TraceRecorder] = None) -> None:
        if len(key) == 8:
            k1 = k2 = k3 = key
        elif len(key) == 16:
            k1, k2, k3 = key[:8], key[8:16], key[:8]
        elif len(key) == 24:
            k1, k2, k3 = key[:8], key[8:16], key[16:24]
        else:
            raise InvalidKeyLength("3DES", len(key), "8, 16 or 24")
        self._des1 = DES(k1, recorder)
        self._des2 = DES(k2, recorder)
        self._des3 = DES(k3, recorder)
        self.recorder = recorder

    def encrypt_block(self, block: bytes) -> bytes:
        """EDE encrypt one 8-byte block."""
        if self.recorder is None and fastpath.enabled():
            # Fused EDE: one bytes<->int conversion around three
            # table-driven DES passes on the cached key schedules.
            if len(block) != BLOCK_SIZE:
                raise InvalidBlockSize("3DES", len(block), BLOCK_SIZE)
            x = fastpath.des_crypt_block(bytes_to_int(block), self._des1._round_keys)
            x = fastpath.des_crypt_block(x, self._des2._round_keys_dec)
            x = fastpath.des_crypt_block(x, self._des3._round_keys)
            return int_to_bytes(x, 8)
        return self._des3.encrypt_block(
            self._des2.decrypt_block(self._des1.encrypt_block(block))
        )

    def decrypt_block(self, block: bytes) -> bytes:
        """EDE decrypt one 8-byte block."""
        if self.recorder is None and fastpath.enabled():
            if len(block) != BLOCK_SIZE:
                raise InvalidBlockSize("3DES", len(block), BLOCK_SIZE)
            x = fastpath.des_crypt_block(bytes_to_int(block), self._des3._round_keys_dec)
            x = fastpath.des_crypt_block(x, self._des2._round_keys)
            x = fastpath.des_crypt_block(x, self._des1._round_keys_dec)
            return int_to_bytes(x, 8)
        return self._des1.decrypt_block(
            self._des2.encrypt_block(self._des3.decrypt_block(block))
        )
