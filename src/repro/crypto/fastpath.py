"""Precomputed fast-path kernels for the hot symmetric-crypto loops.

Section 3.2 of the paper quantifies the *security processing gap*:
bit permutations, S-box lookups and rotates dominate the cycle budget
of software crypto on general-purpose processors.  Section 4.2.1's
answer is precomputation and specialised kernels (SmartMIPS-style ISA
extensions, MOSES-class engines).  This module is the software
expression of that answer for our own reproduction, which pays the
same cost for real: the readable reference loops in
:mod:`repro.crypto.aes`, :mod:`repro.crypto.des` et al. stay the
ground truth, and the kernels here are bit-for-bit equivalent
replacements for the probe-free common case.

Three families of kernel live here:

* **AES T-tables** — four 256-entry tables fusing SubBytes, ShiftRows
  and MixColumns into one lookup+XOR per state byte (and the inverse
  tables plus the equivalent-inverse-cipher key transform for
  decryption).  Every table is derived programmatically from
  :data:`repro.crypto.aes.SBOX` and GF(2^8) arithmetic, so nothing is
  transcribed.
* **DES table fusion** — every FIPS 46-3 bit permutation (IP, FP, E,
  PC1, PC2) becomes a handful of per-byte lookups via
  :func:`byte_permutation_tables`, and the round function's
  E-expansion → S-box → P-permutation chain collapses into eight
  64-entry *SP* tables whose entries are already P-permuted.
* **hash delegation** — SHA-1/MD5 whole-message hashing is handed to
  the platform's optimised primitive (:mod:`hashlib`, the software
  stand-in for the paper's crypto accelerator) when available; the
  from-scratch compression functions remain the instrumented reference
  and the differential tests pin the two bit-for-bit.

The switch
----------

:func:`enabled` is consulted by the cipher/hash classes on every
block.  The fast path is used only when **no**
:class:`~repro.crypto.trace.TraceRecorder` is attached — a probed
cipher always takes the reference loops so the DPA/timing simulators
in :mod:`repro.attacks` keep observing true intermediate values.  Set
``REPRO_FASTPATH=0`` in the environment (or call :func:`disable`) to
force the reference path globally, e.g. when validating the cost
models in :mod:`repro.hardware.cycles` against honest software loops.
"""

from __future__ import annotations

import contextlib
import os
from typing import List, Optional, Sequence, Tuple

from ..observability import probe

MASK32 = 0xFFFFFFFF

_ENABLED = os.environ.get("REPRO_FASTPATH", "1").lower() not in (
    "0", "false", "off", "no",
)


def enabled() -> bool:
    """True when the fast-path kernels should be used."""
    return _ENABLED


def dispatch_path(recorder=None) -> str:
    """Which implementation the dispatch seam will pick right now:
    ``"fast"`` (precomputed kernels) or ``"reference"`` (the readable
    loops — always taken when a trace recorder is attached)."""
    return "fast" if recorder is None and _ENABLED else "reference"


def enable() -> None:
    """Turn the fast-path kernels on globally."""
    global _ENABLED
    if not _ENABLED:
        probe.event("fastpath.switch", enabled=True)
    _ENABLED = True


def disable() -> None:
    """Force every cipher/hash onto the reference loops globally."""
    global _ENABLED
    if _ENABLED:
        probe.event("fastpath.switch", enabled=False)
    _ENABLED = False


@contextlib.contextmanager
def force(flag: bool):
    """Temporarily force the switch; restores the prior state on exit."""
    global _ENABLED
    previous = _ENABLED
    if previous != bool(flag):
        probe.event("fastpath.switch", enabled=bool(flag), forced=True)
    _ENABLED = bool(flag)
    try:
        yield
    finally:
        if _ENABLED != previous:
            probe.event("fastpath.switch", enabled=previous, forced=True)
        _ENABLED = previous


# ---------------------------------------------------------------------------
# AES: T-tables fusing SubBytes + ShiftRows + MixColumns
# ---------------------------------------------------------------------------

_AES_ENC_TABLES: Optional[Tuple[List[int], ...]] = None
_AES_DEC_TABLES: Optional[Tuple[List[int], ...]] = None


def _rotr8(word: int) -> int:
    return ((word >> 8) | (word << 24)) & MASK32


def _aes_enc_tables() -> Tuple[List[int], ...]:
    """T0..T3: T0[x] packs (2·S[x], S[x], S[x], 3·S[x]); Ti rotates T0.

    Column word j of the next state is
    ``T0[b0] ^ T1[b1] ^ T2[b2] ^ T3[b3] ^ rk[j]`` where ``b_r`` is the
    row-*r* byte ShiftRows moves into column j — the whole round in
    four lookups and four XORs per word.
    """
    global _AES_ENC_TABLES
    if _AES_ENC_TABLES is None:
        from .aes import SBOX, _gf_mul

        t0 = []
        for x in range(256):
            s = SBOX[x]
            s2 = _gf_mul(s, 2)
            t0.append((s2 << 24) | (s << 16) | (s << 8) | (s2 ^ s))
        t1 = [_rotr8(t) for t in t0]
        t2 = [_rotr8(t) for t in t1]
        t3 = [_rotr8(t) for t in t2]
        _AES_ENC_TABLES = (t0, t1, t2, t3, SBOX)
    return _AES_ENC_TABLES


def _aes_dec_tables() -> Tuple[List[int], ...]:
    """TD0..TD3 for the equivalent inverse cipher (InvSubBytes fused
    with InvMixColumns); TD0[x] packs (14u, 9u, 13u, 11u) for
    u = InvS[x]."""
    global _AES_DEC_TABLES
    if _AES_DEC_TABLES is None:
        from .aes import INV_SBOX, _gf_mul

        td0 = []
        for x in range(256):
            u = INV_SBOX[x]
            td0.append(
                (_gf_mul(u, 14) << 24)
                | (_gf_mul(u, 9) << 16)
                | (_gf_mul(u, 13) << 8)
                | _gf_mul(u, 11)
            )
        td1 = [_rotr8(t) for t in td0]
        td2 = [_rotr8(t) for t in td1]
        td3 = [_rotr8(t) for t in td2]
        _AES_DEC_TABLES = (td0, td1, td2, td3, INV_SBOX)
    return _AES_DEC_TABLES


def aes_encrypt_block(block: bytes, round_words: Sequence[int], rounds: int) -> bytes:
    """T-table AES encryption of one 16-byte block.

    ``round_words`` is the flat list of 4·(rounds+1) big-endian round
    key words exactly as produced by
    :func:`repro.crypto.aes.key_expansion`.
    """
    t0, t1, t2, t3, sbox = _aes_enc_tables()
    rk = round_words
    s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
    s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
    s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
    s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
    i = 4
    for _ in range(rounds - 1):
        u0 = t0[s0 >> 24] ^ t1[(s1 >> 16) & 255] ^ t2[(s2 >> 8) & 255] ^ t3[s3 & 255] ^ rk[i]
        u1 = t0[s1 >> 24] ^ t1[(s2 >> 16) & 255] ^ t2[(s3 >> 8) & 255] ^ t3[s0 & 255] ^ rk[i + 1]
        u2 = t0[s2 >> 24] ^ t1[(s3 >> 16) & 255] ^ t2[(s0 >> 8) & 255] ^ t3[s1 & 255] ^ rk[i + 2]
        u3 = t0[s3 >> 24] ^ t1[(s0 >> 16) & 255] ^ t2[(s1 >> 8) & 255] ^ t3[s2 & 255] ^ rk[i + 3]
        s0, s1, s2, s3 = u0, u1, u2, u3
        i += 4
    # Final round: SubBytes + ShiftRows only (no MixColumns).
    o0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 255] << 16)
          | (sbox[(s2 >> 8) & 255] << 8) | sbox[s3 & 255]) ^ rk[i]
    o1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 255] << 16)
          | (sbox[(s3 >> 8) & 255] << 8) | sbox[s0 & 255]) ^ rk[i + 1]
    o2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 255] << 16)
          | (sbox[(s0 >> 8) & 255] << 8) | sbox[s1 & 255]) ^ rk[i + 2]
    o3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 255] << 16)
          | (sbox[(s1 >> 8) & 255] << 8) | sbox[s2 & 255]) ^ rk[i + 3]
    return ((o0 << 96) | (o1 << 64) | (o2 << 32) | o3).to_bytes(16, "big")


def aes_decrypt_schedule(round_keys: Sequence[Sequence[int]]) -> List[int]:
    """Equivalent-inverse-cipher key schedule.

    Reverses the round key order and applies InvMixColumns to every
    inner round key, so decryption can run the same table-lookup shape
    as encryption.  Computed once per :class:`~repro.crypto.aes.AES`
    instance (key-schedule caching).
    """
    from .aes import SBOX

    td0, td1, td2, td3, _ = _aes_dec_tables()
    rounds = len(round_keys) - 1
    words: List[int] = list(round_keys[rounds])
    for r in range(rounds - 1, 0, -1):
        for w in round_keys[r]:
            # TDi[S[b]] is InvMixColumns applied to byte b in position i.
            words.append(
                td0[SBOX[w >> 24]]
                ^ td1[SBOX[(w >> 16) & 255]]
                ^ td2[SBOX[(w >> 8) & 255]]
                ^ td3[SBOX[w & 255]]
            )
    words.extend(round_keys[0])
    return words


def aes_decrypt_block(block: bytes, inv_words: Sequence[int], rounds: int) -> bytes:
    """T-table AES decryption (equivalent inverse cipher)."""
    td0, td1, td2, td3, inv_sbox = _aes_dec_tables()
    rk = inv_words
    s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
    s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
    s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
    s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
    i = 4
    for _ in range(rounds - 1):
        u0 = td0[s0 >> 24] ^ td1[(s3 >> 16) & 255] ^ td2[(s2 >> 8) & 255] ^ td3[s1 & 255] ^ rk[i]
        u1 = td0[s1 >> 24] ^ td1[(s0 >> 16) & 255] ^ td2[(s3 >> 8) & 255] ^ td3[s2 & 255] ^ rk[i + 1]
        u2 = td0[s2 >> 24] ^ td1[(s1 >> 16) & 255] ^ td2[(s0 >> 8) & 255] ^ td3[s3 & 255] ^ rk[i + 2]
        u3 = td0[s3 >> 24] ^ td1[(s2 >> 16) & 255] ^ td2[(s1 >> 8) & 255] ^ td3[s0 & 255] ^ rk[i + 3]
        s0, s1, s2, s3 = u0, u1, u2, u3
        i += 4
    o0 = ((inv_sbox[s0 >> 24] << 24) | (inv_sbox[(s3 >> 16) & 255] << 16)
          | (inv_sbox[(s2 >> 8) & 255] << 8) | inv_sbox[s1 & 255]) ^ rk[i]
    o1 = ((inv_sbox[s1 >> 24] << 24) | (inv_sbox[(s0 >> 16) & 255] << 16)
          | (inv_sbox[(s3 >> 8) & 255] << 8) | inv_sbox[s2 & 255]) ^ rk[i + 1]
    o2 = ((inv_sbox[s2 >> 24] << 24) | (inv_sbox[(s1 >> 16) & 255] << 16)
          | (inv_sbox[(s0 >> 8) & 255] << 8) | inv_sbox[s3 & 255]) ^ rk[i + 2]
    o3 = ((inv_sbox[s3 >> 24] << 24) | (inv_sbox[(s2 >> 16) & 255] << 16)
          | (inv_sbox[(s1 >> 8) & 255] << 8) | inv_sbox[s0 & 255]) ^ rk[i + 3]
    return ((o0 << 96) | (o1 << 64) | (o2 << 32) | o3).to_bytes(16, "big")


# ---------------------------------------------------------------------------
# DES: per-byte permutation tables + fused SP round tables
# ---------------------------------------------------------------------------


def byte_permutation_tables(table: Sequence[int], in_width: int) -> List[List[int]]:
    """Per-input-byte lookup tables equivalent to
    :func:`repro.crypto.bitops.permute_bits`.

    Each FIPS-style permutation routes every *output* bit from a fixed
    *input* bit, so the permutation of an ``in_width``-bit word is the
    OR of one precomputed lookup per input byte:
    ``out = t[0][byte0] | t[1][byte1] | ...`` — Section 4.2.1's
    "expensive on word-oriented CPUs" loop replaced by ``in_width/8``
    indexed loads.
    """
    if in_width % 8:
        raise ValueError(f"in_width {in_width} not a whole number of bytes")
    out_width = len(table)
    tables = [[0] * 256 for _ in range(in_width // 8)]
    for out_pos, in_pos in enumerate(table):
        in_index = in_pos - 1  # FIPS tables are 1-indexed from the MSB
        byte_index, offset = divmod(in_index, 8)
        bit_in_byte = 7 - offset
        out_bit = 1 << (out_width - 1 - out_pos)
        chunk = tables[byte_index]
        for value in range(256):
            if (value >> bit_in_byte) & 1:
                chunk[value] |= out_bit
    return tables


_DES_TABLES: Optional[dict] = None


def _des_tables() -> dict:
    global _DES_TABLES
    if _DES_TABLES is None:
        from . import des as _des
        from .bitops import permute_bits

        sp = []
        for box in range(8):
            entries = []
            for six in range(64):
                row = ((six >> 4) & 0b10) | (six & 1)
                col = (six >> 1) & 0xF
                # Fuse S-box output placement with the P permutation.
                entries.append(
                    permute_bits(
                        _des._SBOXES[box][row][col] << (28 - 4 * box), _des._P, 32
                    )
                )
            sp.append(entries)
        _DES_TABLES = {
            "ip": byte_permutation_tables(_des._IP, 64),
            "fp": byte_permutation_tables(_des._FP, 64),
            "e": byte_permutation_tables(_des._E, 32),
            "pc1": byte_permutation_tables(_des._PC1, 64),
            "pc2": byte_permutation_tables(_des._PC2, 56),
            "sp": sp,
        }
    return _DES_TABLES


def des_crypt_block(block64: int, round_keys: Sequence[int]) -> int:
    """Table-driven DES: IP → 16 fused rounds → FP, all on ints."""
    t = _des_tables()
    ip = t["ip"]
    state = (
        ip[0][(block64 >> 56) & 255] | ip[1][(block64 >> 48) & 255]
        | ip[2][(block64 >> 40) & 255] | ip[3][(block64 >> 32) & 255]
        | ip[4][(block64 >> 24) & 255] | ip[5][(block64 >> 16) & 255]
        | ip[6][(block64 >> 8) & 255] | ip[7][block64 & 255]
    )
    left = (state >> 32) & MASK32
    right = state & MASK32
    e0, e1, e2, e3 = t["e"]
    sp0, sp1, sp2, sp3, sp4, sp5, sp6, sp7 = t["sp"]
    for rk in round_keys:
        x = (e0[right >> 24] | e1[(right >> 16) & 255]
             | e2[(right >> 8) & 255] | e3[right & 255]) ^ rk
        f = (sp0[(x >> 42) & 63] ^ sp1[(x >> 36) & 63]
             ^ sp2[(x >> 30) & 63] ^ sp3[(x >> 24) & 63]
             ^ sp4[(x >> 18) & 63] ^ sp5[(x >> 12) & 63]
             ^ sp6[(x >> 6) & 63] ^ sp7[x & 63])
        left, right = right, left ^ f
    pre = (right << 32) | left  # final swap undone, per FIPS 46-3
    fp = t["fp"]
    return (
        fp[0][(pre >> 56) & 255] | fp[1][(pre >> 48) & 255]
        | fp[2][(pre >> 40) & 255] | fp[3][(pre >> 32) & 255]
        | fp[4][(pre >> 24) & 255] | fp[5][(pre >> 16) & 255]
        | fp[6][(pre >> 8) & 255] | fp[7][pre & 255]
    )


def des_expand_key(key: bytes) -> List[int]:
    """Table-driven FIPS 46-3 key schedule (PC1/PC2 as byte lookups).

    Bit-for-bit equivalent to :func:`repro.crypto.des.expand_key`;
    callers validate the key length.
    """
    from . import des as _des

    t = _des_tables()
    pc1 = t["pc1"]
    key64 = int.from_bytes(key, "big")
    key56 = (
        pc1[0][(key64 >> 56) & 255] | pc1[1][(key64 >> 48) & 255]
        | pc1[2][(key64 >> 40) & 255] | pc1[3][(key64 >> 32) & 255]
        | pc1[4][(key64 >> 24) & 255] | pc1[5][(key64 >> 16) & 255]
        | pc1[6][(key64 >> 8) & 255] | pc1[7][key64 & 255]
    )
    c = (key56 >> 28) & 0x0FFFFFFF
    d = key56 & 0x0FFFFFFF
    pc2 = t["pc2"]
    round_keys = []
    for shift in _des._SHIFTS:
        c = ((c << shift) | (c >> (28 - shift))) & 0x0FFFFFFF
        d = ((d << shift) | (d >> (28 - shift))) & 0x0FFFFFFF
        cd = (c << 28) | d
        round_keys.append(
            pc2[0][(cd >> 48) & 255] | pc2[1][(cd >> 40) & 255]
            | pc2[2][(cd >> 32) & 255] | pc2[3][(cd >> 24) & 255]
            | pc2[4][(cd >> 16) & 255] | pc2[5][(cd >> 8) & 255]
            | pc2[6][cd & 255]
        )
    return round_keys


# ---------------------------------------------------------------------------
# Hashes: delegate whole-message hashing to the platform primitive
# ---------------------------------------------------------------------------


def hashlib_sha1():
    """A fresh optimised SHA-1 object, or ``None`` if unavailable."""
    try:
        import hashlib

        return hashlib.sha1()
    except (ImportError, ValueError):  # pragma: no cover - exotic builds
        return None


def hashlib_md5():
    """A fresh optimised MD5 object, or ``None`` if unavailable.

    FIPS-restricted builds refuse MD5 unless flagged as
    non-security use; fall back to the reference loop if even that is
    rejected.
    """
    try:
        import hashlib

        try:
            return hashlib.md5(usedforsecurity=False)
        except TypeError:
            return hashlib.md5()
    except (ImportError, ValueError):  # pragma: no cover - exotic builds
        return None
