"""From-scratch cryptographic substrate.

Implements every algorithm the paper names (Sections 2, 3.1, 4.1):
DES/3DES, AES, RC4, RC2, SHA-1, MD5, HMAC, RSA (with CRT), and
Diffie–Hellman — plus the mode, padding, randomness, and registry
machinery the protocol stacks build on, and side-channel
instrumentation (:mod:`repro.crypto.trace`,
:class:`~repro.crypto.modmath.OperationTimer`) that substitutes for a
physical measurement bench.
"""

from . import fastpath
from .a51 import A51
from .aes import AES
from .des import DES
from .dh import DHGroup, DHParty
from .errors import (
    CryptoError,
    DecryptionError,
    IntegrityError,
    InvalidBlockSize,
    InvalidKeyLength,
    PaddingError,
    ParameterError,
    RandomnessError,
    SignatureError,
)
from .grain import Grain
from .hmac import HMAC, hmac, hmac_verify
from .kea import KEAKeyPair, KEAParty
from .md5 import MD5, md5
from .modes import CBC, CTR, ECB
from .modmath import OperationTimer, modexp, modexp_ladder, modexp_sqm
from .rc2 import RC2
from .rc4 import RC4
from .registry import (
    AlgorithmInfo,
    AlgorithmRegistry,
    aes_rollout,
    default_registry,
    lightweight_rollout,
)
from .rng import DeterministicDRBG, HardwareTRNG
from .rsa import RSAPrivateKey, RSAPublicKey, generate_keypair
from .sha1 import SHA1, sha1
from .tdes import TripleDES
from .trace import TraceRecorder, TraceSample
from .trivium import Trivium

__all__ = [
    "fastpath",
    "AES", "DES", "TripleDES", "RC2", "RC4", "MD5", "SHA1", "HMAC",
    "A51", "Grain", "Trivium",
    "md5", "sha1", "hmac", "hmac_verify",
    "ECB", "CBC", "CTR",
    "DHGroup", "DHParty", "KEAParty", "KEAKeyPair",
    "RSAPublicKey", "RSAPrivateKey", "generate_keypair",
    "modexp", "modexp_sqm", "modexp_ladder", "OperationTimer",
    "DeterministicDRBG", "HardwareTRNG",
    "TraceRecorder", "TraceSample",
    "AlgorithmRegistry", "AlgorithmInfo", "default_registry", "aes_rollout",
    "lightweight_rollout",
    "CryptoError", "DecryptionError", "IntegrityError", "InvalidBlockSize",
    "InvalidKeyLength", "PaddingError", "ParameterError", "RandomnessError",
    "SignatureError",
]
