"""HMAC (RFC 2104) over the from-scratch hash implementations.

The record layers (mini-TLS, WTLS, ESP) authenticate every record with
HMAC-SHA1 or HMAC-MD5, matching the "message authentication algorithm
(SHA-1 or MD5)" requirement of Section 3.1.  Verification uses a
constant-time comparison — the §3.4 timing-attack countermeasure.
"""

from __future__ import annotations

from typing import Callable, Union

from .bitops import constant_time_compare
from .errors import IntegrityError
from .md5 import MD5
from .sha1 import SHA1

HashFactory = Callable[[], Union[SHA1, MD5]]


class HMAC:
    """Keyed-hash message authentication code.

    Parameters
    ----------
    key:
        MAC key of any length (hashed down if longer than the hash
        block, zero-padded if shorter, per RFC 2104).
    hash_factory:
        Zero-argument callable producing a fresh hash object —
        :class:`~repro.crypto.sha1.SHA1` or
        :class:`~repro.crypto.md5.MD5`.
    """

    def __init__(self, key: bytes, hash_factory: HashFactory = SHA1) -> None:
        self._factory = hash_factory
        probe = hash_factory()
        block_size = probe.block_size
        self.digest_size = probe.digest_size
        if len(key) > block_size:
            key = hash_factory().update(key).digest()
        key = key + b"\x00" * (block_size - len(key))
        # Key-schedule caching: absorb the ipad/opad blocks once here, so
        # every digest (and every copy) skips both key-block compressions.
        self._inner = hash_factory().update(bytes(b ^ 0x36 for b in key))
        self._outer = hash_factory().update(bytes(b ^ 0x5C for b in key))

    def update(self, data: bytes) -> "HMAC":
        """Absorb message bytes; returns self for chaining."""
        self._inner.update(data)
        return self

    def digest(self) -> bytes:
        """Finalize (non-destructively) and return the MAC."""
        inner_digest = self._inner.copy().digest()
        return self._outer.copy().update(inner_digest).digest()

    def hexdigest(self) -> str:
        """MAC as lowercase hex."""
        return self.digest().hex()

    def mac(self, message: bytes) -> bytes:
        """One-shot MAC of ``message`` from the cached pad states.

        Equivalent to ``self.copy().update(message).digest()`` but
        without allocating the intermediate ``HMAC`` wrapper: the
        batched record plane calls this once per record, so the only
        per-message work is the two hash-state clones the construction
        requires.  Leaves ``self`` untouched."""
        inner = self._inner.copy()
        inner.update(message)
        return self._outer.copy().update(inner.digest()).digest()

    def copy(self) -> "HMAC":
        """Independent copy of the running MAC state.

        Lets a caller key HMAC once and reuse the precomputed pad
        states for many messages (the DRBG and the record layers do
        this on their hot paths).
        """
        clone = object.__new__(HMAC)
        clone._factory = self._factory
        clone.digest_size = self.digest_size
        clone._inner = self._inner.copy()
        clone._outer = self._outer  # never mutated; digest() copies it
        return clone


def hmac(key: bytes, message: bytes, hash_factory: HashFactory = SHA1) -> bytes:
    """One-shot HMAC."""
    return HMAC(key, hash_factory).update(message).digest()


def hmac_verify(key: bytes, message: bytes, tag: bytes,
                hash_factory: HashFactory = SHA1) -> None:
    """Verify a MAC in constant time; raises :class:`IntegrityError`."""
    expected = hmac(key, message, hash_factory)
    if not constant_time_compare(expected, tag):
        raise IntegrityError("HMAC verification failed")
