"""Side-channel instrumentation for the reference cipher implementations.

Section 3.4 of the paper explains that a cryptographic primitive,
viewed as an *implementation* rather than a mathematical object, leaks
through side channels: power consumption, timing, electromagnetic
emanation, behaviour under faults.  Because we cannot put a probe on
real silicon, our substitution (see DESIGN.md) is to let each cipher
emit the intermediate values a probe would see.  A
:class:`TraceRecorder` turns those intermediates into a *power trace*
via the standard Hamming-weight CMOS leakage model used by Kocher's
DPA (paper ref. [44]), optionally corrupted with Gaussian-ish noise so
attacks must do real statistics.

The recorder is strictly opt-in: when no recorder is attached the
ciphers pay a single ``if`` per probe point, and behaviour is
identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .bitops import hamming_weight


@dataclass
class TraceSample:
    """One probed intermediate value.

    ``label`` identifies the probe point (e.g. ``"des.sbox_out"``),
    ``index`` disambiguates repeated probes at the same point (round
    number, S-box number), ``value`` is the intermediate itself and
    ``power`` the simulated instantaneous power (Hamming weight plus
    noise).
    """

    label: str
    index: int
    value: int
    power: float


@dataclass
class TraceRecorder:
    """Collects side-channel samples emitted by instrumented ciphers.

    Parameters
    ----------
    noise_sigma:
        Standard deviation of additive measurement noise, in units of
        "bits of Hamming weight".  ``0.0`` gives noiseless traces (an
        idealised bench-top measurement); realistic DPA experiments use
        0.5–4.0.
    seed:
        Seed for the noise generator, keeping experiments reproducible.
    enabled_labels:
        If given, only probe points whose label is in this set are
        recorded; keeps traces small for focused attacks.
    """

    noise_sigma: float = 0.0
    seed: Optional[int] = None
    enabled_labels: Optional[frozenset] = None
    samples: List[TraceSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        # Maintained incrementally so the read-side queries never have
        # to re-walk every sample: with ``enabled_labels`` filtering the
        # recording, a full scan pays for samples that were never kept.
        self._total_power = 0.0
        self._by_label: Dict[str, List[TraceSample]] = {}
        for sample in self.samples:  # pre-seeded samples (rare)
            self._total_power += sample.power
            self._by_label.setdefault(sample.label, []).append(sample)

    def record(self, label: str, index: int, value: int) -> None:
        """Record one intermediate value as a power sample."""
        if self.enabled_labels is not None and label not in self.enabled_labels:
            return
        power = float(hamming_weight(value))
        if self.noise_sigma:
            power += self._rng.gauss(0.0, self.noise_sigma)
        sample = TraceSample(label, index, value, power)
        self.samples.append(sample)
        self._total_power += power
        self._by_label.setdefault(label, []).append(sample)

    def powers(self, label: Optional[str] = None) -> List[float]:
        """Return the recorded power values, optionally for one label."""
        if label is None:
            return [s.power for s in self.samples]
        return [s.power for s in self._by_label.get(label, ())]

    def values(self, label: Optional[str] = None) -> List[int]:
        """Return raw intermediate values (for white-box debugging only)."""
        if label is None:
            return [s.value for s in self.samples]
        return [s.value for s in self._by_label.get(label, ())]

    def by_label(self) -> Dict[str, List[TraceSample]]:
        """Group samples by probe label."""
        return {label: list(group) for label, group in self._by_label.items()}

    def total_power(self) -> float:
        """Sum of all samples — a crude single-number 'energy' proxy.

        Maintained as a running sum at record time, so the query is
        O(1) even when ``enabled_labels`` kept the trace sparse.
        """
        return self._total_power

    def clear(self) -> None:
        """Drop all recorded samples, keeping configuration."""
        self.samples.clear()
        self._total_power = 0.0
        self._by_label.clear()

    def __len__(self) -> int:
        return len(self.samples)
