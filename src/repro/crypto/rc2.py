"""RC2 block cipher (RFC 2268) — a legacy SSL export-era cipher.

Section 3.1 of the paper lists RC2 among the symmetric ciphers an
RSA-key-exchange SSL cipher suite must support, which is exactly why
it lives in our registry: a handset that cannot negotiate it loses
interoperability with older peers (the paper's flexibility argument).

Implemented from RFC 2268: the PITABLE-driven key expansion with an
effective-key-bits reduction step, and the 16 MIX + 2 MASH round
structure over four 16-bit words.  Validated against the RFC 2268
test vectors (including the 63- and 64-effective-bit cases).
"""

from __future__ import annotations

from .bitops import rotl16, rotr16
from .errors import InvalidBlockSize, InvalidKeyLength

BLOCK_SIZE = 8

_PITABLE = bytes.fromhex(
    "d978f9c419ddb5ed28e9fd794aa0d89d"
    "c67e37832b76538e624c6488448bfba2"
    "179a59f587b34f1361456d8d09817d32"
    "bd8f40eb86b77b0bf09521225c6b4e82"
    "54d66593ce60b21c7356c014a78cf1dc"
    "1275ca1f3bbee4d1423dd430a33cb626"
    "6fbf0eda4669075727f21d9bbc944303"
    "f811c7f690ef3ee706c3d52fc8661ed7"
    "08e8eade8052eef784aa72ac354d6a2a"
    "961ad2715a1549744b9fd05e0418a4ec"
    "c2e0416e0f51cbcc2491af50a1f47039"
    "997c3a8523b8b47afc02365b25559731"
    "2d5dfa98e38a92ae05df2910676cbac9"
    "d300e6cfe19ea82c6316013f58e289a9"
    "0d38341bab33ffb0bb480c5fb9b1cd2e"
    "c5f3db47e5a59c770aa62068fe7fc1ad"
)


def expand_key(key: bytes, effective_bits: int) -> list:
    """RFC 2268 key expansion → 64 16-bit subkeys ``K[0..63]``.

    ``effective_bits`` implements RC2's historical export-control
    parameter: the expanded key is reduced so that at most that many
    key bits influence the cipher.
    """
    if not 1 <= len(key) <= 128:
        raise InvalidKeyLength("RC2", len(key), "1..128")
    if not 1 <= effective_bits <= 1024:
        raise ValueError(f"effective key bits {effective_bits} out of range 1..1024")
    buf = bytearray(key) + bytearray(128 - len(key))
    t = len(key)
    t1 = effective_bits
    t8 = (t1 + 7) // 8
    tm = 0xFF % (1 << (8 + t1 - 8 * t8))
    for i in range(t, 128):
        buf[i] = _PITABLE[(buf[i - 1] + buf[i - t]) & 0xFF]
    buf[128 - t8] = _PITABLE[buf[128 - t8] & tm]
    for i in range(127 - t8, -1, -1):
        buf[i] = _PITABLE[buf[i + 1] ^ buf[i + t8]]
    return [buf[2 * i] | (buf[2 * i + 1] << 8) for i in range(64)]


class RC2:
    """RC2 with a variable-length key and effective-key-bits parameter.

    The default ``effective_bits`` equals the key length in bits, the
    common modern usage; SSL export suites historically forced 40.
    """

    name = "RC2"
    block_size = BLOCK_SIZE
    key_size = 16

    _MIX_SHIFTS = (1, 2, 3, 5)

    def __init__(self, key: bytes, effective_bits: int = 0) -> None:
        if effective_bits <= 0:
            effective_bits = 8 * len(key)
        self._subkeys = expand_key(key, effective_bits)
        self.effective_bits = effective_bits

    # -- round building blocks ----------------------------------------------

    def _mix_round(self, r: list, j: int) -> int:
        for i in range(4):
            r[i] = (
                r[i]
                + self._subkeys[j]
                + (r[(i - 1) & 3] & r[(i - 2) & 3])
                + ((~r[(i - 1) & 3]) & r[(i - 3) & 3])
            ) & 0xFFFF
            r[i] = rotl16(r[i], self._MIX_SHIFTS[i])
            j += 1
        return j

    def _mash_round(self, r: list) -> None:
        for i in range(4):
            r[i] = (r[i] + self._subkeys[r[(i - 1) & 3] & 63]) & 0xFFFF

    def _rmix_round(self, r: list, j: int) -> int:
        for i in range(3, -1, -1):
            r[i] = rotr16(r[i], self._MIX_SHIFTS[i])
            r[i] = (
                r[i]
                - self._subkeys[j]
                - (r[(i - 1) & 3] & r[(i - 2) & 3])
                - ((~r[(i - 1) & 3]) & r[(i - 3) & 3])
            ) & 0xFFFF
            j -= 1
        return j

    def _rmash_round(self, r: list) -> None:
        for i in range(3, -1, -1):
            r[i] = (r[i] - self._subkeys[r[(i - 1) & 3] & 63]) & 0xFFFF

    # -- public block interface ----------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockSize("RC2", len(block), BLOCK_SIZE)
        r = [block[2 * i] | (block[2 * i + 1] << 8) for i in range(4)]
        j = 0
        for _ in range(5):
            j = self._mix_round(r, j)
        self._mash_round(r)
        for _ in range(6):
            j = self._mix_round(r, j)
        self._mash_round(r)
        for _ in range(5):
            j = self._mix_round(r, j)
        return bytes(b for word in r for b in (word & 0xFF, word >> 8))

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockSize("RC2", len(block), BLOCK_SIZE)
        r = [block[2 * i] | (block[2 * i + 1] << 8) for i in range(4)]
        j = 63
        for _ in range(5):
            j = self._rmix_round(r, j)
        self._rmash_round(r)
        for _ in range(6):
            j = self._rmix_round(r, j)
        self._rmash_round(r)
        for _ in range(5):
            j = self._rmix_round(r, j)
        return bytes(b for word in r for b in (word & 0xFF, word >> 8))
