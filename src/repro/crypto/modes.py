"""Block-cipher modes of operation (ECB, CBC, CTR).

The protocol stacks chain the raw block ciphers through these modes:
mini-TLS/WTLS and ESP use CBC with explicit IVs (the 2003-era default),
CTR is provided for the stream-like workloads the paper's data-rate
sweeps model, and ECB exists for test vectors and as the building
block the others compose.
"""

from __future__ import annotations

import warnings
from typing import Protocol

from .bitops import split_blocks, xor_bytes
from .errors import InvalidBlockSize, PaddingError, ParameterError
from .padding import pkcs7_pad, pkcs7_unpad


class BlockCipher(Protocol):
    """Structural type implemented by DES/3DES/AES/RC2."""

    name: str
    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...  # noqa: E704

    def decrypt_block(self, block: bytes) -> bytes: ...  # noqa: E704


class ECB:
    """Electronic codebook — block-aligned inputs only."""

    def __init__(self, cipher: BlockCipher) -> None:
        self.cipher = cipher

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt block-aligned plaintext."""
        return b"".join(
            self.cipher.encrypt_block(block)
            for block in split_blocks(plaintext, self.cipher.block_size)
        )

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt block-aligned ciphertext."""
        return b"".join(
            self.cipher.decrypt_block(block)
            for block in split_blocks(ciphertext, self.cipher.block_size)
        )


class CBC:
    """Cipher-block chaining with explicit IV and PKCS#7 padding.

    A ``CBC`` instance binds one IV to one message: calling
    :meth:`encrypt` twice on the same instance reuses the IV, which
    leaks whether two messages share a prefix (the classic CBC
    IV-reuse hazard).  A second ``encrypt`` call here raises a
    :class:`RuntimeWarning` so the hazard cannot pass silently.

    Residue chaining — the TLS 1.0 record-layer discipline where the
    last ciphertext block of message *n* is message *n+1*'s IV — is the
    one sanctioned way to reuse an instance: :meth:`encrypt_next` /
    :meth:`decrypt_next` carry the residue across calls, so a record
    layer keeps **one** CBC context per direction instead of building a
    fresh object per record (the batched record plane's seam).
    """

    def __init__(self, cipher: BlockCipher, iv: bytes) -> None:
        if len(iv) != cipher.block_size:
            raise ParameterError(
                f"CBC IV must be {cipher.block_size} bytes, got {len(iv)}"
            )
        self.cipher = cipher
        self.iv = iv
        self._iv_consumed = False

    def encrypt(self, plaintext: bytes, pad: bool = True) -> bytes:
        """Encrypt (PKCS#7-padding by default)."""
        if self._iv_consumed:
            warnings.warn(
                "CBC.encrypt called again on the same instance: reusing the "
                "IV leaks plaintext prefix equality; build a fresh CBC (or "
                "chain the last ciphertext block as the next IV) per message",
                RuntimeWarning,
                stacklevel=2,
            )
        self._iv_consumed = True
        if pad:
            plaintext = pkcs7_pad(plaintext, self.cipher.block_size)
        previous = self.iv
        out = []
        for block in split_blocks(plaintext, self.cipher.block_size):
            previous = self.cipher.encrypt_block(xor_bytes(block, previous))
            out.append(previous)
        return b"".join(out)

    def decrypt(self, ciphertext: bytes, pad: bool = True) -> bytes:
        """Decrypt and strip padding (validating it)."""
        if not ciphertext:
            if pad:
                # Empty input *is* block-aligned; what is missing is the
                # mandatory PKCS#7 padding block, so say so.
                raise PaddingError(
                    "empty ciphertext: a padded CBC message carries at "
                    "least one padding block"
                )
            return b""
        if len(ciphertext) % self.cipher.block_size:
            raise InvalidBlockSize(
                self.cipher.name, len(ciphertext), self.cipher.block_size
            )
        previous = self.iv
        out = []
        for block in split_blocks(ciphertext, self.cipher.block_size):
            out.append(xor_bytes(self.cipher.decrypt_block(block), previous))
            previous = block
        plaintext = b"".join(out)
        return pkcs7_unpad(plaintext, self.cipher.block_size) if pad else plaintext

    # -- residue chaining (the record layers' batch seam) -------------------

    def encrypt_next(self, plaintext: bytes, pad: bool = True) -> bytes:
        """Encrypt one message and chain the residue as the next IV.

        Unlike :meth:`encrypt` this is *meant* to be called repeatedly:
        each message's last ciphertext block becomes the following
        message's IV (distinct per message, so no IV-reuse hazard and
        no warning).  State commits unconditionally — encryption cannot
        fail once input validation passed."""
        if pad:
            plaintext = pkcs7_pad(plaintext, self.cipher.block_size)
        previous = self.iv
        out = []
        encrypt_block = self.cipher.encrypt_block
        for block in split_blocks(plaintext, self.cipher.block_size):
            previous = encrypt_block(xor_bytes(block, previous))
            out.append(previous)
        self.iv = previous
        self._iv_consumed = True
        return b"".join(out)

    def decrypt_next(self, ciphertext: bytes, pad: bool = True,
                     commit: bool = True) -> bytes:
        """Decrypt one chained message; optionally defer the commit.

        With ``commit=False`` the residue IV is left untouched so a
        caller can verify the plaintext (e.g. a record MAC) first and
        only then :meth:`commit_residue` — the transactional-decoder
        contract: a rejected record must not advance the chain."""
        plaintext = self.decrypt(ciphertext, pad=pad)
        if commit:
            self.commit_residue(ciphertext)
        return plaintext

    def commit_residue(self, ciphertext: bytes) -> None:
        """Advance the chain: ``ciphertext``'s last block is the next IV."""
        self.iv = bytes(ciphertext[-self.cipher.block_size:])


class CTR:
    """Counter mode — turns any block cipher into a stream cipher."""

    def __init__(self, cipher: BlockCipher, nonce: bytes) -> None:
        if len(nonce) != cipher.block_size:
            raise ParameterError(
                f"CTR nonce must be {cipher.block_size} bytes, got {len(nonce)}"
            )
        self.cipher = cipher
        self._counter = int.from_bytes(nonce, "big")
        self._block_bits = 8 * cipher.block_size

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt (same operation) arbitrary-length data."""
        out = bytearray()
        offset = 0
        block_size = self.cipher.block_size
        while offset < len(data):
            counter_block = (self._counter % (1 << self._block_bits)).to_bytes(
                block_size, "big"
            )
            keystream = self.cipher.encrypt_block(counter_block)
            self._counter += 1
            chunk = data[offset : offset + block_size]
            out += xor_bytes(chunk, keystream[: len(chunk)])
            offset += block_size
        return bytes(out)
