"""AES (FIPS 197) implemented from scratch.

The paper's Figure 2 highlights the June 2002 TLS revision that added
AES — the motivating example for why a mobile appliance's security
architecture must stay *flexible* (Section 3.1).  Our cipher-suite
registry therefore treats AES as the "newly standardised" algorithm a
deployed handset must be able to adopt after the fact.

The S-box is derived programmatically (multiplicative inverse in
GF(2^8) followed by the FIPS 197 affine map) rather than transcribed,
eliminating table-entry typos; the implementation is validated against
the FIPS 197 Appendix C known-answer vectors for all three key sizes.

Probe points (``aes.sbox_out`` in round 1, ``aes.round_out``) feed the
DPA attack in :mod:`repro.attacks.power`.
"""

from __future__ import annotations

from typing import List, Optional

from . import fastpath
from .errors import InvalidBlockSize, InvalidKeyLength
from .trace import TraceRecorder

BLOCK_SIZE = 16


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> List[int]:
    # Multiplicative inverses via exponentiation: a^254 = a^-1 in GF(2^8).
    sbox = [0] * 256
    for value in range(256):
        inv = 0
        if value:
            inv = value
            for _ in range(253):  # inv = value^254
                inv = _gf_mul(inv, value)
        transformed = 0
        for bit in range(8):
            t = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= t << bit
        sbox[value] = transformed
    return sbox


SBOX = _build_sbox()
INV_SBOX = [0] * 256
for _i, _s in enumerate(SBOX):
    INV_SBOX[_s] = _i

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))


def key_expansion(key: bytes) -> List[List[int]]:
    """FIPS 197 key expansion; returns round keys as lists of 4 words."""
    if len(key) not in (16, 24, 32):
        raise InvalidKeyLength("AES", len(key), "16, 24 or 32")
    nk = len(key) // 4
    rounds = {4: 10, 6: 12, 8: 14}[nk]
    words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = words[i - 1]
        if i % nk == 0:
            temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
            temp = _sub_word(temp) ^ (_RCON[i // nk - 1] << 24)
        elif nk > 6 and i % nk == 4:
            temp = _sub_word(temp)
        words.append(words[i - nk] ^ temp)
    return [words[4 * r : 4 * r + 4] for r in range(rounds + 1)]


def _sub_word(word: int) -> int:
    return (
        (SBOX[(word >> 24) & 0xFF] << 24)
        | (SBOX[(word >> 16) & 0xFF] << 16)
        | (SBOX[(word >> 8) & 0xFF] << 8)
        | SBOX[word & 0xFF]
    )


def _state_from_bytes(block: bytes) -> List[List[int]]:
    # state[row][col]; FIPS 197 fills column-major.
    return [[block[row + 4 * col] for col in range(4)] for row in range(4)]


def _bytes_from_state(state: List[List[int]]) -> bytes:
    return bytes(state[row][col] for col in range(4) for row in range(4))


def _add_round_key(state: List[List[int]], round_key: List[int]) -> None:
    for col in range(4):
        word = round_key[col]
        for row in range(4):
            state[row][col] ^= (word >> (24 - 8 * row)) & 0xFF


class AES:
    """AES block cipher with 128/192/256-bit keys (ECB at block level).

    Parameters
    ----------
    key:
        16-, 24- or 32-byte key.
    recorder:
        Optional side-channel trace recorder; probes first-round S-box
        outputs (``aes.sbox_out``) and each round's state
        (``aes.round_out``).
    """

    name = "AES"
    block_size = BLOCK_SIZE
    key_size = 16

    def __init__(self, key: bytes, recorder: Optional[TraceRecorder] = None) -> None:
        self._round_keys = key_expansion(key)
        self._rounds = len(self._round_keys) - 1
        self.recorder = recorder
        # Fast-path key schedules, derived lazily and cached so repeated
        # block calls under one mode/record-layer instance never re-expand.
        self._fast_enc: Optional[List[int]] = None
        self._fast_dec: Optional[List[int]] = None

    # -- encryption ---------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockSize("AES", len(block), BLOCK_SIZE)
        if self.recorder is None and fastpath.enabled():
            if self._fast_enc is None:
                self._fast_enc = [w for rk in self._round_keys for w in rk]
            return fastpath.aes_encrypt_block(block, self._fast_enc, self._rounds)
        state = _state_from_bytes(block)
        _add_round_key(state, self._round_keys[0])
        for rnd in range(1, self._rounds):
            self._sub_bytes(state, probe=(rnd == 1))
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[rnd])
            if self.recorder is not None:
                self.recorder.record(
                    "aes.round_out", rnd, int.from_bytes(_bytes_from_state(state), "big")
                )
        self._sub_bytes(state, probe=False)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[self._rounds])
        return _bytes_from_state(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockSize("AES", len(block), BLOCK_SIZE)
        if self.recorder is None and fastpath.enabled():
            if self._fast_dec is None:
                self._fast_dec = fastpath.aes_decrypt_schedule(self._round_keys)
            return fastpath.aes_decrypt_block(block, self._fast_dec, self._rounds)
        state = _state_from_bytes(block)
        _add_round_key(state, self._round_keys[self._rounds])
        for rnd in range(self._rounds - 1, 0, -1):
            _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[rnd])
            _inv_mix_columns(state)
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return _bytes_from_state(state)

    def _sub_bytes(self, state: List[List[int]], probe: bool) -> None:
        for row in range(4):
            for col in range(4):
                out = SBOX[state[row][col]]
                if probe and self.recorder is not None:
                    self.recorder.record("aes.sbox_out", 4 * col + row, out)
                state[row][col] = out


def _shift_rows(state: List[List[int]]) -> None:
    for row in range(1, 4):
        state[row] = state[row][row:] + state[row][:row]


def _inv_shift_rows(state: List[List[int]]) -> None:
    for row in range(1, 4):
        state[row] = state[row][-row:] + state[row][:-row]


def _inv_sub_bytes(state: List[List[int]]) -> None:
    for row in range(4):
        for col in range(4):
            state[row][col] = INV_SBOX[state[row][col]]


def _mix_columns(state: List[List[int]]) -> None:
    for col in range(4):
        a = [state[row][col] for row in range(4)]
        state[0][col] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
        state[1][col] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
        state[2][col] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
        state[3][col] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)


def _inv_mix_columns(state: List[List[int]]) -> None:
    for col in range(4):
        a = [state[row][col] for row in range(4)]
        state[0][col] = (
            _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11) ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
        )
        state[1][col] = (
            _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14) ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
        )
        state[2][col] = (
            _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9) ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
        )
        state[3][col] = (
            _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13) ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)
        )
