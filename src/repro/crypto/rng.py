"""Randomness: a deterministic DRBG and a hardware-TRNG model.

Section 4.1: "The foundation of secure crypto operations includes true
random number generation, which may be provided for with a HW-based
random number generator."  Our substitution for that hardware is
:class:`HardwareTRNG`, a simulated ring-oscillator entropy source with
a configurable bias, von Neumann debiasing, and FIPS 140-1-style
health tests — the full conditioning pipeline a real secure platform
ships.

All simulation randomness flows through :class:`DeterministicDRBG`
(an HMAC-SHA1 counter construction) so every experiment is exactly
reproducible from its seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from .errors import RandomnessError
from .hmac import HMAC
from .sha1 import sha1


class DeterministicDRBG:
    """Deterministic byte generator built from HMAC-SHA1 in counter mode.

    Not a certified DRBG, but structurally the classic construction:
    ``block_i = HMAC(key, counter_i)`` with ``key = SHA1(seed)``.
    Supports the subset of the :mod:`random` API the library needs so
    it can be passed anywhere a ``random.Random`` is accepted.
    """

    def __init__(self, seed: Union[int, bytes, str]) -> None:
        if isinstance(seed, int):
            seed_bytes = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big")
        elif isinstance(seed, str):
            seed_bytes = seed.encode()
        else:
            seed_bytes = seed
        self._key = sha1(b"repro-drbg:" + seed_bytes)
        # Key the HMAC once; each block then clones the precomputed pad
        # states instead of re-absorbing them (same output, half the work).
        self._mac = HMAC(self._key)
        self._counter = 0
        self._buffer = b""

    def random_bytes(self, length: int) -> bytes:
        """Return ``length`` pseudo-random bytes."""
        while len(self._buffer) < length:
            block = self._mac.copy().update(self._counter.to_bytes(8, "big")).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:length], self._buffer[length:]
        return out

    def getrandbits(self, bits: int) -> int:
        """Return an integer with ``bits`` random bits (may be shorter)."""
        if bits <= 0:
            return 0
        raw = int.from_bytes(self.random_bytes((bits + 7) // 8), "big")
        return raw >> ((8 * ((bits + 7) // 8)) - bits)

    def randrange(self, start: int, stop: Optional[int] = None) -> int:
        """Uniform integer in [start, stop) — rejection-sampled."""
        if stop is None:
            start, stop = 0, start
        span = stop - start
        if span <= 0:
            raise ValueError("empty range for randrange")
        bits = span.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < span:
                return start + candidate

    def randint(self, a: int, b: int) -> int:
        """Uniform integer in [a, b]."""
        return self.randrange(a, b + 1)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self.getrandbits(53) / (1 << 53)

    def gauss(self, mu: float, sigma: float) -> float:
        """Gaussian via the sum-of-uniforms (Irwin–Hall) approximation."""
        total = sum(self.random() for _ in range(12)) - 6.0
        return mu + sigma * total

    def choice(self, seq):
        """Uniform choice from a non-empty sequence."""
        return seq[self.randrange(len(seq))]

    def shuffle(self, seq: List) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randrange(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def nonzero_bytes(self, length: int) -> bytes:
        """Random bytes with no zero octets (PKCS#1 v1.5 PS field)."""
        out = bytearray()
        while len(out) < length:
            out.extend(b for b in self.random_bytes(length - len(out)) if b)
        return bytes(out)


class HardwareTRNG:
    """Model of a hardware true-random-number generator.

    Simulates a biased raw entropy source (each raw bit is 1 with
    probability ``bias``), applies von Neumann debiasing, and gates
    output on FIPS 140-1-style health tests (monobit and long-run).
    Raises :class:`RandomnessError` when the source degrades past what
    conditioning can repair, modelling the fault-induction attacks of
    §3.4 that try to freeze a TRNG's output.
    """

    HEALTH_WINDOW = 2000  # raw bits per health-test window
    MONOBIT_LOW = 0.35
    MONOBIT_HIGH = 0.65
    MAX_RUN = 34

    def __init__(self, seed: int = 0, bias: float = 0.5) -> None:
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be within [0, 1]")
        self._rng = random.Random(seed)
        self.bias = bias
        self.raw_bits_drawn = 0
        self.health_failures = 0

    def _raw_bit(self) -> int:
        self.raw_bits_drawn += 1
        return 1 if self._rng.random() < self.bias else 0

    def _health_check(self, window: List[int]) -> bool:
        ones = sum(window)
        fraction = ones / len(window)
        if not self.MONOBIT_LOW <= fraction <= self.MONOBIT_HIGH:
            return False
        run = 1
        for previous, current in zip(window, window[1:]):
            run = run + 1 if current == previous else 1
            if run > self.MAX_RUN:
                return False
        return True

    def random_bytes(self, length: int) -> bytes:
        """Produce conditioned random bytes, or raise on unhealthy source."""
        window = [self._raw_bit() for _ in range(self.HEALTH_WINDOW)]
        if not self._health_check(window):
            self.health_failures += 1
            raise RandomnessError(
                f"TRNG health test failed (bias={self.bias:.2f}); "
                "refusing to emit low-entropy output"
            )
        out_bits: List[int] = []
        pending = window
        index = 0
        while len(out_bits) < 8 * length:
            if index + 1 >= len(pending):
                pending = [self._raw_bit() for _ in range(256)]
                index = 0
            first, second = pending[index], pending[index + 1]
            index += 2
            # Von Neumann: 01 -> 0, 10 -> 1, 00/11 discarded.
            if first != second:
                out_bits.append(first)
        out = bytearray()
        for i in range(length):
            byte = 0
            for bit in out_bits[8 * i : 8 * i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)
