"""RSA — key generation, PKCS#1 v1.5 encryption/signatures, CRT.

RSA is the paper's running public-key example: the SSL handshake's key
exchange (§3.1, §3.2's "RSA based connection set-ups"), the sensor
node's 42 mJ/KB encryption overhead (§3.3), and both headline
implementation attacks of §3.4 — the timing attack on modular
exponentiation and the fault attack on the Chinese-Remainder-Theorem
speedup ("A well-known example is the implementation of the RSA
public-key cryptosystem using the CRT for improving the performance").

The private-key operation is therefore deliberately configurable:

* ``use_crt``      — the CRT speedup (≈4x) the fault attack targets;
* ``fault_hook``   — lets :mod:`repro.attacks.fault` corrupt one CRT
  half-exponentiation, exactly the Bellcore fault model;
* ``verify_result``— the standard countermeasure (re-encrypt and
  compare before releasing a signature);
* ``timer`` / ``leaky`` — route exponentiation through the
  instrumented Montgomery code so timing attacks see real variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .bitops import bytes_to_int, int_to_bytes
from .errors import DecryptionError, ParameterError, SignatureError
from .modmath import OperationTimer, invmod, modexp, modexp_ladder, modexp_sqm
from .primes import generate_prime
from .rng import DeterministicDRBG
from .sha1 import sha1

# DigestInfo DER prefixes for PKCS#1 v1.5 signatures.
DIGESTINFO_SHA1 = bytes.fromhex("3021300906052b0e03021a05000414")
DIGESTINFO_MD5 = bytes.fromhex("3020300c06082a864886f70d020505000410")

FaultHook = Callable[[str, int], int]


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key (n, e)."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        """Modulus size in bytes."""
        return (self.n.bit_length() + 7) // 8

    @property
    def bit_length(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    def encrypt_raw(self, message: int) -> int:
        """Textbook RSA encryption m^e mod n."""
        if not 0 <= message < self.n:
            raise ParameterError("RSA message representative out of range")
        return modexp(message, self.e, self.n)

    def encrypt(self, plaintext: bytes, rng: DeterministicDRBG) -> bytes:
        """PKCS#1 v1.5 type-2 encryption."""
        k = self.byte_length
        if len(plaintext) > k - 11:
            raise ParameterError(
                f"plaintext too long for {self.bit_length}-bit RSA "
                f"({len(plaintext)} > {k - 11})"
            )
        padding = rng.nonzero_bytes(k - len(plaintext) - 3)
        block = b"\x00\x02" + padding + b"\x00" + plaintext
        return int_to_bytes(self.encrypt_raw(bytes_to_int(block)), k)

    def verify(self, message: bytes, signature: bytes,
               digestinfo: bytes = DIGESTINFO_SHA1) -> None:
        """Verify a PKCS#1 v1.5 signature; raises :class:`SignatureError`."""
        if len(signature) != self.byte_length:
            raise SignatureError("signature length does not match modulus")
        decrypted = int_to_bytes(
            modexp(bytes_to_int(signature), self.e, self.n), self.byte_length
        )
        digest = sha1(message) if digestinfo == DIGESTINFO_SHA1 else None
        if digest is None:
            raise SignatureError("unsupported DigestInfo")
        expected = _emsa_pkcs1(digestinfo + digest, self.byte_length)
        if decrypted != expected:
            raise SignatureError("RSA signature verification failed")


def _emsa_pkcs1(t: bytes, k: int) -> bytes:
    if len(t) + 11 > k:
        raise ParameterError("modulus too small for DigestInfo encoding")
    return b"\x00\x01" + b"\xff" * (k - len(t) - 3) + b"\x00" + t


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RSAPublicKey:
        """The corresponding public key."""
        return RSAPublicKey(self.n, self.e)

    @property
    def byte_length(self) -> int:
        """Modulus size in bytes."""
        return (self.n.bit_length() + 7) // 8

    # -- core private-key operation -----------------------------------------

    def decrypt_raw(
        self,
        ciphertext: int,
        use_crt: bool = True,
        fault_hook: Optional[FaultHook] = None,
        verify_result: bool = False,
        timer: Optional[OperationTimer] = None,
        leaky: bool = True,
    ) -> int:
        """The RSA private operation c^d mod n, with implementation knobs.

        ``leaky`` selects square-and-multiply (timing-variant) vs.
        Montgomery ladder; both are only engaged when a ``timer`` is
        attached or a fault hook is present — otherwise the fast
        builtin ``pow`` is used for simulation speed.
        """
        if not 0 <= ciphertext < self.n:
            raise ParameterError("RSA ciphertext representative out of range")
        if use_crt:
            result = self._decrypt_crt(ciphertext, fault_hook, timer, leaky)
        else:
            result = self._modexp(ciphertext, self.d, self.n, timer, leaky)
        if verify_result and modexp(result, self.e, self.n) != ciphertext:
            raise SignatureError(
                "CRT self-check failed: computation fault detected, "
                "result withheld (Bellcore countermeasure)"
            )
        return result

    def _decrypt_crt(self, c: int, fault_hook: Optional[FaultHook],
                     timer: Optional[OperationTimer], leaky: bool) -> int:
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        mp = self._modexp(c % self.p, dp, self.p, timer, leaky)
        mq = self._modexp(c % self.q, dq, self.q, timer, leaky)
        if fault_hook is not None:
            mp = fault_hook("p", mp) % self.p
            mq = fault_hook("q", mq) % self.q
        q_inv = invmod(self.q, self.p)
        h = (q_inv * (mp - mq)) % self.p
        return (mq + h * self.q) % self.n

    @staticmethod
    def _modexp(base: int, exponent: int, modulus: int,
                timer: Optional[OperationTimer], leaky: bool) -> int:
        if timer is None:
            return modexp(base, exponent, modulus)
        if leaky:
            return modexp_sqm(base, exponent, modulus, timer)
        return modexp_ladder(base, exponent, modulus, timer)

    # -- padded operations ----------------------------------------------------

    def decrypt(self, ciphertext: bytes, **kwargs) -> bytes:
        """PKCS#1 v1.5 type-2 decryption."""
        k = self.byte_length
        if len(ciphertext) != k:
            raise DecryptionError("ciphertext length does not match modulus")
        block = int_to_bytes(self.decrypt_raw(bytes_to_int(ciphertext), **kwargs), k)
        if not block.startswith(b"\x00\x02"):
            raise DecryptionError("PKCS#1 block type invalid")
        try:
            separator = block.index(b"\x00", 2)
        except ValueError:
            raise DecryptionError("PKCS#1 separator missing") from None
        if separator < 10:
            raise DecryptionError("PKCS#1 padding string too short")
        return block[separator + 1 :]

    def sign(self, message: bytes, digestinfo: bytes = DIGESTINFO_SHA1,
             **kwargs) -> bytes:
        """PKCS#1 v1.5 signature over SHA-1(message)."""
        digest = sha1(message)
        encoded = _emsa_pkcs1(digestinfo + digest, self.byte_length)
        return int_to_bytes(
            self.decrypt_raw(bytes_to_int(encoded), **kwargs), self.byte_length
        )


def generate_keypair(bits: int, rng: DeterministicDRBG,
                     e: int = 65537) -> RSAPrivateKey:
    """Generate an RSA key pair with an exactly ``bits``-bit modulus.

    Small moduli (256–768 bits) keep the pure-Python simulation fast
    and match the key sizes 2003-era constrained handsets actually
    deployed; the attack demonstrations scale to any size.
    """
    if bits < 64:
        raise ParameterError(f"RSA modulus of {bits} bits is too small to pad")
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if n.bit_length() != bits:
            continue
        try:
            d = invmod(e, phi)
        except ParameterError:
            continue
        return RSAPrivateKey(n=n, e=e, d=d, p=p, q=q)
