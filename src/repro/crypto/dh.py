"""Diffie–Hellman key agreement.

Section 4.1 lists "public key operations (RSA/DH)" as the asymmetric
workload a mobile crypto foundation must accelerate, and §3.1's SSL
example names KEA (a DH variant) as an alternative key-exchange
algorithm.  We provide classic finite-field DH over safe-prime groups,
plus a fixed well-known group so tests and protocol runs don't pay
safe-prime generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ParameterError
from .modmath import modexp
from .primes import generate_safe_prime, is_prime
from .rng import DeterministicDRBG
from .sha1 import sha1

# The 768-bit MODP group from RFC 2409 (Oakley group 1): a safe prime
# with generator 2 — period-correct for 2003-era handsets.
OAKLEY_GROUP1_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A63A3620FFFFFFFFFFFFFFFF",
    16,
)
OAKLEY_GROUP1_G = 2


@dataclass(frozen=True)
class DHGroup:
    """A Diffie–Hellman group (safe prime ``p``, generator ``g``)."""

    p: int
    g: int

    def validate(self) -> None:
        """Sanity-check the group parameters (primality, generator range)."""
        if not is_prime(self.p):
            raise ParameterError("DH modulus is not prime")
        if not 2 <= self.g <= self.p - 2:
            raise ParameterError("DH generator out of range")

    @classmethod
    def generate(cls, bits: int, rng: DeterministicDRBG) -> "DHGroup":
        """Generate a fresh safe-prime group (slow for large sizes)."""
        return cls(p=generate_safe_prime(bits, rng), g=2)

    @classmethod
    def oakley1(cls) -> "DHGroup":
        """The fixed RFC 2409 768-bit group."""
        return cls(p=OAKLEY_GROUP1_P, g=OAKLEY_GROUP1_G)


class DHParty:
    """One side of a Diffie–Hellman exchange.

    >>> group = DHGroup.oakley1()
    >>> alice = DHParty(group, DeterministicDRBG(1))
    >>> bob = DHParty(group, DeterministicDRBG(2))
    >>> alice.shared_secret(bob.public) == bob.shared_secret(alice.public)
    True
    """

    def __init__(self, group: DHGroup, rng: DeterministicDRBG) -> None:
        self.group = group
        self._private = rng.randrange(2, group.p - 2)
        self.public = modexp(group.g, self._private, group.p)

    def shared_secret(self, peer_public: int) -> int:
        """Compute the shared secret from the peer's public value.

        Rejects degenerate public values (0, 1, p-1) — the classic
        small-subgroup confinement check.
        """
        if peer_public in (0, 1, self.group.p - 1) or not (
            0 < peer_public < self.group.p
        ):
            raise ParameterError("peer DH public value is degenerate")
        return modexp(peer_public, self._private, self.group.p)

    def shared_key(self, peer_public: int, length: int = 16) -> bytes:
        """Derive ``length`` key bytes from the shared secret via SHA-1."""
        secret = self.shared_secret(peer_public)
        raw = secret.to_bytes((self.group.p.bit_length() + 7) // 8, "big")
        out = b""
        counter = 0
        while len(out) < length:
            out += sha1(raw + counter.to_bytes(4, "big"))
            counter += 1
        return out[:length]
