"""Primality testing and prime generation for RSA/DH key material.

Deterministic Miller–Rabin witness sets are used below well-known
thresholds so the small keys our simulations favour (256–768 bits —
period-appropriate for 2003 handsets and fast in pure Python) are
proven prime, with random witnesses stacked on top for larger inputs.
"""

from __future__ import annotations

import random
from typing import Optional

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

# Jaeschke/Sorenson-Webster: these witnesses are deterministic below 3.3e24.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
_DETERMINISTIC_LIMIT = 3317044064679887385961981


def _miller_rabin_round(n: int, a: int) -> bool:
    """One Miller–Rabin round; True if ``n`` passes for witness ``a``."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_prime(n: int, rounds: int = 24, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic for ``n`` below ~3.3e24; probabilistic with
    ``rounds`` random witnesses above (error < 4^-rounds).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_LIMIT:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        rng = rng or random.Random(0xC0FFEE ^ (n & 0xFFFF))
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a) for a in witnesses)


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such
    primes has exactly ``2*bits`` bits (the RSA keygen convention), and
    the candidate is forced odd.
    """
    if bits < 8:
        raise ValueError(f"prime size {bits} bits too small (need >= 8)")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_prime(candidate):
            return candidate


def generate_safe_prime(bits: int, rng: random.Random) -> int:
    """Generate a safe prime p (p = 2q + 1 with q prime) for DH groups."""
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if is_prime(p):
            return p
