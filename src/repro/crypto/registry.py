"""Algorithm registry — the flexibility mechanism of Section 3.1.

The paper's first design challenge is *flexibility*: protocols evolve
(Figure 2), standards admit many cipher suites, and a deployed handset
must adopt algorithms standardised after it shipped (TLS adding AES in
June 2002 is the paper's example).  The registry is the software
expression of that requirement: algorithms are looked up by name at
negotiation time, carry lifecycle metadata (introduced, deprecated,
strength), and new ones can be registered against a running platform —
which is exactly what the firmware-update example exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from .a51 import A51
from .aes import AES
from .des import DES
from .errors import CryptoError
from .grain import Grain
from .md5 import MD5
from .rc2 import RC2
from .rc4 import RC4
from .sha1 import SHA1
from .tdes import TripleDES
from .trivium import Trivium


class UnknownAlgorithm(CryptoError):
    """Requested algorithm is not registered."""


@dataclass(frozen=True)
class AlgorithmInfo:
    """Metadata describing one registered algorithm.

    ``strength_bits`` is the effective security level (not key length);
    ``year_introduced`` / ``deprecated`` drive the Figure-2-style
    evolution analyses; ``kind`` is one of ``block``, ``stream``,
    ``hash``, ``kex``.
    """

    name: str
    kind: str
    factory: Callable
    key_bytes: int
    strength_bits: int
    year_introduced: int
    deprecated: bool = False
    notes: str = ""


@dataclass
class AlgorithmRegistry:
    """A mutable catalogue of cryptographic algorithms.

    A fresh registry is pre-populated with the 2003-era baseline the
    paper enumerates; :meth:`register` models post-deployment algorithm
    rollout (firmware update adding AES support).
    """

    _algorithms: Dict[str, AlgorithmInfo] = field(default_factory=dict)

    def register(self, info: AlgorithmInfo) -> None:
        """Add (or replace) an algorithm."""
        self._algorithms[info.name] = info

    def deprecate(self, name: str) -> None:
        """Mark an algorithm deprecated (protocols stop negotiating it).

        Uses :func:`dataclasses.replace` so every field — including any
        added to :class:`AlgorithmInfo` after this method was written —
        survives the transition unchanged.
        """
        self._algorithms[name] = replace(self.get(name), deprecated=True)

    def get(self, name: str) -> AlgorithmInfo:
        """Look up an algorithm by name."""
        try:
            return self._algorithms[name]
        except KeyError:
            raise UnknownAlgorithm(
                f"algorithm {name!r} not in registry "
                f"(have: {sorted(self._algorithms)})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._algorithms

    def names(self, kind: Optional[str] = None,
              include_deprecated: bool = True) -> List[str]:
        """Registered algorithm names, optionally filtered by kind."""
        return sorted(
            info.name
            for info in self._algorithms.values()
            if (kind is None or info.kind == kind)
            and (include_deprecated or not info.deprecated)
        )

    def instantiate(self, name: str, key: bytes = b"", **kwargs):
        """Construct an instance of the named algorithm."""
        info = self.get(name)
        if info.kind == "hash":
            return info.factory()
        return info.factory(key, **kwargs)


def default_registry() -> AlgorithmRegistry:
    """The 2003-era algorithm baseline from the paper's SSL example.

    AES is *deliberately absent* — it post-dates a hypothetical 2001
    handset — and is added by the flexibility example/bench via
    :func:`aes_rollout`.
    """
    registry = AlgorithmRegistry()
    registry.register(AlgorithmInfo(
        "DES", "block", DES, key_bytes=8, strength_bits=56,
        year_introduced=1977, deprecated=True,
        notes="original federal standard; brute-forceable by 1998"))
    registry.register(AlgorithmInfo(
        "3DES", "block", TripleDES, key_bytes=24, strength_bits=112,
        year_introduced=1998,
        notes="the interim DES replacement; the paper's 651.3-MIPS workload"))
    registry.register(AlgorithmInfo(
        "RC2", "block", RC2, key_bytes=16, strength_bits=64,
        year_introduced=1987, deprecated=True,
        notes="export-era SSL suite member"))
    registry.register(AlgorithmInfo(
        "RC4", "stream", RC4, key_bytes=16, strength_bits=128,
        year_introduced=1987,
        notes="SSL/WEP stream cipher; weak as used by WEP"))
    registry.register(AlgorithmInfo(
        "A51", "stream", A51, key_bytes=11, strength_bits=54,
        year_introduced=1999,
        notes="GSM majority-clocked LFSR triple; in every 2003 handset"))
    registry.register(AlgorithmInfo(
        "SHA1", "hash", SHA1, key_bytes=0, strength_bits=80,
        year_introduced=1995, notes="FIPS 180-1 MAC hash"))
    registry.register(AlgorithmInfo(
        "MD5", "hash", MD5, key_bytes=0, strength_bits=64,
        year_introduced=1992, deprecated=True, notes="RFC 1321 MAC hash"))
    return registry


def aes_rollout(registry: AlgorithmRegistry) -> None:
    """Register AES post-deployment — the June 2002 TLS revision event."""
    registry.register(AlgorithmInfo(
        "AES", "block", AES, key_bytes=16, strength_bits=128,
        year_introduced=2001,
        notes="FIPS 197; added to TLS June 2002 (paper Figure 2)"))


def lightweight_rollout(registry: AlgorithmRegistry) -> None:
    """Register the eSTREAM-era lightweight stream ciphers
    post-deployment — the m-commerce firmware update that brings the
    Pourghasem et al. suite family to a fielded handset."""
    registry.register(AlgorithmInfo(
        "GRAIN", "stream", Grain, key_bytes=18, strength_bits=80,
        year_introduced=2005,
        notes="Grain v1; eSTREAM hardware portfolio, smallest footprint"))
    registry.register(AlgorithmInfo(
        "TRIVIUM", "stream", Trivium, key_bytes=20, strength_bits=80,
        year_introduced=2005,
        notes="eSTREAM hardware portfolio; 288-bit cascade"))
