"""Grain v1 — the eSTREAM low-footprint NFSR/LFSR stream cipher.

The third lightweight design from Pourghasem et al.'s m-commerce
motivation (PAPERS.md): Hell, Johansson and Meier's Grain v1, an
80-bit-key cipher built from one linear and one nonlinear 80-bit
feedback shift register joined by a boolean filter — the smallest
hardware footprint in the eSTREAM portfolio and therefore the extreme
low-energy point of our suite family.

Implementation shape
--------------------

Both registers live in Python ints with spec bit ``b_i``/``s_i`` at
int bit ``i`` (LSB-first), so loading is just
``int.from_bytes(..., "little")`` and a spec step is ``>> 1`` with the
feedback bit inserted at bit 79.  The fast path batches 16 spec steps:
every tap index is at most 64, so all sixteen steps read windows of
pre-batch state bits (the 16-step validity bound ``64 + 15 <= 79``),
and one batched step computes 16 keystream bits with shifted windows —
Grain's own designers describe exactly this x16 speedup as the
hardware trade-off.

Both dispatch paths advance in whole 16-bit (2-byte) chunks and buffer
the leftover byte, so :meth:`save_state` snapshots are byte-identical
whichever path produced them.

Conventions (frozen by the KAT corpus): key/IV bits load LSB-first
within each byte (``b_0`` is bit 0 of ``key[0]``), keystream bits pack
LSB-first within each output byte.  The suite key blob is
``key[10] || iv[8]``; the LFSR's top 16 bits are filled with ones per
the spec.
"""

from __future__ import annotations

from . import fastpath
from .errors import InvalidKeyLength

_M16 = 0xFFFF
_M80 = (1 << 80) - 1
_INIT_STEPS = 160


class Grain:
    """Grain v1 keystream generator with the RC4-compatible interface.

    The key blob is either 10 bytes (key alone, zero IV) or the
    suite's 18 bytes (``key || iv``).
    """

    name = "GRAIN"
    block_size = 1
    key_size = 18

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        if len(key) == 10:
            iv = b"\x00" * 8
        elif len(key) == 18:
            key, iv = key[:10], key[10:]
        else:
            raise InvalidKeyLength("GRAIN", len(key), "10 or 18")
        self.recorder = None
        self._b = int.from_bytes(key, "little")            # NFSR b0..b79
        self._s = int.from_bytes(iv, "little") | (_M16 << 64)  # LFSR s0..s79
        self._buffer = b""
        self._warm_up()

    # -- the two registers and the filter ------------------------------------

    def _step(self, count: int, mask: int, feed_z: bool) -> int:
        """``count`` spec steps batched (count is 1 or 16; every tap
        index is <= 64 so both window widths are valid).  Returns the
        keystream bits, step i at bit i; with ``feed_z`` the output is
        folded back into both feedbacks (initialisation mode)."""
        b, s = self._b, self._s
        # Filter h(x0..x4) on (s3, s25, s46, s64, b63).
        x0, x1, x2 = s >> 3, s >> 25, s >> 46
        x3, x4 = s >> 64, b >> 63
        h = (x1 ^ x4 ^ (x0 & x3) ^ (x2 & x3) ^ (x3 & x4)
             ^ (x0 & x1 & x2) ^ (x0 & x2 & x3) ^ (x0 & x2 & x4)
             ^ (x1 & x2 & x4) ^ (x2 & x3 & x4))
        z = ((b >> 1) ^ (b >> 2) ^ (b >> 4) ^ (b >> 10) ^ (b >> 31)
             ^ (b >> 43) ^ (b >> 56) ^ h) & mask
        # LFSR feedback f: s_{i+80} = s62+s51+s38+s23+s13+s0.
        ns = ((s >> 62) ^ (s >> 51) ^ (s >> 38) ^ (s >> 23) ^ (s >> 13) ^ s) & mask
        # NFSR feedback g (masked input s0 added per the spec).
        nb = (s ^ (b >> 62) ^ (b >> 60) ^ (b >> 52) ^ (b >> 45) ^ (b >> 37)
              ^ (b >> 33) ^ (b >> 28) ^ (b >> 21) ^ (b >> 14) ^ (b >> 9) ^ b
              ^ ((b >> 63) & (b >> 60))
              ^ ((b >> 37) & (b >> 33))
              ^ ((b >> 15) & (b >> 9))
              ^ ((b >> 60) & (b >> 52) & (b >> 45))
              ^ ((b >> 33) & (b >> 28) & (b >> 21))
              ^ ((b >> 63) & (b >> 45) & (b >> 28) & (b >> 9))
              ^ ((b >> 60) & (b >> 52) & (b >> 37) & (b >> 33))
              ^ ((b >> 63) & (b >> 60) & (b >> 21) & (b >> 15))
              ^ ((b >> 63) & (b >> 60) & (b >> 52) & (b >> 45) & (b >> 37))
              ^ ((b >> 33) & (b >> 28) & (b >> 21) & (b >> 15) & (b >> 9))
              ^ ((b >> 52) & (b >> 45) & (b >> 37) & (b >> 33) & (b >> 28)
                 & (b >> 21))) & mask
        if feed_z:
            ns ^= z
            nb ^= z
        self._s = ((s >> count) | (ns << (80 - count))) & _M80
        self._b = ((b >> count) | (nb << (80 - count))) & _M80
        return z

    def _warm_up(self) -> None:
        """The 160 initialisation clocks with the output fed back."""
        if self.recorder is None and fastpath.enabled():
            for _ in range(_INIT_STEPS // 16):
                self._step(16, _M16, feed_z=True)
        else:
            for _ in range(_INIT_STEPS):
                self._step(1, 1, feed_z=True)

    def _chunk(self) -> bytes:
        """The next 2 keystream bytes (16 steps on either path)."""
        if self.recorder is None and fastpath.enabled():
            z = self._step(16, _M16, feed_z=False)
        else:
            z = 0
            for i in range(16):
                z |= self._step(1, 1, feed_z=False) << i
        return z.to_bytes(2, "little")

    # -- the RC4-compatible surface -----------------------------------------

    def keystream(self, length: int) -> bytes:
        """Produce the next ``length`` keystream bytes."""
        buffered = self._buffer
        while len(buffered) < length:
            buffered += self._chunk()
        self._buffer = buffered[length:]
        return buffered[:length]

    def process(self, data) -> bytes:
        """Encrypt or decrypt ``data`` (XOR with keystream)."""
        data = bytes(data)
        if not data:
            return b""
        stream = self.keystream(len(data))
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(len(data), "big")

    def save_state(self):
        """Snapshot (NFSR, LFSR, leftover chunk bytes) for the record
        decoder's tamper rollback."""
        return self._b, self._s, self._buffer

    def restore_state(self, snapshot) -> None:
        """Rewind to a :meth:`save_state` snapshot."""
        self._b, self._s, self._buffer = snapshot
