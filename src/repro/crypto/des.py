"""DES (FIPS 46-3) implemented from scratch.

DES and its triple variant are the symmetric workhorses the paper's
quantitative analysis leans on: the 651.3-MIPS figure of Section 3.2 is
for a 3DES+SHA protocol, and the bit-permutation inner loops here are
the very operations Section 4.2.1 says word-oriented CPUs execute
poorly (motivating SmartMIPS/SecurCore-style ISA extensions).

The implementation follows the FIPS 46-3 tables verbatim, keeps the
classic IP → 16 Feistel rounds → FP structure, and exposes probe points
(round outputs, S-box outputs) for the power-analysis attacks of
:mod:`repro.attacks.power`.

Validated against the canonical test vector (key ``133457799BBCDFF1``,
plaintext ``0123456789ABCDEF`` → ciphertext ``85E813540F0AB405``) and
NIST-style round-trip properties in the test suite.
"""

from __future__ import annotations

from typing import List, Optional

from . import fastpath
from .bitops import bytes_to_int, int_to_bytes, permute_bits
from .errors import InvalidBlockSize, InvalidKeyLength
from .trace import TraceRecorder

BLOCK_SIZE = 8
KEY_SIZE = 8

# --- FIPS 46-3 tables (1-indexed bit positions, MSB first) -----------------

_IP = (
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
)

_FP = (
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
)

_E = (
    32, 1, 2, 3, 4, 5,
    4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32, 1,
)

_P = (
    16, 7, 20, 21, 29, 12, 28, 17,
    1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9,
    19, 13, 30, 6, 22, 11, 4, 25,
)

_PC1 = (
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
)

_PC2 = (
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
)

_SHIFTS = (1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1)

_SBOXES = (
    (
        (14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7),
        (0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8),
        (4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0),
        (15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13),
    ),
    (
        (15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10),
        (3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5),
        (0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15),
        (13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9),
    ),
    (
        (10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8),
        (13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1),
        (13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7),
        (1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12),
    ),
    (
        (7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15),
        (13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9),
        (10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4),
        (3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14),
    ),
    (
        (2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9),
        (14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6),
        (4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14),
        (11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3),
    ),
    (
        (12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11),
        (10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8),
        (9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6),
        (4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13),
    ),
    (
        (4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1),
        (13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6),
        (1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2),
        (6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12),
    ),
    (
        (13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7),
        (1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2),
        (7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8),
        (2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11),
    ),
)


def expand_key(key: bytes) -> List[int]:
    """Derive the sixteen 48-bit round keys from an 8-byte DES key.

    Parity bits (every 8th bit) are ignored, per FIPS 46-3.
    """
    if len(key) != KEY_SIZE:
        raise InvalidKeyLength("DES", len(key), "8")
    if fastpath.enabled():
        # Bit-identical table-driven schedule (PC1/PC2 as byte lookups).
        return fastpath.des_expand_key(key)
    key56 = permute_bits(bytes_to_int(key), _PC1, 64)
    c = (key56 >> 28) & 0x0FFFFFFF
    d = key56 & 0x0FFFFFFF
    round_keys = []
    for shift in _SHIFTS:
        c = ((c << shift) | (c >> (28 - shift))) & 0x0FFFFFFF
        d = ((d << shift) | (d >> (28 - shift))) & 0x0FFFFFFF
        round_keys.append(permute_bits((c << 28) | d, _PC2, 56))
    return round_keys


def feistel(right: int, round_key: int, recorder: Optional[TraceRecorder] = None,
            round_index: int = 0) -> int:
    """The DES round function f(R, K)."""
    expanded = permute_bits(right, _E, 32) ^ round_key
    out = 0
    for box in range(8):
        chunk = (expanded >> (42 - 6 * box)) & 0x3F
        row = ((chunk >> 4) & 0b10) | (chunk & 1)
        col = (chunk >> 1) & 0xF
        sbox_out = _SBOXES[box][row][col]
        if recorder is not None:
            recorder.record("des.sbox_out", round_index * 8 + box, sbox_out)
        out = (out << 4) | sbox_out
    return permute_bits(out, _P, 32)


def _crypt_block(block64: int, round_keys: List[int],
                 recorder: Optional[TraceRecorder]) -> int:
    state = permute_bits(block64, _IP, 64)
    left = (state >> 32) & 0xFFFFFFFF
    right = state & 0xFFFFFFFF
    for round_index, round_key in enumerate(round_keys):
        left, right = right, left ^ feistel(right, round_key, recorder, round_index)
        if recorder is not None:
            recorder.record("des.round_out", round_index, right)
    # Final swap is undone (pre-output is R16 L16).
    return permute_bits((right << 32) | left, _FP, 64)


class DES:
    """Single DES with an 8-byte key, ECB at the block level.

    Chaining modes live in :mod:`repro.crypto.modes`; this class only
    transforms single 8-byte blocks so the mode layer stays generic.

    Parameters
    ----------
    key:
        8-byte key (parity bits ignored).
    recorder:
        Optional :class:`~repro.crypto.trace.TraceRecorder` receiving
        side-channel probe samples.
    """

    name = "DES"
    block_size = BLOCK_SIZE
    key_size = KEY_SIZE

    def __init__(self, key: bytes, recorder: Optional[TraceRecorder] = None) -> None:
        self._round_keys = expand_key(key)
        # Cache the reversed schedule too, so decryption never rebuilds it.
        self._round_keys_dec = list(reversed(self._round_keys))
        self.recorder = recorder

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockSize("DES", len(block), BLOCK_SIZE)
        if self.recorder is None and fastpath.enabled():
            return int_to_bytes(
                fastpath.des_crypt_block(bytes_to_int(block), self._round_keys), 8
            )
        return int_to_bytes(
            _crypt_block(bytes_to_int(block), self._round_keys, self.recorder), 8
        )

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockSize("DES", len(block), BLOCK_SIZE)
        if self.recorder is None and fastpath.enabled():
            return int_to_bytes(
                fastpath.des_crypt_block(bytes_to_int(block), self._round_keys_dec), 8
            )
        return int_to_bytes(
            _crypt_block(bytes_to_int(block), self._round_keys_dec, self.recorder), 8
        )


def sbox_lookup(box: int, six_bits: int) -> int:
    """Public S-box lookup used by the DPA attack's hypothesis function."""
    row = ((six_bits >> 4) & 0b10) | (six_bits & 1)
    col = (six_bits >> 1) & 0xF
    return _SBOXES[box][row][col]


def expansion(right: int) -> int:
    """Public E-expansion used by the DPA attack's hypothesis function."""
    return permute_bits(right, _E, 32)


def initial_permutation(block64: int) -> int:
    """Expose IP for attack code that models first-round intermediates."""
    return permute_bits(block64, _IP, 64)
